//! Explore the cache-topology design space of paper Figure 4: how the
//! interconnect and way-interleaving choices create (or destroy) the
//! energy asymmetry SLIP exploits, using the geometric wire model.
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use energy_model::{BankGrid, Energy, Topology, WireParams, TECH_45NM};

fn show_level(name: &str, grid: &BankGrid, table2: &[Energy]) {
    let wire = WireParams::NM45;
    let split = [4usize, 4, 8];
    println!(
        "--- {name}: {}x{} banks, {} ways ---",
        grid.rows, grid.cols, grid.ways
    );
    println!(
        "{:<38} {:>10} {:>10} {:>10} {:>9}",
        "topology (paper Fig. 4)", "sub0", "sub1", "sub2", "spread"
    );
    for (label, topo) in [
        (
            "hierarchical bus, way-interleaved",
            Topology::HierarchicalBusWayInterleaved,
        ),
        (
            "hierarchical bus, set-interleaved",
            Topology::HierarchicalBusSetInterleaved,
        ),
        ("H-tree", Topology::HTree),
    ] {
        let e = grid.sublevel_energies(topo, &wire, &split);
        let spread = e.last().expect("3 sublevels").as_pj() / e[0].as_pj();
        println!(
            "{:<38} {:>10} {:>10} {:>10} {:>8.2}x",
            label,
            format!("{}", e[0]),
            format!("{}", e[1]),
            format!("{}", e[2]),
            spread
        );
    }
    println!(
        "{:<38} {:>10} {:>10} {:>10}",
        "paper Table 2 (HSPICE)",
        format!("{}", table2[0]),
        format!("{}", table2[1]),
        format!("{}", table2[2]),
    );
    println!();
}

fn main() {
    println!(
        "Geometric wire model at 45 nm ({} pJ/bit/mm, 64 B lines).\n\
         Only the way-interleaved hierarchical bus exposes per-way energy\n\
         asymmetry — the premise of SLIP. Set interleaving makes every\n\
         candidate location equal; the H-tree makes them equally *bad*.\n",
        WireParams::NM45.pj_per_bit_mm
    );
    show_level(
        "L2 (256 KB)",
        &BankGrid::l2_45nm(),
        &TECH_45NM.l2.sublevel_access,
    );
    show_level(
        "L3 (2 MB)",
        &BankGrid::l3_45nm(),
        &TECH_45NM.l3.sublevel_access,
    );

    // What finer partitions would look like at the L3.
    println!("--- L3 way-interleaved, alternative sublevel splits ---");
    let grid = BankGrid::l3_45nm();
    let wire = WireParams::NM45;
    for split in [vec![8usize, 8], vec![4, 4, 8], vec![4, 4, 4, 4], vec![2; 8]] {
        let e = grid.sublevel_energies(Topology::HierarchicalBusWayInterleaved, &wire, &split);
        let pretty: Vec<String> = e.iter().map(|x| format!("{:.0}", x.as_pj())).collect();
        println!(
            "  {:>12} ways -> [{}] pJ",
            format!("{split:?}"),
            pretty.join(", ")
        );
    }
}
