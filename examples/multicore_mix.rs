//! Two-core multiprogrammed mix on a shared 2 MB L3 (the paper's
//! Figure 16 scenario) — compare the baseline hierarchy with SLIP+ABP.
//!
//! ```sh
//! cargo run --release --example multicore_mix [bench_a] [bench_b] [accesses]
//! ```

use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::multicore::run_mix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let a = args.first().cloned().unwrap_or_else(|| "soplex".into());
    let b = args.get(1).cloned().unwrap_or_else(|| "mcf".into());
    let len: u64 = args
        .get(2)
        .map(|s| s.parse().expect("accesses must be a number"))
        .unwrap_or(1_000_000);

    let spec_a = workloads::workload(&a).expect("known benchmark");
    let spec_b = workloads::workload(&b).expect("known benchmark");

    println!("mix {a}+{b}, {len} accesses per core, shared 2 MB L3\n");
    let base = run_mix(
        SystemConfig::paper_45nm(PolicyKind::Baseline),
        &spec_a,
        &spec_b,
        len,
    );
    let slip = run_mix(
        SystemConfig::paper_45nm(PolicyKind::SlipAbp),
        &spec_a,
        &spec_b,
        len,
    );

    println!("                 baseline     SLIP+ABP");
    println!(
        "L2 energy       {:>10}   {:>10}",
        format!("{}", base.l2_energy),
        format!("{}", slip.l2_energy)
    );
    println!(
        "L3 energy       {:>10}   {:>10}",
        format!("{}", base.l3_energy),
        format!("{}", slip.l3_energy)
    );
    println!(
        "DRAM transfers  {:>10}   {:>10}",
        base.dram_demand_traffic, slip.dram_total_traffic
    );
    println!(
        "L3 hit rate     {:>9.1}%   {:>9.1}%",
        base.l3_stats.demand_hit_rate() * 100.0,
        slip.l3_stats.demand_hit_rate() * 100.0
    );
    println!();
    println!(
        "L3 energy saving:    {:.1}%   (paper Fig. 16 average: 47%)",
        (1.0 - slip.l3_energy / base.l3_energy) * 100.0
    );
    println!(
        "L2+L3 energy saving: {:.1}%",
        (1.0 - slip.l2_plus_l3_energy() / base.l2_plus_l3_energy()) * 100.0
    );
    println!(
        "DRAM traffic change: {:+.1}%   (paper: -5.5%)",
        (slip.dram_total_traffic as f64 / base.dram_demand_traffic as f64 - 1.0) * 100.0
    );
}
