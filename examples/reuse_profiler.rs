//! Library-API showcase: feed reuse-distance profiles to the Energy
//! Optimizer Unit and see which SLIP it would assign — the decision
//! pipeline of paper Figure 5, without a full simulation.
//!
//! ```sh
//! cargo run --release --example reuse_profiler
//! ```

use energy_model::TECH_45NM;
use slip_core::{slip_energy, EnergyOptimizerUnit, LevelModelParams, RdDistribution, Slip};

fn dist(counts: [u16; 4]) -> RdDistribution {
    let mut d = RdDistribution::paper_default();
    for (bin, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            d.observe(bin);
        }
    }
    d
}

fn main() {
    let l2 = LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access());
    let l3 = LevelModelParams::from_level(&TECH_45NM.l3, TECH_45NM.dram_line_energy());
    let mut eou_l2 = EnergyOptimizerUnit::new(&l2);
    let mut eou_l3 = EnergyOptimizerUnit::new(&l3);

    let scenarios: [(&str, [u16; 4]); 6] = [
        (
            "tight loop, fits 64 KB (soplex rorig, near c..r)",
            [15, 0, 0, 0],
        ),
        ("loop needing 128 KB", [0, 14, 1, 0]),
        ("loop needing the full 256 KB", [0, 0, 14, 1]),
        ("streaming, never reused (soplex rperm)", [0, 0, 0, 15]),
        ("bimodal: near hits + misses (soplex cperm)", [10, 0, 1, 4]),
        ("uniform / unknown", [4, 4, 4, 4]),
    ];

    println!("EOU decisions for the paper's L2 (sublevels 64/64/128 KB) and");
    println!("L3 (512/512/1024 KB) at 45 nm; energies are per access.\n");
    println!(
        "{:<48} {:>14} {:>10} {:>14} {:>10}",
        "reuse profile [bins]", "L2 SLIP", "E/access", "L3 SLIP", "E/access"
    );
    for (label, counts) in scenarios {
        let d = dist(counts);
        let d2 = eou_l2.optimize(&d);
        let d3 = eou_l3.optimize(&d);
        println!(
            "{:<48} {:>14} {:>10} {:>14} {:>10}",
            format!("{label}"),
            d2.slip.to_string(),
            format!("{}", d2.estimated_energy),
            d3.slip.to_string(),
            format!("{}", d3.estimated_energy),
        );
    }

    // Show the full candidate ranking for the bimodal case.
    let d = dist([10, 0, 1, 4]);
    let probs = d.probabilities();
    println!("\nfull L2 ranking for the bimodal profile {d}:");
    let mut ranked: Vec<(Slip, f64)> = Slip::enumerate(3)
        .into_iter()
        .map(|s| (s, slip_energy(&l2, s, &probs).as_pj()))
        .collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (slip, e) in ranked {
        println!("  {:<14} {:>8.1} pJ/access", slip.to_string(), e);
    }
}
