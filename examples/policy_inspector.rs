//! Inspect which SLIPs the EOU converges to for a workload: per-level
//! histograms of stable-page policy codes and insertion-class mixes.
//!
//! ```sh
//! cargo run --release --example policy_inspector [workload] [accesses] [--no-abp]
//! ```

use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::SingleCoreSystem;
use slip_core::{PageState, Slip};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().cloned().unwrap_or_else(|| "soplex".into());
    let len: u64 = args
        .get(1)
        .map(|s| s.parse().expect("accesses"))
        .unwrap_or(1_000_000);
    let policy = if args.iter().any(|a| a == "--no-abp") {
        PolicyKind::Slip
    } else if args.iter().any(|a| a == "--baseline") {
        PolicyKind::Baseline
    } else {
        PolicyKind::SlipAbp
    };

    let spec = workloads::workload(&name).expect("known workload");
    let config = SystemConfig::paper_45nm(policy);
    let seed = config.seed;
    let mut system = SingleCoreSystem::new(config);
    system.run(spec.trace(len, seed));

    println!("workload {name}, policy {policy}, {len} accesses");
    if let Some(mmu) = system.mmu() {
        let mut l2_hist: BTreeMap<String, usize> = BTreeMap::new();
        let mut l3_hist: BTreeMap<String, usize> = BTreeMap::new();
        let mut stable = 0usize;
        let mut sampling = 0usize;
        for (_, entry) in mmu.page_table.iter() {
            match entry.state {
                PageState::Stable => {
                    stable += 1;
                    let s2 = Slip::from_code(3, entry.slips[0]).unwrap();
                    let s3 = Slip::from_code(3, entry.slips[1]).unwrap();
                    *l2_hist.entry(s2.to_string()).or_default() += 1;
                    *l3_hist.entry(s3.to_string()).or_default() += 1;
                }
                PageState::Sampling => sampling += 1,
            }
        }
        println!("pages: {stable} stable, {sampling} sampling");
        println!("\nL2 SLIPs of stable pages:");
        for (slip, n) in &l2_hist {
            println!("  {slip:<24} {n}");
        }
        println!("\nL3 SLIPs of stable pages:");
        for (slip, n) in &l3_hist {
            println!("  {slip:<24} {n}");
        }
    }
    let r = system.finish(name);
    let f2 = r.l2_stats.insertion_class_fractions();
    let f3 = r.l3_stats.insertion_class_fractions();
    println!("\ninsertion classes (ABP/partial/default/other):");
    println!(
        "  L2: {:.1}% / {:.1}% / {:.1}% / {:.1}%",
        f2[0] * 100.0,
        f2[1] * 100.0,
        f2[2] * 100.0,
        f2[3] * 100.0
    );
    println!(
        "  L3: {:.1}% / {:.1}% / {:.1}% / {:.1}%",
        f3[0] * 100.0,
        f3[1] * 100.0,
        f3[2] * 100.0,
        f3[3] * 100.0
    );
    println!("\nsublevel hit fractions:");
    println!("  L2: {:?}", r.l2_stats.sublevel_hit_fractions());
    println!("  L3: {:?}", r.l3_stats.sublevel_hit_fractions());
    println!("\nL2 energy: {}", r.l2_energy);
    println!("L3 energy: {}", r.l3_energy);
    println!(
        "L2 stats: accesses {} hits {} insertions {} movements {} writebacks {}",
        r.l2_stats.demand_accesses,
        r.l2_stats.demand_hits,
        r.l2_stats.insertions,
        r.l2_stats.movements,
        r.l2_stats.writebacks
    );
    println!(
        "L3 stats: accesses {} hits {} insertions {} movements {} writebacks {}",
        r.l3_stats.demand_accesses,
        r.l3_stats.demand_hits,
        r.l3_stats.insertions,
        r.l3_stats.movements,
        r.l3_stats.writebacks
    );
}
