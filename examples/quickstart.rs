//! Quickstart: compare all five cache-management policies on one
//! workload and print the paper's headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart [workload] [accesses]
//! ```

use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::system::run_workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "soplex".to_owned());
    let len: u64 = args
        .next()
        .map(|s| s.parse().expect("accesses must be a number"))
        .unwrap_or(1_000_000);

    let spec = workloads::workload(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {name:?}; choose one of {:?}",
            workloads::BENCHMARK_NAMES
        );
        std::process::exit(1);
    });

    println!("workload {name}, {len} accesses, 45 nm parameters (paper Tables 1-2)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "policy", "L2 energy", "L3 energy", "L2 sav", "L3 sav", "speedup", "DRAM xfer", "bypass%"
    );

    let baseline = run_workload(SystemConfig::paper_45nm(PolicyKind::Baseline), &spec, len);

    for policy in PolicyKind::ALL {
        let r = if policy == PolicyKind::Baseline {
            baseline.clone()
        } else {
            run_workload(SystemConfig::paper_45nm(policy), &spec, len)
        };
        let l2 = r.l2_total_energy();
        let l3 = r.l3_total_energy();
        let l2_sav = 1.0 - l2 / baseline.l2_total_energy();
        let l3_sav = 1.0 - l3 / baseline.l3_total_energy();
        let speedup = r.speedup_vs(&baseline) - 1.0;
        let bypass = r.l2_stats.insertion_class_fractions()[0] * 100.0;
        println!(
            "{:<10} {:>12} {:>12} {:>8.1}% {:>8.1}% {:>8.2}% {:>10} {:>7.1}%",
            policy.label(),
            format!("{}", l2),
            format!("{}", l3),
            l2_sav * 100.0,
            l3_sav * 100.0,
            speedup * 100.0,
            r.dram_demand_traffic(),
            bypass,
        );
    }
}
