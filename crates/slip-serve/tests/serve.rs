//! End-to-end tests for the sweep service: shared execution, dedup,
//! resumable streams, journal-backed restart — all over real loopback
//! TCP against a real worker pool.

use sim_engine::codec;
use sim_engine::experiments::suite::SweepConfig;
use sim_engine::experiments::{SuiteOptions, SuiteResults};
use slip_serve::{client, Server, ServerConfig, SweepSpec};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread::JoinHandle;

/// A scratch directory under `target/` (the sandbox may not allow
/// `/tmp`), unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("serve-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Starts a quiet server on an ephemeral loopback port.
fn start_server(jobs: usize, journal_dir: &std::path::Path) -> (SocketAddr, JoinHandle<()>) {
    let mut config = ServerConfig::new(journal_dir);
    config.jobs = jobs;
    config.quiet = true;
    let server = Server::bind(config).expect("bind server");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// The spec all tests sweep: small enough to be fast, two benchmarks
/// and two policies so there is real parallelism and ordering to get
/// wrong.
fn small_spec() -> SweepSpec {
    SweepSpec {
        benchmarks: vec!["gcc".into(), "soplex".into()],
        policies: vec!["baseline".into(), "slip".into()],
        accesses: 2_000,
        warmup: 0,
        topology: None,
    }
}

/// Benchmark-major cell keys for `spec` — the order the server streams.
fn cell_keys(options: &SuiteOptions) -> Vec<String> {
    options
        .benchmarks
        .iter()
        .flat_map(|&b| {
            options
                .policies
                .iter()
                .map(move |&p| options.cell_key(b, p))
        })
        .collect()
}

/// Offline ground truth: the same spec through the ordinary sweep path
/// (`SuiteResults::run_with`, exactly what `slip sweep` calls), encoded
/// with the same codec, in the same benchmark-major order.
fn offline_payloads(spec: &SweepSpec, jobs: usize) -> Vec<(String, String)> {
    let options = spec.suite_options().expect("spec resolves");
    let mut sweep = SweepConfig::with_jobs(jobs);
    sweep.quiet = true;
    let results =
        SuiteResults::run_with(spec.suite_options().unwrap(), &sweep).expect("offline sweep");
    options
        .benchmarks
        .iter()
        .flat_map(|&b| {
            let options = &options;
            let results = &results;
            options.policies.iter().map(move |&p| {
                (
                    options.cell_key(b, p),
                    codec::encode_result(results.get(b, p)).to_json(),
                )
            })
        })
        .collect()
}

#[test]
fn concurrent_identical_specs_execute_each_cell_once() {
    let dir = scratch("dedup-run");
    let (addr, server) = start_server(2, &dir);
    let spec = small_spec();

    let streams: Vec<_> = (0..2)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut stream = client::submit(addr, &spec).expect("submit");
                let cells = stream.collect_cells().expect("stream cells");
                (stream, cells)
            })
        })
        .collect();
    let outcomes: Vec<_> = streams.into_iter().map(|t| t.join().unwrap()).collect();

    let options = spec.suite_options().unwrap();
    let keys = cell_keys(&options);
    for (stream, cells) in &outcomes {
        assert_eq!(stream.cells, keys.len() as u64);
        let got: Vec<&String> = cells.iter().map(|(_, k, _)| k).collect();
        assert_eq!(got, keys.iter().collect::<Vec<_>>(), "cells in cell order");
    }
    // Both clients saw byte-identical payload streams.
    let render = |cells: &[(u64, String, sweep_runner::json::Value)]| {
        cells
            .iter()
            .map(|(i, k, p)| format!("{i} {k} {}", p.to_json()))
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&outcomes[0].1), render(&outcomes[1].1));
    // Exactly one of the two submissions created the run.
    let joined: Vec<bool> = outcomes.iter().map(|(s, _)| s.joined).collect();
    assert_eq!(
        joined.iter().filter(|&&j| j).count(),
        1,
        "joined flags: {joined:?}"
    );

    // The acceptance criterion: one execution per cell, ever.
    let stats = client::stats(addr).expect("stats");
    assert_eq!(stats.get("runs_started").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(stats.get("runs_joined").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        stats.get("cells_executed").and_then(|v| v.as_u64()),
        Some(keys.len() as u64)
    );
    assert_eq!(stats.get("cells_deduped").and_then(|v| v.as_u64()), Some(0));

    client::shutdown(addr).expect("shutdown");
    server.join().unwrap();
}

#[test]
fn resumed_stream_concatenates_bit_exact_with_offline_sweep() {
    // Ground truth once; the server must match it at every jobs count.
    let spec = small_spec();
    let expected = offline_payloads(&spec, 1);

    for jobs in [1usize, 4] {
        let dir = scratch(&format!("resume-jobs{jobs}"));
        let (addr, server) = start_server(jobs, &dir);

        // Take two cells, then drop the connection mid-stream.
        let mut stream = client::submit(addr, &spec).expect("submit");
        assert_eq!(stream.cells as usize, expected.len());
        let run_id = stream.run_id.clone();
        let mut received = Vec::new();
        for _ in 0..2 {
            received.push(stream.next_cell().expect("cell").expect("not done"));
        }
        drop(stream); // simulated client death: TCP reset mid-stream

        // Reconnect with the run id, acking what we already have.
        let mut resumed = client::resume(addr, &run_id, received.len() as u64).expect("resume");
        assert_eq!(resumed.run_id, run_id);
        assert_eq!(resumed.from, received.len() as u64);
        assert!(resumed.joined, "resume always joins");
        received.extend(resumed.collect_cells().expect("resumed cells"));

        // The concatenated stream is the whole sweep, in order,
        // bit-identical to the offline run.
        let got: Vec<(String, String)> = received
            .iter()
            .map(|(_, k, p)| (k.clone(), p.to_json()))
            .collect();
        assert_eq!(got, expected, "jobs={jobs}");
        let indices: Vec<u64> = received.iter().map(|(i, _, _)| *i).collect();
        assert_eq!(indices, (0..expected.len() as u64).collect::<Vec<_>>());

        client::shutdown(addr).expect("shutdown");
        server.join().unwrap();
    }
}

#[test]
fn overlapping_specs_share_cell_executions() {
    let dir = scratch("dedup-cell");
    let (addr, server) = start_server(2, &dir);

    let small = SweepSpec {
        benchmarks: vec!["gcc".into()],
        policies: vec!["baseline".into(), "slip".into()],
        accesses: 2_000,
        warmup: 0,
        topology: None,
    };
    let big = SweepSpec {
        benchmarks: vec!["gcc".into(), "soplex".into()],
        policies: vec!["baseline".into(), "slip".into()],
        accesses: 2_000,
        warmup: 0,
        topology: None,
    };

    let mut first = client::submit(addr, &small).expect("submit small");
    let first_cells = first.collect_cells().expect("small cells");
    assert_eq!(first.done().unwrap().executed, 2);

    // The big sweep is a different run but shares the two gcc cells.
    let mut second = client::submit(addr, &big).expect("submit big");
    assert!(!second.joined, "different spec, different run");
    let second_cells = second.collect_cells().expect("big cells");
    let done = second.done().unwrap().clone();
    assert_eq!(done.executed, 2, "only the soplex cells execute");
    assert_eq!(done.restored, 2, "the gcc cells are deduplicated");

    // Shared cells carry byte-identical payloads in both streams.
    for (key, payload) in first_cells.iter().map(|(_, k, p)| (k, p.to_json())) {
        let twin = second_cells
            .iter()
            .find(|(_, k, _)| k == key)
            .unwrap_or_else(|| panic!("big stream misses {key}"));
        assert_eq!(twin.2.to_json(), payload);
    }

    let stats = client::stats(addr).expect("stats");
    assert_eq!(
        stats.get("cells_executed").and_then(|v| v.as_u64()),
        Some(4)
    );
    assert_eq!(stats.get("cells_deduped").and_then(|v| v.as_u64()), Some(2));

    client::shutdown(addr).expect("shutdown");
    server.join().unwrap();
}

#[test]
fn restarted_server_revives_runs_from_journal() {
    let dir = scratch("restart");
    let spec = small_spec();

    // First server instance executes the sweep and shuts down.
    let (addr, server) = start_server(2, &dir);
    let mut stream = client::submit(addr, &spec).expect("submit");
    let original = stream.collect_cells().expect("cells");
    let run_id = stream.run_id.clone();
    client::shutdown(addr).expect("shutdown");
    server.join().unwrap();

    // Second instance knows nothing in memory; the journal is all it
    // has. A resume from zero must replay every cell without executing.
    let (addr, server) = start_server(2, &dir);
    let mut revived = client::resume(addr, &run_id, 0).expect("resume after restart");
    let replayed = revived.collect_cells().expect("replayed cells");
    let done = revived.done().unwrap();
    assert_eq!(done.executed, 0, "nothing re-executes");
    assert_eq!(done.restored, original.len() as u64);

    let render = |cells: &[(u64, String, sweep_runner::json::Value)]| {
        cells
            .iter()
            .map(|(i, k, p)| format!("{i} {k} {}", p.to_json()))
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&replayed), render(&original));

    let stats = client::stats(addr).expect("stats");
    assert_eq!(
        stats.get("cells_executed").and_then(|v| v.as_u64()),
        Some(0)
    );
    assert_eq!(
        stats.get("cells_restored").and_then(|v| v.as_u64()),
        Some(original.len() as u64)
    );

    client::shutdown(addr).expect("shutdown");
    server.join().unwrap();
}

#[test]
fn unknown_run_and_bad_requests_get_error_frames() {
    let dir = scratch("errors");
    let (addr, server) = start_server(1, &dir);

    let err = client::resume(addr, "r-0000000000000000", 0).unwrap_err();
    assert!(err.to_string().contains("unknown run"), "{err}");

    let err = client::submit(
        addr,
        &SweepSpec {
            benchmarks: vec!["not-a-benchmark".into()],
            policies: vec![],
            accesses: 1_000,
            warmup: 0,
            topology: None,
        },
    )
    .unwrap_err();
    assert!(err.to_string().contains("not-a-benchmark"), "{err}");

    client::shutdown(addr).expect("shutdown");
    server.join().unwrap();
}
