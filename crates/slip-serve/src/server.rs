//! The sweep service: accept loop, shared execution, resumable streams.
//!
//! ## Architecture
//!
//! One thread per connection reads a single [`Request`] line and
//! answers with a frame stream. Sweep cells never run on connection
//! threads: each *run* (a deduplicated sweep spec) submits its pending
//! cells as one queue to a shared [`SharedPool`], which round-robins
//! across queues — so a giant sweep cannot starve a small one, and a
//! run's cells are spread fairly no matter how many clients watch it.
//!
//! ## Dedup
//!
//! Two levels. **Run-level:** the run id is a hash of the canonical
//! spec, so equivalent submissions attach to one [`RunState`] and one
//! execution. **Cell-level:** every cell key owns a process-wide
//! [`CellSlot`]; a run whose cell is already resident or in flight
//! under another run subscribes to the slot instead of executing.
//! Trace buffers dedup one level lower again, in the server-wide
//! [`TraceLru`].
//!
//! ## Persistence and resume
//!
//! Every run appends to its own journal (`<dir>/<run_id>.jsonl`,
//! standard sweep-runner schema plus one `__spec__` record holding the
//! spec). A client that lost its connection resumes with
//! `{"op":"resume","run_id":..,"ack":n}` and receives cells from index
//! `n`; a *restarted server* revives the run from its journal — cells
//! already recorded restore instantly, the rest re-execute.
//!
//! ## Shutdown
//!
//! SIGINT/SIGTERM (via [`sweep_runner::interrupt`]) or a `shutdown`
//! request starts a drain: no new connections are accepted, in-flight
//! and queued cells finish (journals stay a clean prefix either way),
//! streams complete, then `run` returns.

use crate::protocol::{Frame, Request, SweepSpec};
use sim_engine::config::PolicyKind;
use sim_engine::experiments::suite::{run_fused_group, run_suite_cell};
use sim_engine::experiments::SuiteOptions;
use sim_engine::pipeline::TraceMode;
use sim_engine::trace_cache::TraceLru;
use sim_engine::{codec, env};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;
use sweep_runner::json::Value;
use sweep_runner::pool::Job;
use sweep_runner::{interrupt, Journal, SharedPool};

/// Journal key of the special record that stores the run's spec, so a
/// restarted server can revive the run from its journal alone. Cell
/// keys always contain `/` and `@`, so collision is impossible.
const SPEC_KEY: &str = "__spec__";

/// How the server executes and what it will accept.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing cells (the total thread budget; see
    /// [`shards`](ServerConfig::shards)).
    pub jobs: usize,
    /// Set-shard workers per cell (1 = serial). Cells occupy `shards`
    /// threads each, so the pool runs `jobs / shards` cells at once —
    /// the thread budget stays `jobs` either way. Results are
    /// bit-identical at any shard count. Ignored in
    /// [`TraceMode::Fused`], where a whole benchmark group occupies
    /// one worker instead.
    pub shards: usize,
    /// How cells execute ([`TraceMode::Shared`] by default). In
    /// [`TraceMode::Fused`] a run's pending cells are grouped by
    /// benchmark and each group replays one trace decode in lockstep.
    pub trace_mode: TraceMode,
    /// Maximum simultaneously active runs (pool admission limit);
    /// further submissions get a `server busy` error frame.
    pub max_runs: usize,
    /// Maximum simultaneous client connections.
    pub max_conns: usize,
    /// Directory for per-run journals (created if missing).
    pub journal_dir: PathBuf,
    /// Server-wide trace cache budget in MiB.
    pub trace_cache_mb: u64,
    /// Suppress stderr log lines.
    pub quiet: bool,
}

impl ServerConfig {
    /// Loopback defaults: ephemeral port, env-derived worker count and
    /// cache budget, journals under `journal_dir`.
    ///
    /// # Panics
    ///
    /// When `SLIP_SHARDS` is set to something that is not a power of
    /// two — a server that silently rounded it down would misreport
    /// its own parallelism.
    pub fn new(journal_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            jobs: env::jobs(),
            shards: env::shards().unwrap_or_else(|e| panic!("{e}")),
            trace_mode: env::trace_mode(),
            max_runs: 32,
            max_conns: 64,
            journal_dir: journal_dir.into(),
            trace_cache_mb: env::trace_cache_mb(),
            quiet: false,
        }
    }

    /// Pool worker count after the jobs × shards arbitration: sharded
    /// cells each occupy `shards` threads, so the pool gets
    /// `jobs / shards` workers (at least one). Fused mode ignores
    /// shards — a fused group is one job that retires N cells.
    pub fn effective_jobs(&self) -> usize {
        if self.shards > 1 && self.trace_mode != TraceMode::Fused {
            (self.jobs / self.shards).max(1)
        } else {
            self.jobs.max(1)
        }
    }
}

/// Process-wide slot for one cell key: the first run to claim it
/// executes, every other run subscribes and receives the identical
/// payload on completion.
struct CellSlot {
    /// `(wall_ms, metrics, payload)` once the cell has completed.
    done: OnceLock<(f64, Value, Value)>,
    /// Runs waiting for completion, as `(run, cell index)`.
    subscribers: Mutex<Vec<(Arc<RunState>, usize)>>,
}

/// One deduplicated sweep: immutable shape plus fill-as-they-complete
/// results.
struct RunState {
    run_id: String,
    options: SuiteOptions,
    keys: Vec<String>,
    /// Encoded `SimResult` per cell, filled in any order, streamed in
    /// cell order.
    results: Vec<OnceLock<Value>>,
    /// Count of filled results, guarded for the condvar.
    filled: Mutex<usize>,
    complete: Condvar,
    /// Cells this run submitted to the pool.
    executed: u64,
    /// Cells satisfied by its journal or another run's slot.
    restored: u64,
    journal: Journal,
    /// Cleared when any journal write fails: a run whose journal is
    /// not a complete record must stay resident (never archived),
    /// because its in-memory results are the only copy.
    journal_ok: AtomicBool,
}

impl RunState {
    /// Total cells.
    fn cells(&self) -> usize {
        self.keys.len()
    }

    /// Records (if `record`) and publishes one completed cell, waking
    /// stream threads.
    fn deliver(&self, index: usize, wall_ms: f64, metrics: Value, payload: Value, record: bool) {
        if record {
            // Journal I/O failure must not poison execution — the run
            // still completes in memory; only resume durability is
            // lost, and the run is pinned resident (no archival).
            if let Err(e) =
                self.journal
                    .record(&self.keys[index], wall_ms, metrics, payload.clone())
            {
                self.journal_ok.store(false, Ordering::SeqCst);
                eprintln!("[serve] journal write failed for {}: {e}", self.run_id);
            }
        }
        if self.results[index].set(payload).is_ok() {
            let mut filled = self.filled.lock().expect("run progress poisoned");
            *filled += 1;
            self.complete.notify_all();
        }
    }

    /// Blocks until cell `index` has a payload, then returns it.
    fn wait_cell(&self, index: usize) -> Value {
        let mut filled = self.filled.lock().expect("run progress poisoned");
        loop {
            if let Some(p) = self.results[index].get() {
                return p.clone();
            }
            filled = self.complete.wait(filled).expect("run progress poisoned");
        }
    }
}

/// Counters reported by the `stats` frame.
#[derive(Debug, Default)]
struct Counters {
    runs_started: AtomicU64,
    runs_joined: AtomicU64,
    runs_archived: AtomicU64,
    cells_executed: AtomicU64,
    cells_deduped: AtomicU64,
    cells_restored: AtomicU64,
}

struct ServerState {
    config: ServerConfig,
    pool: Mutex<Option<SharedPool>>,
    cache: Arc<TraceLru>,
    runs: Mutex<HashMap<String, Arc<RunState>>>,
    cells: Mutex<HashMap<String, Arc<CellSlot>>>,
    /// Index of completed runs whose cell results were released from
    /// memory: `run_id -> cell count`. The journal is the durable
    /// copy; a resubmission or resume revives the run from it.
    archived: Mutex<HashMap<String, u64>>,
    counters: Counters,
    conns: AtomicUsize,
    draining: AtomicBool,
}

impl ServerState {
    fn log(&self, msg: &str) {
        if !self.config.quiet {
            eprintln!("[serve] {msg}");
        }
    }

    /// Finds the run for `spec`, creating (or reviving from its
    /// journal) and scheduling it if needed. Returns the run and
    /// whether an existing one was joined.
    fn run_for_spec(self: &Arc<Self>, spec: &SweepSpec) -> Result<(Arc<RunState>, bool), String> {
        let options = spec.suite_options()?;
        let run_id = spec.run_id()?;
        // Hold the runs lock across creation so two identical
        // submissions cannot race into two executions.
        let mut runs = self.runs.lock().expect("runs poisoned");
        if let Some(run) = runs.get(&run_id) {
            self.counters.runs_joined.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(run), true));
        }
        let run = self.schedule_run(&run_id, spec, options)?;
        runs.insert(run_id, Arc::clone(&run));
        self.counters.runs_started.fetch_add(1, Ordering::Relaxed);
        drop(runs);
        // A run fully satisfied by its journal has nothing in flight
        // to keep it resident; release it right away. Streams hold
        // their own `Arc<RunState>`, so this never races a reader.
        self.maybe_archive(&run);
        Ok((run, false))
    }

    /// Builds a run: restores journaled cells, subscribes to other
    /// runs' in-flight cells, submits the rest to the pool as one
    /// fair-share queue.
    fn schedule_run(
        self: &Arc<Self>,
        run_id: &str,
        spec: &SweepSpec,
        options: SuiteOptions,
    ) -> Result<Arc<RunState>, String> {
        let cells: Vec<(&'static str, PolicyKind)> = options
            .benchmarks
            .iter()
            .flat_map(|&b| options.policies.iter().map(move |&p| (b, p)))
            .collect();
        let keys: Vec<String> = cells.iter().map(|&(b, p)| options.cell_key(b, p)).collect();
        std::fs::create_dir_all(&self.config.journal_dir)
            .map_err(|e| format!("journal dir: {e}"))?;
        let journal = Journal::open(self.config.journal_dir.join(format!("{run_id}.jsonl")))
            .map_err(|e| format!("journal: {e}"))?;
        if journal.payload(SPEC_KEY).is_none() {
            // The metrics slot records *how this server executes* —
            // trace mode, shards, jobs — so a journal read back later
            // can tell which path produced it. The payload must stay
            // exactly the spec (it hashes to the run id).
            let how = Value::object()
                .with("trace_mode", Value::str(self.config.trace_mode.label()))
                .with("shards", Value::u64(self.config.shards as u64))
                .with("jobs", Value::u64(self.config.jobs as u64));
            journal
                .record(SPEC_KEY, 0.0, how, spec.to_value())
                .map_err(|e| format!("journal: {e}"))?;
        }
        let restored_payloads: Vec<Option<Value>> =
            keys.iter().map(|k| journal.payload(k).cloned()).collect();

        // Which cells need execution (vs journal restore)? Decided
        // before the RunState exists so the counts are immutable.
        let pending: Vec<usize> = restored_payloads
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i))
            .collect();

        // Of the pending cells, claim the process-wide slot; only
        // newly claimed cells execute here.
        let mut claimed: Vec<usize> = Vec::new();
        let mut subscribed: Vec<(usize, Arc<CellSlot>)> = Vec::new();
        {
            let mut slots = self.cells.lock().expect("cell slots poisoned");
            for &i in &pending {
                match slots.get(&keys[i]) {
                    Some(slot) => subscribed.push((i, Arc::clone(slot))),
                    None => {
                        slots.insert(
                            keys[i].clone(),
                            Arc::new(CellSlot {
                                done: OnceLock::new(),
                                subscribers: Mutex::new(Vec::new()),
                            }),
                        );
                        claimed.push(i);
                    }
                }
            }
        }

        let run = Arc::new(RunState {
            run_id: run_id.to_owned(),
            options,
            keys,
            results: (0..cells.len()).map(|_| OnceLock::new()).collect(),
            filled: Mutex::new(0),
            complete: Condvar::new(),
            executed: claimed.len() as u64,
            restored: (cells.len() - claimed.len()) as u64,
            journal,
            journal_ok: AtomicBool::new(true),
        });

        // Journal restores: deliver immediately, no re-record.
        for (i, payload) in restored_payloads.into_iter().enumerate() {
            if let Some(payload) = payload {
                self.counters.cells_restored.fetch_add(1, Ordering::Relaxed);
                run.deliver(i, 0.0, Value::object(), payload, false);
            }
        }

        // Cross-run dedup: attach to slots other runs own. Under the
        // slot's subscriber lock, "complete" and "in flight" are the
        // only two cases.
        for (i, slot) in subscribed {
            self.counters.cells_deduped.fetch_add(1, Ordering::Relaxed);
            let subs = slot.subscribers.lock().expect("subscribers poisoned");
            if let Some((wall_ms, metrics, payload)) = slot.done.get() {
                drop(subs);
                run.deliver(i, *wall_ms, metrics.clone(), payload.clone(), true);
            } else {
                let mut subs = subs;
                subs.push((Arc::clone(&run), i));
            }
        }

        // Everything else executes on the shared pool as one queue.
        // In fused mode the claimed cells group by benchmark: one job
        // decodes the trace once and retires the whole group.
        let groups: Vec<Vec<usize>> = if self.config.trace_mode == TraceMode::Fused {
            let mut order: Vec<&'static str> = Vec::new();
            let mut by_bench: HashMap<&'static str, Vec<usize>> = HashMap::new();
            for &i in &claimed {
                by_bench
                    .entry(cells[i].0)
                    .or_insert_with(|| {
                        order.push(cells[i].0);
                        Vec::new()
                    })
                    .push(i);
            }
            order
                .into_iter()
                .map(|b| by_bench.remove(b).expect("benchmark grouped above"))
                .collect()
        } else {
            claimed.iter().map(|&i| vec![i]).collect()
        };
        let jobs: Vec<Job> = groups
            .into_iter()
            .map(|members| {
                let state = Arc::clone(self);
                let run = Arc::clone(&run);
                let group: Vec<(usize, &'static str, PolicyKind)> = members
                    .iter()
                    .map(|&i| (i, cells[i].0, cells[i].1))
                    .collect();
                Box::new(move || state.execute_group(&run, &group)) as Job
            })
            .collect();
        if !jobs.is_empty() {
            let pool = self.pool.lock().expect("pool poisoned");
            let result = pool
                .as_ref()
                .ok_or("server is shutting down")?
                .try_submit(jobs);
            if result.is_err() {
                // Not scheduled: release the claims so a later attempt
                // (or another run) can execute these cells.
                let mut slots = self.cells.lock().expect("cell slots poisoned");
                for &i in &claimed {
                    slots.remove(&run.keys[i]);
                }
                return Err(format!(
                    "server busy: {} active runs, retry later",
                    self.config.max_runs
                ));
            }
        }
        self.log(&format!(
            "run {run_id}: {} cells ({} to execute, {} restored)",
            run.cells(),
            run.executed,
            run.restored
        ));
        Ok(run)
    }

    /// Executes one claimed group on a pool worker and fans each
    /// member's result out to every subscribed run. Non-fused groups
    /// are singletons; fused groups are all claimed policy cells of
    /// one benchmark, stepped through a single trace decode. The
    /// group's wall time is split evenly across members, matching the
    /// sweep journal convention.
    fn execute_group(
        self: &Arc<Self>,
        run: &Arc<RunState>,
        members: &[(usize, &'static str, PolicyKind)],
    ) {
        let started = std::time::Instant::now();
        let outputs: Vec<(sim_engine::SimResult, Option<&'static str>)> =
            if self.config.trace_mode == TraceMode::Fused {
                let bench = members[0].1;
                let policies: Vec<PolicyKind> = members.iter().map(|&(_, _, p)| p).collect();
                run_fused_group(&run.options, bench, &policies, Some(&self.cache))
            } else {
                let &(_, bench, policy) = &members[0];
                vec![run_suite_cell(
                    &run.options,
                    bench,
                    policy,
                    self.config.trace_mode,
                    Some(&self.cache),
                    self.config.shards,
                )]
            };
        debug_assert_eq!(outputs.len(), members.len());
        let wall = started.elapsed() / members.len() as u32;
        let wall_ms = wall.as_secs_f64() * 1e3;
        for (&(index, _, _), (result, trace_source)) in members.iter().zip(outputs) {
            let mut metrics = codec::result_metrics(&result, wall);
            if let Some(source) = trace_source {
                metrics = metrics.with("trace_source", Value::str(source));
            }
            if let Some(mode) = result.exec_mode {
                metrics = metrics.with("exec_mode", Value::str(mode));
            }
            let payload = codec::encode_result(&result);
            self.counters.cells_executed.fetch_add(1, Ordering::Relaxed);
            self.publish(run, index, wall_ms, metrics, payload);
        }
    }

    /// Delivers one completed cell to its run and every run
    /// subscribed to its slot, then archives any run the delivery
    /// completed.
    fn publish(
        self: &Arc<Self>,
        run: &Arc<RunState>,
        index: usize,
        wall_ms: f64,
        metrics: Value,
        payload: Value,
    ) {
        let key = &run.keys[index];
        let slot = {
            let slots = self.cells.lock().expect("cell slots poisoned");
            slots.get(key).map(Arc::clone)
        };
        run.deliver(index, wall_ms, metrics.clone(), payload.clone(), true);
        let mut delivered: Vec<Arc<RunState>> = vec![Arc::clone(run)];
        if let Some(slot) = slot {
            // Publish under the subscriber lock so a run subscribing
            // right now either sees `done` or lands in the drain below.
            let mut subs = slot.subscribers.lock().expect("subscribers poisoned");
            let _ = slot.done.set((wall_ms, metrics.clone(), payload.clone()));
            let waiters = std::mem::take(&mut *subs);
            drop(subs);
            for (other, i) in waiters {
                other.deliver(i, wall_ms, metrics.clone(), payload.clone(), true);
                delivered.push(other);
            }
        }
        for r in delivered {
            self.maybe_archive(&r);
        }
    }

    /// Releases a completed run's in-memory cell results, keeping
    /// only an index entry: once every cell is delivered *and* the
    /// journal holds a complete record, the `RunState` leaves the run
    /// map (live streams keep their own `Arc`) and the run's
    /// completed dedup slots are dropped. A later submission or
    /// resume revives the run from its journal.
    fn maybe_archive(&self, run: &Arc<RunState>) {
        if !run.journal_ok.load(Ordering::SeqCst) {
            return;
        }
        {
            let filled = run.filled.lock().expect("run progress poisoned");
            if *filled < run.cells() {
                return;
            }
        }
        let removed = self.runs.lock().expect("runs poisoned").remove(&run.run_id);
        if removed.is_none() {
            return; // already archived by another delivery
        }
        self.archived
            .lock()
            .expect("archive index poisoned")
            .insert(run.run_id.clone(), run.cells() as u64);
        // Cell slots stay resident: they are the process-wide dedup
        // memo that lets an overlapping *future* spec restore shared
        // cells instead of re-executing them. Only the run's own state
        // (its result store and subscriber machinery) is released.
        self.counters.runs_archived.fetch_add(1, Ordering::Relaxed);
        self.log(&format!(
            "run {}: archived ({} cells sealed in journal)",
            run.run_id,
            run.cells()
        ));
    }

    /// The run for `run_id`, reviving it from its journal when it is
    /// not in memory (server restarted).
    fn run_for_id(self: &Arc<Self>, run_id: &str) -> Result<Arc<RunState>, String> {
        if let Some(run) = self.runs.lock().expect("runs poisoned").get(run_id) {
            return Ok(Arc::clone(run));
        }
        let path = self.config.journal_dir.join(format!("{run_id}.jsonl"));
        if !path.exists() {
            return Err(format!("unknown run {run_id:?}"));
        }
        let journal = Journal::open(&path).map_err(|e| format!("journal: {e}"))?;
        let spec_value = journal
            .payload(SPEC_KEY)
            .ok_or_else(|| format!("run {run_id:?} journal has no spec record"))?;
        let spec = SweepSpec::parse(spec_value)?;
        drop(journal); // reopened by the scheduling path
        let (run, _) = self.run_for_spec(&spec)?;
        if run.run_id != run_id {
            // The journal was renamed or its spec tampered with; the
            // resumed stream would not be the run the client acked.
            return Err(format!(
                "journal spec hashes to {}, not {run_id}",
                run.run_id
            ));
        }
        Ok(run)
    }

    /// The `stats` frame body.
    fn stats_value(&self) -> Value {
        let runs = self.runs.lock().expect("runs poisoned");
        let total_cells: u64 = runs.values().map(|r| r.cells() as u64).sum();
        let archived = self.archived.lock().expect("archive index poisoned");
        Value::object()
            .with("runs", Value::u64(runs.len() as u64))
            .with("runs_archived_index", Value::u64(archived.len() as u64))
            .with(
                "runs_started",
                Value::u64(self.counters.runs_started.load(Ordering::Relaxed)),
            )
            .with(
                "runs_joined",
                Value::u64(self.counters.runs_joined.load(Ordering::Relaxed)),
            )
            .with(
                "runs_archived",
                Value::u64(self.counters.runs_archived.load(Ordering::Relaxed)),
            )
            .with("cells", Value::u64(total_cells))
            .with(
                "cells_executed",
                Value::u64(self.counters.cells_executed.load(Ordering::Relaxed)),
            )
            .with(
                "cells_deduped",
                Value::u64(self.counters.cells_deduped.load(Ordering::Relaxed)),
            )
            .with(
                "cells_restored",
                Value::u64(self.counters.cells_restored.load(Ordering::Relaxed)),
            )
            .with(
                "connections",
                Value::u64(self.conns.load(Ordering::Relaxed) as u64),
            )
            .with("jobs", Value::u64(self.config.jobs as u64))
            .with("trace_cache", self.cache.stats().to_value())
    }
}

/// Writes one frame line and flushes it.
fn send(out: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let line = frame.to_value().to_json();
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Streams a run's cells `[from, cells)` in order, then `done`.
fn stream_run(out: &mut TcpStream, run: &RunState, from: u64, joined: bool) -> std::io::Result<()> {
    let cells = run.cells() as u64;
    send(
        out,
        &Frame::Hello {
            run_id: run.run_id.clone(),
            cells,
            from: from.min(cells),
            joined,
        },
    )?;
    for i in from.min(cells)..cells {
        let payload = run.wait_cell(i as usize);
        send(
            out,
            &Frame::Cell {
                index: i,
                key: run.keys[i as usize].clone(),
                payload,
            },
        )?;
    }
    send(
        out,
        &Frame::Done {
            run_id: run.run_id.clone(),
            cells,
            executed: run.executed,
            restored: run.restored,
        },
    )
}

/// Handles one connection end to end.
fn handle_conn(state: &Arc<ServerState>, mut stream: TcpStream) {
    // A connected-but-silent client must not pin a connection slot
    // forever; streaming itself is unaffected (write path).
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut line = String::new();
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    if reader.read_line(&mut line).is_err() {
        let _ = send(
            &mut stream,
            &Frame::Error {
                message: "request timed out".to_owned(),
            },
        );
        return;
    }
    let fail = |stream: &mut TcpStream, message: String| {
        let _ = send(stream, &Frame::Error { message });
    };
    let request = match Request::parse(line.trim_end()) {
        Ok(r) => r,
        Err(e) => return fail(&mut stream, e),
    };
    if state.draining.load(Ordering::SeqCst) && !matches!(request, Request::Shutdown) {
        return fail(&mut stream, "server is shutting down".to_owned());
    }
    let outcome = match request {
        Request::Submit(spec) => match state.run_for_spec(&spec) {
            Ok((run, joined)) => stream_run(&mut stream, &run, 0, joined),
            Err(e) => return fail(&mut stream, e),
        },
        Request::Resume { run_id, ack } => match state.run_for_id(&run_id) {
            Ok(run) => stream_run(&mut stream, &run, ack, true),
            Err(e) => return fail(&mut stream, e),
        },
        Request::Stats => send(&mut stream, &Frame::Stats(state.stats_value())),
        Request::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            send(&mut stream, &Frame::Bye)
        }
    };
    // A write error here means the client went away mid-stream; its
    // run keeps executing and its journal keeps growing, so a resume
    // picks up where it left off. Nothing to do.
    let _ = outcome;
}

/// A running (or ready-to-run) sweep server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    addr: SocketAddr,
}

impl Server {
    /// Binds the listener and builds the shared execution state. The
    /// accept loop starts when [`run`](Server::run) is called.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        std::fs::create_dir_all(&config.journal_dir)?;
        let state = Arc::new(ServerState {
            pool: Mutex::new(Some(SharedPool::new(
                config.effective_jobs(),
                config.max_runs,
            ))),
            cache: Arc::new(TraceLru::new(config.trace_cache_mb)),
            runs: Mutex::new(HashMap::new()),
            cells: Mutex::new(HashMap::new()),
            archived: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            conns: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            config,
        });
        Ok(Server {
            listener,
            state,
            addr,
        })
    }

    /// The bound address (the actual port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts and serves connections until a `shutdown` request or
    /// SIGINT/SIGTERM, then drains: queued and in-flight cells finish,
    /// open streams complete, the pool joins.
    pub fn run(self) -> std::io::Result<()> {
        let flag = interrupt::install();
        let state = Arc::clone(&self.state);
        state.log(&format!(
            "listening on {} ({} jobs, cache {} MiB, journals in {})",
            self.addr,
            state.config.jobs,
            state.config.trace_cache_mb,
            state.config.journal_dir.display()
        ));
        // The accept loop blocks in `accept`; this watchdog turns the
        // interrupt flag (or a protocol-initiated drain) into one
        // throwaway loopback connection so the loop observes it.
        let watchdog = {
            let state = Arc::clone(&state);
            let addr = self.addr;
            std::thread::spawn(move || loop {
                if interrupt::interrupted() {
                    state.draining.store(true, Ordering::SeqCst);
                }
                if state.draining.load(Ordering::SeqCst) {
                    let _ = TcpStream::connect(addr);
                    return;
                }
                std::thread::sleep(Duration::from_millis(25));
            })
        };
        let _ = flag; // watchdog polls the module-level state
        for incoming in self.listener.incoming() {
            if state.draining.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            if state.conns.fetch_add(1, Ordering::SeqCst) >= state.config.max_conns {
                state.conns.fetch_sub(1, Ordering::SeqCst);
                let mut stream = stream;
                let _ = send(
                    &mut stream,
                    &Frame::Error {
                        message: "connection limit reached".to_owned(),
                    },
                );
                continue;
            }
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                handle_conn(&state, stream);
                state.conns.fetch_sub(1, Ordering::SeqCst);
            });
        }
        let _ = watchdog.join();
        state.log("draining: waiting for in-flight cells");
        let pool = state.pool.lock().expect("pool poisoned").take();
        if let Some(pool) = pool {
            pool.drain();
            pool.shutdown();
        }
        // Streams only wait on cells, which are all delivered now, so
        // the remaining connection threads finish on their own.
        while state.conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        state.log("drained, bye");
        Ok(())
    }
}
