//! Client side of the serve protocol: one request per connection,
//! streamed frames back.
//!
//! Used by `slip submit` and by the integration/conformance tests; the
//! protocol is simple enough that `nc` works too, but this wrapper
//! gives typed frames and sane errors.

use crate::protocol::{Frame, Request, SweepSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use sweep_runner::json::Value;

/// Converts a protocol-level failure into `io::Error`.
fn proto_err(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// One request/response connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and sends `request`; response frames are then read with
    /// [`next_frame`](Client::next_frame).
    pub fn request(addr: impl ToSocketAddrs, request: &Request) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client { reader, writer };
        let line = request.to_value().to_json();
        client.writer.write_all(line.as_bytes())?;
        client.writer.write_all(b"\n")?;
        client.writer.flush()?;
        Ok(client)
    }

    /// Reads the next frame; `Err` on EOF, garbage, or an in-band
    /// `error` frame (surfaced as `ErrorKind::Other` with the server's
    /// message).
    pub fn next_frame(&mut self) -> std::io::Result<Frame> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        match Frame::parse(line.trim_end()) {
            Ok(Frame::Error { message }) => {
                Err(std::io::Error::other(format!("server error: {message}")))
            }
            Ok(frame) => Ok(frame),
            Err(e) => Err(proto_err(e)),
        }
    }
}

/// Stream preamble, as returned by [`submit`]/[`resume`].
#[derive(Debug)]
pub struct RunStream {
    /// The run id (keep it: it is the resume token).
    pub run_id: String,
    /// Total cells in the run.
    pub cells: u64,
    /// Index of the first cell this stream will deliver.
    pub from: u64,
    /// Whether the request joined an already-running sweep.
    pub joined: bool,
    client: Client,
    done: Option<RunDone>,
}

/// Stream trailer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDone {
    /// Cells the run executed on the pool.
    pub executed: u64,
    /// Cells restored from journal or deduplicated against other runs.
    pub restored: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl RunStream {
    /// The next `(index, key, payload)` cell, or `None` once the `done`
    /// frame arrives (after which [`done`](RunStream::done) is `Some`).
    pub fn next_cell(&mut self) -> std::io::Result<Option<(u64, String, Value)>> {
        if self.done.is_some() {
            return Ok(None);
        }
        match self.client.next_frame()? {
            Frame::Cell {
                index,
                key,
                payload,
            } => Ok(Some((index, key, payload))),
            Frame::Done {
                executed, restored, ..
            } => {
                self.done = Some(RunDone { executed, restored });
                Ok(None)
            }
            other => Err(proto_err(format!("unexpected frame {other:?}"))),
        }
    }

    /// The trailer, once the stream has ended.
    pub fn done(&self) -> Option<&RunDone> {
        self.done.as_ref()
    }

    /// Drains the remaining cells into `(index, key, payload)` tuples.
    pub fn collect_cells(&mut self) -> std::io::Result<Vec<(u64, String, Value)>> {
        let mut cells = Vec::new();
        while let Some(cell) = self.next_cell()? {
            cells.push(cell);
        }
        Ok(cells)
    }
}

/// Reads the stream preamble shared by submit and resume.
fn open_stream(mut client: Client) -> std::io::Result<RunStream> {
    match client.next_frame()? {
        Frame::Hello {
            run_id,
            cells,
            from,
            joined,
        } => Ok(RunStream {
            run_id,
            cells,
            from,
            joined,
            client,
            done: None,
        }),
        other => Err(proto_err(format!("expected hello, got {other:?}"))),
    }
}

/// Submits a sweep and opens its cell stream from the beginning.
pub fn submit(addr: impl ToSocketAddrs, spec: &SweepSpec) -> std::io::Result<RunStream> {
    open_stream(Client::request(addr, &Request::Submit(spec.clone()))?)
}

/// Re-attaches to `run_id`, streaming cells from index `ack`.
pub fn resume(addr: impl ToSocketAddrs, run_id: &str, ack: u64) -> std::io::Result<RunStream> {
    open_stream(Client::request(
        addr,
        &Request::Resume {
            run_id: run_id.to_owned(),
            ack,
        },
    )?)
}

/// Fetches the server's stats frame.
pub fn stats(addr: impl ToSocketAddrs) -> std::io::Result<Value> {
    match Client::request(addr, &Request::Stats)?.next_frame()? {
        Frame::Stats(v) => Ok(v),
        other => Err(proto_err(format!("expected stats, got {other:?}"))),
    }
}

/// Asks the server to drain and stop; returns once acknowledged.
pub fn shutdown(addr: impl ToSocketAddrs) -> std::io::Result<()> {
    match Client::request(addr, &Request::Shutdown)?.next_frame()? {
        Frame::Bye => Ok(()),
        other => Err(proto_err(format!("expected bye, got {other:?}"))),
    }
}
