//! The `slip serve` wire protocol: JSONL frames over TCP.
//!
//! One connection carries one request (a single JSON object line,
//! client → server) followed by a stream of response frames (one JSON
//! object per line, server → client). The codec is
//! [`sweep_runner::json`], so framing inherits its guarantees: exact
//! `u64` round-trips and deterministic serialization — the bytes a
//! client receives for a cell are byte-identical to the payload line an
//! offline `slip sweep` journals for the same cell.
//!
//! Malformed input is a value, not a panic: both [`Request::parse`] and
//! [`Frame::parse`] return `Err` on truncated, foreign, or
//! wrongly-typed frames, and the server answers with an
//! [`Frame::Error`] rather than dying.
//!
//! ## Requests
//!
//! ```json
//! {"op":"submit","spec":{"benchmarks":["gcc"],"policies":["SLIP"],"accesses":30000,"warmup":0}}
//! {"op":"resume","run_id":"r-9a1b7c33","ack":3}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! ## Response frames
//!
//! ```json
//! {"frame":"hello","run_id":"r-9a1b7c33","cells":10,"from":3,"joined":true}
//! {"frame":"cell","index":3,"key":"gcc/SLIP@acc=30000,...","payload":{...}}
//! {"frame":"done","run_id":"r-9a1b7c33","cells":10,"executed":7,"restored":3}
//! {"frame":"stats", ...server counters...}
//! {"frame":"error","message":"unknown workload \"gc\""}
//! {"frame":"bye"}
//! ```

use energy_model::HierarchySpec;
use sim_engine::config::PolicyKind;
use sim_engine::experiments::SuiteOptions;
use sweep_runner::json::Value;

/// FNV-1a 64-bit hash; tiny, stable, and collision-resistant enough to
/// name runs (the canonical spec text is the real identity — the hash
/// only keys the in-memory map and the journal filename).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a client wants swept. The wire shape mirrors the `slip sweep`
/// CLI: named benchmarks, named policies (baseline is always added),
/// measured accesses, unmeasured warmup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Benchmark names; empty means the paper's full set.
    pub benchmarks: Vec<String>,
    /// Policy labels; empty means all policies.
    pub policies: Vec<String>,
    /// Measured accesses per benchmark.
    pub accesses: u64,
    /// Unmeasured warmup accesses.
    pub warmup: u64,
    /// Hierarchy spec: a built-in node name (`45nm`, `22nm`,
    /// `stt-llc`) or full spec *text* (the server never reads client
    /// file paths); `None` runs the compiled-in 45 nm configuration.
    pub topology: Option<String>,
}

impl SweepSpec {
    /// Resolves [`SweepSpec::topology`] into a parsed hierarchy spec.
    /// A value containing a newline is treated as inline spec text;
    /// anything else must name a built-in node.
    pub fn topology_spec(&self) -> Result<Option<HierarchySpec>, String> {
        let Some(arg) = &self.topology else {
            return Ok(None);
        };
        if arg.contains('\n') {
            return HierarchySpec::parse(arg)
                .map(Some)
                .map_err(|e| format!("spec.topology: {e}"));
        }
        HierarchySpec::builtin(arg).map(Some).ok_or_else(|| {
            format!("spec.topology: unknown node {arg:?} (send spec text for custom hierarchies)")
        })
    }
    /// Resolves the spec against the workload/policy registries,
    /// producing the identical [`SuiteOptions`] an offline `slip sweep`
    /// of the same parameters would run. Unknown names are an error —
    /// never a silent skip.
    pub fn suite_options(&self) -> Result<SuiteOptions, String> {
        let benchmarks: Vec<&'static str> = if self.benchmarks.is_empty() {
            workloads::BENCHMARK_NAMES.to_vec()
        } else {
            self.benchmarks
                .iter()
                .map(|n| {
                    workloads::BENCHMARK_NAMES
                        .iter()
                        .copied()
                        .find(|b| b == n)
                        .ok_or_else(|| format!("unknown workload {n:?}"))
                })
                .collect::<Result<_, _>>()?
        };
        let mut options = SuiteOptions::paper_full()
            .with_benchmarks(&benchmarks)
            .with_accesses(self.accesses)
            .with_warmup(self.warmup);
        if let Some(spec) = self.topology_spec()? {
            options = options.with_topology(spec);
        }
        if !self.policies.is_empty() {
            let policies: Vec<PolicyKind> = self
                .policies
                .iter()
                .map(|p| PolicyKind::parse(p).ok_or_else(|| format!("unknown policy {p:?}")))
                .collect::<Result<_, _>>()?;
            options = options.with_policies(&policies);
        }
        Ok(options)
    }

    /// The canonical form two textually different but equivalent specs
    /// share: resolved benchmark names and policy labels in sweep
    /// order. Two clients submitting equivalent specs therefore hash to
    /// the same run and share one execution.
    pub fn canonical(&self) -> Result<Value, String> {
        let options = self.suite_options()?;
        let mut canonical = Value::object()
            .with(
                "benchmarks",
                Value::Array(options.benchmarks.iter().map(|b| Value::str(*b)).collect()),
            )
            .with(
                "policies",
                Value::Array(
                    options
                        .policies
                        .iter()
                        .map(|p| Value::str(p.label()))
                        .collect(),
                ),
            )
            .with("accesses", Value::u64(self.accesses))
            .with("warmup", Value::u64(self.warmup));
        if let Some(spec) = self.topology_spec()? {
            // Name plus canonical-text fingerprint: a built-in name and
            // the identical inline text canonicalize differently by
            // name, but any two textual variants of one hierarchy (one
            // sent as text, one re-sent with different comments or
            // whitespace) share the fingerprint and therefore the run.
            canonical = canonical.with(
                "topology",
                Value::str(format!("{}#{:016x}", spec.name, spec.fingerprint())),
            );
        }
        Ok(canonical)
    }

    /// The run id: `r-` plus the FNV-1a hash of the canonical spec.
    pub fn run_id(&self) -> Result<String, String> {
        Ok(format!(
            "r-{:016x}",
            fnv1a(self.canonical()?.to_json().as_bytes())
        ))
    }

    /// Wire encoding.
    pub fn to_value(&self) -> Value {
        let out = Value::object()
            .with(
                "benchmarks",
                Value::Array(
                    self.benchmarks
                        .iter()
                        .map(|s| Value::str(s.as_str()))
                        .collect(),
                ),
            )
            .with(
                "policies",
                Value::Array(
                    self.policies
                        .iter()
                        .map(|s| Value::str(s.as_str()))
                        .collect(),
                ),
            )
            .with("accesses", Value::u64(self.accesses))
            .with("warmup", Value::u64(self.warmup));
        match &self.topology {
            Some(t) => out.with("topology", Value::str(t.as_str())),
            None => out,
        }
    }

    /// Wire decoding; missing or wrongly-typed fields are an error.
    pub fn parse(v: &Value) -> Result<SweepSpec, String> {
        let strings = |key: &str| -> Result<Vec<String>, String> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(arr) => arr
                    .as_array()
                    .ok_or_else(|| format!("spec.{key} must be an array"))?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| format!("spec.{key} entries must be strings"))
                    })
                    .collect(),
            }
        };
        Ok(SweepSpec {
            benchmarks: strings("benchmarks")?,
            policies: strings("policies")?,
            accesses: v
                .get("accesses")
                .and_then(Value::as_u64)
                .ok_or("spec.accesses must be a u64")?,
            warmup: v.get("warmup").and_then(Value::as_u64).unwrap_or(0),
            // Absent means the default topology — specs journaled
            // before the field existed keep parsing.
            topology: match v.get("topology") {
                None => None,
                Some(t) => Some(
                    t.as_str()
                        .map(str::to_owned)
                        .ok_or("spec.topology must be a string")?,
                ),
            },
        })
    }
}

/// A client request — exactly one per connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or join) the sweep described by the spec and stream every
    /// cell from the beginning.
    Submit(SweepSpec),
    /// Re-attach to a run and stream its cells starting at index `ack`
    /// (the count of cells the client already holds).
    Resume {
        /// Run id from the original hello frame.
        run_id: String,
        /// Cells already received; the stream restarts there.
        ack: u64,
    },
    /// Report server counters and trace-cache statistics.
    Stats,
    /// Drain and stop the server.
    Shutdown,
}

impl Request {
    /// Wire encoding.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Submit(spec) => Value::object()
                .with("op", Value::str("submit"))
                .with("spec", spec.to_value()),
            Request::Resume { run_id, ack } => Value::object()
                .with("op", Value::str("resume"))
                .with("run_id", Value::str(run_id))
                .with("ack", Value::u64(*ack)),
            Request::Stats => Value::object().with("op", Value::str("stats")),
            Request::Shutdown => Value::object().with("op", Value::str("shutdown")),
        }
    }

    /// Parses one request line. Truncated or malformed input is an
    /// `Err`, never a panic.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
        match v.get("op").and_then(Value::as_str) {
            Some("submit") => Ok(Request::Submit(SweepSpec::parse(
                v.get("spec").ok_or("submit needs a spec")?,
            )?)),
            Some("resume") => Ok(Request::Resume {
                run_id: v
                    .get("run_id")
                    .and_then(Value::as_str)
                    .ok_or("resume needs a run_id")?
                    .to_owned(),
                ack: v.get("ack").and_then(Value::as_u64).unwrap_or(0),
            }),
            Some("stats") => Ok(Request::Stats),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(op) => Err(format!("unknown op {op:?}")),
            None => Err("request has no op".to_owned()),
        }
    }
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Stream preamble.
    Hello {
        /// The run's id (reconnect with it to resume).
        run_id: String,
        /// Total cells in the run.
        cells: u64,
        /// First streamed cell index (the client's ack on resume).
        from: u64,
        /// `true` when this request attached to a run another client
        /// had already started (run-level dedup).
        joined: bool,
    },
    /// One completed cell, in cell order. `payload` is the bit-exact
    /// journal payload (`sim_engine::codec::encode_result`).
    Cell {
        /// Cell index within the run, `0..cells`.
        index: u64,
        /// The cell's journal key.
        key: String,
        /// Encoded `SimResult`.
        payload: Value,
    },
    /// Stream end: every cell has been delivered.
    Done {
        /// The run's id.
        run_id: String,
        /// Total cells in the run.
        cells: u64,
        /// Cells this run executed on the pool.
        executed: u64,
        /// Cells restored from the run's journal or another run's
        /// in-flight execution instead of executing (dedup).
        restored: u64,
    },
    /// Server counters (shape owned by the server).
    Stats(Value),
    /// Request failed; the connection closes after this frame.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledges a shutdown request.
    Bye,
}

impl Frame {
    /// Wire encoding.
    pub fn to_value(&self) -> Value {
        match self {
            Frame::Hello {
                run_id,
                cells,
                from,
                joined,
            } => Value::object()
                .with("frame", Value::str("hello"))
                .with("run_id", Value::str(run_id))
                .with("cells", Value::u64(*cells))
                .with("from", Value::u64(*from))
                .with("joined", Value::Bool(*joined)),
            Frame::Cell {
                index,
                key,
                payload,
            } => Value::object()
                .with("frame", Value::str("cell"))
                .with("index", Value::u64(*index))
                .with("key", Value::str(key))
                .with("payload", payload.clone()),
            Frame::Done {
                run_id,
                cells,
                executed,
                restored,
            } => Value::object()
                .with("frame", Value::str("done"))
                .with("run_id", Value::str(run_id))
                .with("cells", Value::u64(*cells))
                .with("executed", Value::u64(*executed))
                .with("restored", Value::u64(*restored)),
            Frame::Stats(v) => {
                let mut out = Value::object().with("frame", Value::str("stats"));
                if let Value::Object(pairs) = v {
                    // Skip the tag itself so parse → to_value is stable.
                    for (k, val) in pairs.iter().filter(|(k, _)| k != "frame") {
                        out = out.with(k, val.clone());
                    }
                }
                out
            }
            Frame::Error { message } => Value::object()
                .with("frame", Value::str("error"))
                .with("message", Value::str(message)),
            Frame::Bye => Value::object().with("frame", Value::str("bye")),
        }
    }

    /// Parses one response line. Truncated or malformed input is an
    /// `Err`, never a panic.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let v = Value::parse(line).map_err(|e| format!("bad frame JSON: {e}"))?;
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("frame field {key} must be a u64"))
        };
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("frame field {key} must be a string"))
        };
        match v.get("frame").and_then(Value::as_str) {
            Some("hello") => Ok(Frame::Hello {
                run_id: s("run_id")?,
                cells: u("cells")?,
                from: u("from")?,
                joined: v.get("joined").and_then(Value::as_bool).unwrap_or(false),
            }),
            Some("cell") => Ok(Frame::Cell {
                index: u("index")?,
                key: s("key")?,
                payload: v.get("payload").ok_or("cell frame has no payload")?.clone(),
            }),
            Some("done") => Ok(Frame::Done {
                run_id: s("run_id")?,
                cells: u("cells")?,
                executed: u("executed")?,
                restored: u("restored")?,
            }),
            Some("stats") => Ok(Frame::Stats(v)),
            Some("error") => Ok(Frame::Error {
                message: s("message")?,
            }),
            Some("bye") => Ok(Frame::Bye),
            Some(f) => Err(format!("unknown frame {f:?}")),
            None => Err("line has no frame tag".to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64: the workspace's standard seeded generator for
    /// property tests (no external proptest crate offline).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Adversarial strings: quotes, backslashes, control bytes,
        /// multi-byte unicode, embedded braces and newline-escapes.
        fn string(&mut self) -> String {
            const POOL: &[&str] = &[
                "\"",
                "\\",
                "\u{0}",
                "\u{1f}",
                "\n",
                "\t",
                "\r",
                "{",
                "}",
                "[",
                "]",
                ":",
                ",",
                "é",
                "日本語",
                "🦀",
                "\u{7f}",
                "a",
                " ",
                "\u{2028}",
                "end\\\"quote",
            ];
            let len = (self.next() % 12) as usize;
            (0..len)
                .map(|_| POOL[(self.next() as usize) % POOL.len()])
                .collect()
        }

        /// u64 edge values and random values.
        fn u64(&mut self) -> u64 {
            const EDGES: [u64; 8] = [
                0,
                1,
                (1 << 53) - 1,
                1 << 53,
                (1 << 53) + 1,
                u64::MAX - 1,
                u64::MAX,
                42,
            ];
            if self.next().is_multiple_of(2) {
                EDGES[(self.next() as usize) % EDGES.len()]
            } else {
                self.next()
            }
        }
    }

    fn arbitrary_spec(rng: &mut Rng) -> SweepSpec {
        let names = |rng: &mut Rng| {
            (0..(rng.next() % 4))
                .map(|_| rng.string())
                .collect::<Vec<_>>()
        };
        SweepSpec {
            benchmarks: names(rng),
            policies: names(rng),
            accesses: rng.u64(),
            warmup: rng.u64(),
            topology: match rng.next() % 3 {
                0 => None,
                1 => Some("stt-llc".to_owned()),
                _ => Some(rng.string()),
            },
        }
    }

    #[test]
    fn requests_round_trip_for_adversarial_inputs() {
        let mut rng = Rng(0x511b);
        for i in 0..500 {
            let req = match rng.next() % 4 {
                0 => Request::Submit(arbitrary_spec(&mut rng)),
                1 => Request::Resume {
                    run_id: rng.string(),
                    ack: rng.u64(),
                },
                2 => Request::Stats,
                _ => Request::Shutdown,
            };
            let line = req.to_value().to_json();
            let back = Request::parse(&line).unwrap_or_else(|e| panic!("iter {i}: {e}\n{line}"));
            assert_eq!(back, req, "iter {i}: {line}");
        }
    }

    #[test]
    fn frames_round_trip_for_adversarial_inputs() {
        let mut rng = Rng(0xf00d);
        for i in 0..500 {
            let frame = match rng.next() % 6 {
                0 => Frame::Hello {
                    run_id: rng.string(),
                    cells: rng.u64(),
                    from: rng.u64(),
                    joined: rng.next().is_multiple_of(2),
                },
                1 => Frame::Cell {
                    index: rng.u64(),
                    key: rng.string(),
                    payload: Value::object()
                        .with("energy", Value::u64(rng.u64()))
                        .with("tag", Value::str(rng.string())),
                },
                2 => Frame::Done {
                    run_id: rng.string(),
                    cells: rng.u64(),
                    executed: rng.u64(),
                    restored: rng.u64(),
                },
                3 => Frame::Error {
                    message: rng.string(),
                },
                4 => Frame::Bye,
                _ => Frame::Stats(Value::object().with("runs", Value::u64(rng.u64()))),
            };
            let line = frame.to_value().to_json();
            let back = Frame::parse(&line).unwrap_or_else(|e| panic!("iter {i}: {e}\n{line}"));
            // Stats frames carry their whole object through; compare by
            // re-encoding, which is deterministic.
            assert_eq!(back.to_value().to_json(), line, "iter {i}");
            if !matches!(frame, Frame::Stats(_)) {
                assert_eq!(back, frame, "iter {i}: {line}");
            }
        }
    }

    #[test]
    fn truncated_frames_reject_without_panicking() {
        let mut rng = Rng(0xdead);
        let spec = SweepSpec {
            benchmarks: vec!["gcc".into(), rng.string()],
            policies: vec!["SLIP".into()],
            accesses: u64::MAX,
            warmup: (1 << 53) + 1,
            topology: Some("node x\nwire \"quoted\n".into()),
        };
        let lines = [
            Request::Submit(spec).to_value().to_json(),
            Frame::Cell {
                index: 3,
                key: "gcc/SLIP@acc=1,\"quoted\"".into(),
                payload: Value::object().with("x", Value::u64(u64::MAX)),
            }
            .to_value()
            .to_json(),
        ];
        for line in &lines {
            // Every strict prefix must parse to Err, never panic. (Byte
            // prefixes may split UTF-8; slice on char boundaries.)
            let cuts: Vec<usize> = line.char_indices().map(|(i, _)| i).collect();
            for &cut in &cuts[..cuts.len()] {
                if cut == 0 {
                    continue;
                }
                let prefix = &line[..cut];
                assert!(Request::parse(prefix).is_err(), "prefix parsed: {prefix}");
                assert!(Frame::parse(prefix).is_err(), "prefix parsed: {prefix}");
            }
        }
        // Wrong types and missing fields are errors too.
        for bad in [
            "{\"op\":\"submit\"}",
            "{\"op\":\"submit\",\"spec\":{\"accesses\":\"many\"}}",
            "{\"op\":\"resume\"}",
            "{\"op\":17}",
            "{}",
            "null",
            "[1,2,3]",
            "{\"frame\":\"cell\",\"index\":-1,\"key\":\"k\",\"payload\":{}}",
            "{\"frame\":\"cell\",\"index\":1}",
            "{\"frame\":\"hello\"}",
        ] {
            assert!(
                Request::parse(bad).is_err() || Frame::parse(bad).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn equivalent_specs_share_a_run_id() {
        let a = SweepSpec {
            benchmarks: vec!["gcc".into()],
            policies: vec!["SLIP".into()],
            accesses: 1000,
            warmup: 0,
            topology: None,
        };
        // Different text, same canonical run: baseline is implied, and
        // policy parsing is case-insensitive.
        let b = SweepSpec {
            benchmarks: vec!["gcc".into()],
            policies: vec!["baseline".into(), "slip".into()],
            accesses: 1000,
            warmup: 0,
            topology: None,
        };
        assert_eq!(a.run_id().unwrap(), b.run_id().unwrap());
        let c = SweepSpec {
            accesses: 1001,
            ..a.clone()
        };
        assert_ne!(a.run_id().unwrap(), c.run_id().unwrap());
        // Unknown names surface as errors, not silently empty runs.
        let bad = SweepSpec {
            benchmarks: vec!["not-a-benchmark".into()],
            policies: vec![],
            accesses: 1,
            warmup: 0,
            topology: None,
        };
        assert!(bad.run_id().is_err());
    }

    #[test]
    fn topology_enters_the_run_identity() {
        use energy_model::spec::BUILTIN_STT_LLC;
        use energy_model::HierarchySpec;
        let base = SweepSpec {
            benchmarks: vec!["gcc".into()],
            policies: vec!["SLIP".into()],
            accesses: 1000,
            warmup: 0,
            topology: None,
        };
        let named = SweepSpec {
            topology: Some("stt-llc".into()),
            ..base.clone()
        };
        // A topology changes the run id; different nodes never collide.
        assert_ne!(base.run_id().unwrap(), named.run_id().unwrap());
        let other = SweepSpec {
            topology: Some("22nm".into()),
            ..base.clone()
        };
        assert_ne!(named.run_id().unwrap(), other.run_id().unwrap());
        // The same hierarchy sent as a built-in name and as inline spec
        // text deduplicates to one run: the canonical identity is
        // name#fingerprint of the parsed spec, not the raw argument.
        let inline = SweepSpec {
            topology: Some(BUILTIN_STT_LLC.to_owned()),
            ..base.clone()
        };
        assert_eq!(named.run_id().unwrap(), inline.run_id().unwrap());
        // Equivalent text with extra comments fingerprints identically.
        let commented = SweepSpec {
            topology: Some(format!("# leading comment\n{BUILTIN_STT_LLC}")),
            ..base.clone()
        };
        assert_eq!(named.run_id().unwrap(), commented.run_id().unwrap());
        // Unknown node names and malformed inline text are errors.
        let unknown = SweepSpec {
            topology: Some("90nm".into()),
            ..base.clone()
        };
        assert!(unknown.run_id().unwrap_err().contains("unknown node"));
        let malformed = SweepSpec {
            topology: Some("node bad\nwire 0.1\n".into()),
            ..base.clone()
        };
        assert!(malformed.run_id().unwrap_err().contains("line"));
        // The suite options actually carry the spec's technology.
        let options = named.suite_options().unwrap();
        assert_eq!(options.tech.name, "stt-llc");
        assert_eq!(
            HierarchySpec::builtin("stt-llc").unwrap().fingerprint(),
            options.topology.as_ref().unwrap().fingerprint()
        );
    }
}
