//! `slip serve` — a long-running, multi-tenant sweep service.
//!
//! This crate turns the batch sweep machinery ([`sim_engine`] +
//! [`sweep_runner`]) into a daemon (DESIGN.md §11):
//!
//! * **Protocol** ([`protocol`]): newline-delimited JSON over TCP,
//!   built on `sweep_runner::json`. One request line per connection;
//!   the server answers with a stream of frames (`hello`, `cell`…,
//!   `done`). No external dependencies, `nc`-friendly.
//! * **Server** ([`server`]): a shared [`sweep_runner::pool::SharedPool`]
//!   schedules cells round-robin across concurrent runs, so a short
//!   sweep is not starved by a long one. Identical specs join the same
//!   run (run-level dedup, keyed by a canonical-spec fingerprint), and
//!   overlapping specs share per-cell results (cell-level dedup).
//!   Traces are shared server-wide through a byte-budgeted
//!   [`sim_engine::trace_cache::TraceLru`].
//! * **Resume**: every run persists through the standard sweep
//!   [`sweep_runner::journal::Journal`]; a disconnected client
//!   reconnects with its run id and an acked cell index and receives
//!   exactly the cells it missed. The journal also revives runs across
//!   server restarts.
//! * **Client** ([`client`]): the typed counterpart used by
//!   `slip submit` and the integration tests.
//!
//! Cells are executed by the same [`sim_engine::experiments::run_suite_cell`]
//! path as offline `slip sweep`, and payloads are encoded with the same
//! codec, so server-streamed results are bit-identical to a one-shot
//! sweep of the same spec.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{resume, shutdown, stats, submit, RunDone, RunStream};
pub use protocol::{Frame, Request, SweepSpec};
pub use server::{Server, ServerConfig};
