//! Elementary access patterns with controlled reuse-distance behavior.
//!
//! Every workload is a weighted mixture of four elementary patterns,
//! each of which pins the reuse distances of its lines:
//!
//! * [`PatternKind::Loop`] — repeated sequential sweep over a working
//!   set: every line's reuse distance ≈ the working-set size. Fits a
//!   cache level iff the working set does (the paper's "stream fits
//!   within 64 KB" case of Figure 3).
//! * [`PatternKind::Scan`] — a long streaming pass over a region far
//!   larger than the LLC: reuse distances beyond every cache size, the
//!   classic NR = 0 lines of Figure 1.
//! * [`PatternKind::Random`] — uniform random lines in a region:
//!   reuse distances geometrically spread around the region size
//!   (the `rperm[rorig[i]]` accesses of Figure 3).
//! * [`PatternKind::Chase`] — a pointer chase over a full-period
//!   permutation cycle of a region: like `Loop` in reuse distance but
//!   with no spatial order.

use cache_sim::addr::LINE_BYTES;
use cache_sim::rng::SplitMix64;
use cache_sim::{Access, AccessKind};

/// The kind and size of an elementary pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Sequential sweep over `region_kb`, restarting at the end.
    Loop {
        /// Working-set size in KiB.
        region_kb: u64,
    },
    /// Streaming scan over `region_kb` (choose ≫ LLC so lines never
    /// reuse within cache-visible distances).
    Scan {
        /// Stream footprint in KiB before wrapping.
        region_kb: u64,
    },
    /// Uniform-random lines within `region_kb`.
    Random {
        /// Region size in KiB.
        region_kb: u64,
    },
    /// Pointer chase over a full-period permutation of `region_kb`.
    Chase {
        /// Region size in KiB.
        region_kb: u64,
    },
}

impl PatternKind {
    /// Footprint of the pattern in lines.
    pub fn region_lines(self) -> u64 {
        let kb = match self {
            PatternKind::Loop { region_kb }
            | PatternKind::Scan { region_kb }
            | PatternKind::Random { region_kb }
            | PatternKind::Chase { region_kb } => region_kb,
        };
        (kb * 1024 / LINE_BYTES).max(1)
    }
}

/// One pattern inside a mixture: kind, mixture weight, store ratio,
/// and burst length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternSpec {
    /// The elementary pattern.
    pub kind: PatternKind,
    /// Relative share of the phase's accesses this pattern receives.
    pub weight: u32,
    /// Fraction of this pattern's accesses that are stores.
    pub write_fraction: f64,
    /// Consecutive accesses issued per scheduling turn. Real programs
    /// execute in bursts (a loop nest runs for a while before control
    /// moves on), which is what lets a loop's reuse distance be
    /// dominated by its own working set rather than diluted by
    /// unrelated traffic. Defaults per kind: loops 256, scans 128,
    /// random/chase 8.
    pub burst: u32,
}

impl PatternSpec {
    /// Creates a spec with the kind-default burst length.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is zero or `write_fraction` is outside [0, 1].
    pub fn new(kind: PatternKind, weight: u32, write_fraction: f64) -> Self {
        let burst = match kind {
            PatternKind::Loop { .. } => 256,
            PatternKind::Scan { .. } => 128,
            PatternKind::Random { .. } | PatternKind::Chase { .. } => 8,
        };
        Self::with_burst(kind, weight, write_fraction, burst)
    }

    /// Creates a spec with an explicit burst length.
    ///
    /// # Panics
    ///
    /// Panics if `weight` or `burst` is zero, or `write_fraction` is
    /// outside [0, 1].
    pub fn with_burst(kind: PatternKind, weight: u32, write_fraction: f64, burst: u32) -> Self {
        assert!(weight > 0, "weight must be positive");
        assert!(burst > 0, "burst must be positive");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction must be in [0, 1]"
        );
        PatternSpec {
            kind,
            weight,
            write_fraction,
            burst,
        }
    }
}

/// Runtime state of one elementary pattern.
#[derive(Debug, Clone)]
pub(crate) struct PatternState {
    kind: PatternKind,
    /// First line address of this pattern's private region.
    base_line: u64,
    region_lines: u64,
    /// Loop/Scan: current offset. Chase: current LCG value.
    cursor: u64,
    write_fraction: f64,
}

impl PatternState {
    pub(crate) fn new(spec: &PatternSpec, base_line: u64) -> Self {
        let region_lines = spec.kind.region_lines();
        PatternState {
            kind: spec.kind,
            base_line,
            region_lines,
            cursor: 0,
            write_fraction: spec.write_fraction,
        }
    }

    /// Produces the next access of this pattern.
    pub(crate) fn next_access(&mut self, rng: &mut SplitMix64) -> Access {
        let line_off = match self.kind {
            PatternKind::Loop { .. } | PatternKind::Scan { .. } => {
                let off = self.cursor;
                self.cursor = (self.cursor + 1) % self.region_lines;
                off
            }
            PatternKind::Random { .. } => rng.next_below(self.region_lines),
            PatternKind::Chase { .. } => {
                // Full-period LCG over [0, region): a=5 (≡1 mod 4 when
                // region is a power of two; we round up), c odd.
                let m = self.region_lines.next_power_of_two();
                loop {
                    self.cursor = (self.cursor.wrapping_mul(5).wrapping_add(0x9E37)) & (m - 1);
                    if self.cursor < self.region_lines {
                        break;
                    }
                }
                self.cursor
            }
        };
        let addr = (self.base_line + line_off) * LINE_BYTES;
        let kind = if rng.next_f64() < self.write_fraction {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Access { addr, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn drive(kind: PatternKind, n: usize) -> Vec<u64> {
        let spec = PatternSpec::new(kind, 1, 0.0);
        let mut st = PatternState::new(&spec, 1 << 20);
        let mut rng = SplitMix64::new(1);
        (0..n).map(|_| st.next_access(&mut rng).line().0).collect()
    }

    #[test]
    fn loop_pattern_revisits_with_fixed_distance() {
        // 4 KB loop = 64 lines: every line recurs exactly every 64
        // accesses.
        let lines = drive(PatternKind::Loop { region_kb: 4 }, 256);
        for i in 0..192 {
            assert_eq!(lines[i], lines[i + 64]);
        }
        // And the working set is exactly 64 lines.
        let set: HashSet<u64> = lines.iter().copied().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn scan_pattern_is_sequential_and_fresh() {
        let lines = drive(PatternKind::Scan { region_kb: 1024 }, 1000);
        for w in lines.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        let set: HashSet<u64> = lines.iter().copied().collect();
        assert_eq!(set.len(), 1000, "no reuse within the footprint");
    }

    #[test]
    fn random_pattern_stays_in_region() {
        let region_kb = 64u64;
        let lines = drive(PatternKind::Random { region_kb }, 10_000);
        let base = 1u64 << 20;
        let region_lines = region_kb * 1024 / 64;
        for &l in &lines {
            assert!(l >= base && l < base + region_lines);
        }
        // Good coverage of the region.
        let set: HashSet<u64> = lines.iter().copied().collect();
        assert!(set.len() as u64 > region_lines * 9 / 10);
    }

    #[test]
    fn chase_pattern_covers_region_without_sequentiality() {
        let lines = drive(PatternKind::Chase { region_kb: 16 }, 256);
        // 16 KB = 256 lines; the LCG cycle visits each exactly once.
        let set: HashSet<u64> = lines.iter().copied().collect();
        assert_eq!(set.len(), 256);
        // Mostly non-sequential steps.
        let sequential = lines.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(sequential < 16, "{sequential} sequential steps");
    }

    #[test]
    fn write_fraction_is_respected() {
        let spec = PatternSpec::new(PatternKind::Scan { region_kb: 1024 }, 1, 0.3);
        let mut st = PatternState::new(&spec, 0);
        let mut rng = SplitMix64::new(2);
        let writes = (0..10_000)
            .filter(|_| st.next_access(&mut rng).kind.is_write())
            .count();
        assert!((writes as f64 - 3000.0).abs() < 300.0, "writes {writes}");
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        PatternSpec::new(PatternKind::Scan { region_kb: 1 }, 0, 0.0);
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn bad_write_fraction_rejected() {
        PatternSpec::new(PatternKind::Scan { region_kb: 1 }, 1, 1.5);
    }
}
