//! Per-benchmark workload profiles and the multiprogrammed mixes.
//!
//! **Substitution note (DESIGN.md §4):** the paper drives MARSSx86 with
//! SPEC CPU2006 simpoints. We cannot redistribute SPEC, so each
//! benchmark is replaced by a synthetic mixture of elementary patterns
//! chosen to mimic its qualitative reuse-distance profile as described
//! by the paper (Figures 1 and 3) and by Jaleel's SPEC memory
//! characterization: streaming benchmarks (lbm, gemsFDTD, milc) are
//! scan-heavy; pointer-chasing benchmarks (mcf, astar, omnetpp,
//! xalancbmk) mix large random/chase regions with small hot loops; mcf
//! is additionally *phased* (its lines change reuse behavior mid-run,
//! the motivation for time-based sampling in paper §4.2).

use crate::pattern::{PatternKind, PatternSpec};
use crate::trace::{PhaseSpec, WorkloadSpec};

use PatternKind::{Chase, Loop, Random, Scan};

fn phase(fraction: f64, patterns: Vec<PatternSpec>) -> PhaseSpec {
    PhaseSpec { fraction, patterns }
}

fn p(kind: PatternKind, weight: u32, write_fraction: f64) -> PatternSpec {
    PatternSpec::new(kind, weight, write_fraction)
}

/// Builds one benchmark profile by name; `None` for unknown names.
pub fn workload(name: &str) -> Option<WorkloadSpec> {
    let single = |patterns: Vec<PatternSpec>| vec![phase(1.0, patterns)];
    let phases = match name {
        // Figure 3's three soplex classes: small streams that fit 64 KB
        // (rorig/corig with nearby c..r), streams that exceed 256 KB,
        // random permutation lookups (rperm), and the bimodal cperm.
        "soplex" => single(vec![
            p(Loop { region_kb: 48 }, 22, 0.35),
            p(
                Scan {
                    region_kb: 6 * 1024,
                },
                28,
                0.30,
            ),
            p(
                Random {
                    region_kb: 8 * 1024,
                },
                28,
                0.15,
            ),
            p(Loop { region_kb: 192 }, 22, 0.25),
        ]),
        "gcc" => single(vec![
            p(Loop { region_kb: 40 }, 50, 0.30),
            p(Loop { region_kb: 160 }, 25, 0.25),
            p(
                Random {
                    region_kb: 4 * 1024,
                },
                15,
                0.10,
            ),
            p(
                Scan {
                    region_kb: 5 * 1024,
                },
                10,
                0.30,
            ),
        ]),
        // TLB-miss heavy: a big random region spanning many pages.
        "xalancbmk" => single(vec![
            p(
                Random {
                    region_kb: 12 * 1024,
                },
                45,
                0.10,
            ),
            p(Loop { region_kb: 40 }, 35, 0.30),
            p(
                Scan {
                    region_kb: 6 * 1024,
                },
                20,
                0.25,
            ),
        ]),
        // Phased: first half chases a huge region (bypass material),
        // second half develops locality in a mid-sized set — lines that
        // previously always missed start hitting (paper §4.2).
        "mcf" => vec![
            phase(
                0.5,
                vec![
                    p(
                        Chase {
                            region_kb: 6 * 1024,
                        },
                        55,
                        0.05,
                    ),
                    p(Loop { region_kb: 40 }, 25, 0.30),
                    p(
                        Scan {
                            region_kb: 6 * 1024,
                        },
                        20,
                        0.15,
                    ),
                ],
            ),
            phase(
                0.5,
                vec![
                    p(Random { region_kb: 1024 }, 40, 0.10),
                    p(Loop { region_kb: 96 }, 40, 0.30),
                    p(
                        Chase {
                            region_kb: 6 * 1024,
                        },
                        20,
                        0.05,
                    ),
                ],
            ),
        ],
        "leslie3D" => single(vec![
            p(
                Scan {
                    region_kb: 4 * 1024,
                },
                35,
                0.35,
            ),
            p(Loop { region_kb: 500 }, 30, 0.30),
            p(Loop { region_kb: 40 }, 35, 0.30),
        ]),
        "omnetpp" => single(vec![
            p(
                Random {
                    region_kb: 12 * 1024,
                },
                40,
                0.20,
            ),
            p(Loop { region_kb: 36 }, 30, 0.35),
            p(
                Scan {
                    region_kb: 5 * 1024,
                },
                30,
                0.25,
            ),
        ]),
        "astar" => single(vec![
            p(
                Chase {
                    region_kb: 6 * 1024,
                },
                40,
                0.10,
            ),
            p(Loop { region_kb: 56 }, 40, 0.30),
            p(
                Scan {
                    region_kb: 5 * 1024,
                },
                20,
                0.20,
            ),
        ]),
        "gemsFDTD" => single(vec![
            p(
                Scan {
                    region_kb: 4 * 1024,
                },
                60,
                0.35,
            ),
            p(Loop { region_kb: 1024 }, 25, 0.30),
            p(Loop { region_kb: 48 }, 15, 0.30),
        ]),
        "sphinx3" => single(vec![
            p(Loop { region_kb: 40 }, 55, 0.15),
            p(
                Random {
                    region_kb: 2 * 1024,
                },
                20,
                0.10,
            ),
            p(
                Scan {
                    region_kb: 5 * 1024,
                },
                25,
                0.10,
            ),
        ]),
        "wrf" => single(vec![
            p(
                Scan {
                    region_kb: 6 * 1024,
                },
                30,
                0.35,
            ),
            p(Loop { region_kb: 120 }, 45, 0.30),
            p(
                Random {
                    region_kb: 6 * 1024,
                },
                25,
                0.10,
            ),
        ]),
        "milc" => single(vec![
            p(
                Scan {
                    region_kb: 4 * 1024,
                },
                55,
                0.30,
            ),
            p(
                Random {
                    region_kb: 10 * 1024,
                },
                25,
                0.10,
            ),
            p(Loop { region_kb: 60 }, 20, 0.30),
        ]),
        "cactusADM" => single(vec![
            p(Loop { region_kb: 700 }, 35, 0.30),
            p(
                Scan {
                    region_kb: 6 * 1024,
                },
                30,
                0.35,
            ),
            p(Loop { region_kb: 44 }, 35, 0.30),
        ]),
        "bzip2" => single(vec![
            p(Loop { region_kb: 200 }, 35, 0.25),
            p(Loop { region_kb: 44 }, 40, 0.30),
            p(Random { region_kb: 900 }, 15, 0.15),
            p(
                Scan {
                    region_kb: 4 * 1024,
                },
                10,
                0.30,
            ),
        ]),
        // Pure streaming stencil: almost everything bypassable.
        "lbm" => single(vec![
            p(
                Scan {
                    region_kb: 4 * 1024,
                },
                75,
                0.45,
            ),
            p(Loop { region_kb: 150 }, 15, 0.30),
            p(
                Random {
                    region_kb: 3 * 1024,
                },
                10,
                0.10,
            ),
        ]),
        _ => return None,
    };
    Some(WorkloadSpec::new(name, phases))
}

/// The 14 memory-intensive benchmarks of the paper's figures, in the
/// paper's x-axis order.
pub const BENCHMARK_NAMES: [&str; 14] = [
    "soplex",
    "gcc",
    "xalancbmk",
    "mcf",
    "leslie3D",
    "omnetpp",
    "astar",
    "gemsFDTD",
    "sphinx3",
    "wrf",
    "milc",
    "cactusADM",
    "bzip2",
    "lbm",
];

/// All 14 benchmark profiles.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    BENCHMARK_NAMES
        .iter()
        .map(|n| workload(n).expect("known name"))
        .collect()
}

/// The 8 two-core multiprogrammed mixes of Figure 16.
pub const MULTICORE_MIXES: [(&str, &str); 8] = [
    ("soplex", "mcf"),
    ("xalancbmk", "gcc"),
    ("leslie3D", "soplex"),
    ("omnetpp", "mcf"),
    ("cactusADM", "bzip2"),
    ("milc", "sphinx3"),
    ("lbm", "gcc"),
    ("gemsFDTD", "astar"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fourteen_profiles_exist() {
        assert_eq!(all_workloads().len(), 14);
        for w in all_workloads() {
            assert!(!w.phases().is_empty(), "{}", w.name());
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(workload("doom").is_none());
    }

    #[test]
    fn mcf_is_phased() {
        let w = workload("mcf").unwrap();
        assert_eq!(w.phases().len(), 2);
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        for w in all_workloads() {
            let sum: f64 = w.phases().iter().map(|p| p.fraction).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", w.name());
        }
    }

    #[test]
    fn mixes_reference_known_benchmarks() {
        for (a, b) in MULTICORE_MIXES {
            assert!(workload(a).is_some(), "{a}");
            assert!(workload(b).is_some(), "{b}");
        }
    }
}
