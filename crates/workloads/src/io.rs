//! Binary trace files: record synthetic traces, or bring your own.
//!
//! The format is deliberately trivial so other tools can emit it:
//!
//! ```text
//! magic  b"SLIPTRC1"            (8 bytes)
//! count  u64 little-endian      (number of records)
//! then per access: u64 little-endian, bit 0 = 1 for a store,
//!                  bits 1..64 = byte address >> 1
//! ```
//!
//! Addresses are stored shifted right by one; with 64 B cache lines the
//! lost bit never matters, and it keeps every record at exactly 8
//! bytes.

use cache_sim::{Access, AccessKind};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SLIPTRC1";

/// Writes an access stream to `path` in the SLIPTRC1 format.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
///
/// # Example
///
/// ```no_run
/// use workloads::io::{read_trace, write_trace};
///
/// # fn main() -> std::io::Result<()> {
/// let spec = workloads::workload("soplex").unwrap();
/// write_trace("soplex.trc", spec.trace(100_000, 42))?;
/// let back: Vec<_> = read_trace("soplex.trc")?.collect::<Result<_, _>>()?;
/// assert_eq!(back.len(), 100_000);
/// # Ok(())
/// # }
/// ```
pub fn write_trace<I>(path: impl AsRef<Path>, accesses: I) -> io::Result<u64>
where
    I: IntoIterator<Item = Access>,
{
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    // Placeholder count, patched after the fact via a second pass is
    // not possible on a stream; collect count while writing and seek
    // back at the end.
    w.write_all(&0u64.to_le_bytes())?;
    let mut count = 0u64;
    for a in accesses {
        let word = ((a.addr >> 1) << 1) | u64::from(a.kind.is_write());
        w.write_all(&word.to_le_bytes())?;
        count += 1;
    }
    let mut f = w.into_inner().map_err(io::IntoInnerError::into_error)?;
    use std::io::Seek as _;
    f.seek(io::SeekFrom::Start(8))?;
    f.write_all(&count.to_le_bytes())?;
    Ok(count)
}

/// Opens a SLIPTRC1 file and returns an iterator over its accesses.
///
/// # Errors
///
/// Fails if the file cannot be opened, is shorter than its header, or
/// has the wrong magic.
pub fn read_trace(path: impl AsRef<Path>) -> io::Result<TraceReader> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a SLIPTRC1 trace file",
        ));
    }
    let mut count = [0u8; 8];
    r.read_exact(&mut count)?;
    Ok(TraceReader {
        reader: r,
        remaining: u64::from_le_bytes(count),
    })
}

/// Iterator over the accesses of a trace file, produced by
/// [`read_trace`].
#[derive(Debug)]
pub struct TraceReader {
    reader: BufReader<File>,
    remaining: u64,
}

impl TraceReader {
    /// Accesses left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl Iterator for TraceReader {
    type Item = io::Result<Access>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        let mut buf = [0u8; 8];
        match self.reader.read_exact(&mut buf) {
            Ok(()) => {
                self.remaining -= 1;
                let word = u64::from_le_bytes(buf);
                let kind = if word & 1 == 1 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                Some(Ok(Access {
                    addr: word & !1,
                    kind,
                }))
            }
            Err(e) => {
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("slip-trace-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_preserves_lines_and_kinds() {
        let path = tmp("roundtrip.trc");
        let spec = crate::workload("gcc").expect("known");
        let original: Vec<Access> = spec.trace(5000, 7).collect();
        let n = write_trace(&path, original.iter().copied()).expect("write");
        assert_eq!(n, 5000);
        let back: Vec<Access> = read_trace(&path)
            .expect("open")
            .collect::<Result<_, _>>()
            .expect("read");
        assert_eq!(back.len(), original.len());
        for (a, b) in original.iter().zip(&back) {
            // Bit 0 of the address is sacrificed to the R/W flag.
            assert_eq!(a.addr & !1, b.addr);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.line(), b.line());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("badmagic.trc");
        std::fs::write(&path, b"NOTATRACE-AT-ALL").expect("write");
        let err = read_trace(&path).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_is_fine() {
        let path = tmp("empty.trc");
        write_trace(&path, std::iter::empty()).expect("write");
        let reader = read_trace(&path).expect("open");
        assert_eq!(reader.remaining(), 0);
        assert_eq!(reader.count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_reports_remaining() {
        let path = tmp("remaining.trc");
        let spec = crate::workload("lbm").expect("known");
        write_trace(&path, spec.trace(10, 1)).expect("write");
        let mut r = read_trace(&path).expect("open");
        assert_eq!(r.remaining(), 10);
        r.next().unwrap().unwrap();
        assert_eq!(r.remaining(), 9);
        std::fs::remove_file(&path).ok();
    }
}
