//! Materialized traces: a compact, chunked, structure-of-arrays buffer
//! that replays a [`Trace`](crate::Trace) bit-identically.
//!
//! Synthesizing a trace one [`Access`] at a time is cheap but not free,
//! and a sweep regenerates the *identical* (workload, seed, length)
//! stream once per policy cell. [`TraceBuffer`] materializes the stream
//! once into fixed-size chunks of packed words — line address and
//! read/write kind in a single `u64` — so it can be shared across cells
//! behind an `Arc`, handed to a simulator chunk by chunk, or replayed
//! through [`ChunkedTrace`], whose access sequence is guaranteed (and
//! property-tested) to equal the iterator it was built from.
//!
//! The packing relies on the workload generators emitting line-aligned
//! byte addresses (every pattern produces `line * 64`), which
//! [`pack_access`] asserts.

use cache_sim::addr::LINE_BYTES;
use cache_sim::{Access, AccessKind};

/// Default chunk length in accesses (32 Ki accesses = 256 KiB packed).
///
/// Large enough that per-chunk bookkeeping vanishes, small enough that
/// a producer/consumer ring of a few chunks stays cache- and
/// memory-friendly.
pub const DEFAULT_CHUNK_ACCESSES: usize = 1 << 15;

/// Packs an access into one word: line address in the high bits, the
/// read/write kind in bit 0.
///
/// # Panics
///
/// Panics if `access.addr` is not line-aligned — the packing would
/// silently drop the byte offset otherwise. Workload-generated traces
/// are always line-aligned.
#[inline]
pub fn pack_access(access: Access) -> u64 {
    assert!(
        access.addr.is_multiple_of(LINE_BYTES),
        "trace buffers hold line-aligned accesses (addr {:#x})",
        access.addr
    );
    (access.addr / LINE_BYTES) << 1 | u64::from(access.kind.is_write())
}

/// Reverses [`pack_access`].
#[inline]
pub fn unpack_access(word: u64) -> Access {
    Access {
        addr: (word >> 1) * LINE_BYTES,
        kind: if word & 1 == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    }
}

/// A materialized trace: packed accesses in fixed-size chunks.
///
/// Build one with [`TraceBuffer::materialize`], replay it with
/// [`iter`](TraceBuffer::iter) (or walk the raw [`chunks`]
/// (TraceBuffer::chunks) for a chunked execution loop).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    /// Packed words; every chunk is `chunk_len` long except possibly
    /// the last.
    chunks: Vec<Box<[u64]>>,
    len: u64,
    chunk_len: usize,
}

impl TraceBuffer {
    /// Materializes `trace` with the default chunk size.
    pub fn materialize(trace: impl Iterator<Item = Access>) -> Self {
        Self::materialize_chunked(trace, DEFAULT_CHUNK_ACCESSES)
    }

    /// Materializes `trace` into chunks of `chunk_len` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero or any access is not line-aligned.
    pub fn materialize_chunked(trace: impl Iterator<Item = Access>, chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        let mut chunks: Vec<Box<[u64]>> = Vec::new();
        let mut current: Vec<u64> = Vec::with_capacity(chunk_len);
        let mut len = 0u64;
        for access in trace {
            current.push(pack_access(access));
            len += 1;
            if current.len() == chunk_len {
                chunks.push(std::mem::replace(&mut current, Vec::with_capacity(chunk_len)).into());
            }
        }
        if !current.is_empty() {
            chunks.push(current.into());
        }
        TraceBuffer {
            chunks,
            len,
            chunk_len,
        }
    }

    /// Total accesses stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk length this buffer was materialized with.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// The packed chunks, in trace order. Decode words with
    /// [`unpack_access`].
    pub fn chunks(&self) -> impl Iterator<Item = &[u64]> {
        self.chunks.iter().map(|c| &**c)
    }

    /// Approximate resident size in bytes (the packed words; per-chunk
    /// overhead is negligible).
    pub fn approx_bytes(&self) -> u64 {
        self.len * 8
    }

    /// Bytes a buffer of `accesses` accesses will occupy — for memory
    /// budgeting *before* materializing.
    pub fn bytes_for(accesses: u64) -> u64 {
        accesses * 8
    }

    /// A replaying iterator over the whole buffer.
    pub fn iter(&self) -> ChunkedTrace<'_> {
        ChunkedTrace {
            buf: self,
            chunk: 0,
            pos: 0,
            produced: 0,
        }
    }
}

impl<'a> IntoIterator for &'a TraceBuffer {
    type Item = Access;
    type IntoIter = ChunkedTrace<'a>;

    fn into_iter(self) -> ChunkedTrace<'a> {
        self.iter()
    }
}

/// Replays a [`TraceBuffer`] as an [`Access`] iterator whose stream is
/// bit-identical to the trace the buffer was materialized from.
#[derive(Debug, Clone)]
pub struct ChunkedTrace<'a> {
    buf: &'a TraceBuffer,
    chunk: usize,
    pos: usize,
    produced: u64,
}

impl Iterator for ChunkedTrace<'_> {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        let chunk = self.buf.chunks.get(self.chunk)?;
        let word = chunk[self.pos];
        self.pos += 1;
        if self.pos == chunk.len() {
            self.chunk += 1;
            self.pos = 0;
        }
        self.produced += 1;
        Some(unpack_access(word))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.buf.len - self.produced) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ChunkedTrace<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_reads_and_writes() {
        for access in [Access::read(0), Access::write(64), Access::read(1 << 50)] {
            assert_eq!(unpack_access(pack_access(access)), access);
        }
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn unaligned_accesses_rejected() {
        pack_access(Access::read(65));
    }

    #[test]
    fn materialized_buffer_replays_exactly() {
        let spec = crate::workload("gcc").unwrap();
        let streamed: Vec<Access> = spec.trace(10_000, 7).collect();
        let buf = TraceBuffer::materialize(spec.trace(10_000, 7));
        assert_eq!(buf.len(), 10_000);
        let replayed: Vec<Access> = buf.iter().collect();
        assert_eq!(streamed, replayed);
    }

    #[test]
    fn chunk_boundaries_are_invisible() {
        let spec = crate::workload("mcf").unwrap();
        let streamed: Vec<Access> = spec.trace(1000, 3).collect();
        // Chunk lengths that do and do not divide the trace length.
        for chunk_len in [1, 7, 250, 1000, 1024, 4096] {
            let buf = TraceBuffer::materialize_chunked(spec.trace(1000, 3), chunk_len);
            assert_eq!(
                buf.iter().collect::<Vec<_>>(),
                streamed,
                "chunk_len {chunk_len}"
            );
            let stored: usize = buf.chunks().map(<[u64]>::len).sum();
            assert_eq!(stored, 1000);
            assert!(buf.chunks().all(|c| c.len() <= chunk_len));
        }
    }

    #[test]
    fn size_hint_counts_down_exactly() {
        let spec = crate::workload("lbm").unwrap();
        let buf = TraceBuffer::materialize_chunked(spec.trace(100, 1), 32);
        let mut it = buf.iter();
        for left in (0..100u64).rev() {
            it.next().unwrap();
            assert_eq!(it.size_hint(), (left as usize, Some(left as usize)));
        }
        assert!(it.next().is_none());
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn memory_accounting_matches_len() {
        let spec = crate::workload("gcc").unwrap();
        let buf = TraceBuffer::materialize(spec.trace(5_000, 1));
        assert_eq!(buf.approx_bytes(), 40_000);
        assert_eq!(TraceBuffer::bytes_for(5_000), 40_000);
        assert!(!buf.is_empty());
    }

    #[test]
    fn empty_trace_is_an_empty_buffer() {
        let buf = TraceBuffer::materialize(std::iter::empty());
        assert!(buf.is_empty());
        assert_eq!(buf.iter().count(), 0);
        assert_eq!(buf.chunks().count(), 0);
    }
}
