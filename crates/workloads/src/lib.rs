//! Synthetic SPEC-CPU2006-like workloads for the SLIP reproduction.
//!
//! The paper evaluates on the memory-intensive SPEC CPU2006 benchmarks.
//! We substitute each benchmark with a deterministic synthetic trace
//! generator whose reuse-distance mixture mimics the benchmark's
//! qualitative profile (DESIGN.md §4 documents the substitution). A
//! workload is a phased, weighted mixture of four elementary patterns —
//! loops, streams, random access, and pointer chases — each of which
//! pins the reuse distances of its lines, which is the only property
//! SLIP's decision-making consumes.
//!
//! # Example
//!
//! ```
//! use workloads::spec;
//!
//! let soplex = spec::workload("soplex").unwrap();
//! let trace: Vec<_> = soplex.trace(10_000, 42).collect();
//! assert_eq!(trace.len(), 10_000);
//! // Deterministic: the same seed reproduces the same trace.
//! let again: Vec<_> = soplex.trace(10_000, 42).collect();
//! assert_eq!(trace, again);
//! ```

pub mod buffer;
pub mod io;
pub mod pattern;
pub mod spec;
pub mod trace;

pub use buffer::{pack_access, unpack_access, ChunkedTrace, TraceBuffer};
pub use pattern::{PatternKind, PatternSpec};
pub use spec::{all_workloads, workload, BENCHMARK_NAMES, MULTICORE_MIXES};
pub use trace::{PhaseSpec, Trace, WorkloadSpec};
