//! Trace generation: phased, weighted mixtures of elementary patterns.

use crate::pattern::{PatternSpec, PatternState};
use cache_sim::rng::SplitMix64;
use cache_sim::Access;

/// One execution phase: a weighted pattern mixture active for a
/// fraction of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Fraction of the total trace length this phase occupies.
    pub fraction: f64,
    /// The mixture active during the phase.
    pub patterns: Vec<PatternSpec>,
}

/// A complete workload: named, phased mixture of patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    name: String,
    phases: Vec<PhaseSpec>,
}

impl WorkloadSpec {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if there are no phases, a phase has no patterns, or the
    /// phase fractions do not sum to 1 (±1e-6).
    pub fn new(name: impl Into<String>, phases: Vec<PhaseSpec>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        for ph in &phases {
            assert!(!ph.patterns.is_empty(), "phase needs patterns");
            assert!(ph.fraction > 0.0, "phase fraction must be positive");
        }
        let sum: f64 = phases.iter().map(|p| p.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-6, "phase fractions must sum to 1");
        WorkloadSpec {
            name: name.into(),
            phases,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Creates a bounded trace iterator of `len` accesses.
    ///
    /// Each pattern gets a private 4 GiB-aligned region of the address
    /// space (per pattern index across all phases), so patterns never
    /// alias. `address_offset` shifts the whole workload's address
    /// space, letting multicore runs give each core disjoint memory.
    pub fn trace(&self, len: u64, seed: u64) -> Trace {
        self.trace_at(len, seed, 0)
    }

    /// Like [`trace`](Self::trace), with the workload placed at
    /// `address_offset` (must be 4 GiB-aligned to preserve non-aliasing;
    /// enforced).
    ///
    /// # Panics
    ///
    /// Panics if `address_offset` is not 4 GiB-aligned.
    pub fn trace_at(&self, len: u64, seed: u64, address_offset: u64) -> Trace {
        assert_eq!(
            address_offset % (1 << 32),
            0,
            "address offset must be 4 GiB-aligned"
        );
        let base_line = address_offset / 64;
        let mut pattern_index = 0u64;
        let phases: Vec<PhaseState> = self
            .phases
            .iter()
            .map(|ph| {
                let states: Vec<PatternState> = ph
                    .patterns
                    .iter()
                    .map(|spec| {
                        pattern_index += 1;
                        // 4 GiB (2^26 lines) apart per pattern.
                        PatternState::new(spec, base_line + (pattern_index << 26))
                    })
                    .collect();
                PhaseState {
                    // A pattern is scheduled for `burst` consecutive
                    // accesses per turn; picking bursts with probability
                    // proportional to weight/burst keeps each pattern's
                    // long-run access share proportional to its weight.
                    pick_weights: ph
                        .patterns
                        .iter()
                        .map(|p| (u64::from(p.weight) << 16) / u64::from(p.burst))
                        .collect(),
                    bursts: ph.patterns.iter().map(|p| p.burst).collect(),
                    states,
                }
            })
            .collect();
        // Cumulative end index of each phase within the trace.
        let mut acc = 0.0;
        let ends: Vec<u64> = self
            .phases
            .iter()
            .map(|p| {
                acc += p.fraction;
                (acc * len as f64).round() as u64
            })
            .collect();
        Trace {
            rng: SplitMix64::new(seed ^ 0xC0FF_EE00),
            phases,
            phase_ends: ends,
            produced: 0,
            len,
            current_phase: 0,
            current_pattern: 0,
            burst_left: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct PhaseState {
    pick_weights: Vec<u64>,
    bursts: Vec<u32>,
    states: Vec<PatternState>,
}

/// A bounded iterator of [`Access`]es, produced by
/// [`WorkloadSpec::trace`].
#[derive(Debug, Clone)]
pub struct Trace {
    rng: SplitMix64,
    phases: Vec<PhaseState>,
    phase_ends: Vec<u64>,
    produced: u64,
    len: u64,
    current_phase: usize,
    current_pattern: usize,
    burst_left: u32,
}

impl Trace {
    /// Total accesses this trace will produce.
    pub fn len_total(&self) -> u64 {
        self.len
    }
}

impl Iterator for Trace {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.produced >= self.len {
            return None;
        }
        let phase_before = self.current_phase;
        while self.current_phase + 1 < self.phases.len()
            && self.produced >= self.phase_ends[self.current_phase]
        {
            self.current_phase += 1;
        }
        if self.current_phase != phase_before {
            self.burst_left = 0;
        }
        let phase = &mut self.phases[self.current_phase];
        if self.burst_left == 0 {
            self.current_pattern = self.rng.pick_weighted(&phase.pick_weights);
            self.burst_left = phase.bursts[self.current_pattern];
        }
        self.burst_left -= 1;
        let access = phase.states[self.current_pattern].next_access(&mut self.rng);
        self.produced += 1;
        Some(access)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.len - self.produced) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Trace {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternKind;
    use std::collections::HashSet;

    fn two_phase_spec() -> WorkloadSpec {
        WorkloadSpec::new(
            "test",
            vec![
                PhaseSpec {
                    fraction: 0.5,
                    patterns: vec![PatternSpec::new(PatternKind::Loop { region_kb: 4 }, 1, 0.0)],
                },
                PhaseSpec {
                    fraction: 0.5,
                    patterns: vec![PatternSpec::new(PatternKind::Loop { region_kb: 8 }, 1, 0.0)],
                },
            ],
        )
    }

    #[test]
    fn trace_has_exact_length() {
        let w = two_phase_spec();
        let t = w.trace(1000, 1);
        assert_eq!(t.len_total(), 1000);
        assert_eq!(t.count(), 1000);
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        // A random pattern so the seed actually matters.
        let w = WorkloadSpec::new(
            "rand",
            vec![PhaseSpec {
                fraction: 1.0,
                patterns: vec![PatternSpec::new(
                    PatternKind::Random { region_kb: 1024 },
                    1,
                    0.2,
                )],
            }],
        );
        let a: Vec<_> = w.trace(500, 7).collect();
        let b: Vec<_> = w.trace(500, 7).collect();
        let c: Vec<_> = w.trace(500, 8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn phases_switch_at_the_boundary() {
        let w = two_phase_spec();
        let accesses: Vec<_> = w.trace(1000, 1).collect();
        // Phase 1 uses pattern index 1's region; phase 2 pattern index
        // 2's. Regions are 2^26 lines apart.
        let first: HashSet<u64> = accesses[..500].iter().map(|a| a.line().0 >> 26).collect();
        let second: HashSet<u64> = accesses[500..].iter().map(|a| a.line().0 >> 26).collect();
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        assert_ne!(first, second);
    }

    #[test]
    fn patterns_never_alias_across_streams() {
        let w = WorkloadSpec::new(
            "multi",
            vec![PhaseSpec {
                fraction: 1.0,
                patterns: vec![
                    PatternSpec::new(PatternKind::Random { region_kb: 1024 }, 1, 0.0),
                    PatternSpec::new(PatternKind::Scan { region_kb: 1024 }, 1, 0.0),
                ],
            }],
        );
        let regions: HashSet<u64> = w.trace(5000, 3).map(|a| a.line().0 >> 26).collect();
        assert_eq!(regions.len(), 2);
    }

    #[test]
    fn address_offset_relocates_the_workload() {
        let w = two_phase_spec();
        let base: Vec<_> = w.trace(100, 1).collect();
        let moved: Vec<_> = w.trace_at(100, 1, 1 << 40).collect();
        for (a, b) in base.iter().zip(&moved) {
            assert_eq!(b.addr, a.addr + (1 << 40));
            assert_eq!(b.kind, a.kind);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_fractions_rejected() {
        WorkloadSpec::new(
            "bad",
            vec![PhaseSpec {
                fraction: 0.7,
                patterns: vec![PatternSpec::new(PatternKind::Scan { region_kb: 1 }, 1, 0.0)],
            }],
        );
    }

    #[test]
    #[should_panic(expected = "4 GiB-aligned")]
    fn misaligned_offset_rejected() {
        two_phase_spec().trace_at(10, 1, 4096);
    }
}
