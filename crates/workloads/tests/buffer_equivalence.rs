//! Property-style guarantee behind the trace pipeline: a materialized
//! [`TraceBuffer`] replays the *exact* access sequence of the streaming
//! [`Trace`] it was built from — same accesses, same length, correct
//! `size_hint` throughout — for every suite workload, several seeds,
//! and relocated (`trace_at`) address spaces.

use workloads::{TraceBuffer, BENCHMARK_NAMES};

const SEEDS: [u64; 3] = [0x511b, 1, 0xDEAD_BEEF];
const LEN: u64 = 20_000;

/// Exhaustively compares one streaming trace against its materialized
/// replay, checking contents, exact length, and `size_hint` at every
/// step of the replay.
fn assert_replay_equals_stream(name: &str, seed: u64, offset: u64) {
    let spec = workloads::workload(name).expect("known benchmark");
    let streamed: Vec<_> = spec.trace_at(LEN, seed, offset).collect();
    assert_eq!(streamed.len() as u64, LEN, "{name}/{seed:#x} stream length");

    // A chunk length that does not divide LEN, so the last chunk is
    // partial and every boundary case is exercised.
    let buf = TraceBuffer::materialize_chunked(spec.trace_at(LEN, seed, offset), 4096 - 1);
    assert_eq!(buf.len(), LEN, "{name}/{seed:#x} buffer length");

    let mut replay = buf.iter();
    for (i, expect) in streamed.iter().enumerate() {
        let left = LEN as usize - i;
        assert_eq!(
            replay.size_hint(),
            (left, Some(left)),
            "{name}/{seed:#x} size_hint before access {i}"
        );
        assert_eq!(replay.len(), left);
        let got = replay.next().expect("replay as long as stream");
        assert_eq!(
            got, *expect,
            "{name}/{seed:#x} access {i} (offset {offset:#x})"
        );
    }
    assert_eq!(replay.size_hint(), (0, Some(0)));
    assert!(replay.next().is_none(), "{name}/{seed:#x} replay over-long");
}

#[test]
fn buffers_replay_every_suite_workload_bit_identically() {
    for name in BENCHMARK_NAMES {
        for seed in SEEDS {
            assert_replay_equals_stream(name, seed, 0);
        }
    }
}

#[test]
fn buffers_replay_relocated_traces_bit_identically() {
    // The multicore driver places core 1 workloads at 2^45; cover that
    // offset and another 4 GiB-aligned one.
    for name in ["gcc", "mcf", "lbm"] {
        for offset in [1u64 << 45, 1 << 32] {
            assert_replay_equals_stream(name, 0x511b, offset);
        }
    }
}

#[test]
fn default_chunking_matches_custom_chunking() {
    let spec = workloads::workload("soplex").expect("known benchmark");
    let default = TraceBuffer::materialize(spec.trace(LEN, 9));
    let custom = TraceBuffer::materialize_chunked(spec.trace(LEN, 9), 123);
    assert!(default.iter().eq(custom.iter()));
}
