//! Property-style guarantee behind the trace pipeline: a materialized
//! [`TraceBuffer`] replays the *exact* access sequence of the streaming
//! [`Trace`] it was built from — same accesses, same length, correct
//! `size_hint` throughout — for every suite workload, several seeds,
//! and relocated (`trace_at`) address spaces.

use cache_sim::addr::LINE_BYTES;
use cache_sim::{Access, AccessKind};
use workloads::{pack_access, unpack_access, TraceBuffer, BENCHMARK_NAMES};

const SEEDS: [u64; 3] = [0x511b, 1, 0xDEAD_BEEF];
const LEN: u64 = 20_000;

/// Exhaustively compares one streaming trace against its materialized
/// replay, checking contents, exact length, and `size_hint` at every
/// step of the replay.
fn assert_replay_equals_stream(name: &str, seed: u64, offset: u64) {
    let spec = workloads::workload(name).expect("known benchmark");
    let streamed: Vec<_> = spec.trace_at(LEN, seed, offset).collect();
    assert_eq!(streamed.len() as u64, LEN, "{name}/{seed:#x} stream length");

    // A chunk length that does not divide LEN, so the last chunk is
    // partial and every boundary case is exercised.
    let buf = TraceBuffer::materialize_chunked(spec.trace_at(LEN, seed, offset), 4096 - 1);
    assert_eq!(buf.len(), LEN, "{name}/{seed:#x} buffer length");

    let mut replay = buf.iter();
    for (i, expect) in streamed.iter().enumerate() {
        let left = LEN as usize - i;
        assert_eq!(
            replay.size_hint(),
            (left, Some(left)),
            "{name}/{seed:#x} size_hint before access {i}"
        );
        assert_eq!(replay.len(), left);
        let got = replay.next().expect("replay as long as stream");
        assert_eq!(
            got, *expect,
            "{name}/{seed:#x} access {i} (offset {offset:#x})"
        );
    }
    assert_eq!(replay.size_hint(), (0, Some(0)));
    assert!(replay.next().is_none(), "{name}/{seed:#x} replay over-long");
}

#[test]
fn buffers_replay_every_suite_workload_bit_identically() {
    for name in BENCHMARK_NAMES {
        for seed in SEEDS {
            assert_replay_equals_stream(name, seed, 0);
        }
    }
}

#[test]
fn buffers_replay_relocated_traces_bit_identically() {
    // The multicore driver places core 1 workloads at 2^45; cover that
    // offset and another 4 GiB-aligned one.
    for name in ["gcc", "mcf", "lbm"] {
        for offset in [1u64 << 45, 1 << 32] {
            assert_replay_equals_stream(name, 0x511b, offset);
        }
    }
}

#[test]
fn default_chunking_matches_custom_chunking() {
    let spec = workloads::workload("soplex").expect("known benchmark");
    let default = TraceBuffer::materialize(spec.trace(LEN, 9));
    let custom = TraceBuffer::materialize_chunked(spec.trace(LEN, 9), 123);
    assert!(default.iter().eq(custom.iter()));
}

/// Every line-aligned address a packed word can carry: the word layout
/// is `line << 1 | is_write`, so lines up to `2^58 - 1` (address
/// `u64::MAX & !63`) must survive the round trip in both kinds.
#[test]
fn pack_unpack_round_trips_at_address_space_edges() {
    let max_aligned = !(LINE_BYTES - 1);
    let edge_addrs = [
        0,
        LINE_BYTES,
        (1 << 32) - LINE_BYTES,
        1 << 32,
        (1 << 50) * LINE_BYTES, // first metadata-region line
        max_aligned - LINE_BYTES,
        max_aligned, // top-bit line address
    ];
    for addr in edge_addrs {
        for kind in [AccessKind::Read, AccessKind::Write] {
            let access = Access { addr, kind };
            let word = pack_access(access);
            assert_eq!(
                unpack_access(word),
                access,
                "round trip at {addr:#x} {kind:?}"
            );
            assert_eq!(word & 1 == 1, kind.is_write(), "write flag at {addr:#x}");
        }
    }
}

/// The inverse direction over the full word range a buffer can hold
/// (lines need 58 bits + 1 write bit): `pack(unpack(w)) == w`.
#[test]
fn unpack_pack_round_trips_across_the_word_range() {
    let max_word = (u64::MAX >> 6 << 1) | 1; // top line, write set
    let mut words = vec![0, 1, 2, 3, max_word, max_word - 1, max_word ^ 1];
    // A spread of bit patterns across the whole range, both parities.
    for shift in 1..58 {
        words.push(1u64 << shift);
        words.push((1u64 << shift) | 1);
        words.push((1u64 << shift) - 1);
    }
    for word in words {
        assert!(word <= max_word);
        assert_eq!(pack_access(unpack_access(word)), word, "word {word:#x}");
    }
}

/// Misaligned addresses must be rejected loudly, not silently truncated.
#[test]
#[should_panic(expected = "line-aligned")]
fn pack_rejects_misaligned_addresses() {
    pack_access(Access::read(63));
}

/// A buffer materialized from edge addresses replays them bit-exactly
/// (the chunked path uses the same packed words).
#[test]
fn buffers_round_trip_edge_addresses() {
    let max_aligned = !(LINE_BYTES - 1);
    let accesses: Vec<Access> = (0..1000u64)
        .map(|i| {
            let addr = match i % 4 {
                0 => i * LINE_BYTES,
                1 => max_aligned - i * LINE_BYTES,
                2 => (1 << 50) * LINE_BYTES + i * LINE_BYTES,
                _ => (i << 33) & !(LINE_BYTES - 1),
            };
            if i % 3 == 0 {
                Access::write(addr)
            } else {
                Access::read(addr)
            }
        })
        .collect();
    let buf = TraceBuffer::materialize_chunked(accesses.iter().copied(), 7);
    assert_eq!(buf.len(), accesses.len() as u64);
    assert!(buf.iter().eq(accesses.iter().copied()));
}
