//! LRU-PEA: LRU with Priority Eviction Approach (Lira et al.).

use cache_sim::policy::{FillRequest, InsertionClass, PlacementPolicy};
use cache_sim::replacement::ReplacementPolicy;
use cache_sim::rng::SplitMix64;
use cache_sim::{CacheGeometry, LineState, WayMask};

/// The LRU-PEA placement policy.
///
/// * Incoming lines are mapped to a *random* bankcluster (sublevel),
///   chosen in proportion to cluster sizes.
/// * A hit promotes the line one cluster nearer (generational
///   promotion); the line it swaps with is marked *demoted*.
/// * Displaced lines leave the cache — the distinguishing feature is
///   the eviction priority, implemented by [`PeaLru`], which
///   preferentially victimizes demoted lines (the paper's observation:
///   lines which receive a single hit tend to receive more).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruPea {
    sublevel_masks: Vec<WayMask>,
    weights: Vec<u64>,
    /// One deterministic stream per set, so the cluster chosen for a
    /// fill is a pure function of that set's fill history (which lets a
    /// set-shard of the cache reproduce the serial choices exactly).
    rngs: Vec<SplitMix64>,
}

impl LruPea {
    /// Creates LRU-PEA placement for a geometry with a deterministic
    /// seed for the random bankcluster mapping.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has no sublevels.
    pub fn new(geom: &CacheGeometry, seed: u64) -> Self {
        let s = geom.sublevels();
        assert!(s >= 1, "need at least one sublevel");
        let sublevel_masks: Vec<WayMask> = (0..s).map(|i| geom.sublevel_ways(i)).collect();
        let weights = sublevel_masks.iter().map(|m| m.count() as u64).collect();
        let rngs = (0..geom.sets as u64)
            .map(|set| SplitMix64::new(seed.wrapping_add(set.wrapping_mul(0x9E3779B97F4A7C15))))
            .collect();
        LruPea {
            sublevel_masks,
            weights,
            rngs,
        }
    }
}

impl PlacementPolicy for LruPea {
    fn name(&self) -> &'static str {
        "LRU-PEA"
    }

    fn insertion_mask(&mut self, geom: &CacheGeometry, req: &FillRequest) -> Option<WayMask> {
        let set = geom.set_of(req.addr);
        let pick = self.rngs[set].pick_weighted(&self.weights);
        Some(self.sublevel_masks[pick])
    }

    fn demotion_mask(
        &mut self,
        _geom: &CacheGeometry,
        _line: &LineState,
        _from_way: usize,
    ) -> Option<WayMask> {
        // Displaced lines leave the cache; PEA's bias lives in victim
        // selection, not in lateral movement.
        None
    }

    fn promotion_mask(
        &mut self,
        geom: &CacheGeometry,
        _line: &LineState,
        hit_way: usize,
    ) -> Option<WayMask> {
        let cluster = geom.sublevel(hit_way);
        if cluster == 0 {
            None
        } else {
            Some(self.sublevel_masks[cluster - 1])
        }
    }

    fn on_promotion_swap(&mut self, promoted: &mut LineState, demoted: &mut LineState) {
        promoted.demoted = false;
        demoted.demoted = true;
    }

    fn classify_insertion(&self, _geom: &CacheGeometry, _req: &FillRequest) -> InsertionClass {
        InsertionClass::Other
    }

    fn uses_movement_queue(&self) -> bool {
        true
    }
}

/// LRU-PEA's replacement policy: evict the LRU *demoted* line if the
/// candidate set contains one, otherwise plain LRU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeaLru;

impl PeaLru {
    /// Creates the PEA replacement policy.
    pub fn new() -> Self {
        PeaLru
    }
}

impl ReplacementPolicy for PeaLru {
    fn name(&self) -> &'static str {
        "PEA-LRU"
    }

    fn choose_victim(
        &mut self,
        _set_index: usize,
        set: &mut [LineState],
        candidates: WayMask,
    ) -> usize {
        let demoted = candidates
            .iter()
            .filter(|&w| set[w].demoted)
            .min_by_key(|&w| set[w].lru_seq);
        demoted.unwrap_or_else(|| {
            candidates
                .iter()
                .min_by_key(|&w| set[w].lru_seq)
                .expect("candidate mask must not be empty")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::LineAddr;
    use energy_model::Energy;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sublevels(
            8,
            &[
                (4, Energy::from_pj(21.0), 4),
                (4, Energy::from_pj(33.0), 6),
                (8, Energy::from_pj(50.0), 8),
            ],
        )
    }

    #[test]
    fn inserts_into_random_cluster_weighted_by_size() {
        let g = geom();
        let mut p = LruPea::new(&g, 1);
        let mut per_cluster = [0u64; 3];
        for _ in 0..6000 {
            let m = p
                .insertion_mask(&g, &FillRequest::new(LineAddr(0)))
                .unwrap();
            let s = g.sublevel(m.first().unwrap());
            assert_eq!(m, g.sublevel_ways(s), "mask must be one whole cluster");
            per_cluster[s] += 1;
        }
        // Cluster 2 is twice as big as 0 and 1.
        let ratio = per_cluster[2] as f64 / per_cluster[0] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn promotes_one_cluster_nearer() {
        let g = geom();
        let mut p = LruPea::new(&g, 1);
        let line = LineState::new(LineAddr(0));
        assert_eq!(p.promotion_mask(&g, &line, 0), None);
        assert_eq!(
            p.promotion_mask(&g, &line, 5),
            Some(WayMask::from_range(0..4))
        );
        assert_eq!(
            p.promotion_mask(&g, &line, 12),
            Some(WayMask::from_range(4..8))
        );
    }

    #[test]
    fn swap_marks_demotion() {
        let g = geom();
        let mut p = LruPea::new(&g, 1);
        let mut a = LineState::new(LineAddr(1));
        let mut b = LineState::new(LineAddr(2));
        b.demoted = false;
        p.on_promotion_swap(&mut a, &mut b);
        assert!(!a.demoted);
        assert!(b.demoted);
    }

    #[test]
    fn displaced_lines_leave_the_cache() {
        let g = geom();
        let mut p = LruPea::new(&g, 1);
        let line = LineState::new(LineAddr(0));
        assert_eq!(p.demotion_mask(&g, &line, 3), None);
    }

    #[test]
    fn pea_lru_prefers_demoted_victims() {
        let mut set: Vec<LineState> = (0..4)
            .map(|i| {
                let mut l = LineState::new(LineAddr(i));
                l.lru_seq = i;
                l
            })
            .collect();
        set[3].demoted = true;
        let mut r = PeaLru::new();
        // Way 0 is LRU overall, but way 3 is demoted: PEA picks it.
        assert_eq!(r.choose_victim(0, &mut set, WayMask::full(4)), 3);
        // With no demoted candidate, fall back to LRU.
        set[3].demoted = false;
        assert_eq!(r.choose_victim(0, &mut set, WayMask::full(4)), 0);
        // Among several demoted, the LRU demoted one.
        set[2].demoted = true;
        set[3].demoted = true;
        assert_eq!(r.choose_victim(0, &mut set, WayMask::full(4)), 2);
    }
}
