//! NUCA comparison policies: NuRAPID and LRU-PEA.
//!
//! The SLIP paper compares against two representative latency-oriented
//! NUCA policies (with d-group / bankcluster sizes equal to the SLIP
//! sublevel sizes, paper Section 5):
//!
//! * **NuRAPID** (Chishti, Powell, Vijaykumar; MICRO 2003) — distance
//!   associativity: lines are initially placed in the *nearest* d-group;
//!   a hit promotes the line back to the nearest d-group (swapping with
//!   a victim there); a line displaced from d-group `i` demotes to
//!   d-group `i+1` and only leaves the cache from the furthest group.
//! * **LRU-PEA** (Lira, Molina, Rakvic, González; J. Supercomputing
//!   2013) — incoming lines map to a *random* bankcluster; a hit
//!   promotes the line one cluster nearer (the swapped-out line is
//!   marked *demoted*); eviction preferentially targets demoted lines
//!   ([`PeaLru`]).
//!
//! Both policies aggressively move lines toward the processor. That is
//! good for latency but terrible for wire energy: each promotion is a
//! read+write pair per line moved, which is how the paper measures them
//! at +79…+94% cache energy versus the regular baseline (Figure 9/11).

pub mod lru_pea;
pub mod nurapid;

pub use lru_pea::{LruPea, PeaLru};
pub use nurapid::NuRapid;

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::policy::PlacementPolicy;
    use cache_sim::replacement::ReplacementPolicy;
    use cache_sim::{
        AccessClass, AccessKind, CacheGeometry, CacheLevel, FillRequest, LineAddr, Lru,
    };
    use energy_model::{Energy, EnergyCategory};

    fn geom() -> CacheGeometry {
        // 4 sets x 8 ways, 2+2+4 sublevels.
        CacheGeometry::from_sublevels(
            4,
            &[
                (2, Energy::from_pj(10.0), 2),
                (2, Energy::from_pj(20.0), 4),
                (4, Energy::from_pj(40.0), 8),
            ],
        )
    }

    /// Shared end-to-end check: a hit on a far line triggers promotion
    /// movement energy under both NUCA policies.
    fn promotion_consumes_movement_energy(
        policy: &mut dyn PlacementPolicy,
        repl: &mut dyn ReplacementPolicy,
    ) {
        let g = geom();
        let mut c = CacheLevel::new("L", g);
        let addr = LineAddr(0);
        c.fill(FillRequest::new(addr), 0, policy, repl);
        // Wherever it landed, hit it repeatedly: after enough hits the
        // line must reside in sublevel 0 and movement energy was paid.
        for i in 0..4 {
            c.access(
                addr,
                AccessKind::Read,
                AccessClass::Demand,
                i * 100,
                policy,
                repl,
            );
        }
        let way = c.probe_way(addr).unwrap();
        assert_eq!(c.geometry().sublevel(way), 0, "{}", policy.name());
        if c.stats.promotions > 0 {
            assert!(c.energy().get(EnergyCategory::Movement) > Energy::ZERO);
        }
    }

    #[test]
    fn nurapid_promotes_to_nearest_on_hit() {
        let g = geom();
        let mut p = NuRapid::new(&g);
        let mut r = Lru::new();
        promotion_consumes_movement_energy(&mut p, &mut r);
    }

    #[test]
    fn lru_pea_promotes_one_sublevel_per_hit() {
        let g = geom();
        let mut p = LruPea::new(&g, 42);
        let mut r = PeaLru::new();
        promotion_consumes_movement_energy(&mut p, &mut r);
    }
}
