//! NuRAPID: Non-uniform access with Replacement And Placement usIng
//! Distance associativity (Chishti et al., MICRO 2003).

use cache_sim::policy::{FillRequest, InsertionClass, PlacementPolicy};
use cache_sim::{CacheGeometry, LineState, WayMask};

/// The NuRAPID placement policy over sublevels-as-d-groups.
///
/// * Insert into the nearest d-group.
/// * On a hit outside the nearest d-group, promote the line there
///   (swapping with a victim, which is thereby demoted to the hit
///   line's old location).
/// * A line displaced from d-group `i` demotes into d-group `i+1`;
///   only the furthest group evicts from the cache.
///
/// # Example
///
/// ```
/// use cache_sim::{CacheGeometry, FillRequest, LineAddr, PlacementPolicy,
///                 WayMask};
/// use energy_model::Energy;
/// use nuca_baselines::NuRapid;
///
/// let geom = CacheGeometry::from_sublevels(
///     16,
///     &[(4, Energy::from_pj(21.0), 4), (12, Energy::from_pj(45.0), 8)],
/// );
/// let mut p = NuRapid::new(&geom);
/// let mask = p.insertion_mask(&geom, &FillRequest::new(LineAddr(0)));
/// assert_eq!(mask, Some(WayMask::from_range(0..4))); // nearest d-group
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NuRapid {
    sublevel_masks: Vec<WayMask>,
}

impl NuRapid {
    /// Creates NuRAPID placement for a geometry; each sublevel is one
    /// d-group.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has no sublevels.
    pub fn new(geom: &CacheGeometry) -> Self {
        let s = geom.sublevels();
        assert!(s >= 1, "need at least one sublevel");
        NuRapid {
            sublevel_masks: (0..s).map(|i| geom.sublevel_ways(i)).collect(),
        }
    }

    fn groups(&self) -> usize {
        self.sublevel_masks.len()
    }
}

impl PlacementPolicy for NuRapid {
    fn name(&self) -> &'static str {
        "NuRAPID"
    }

    fn insertion_mask(&mut self, _geom: &CacheGeometry, _req: &FillRequest) -> Option<WayMask> {
        Some(self.sublevel_masks[0])
    }

    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        _line: &LineState,
        from_way: usize,
    ) -> Option<WayMask> {
        // NuRAPID demotes a replaced block directly to the slowest
        // d-group; only the slowest group evicts from the cache.
        let group = geom.sublevel(from_way);
        let last = self.groups() - 1;
        if group < last {
            Some(self.sublevel_masks[last])
        } else {
            None
        }
    }

    fn promotion_mask(
        &mut self,
        geom: &CacheGeometry,
        _line: &LineState,
        hit_way: usize,
    ) -> Option<WayMask> {
        if geom.sublevel(hit_way) == 0 {
            None
        } else {
            Some(self.sublevel_masks[0])
        }
    }

    fn classify_insertion(&self, _geom: &CacheGeometry, _req: &FillRequest) -> InsertionClass {
        InsertionClass::Other
    }

    fn uses_movement_queue(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::LineAddr;
    use energy_model::Energy;

    fn geom() -> CacheGeometry {
        CacheGeometry::from_sublevels(
            8,
            &[
                (4, Energy::from_pj(21.0), 4),
                (4, Energy::from_pj(33.0), 6),
                (8, Energy::from_pj(50.0), 8),
            ],
        )
    }

    #[test]
    fn inserts_into_nearest_group() {
        let g = geom();
        let mut p = NuRapid::new(&g);
        assert_eq!(
            p.insertion_mask(&g, &FillRequest::new(LineAddr(1))),
            Some(WayMask::from_range(0..4))
        );
    }

    #[test]
    fn demotes_straight_to_slowest_group() {
        let g = geom();
        let mut p = NuRapid::new(&g);
        let line = LineState::new(LineAddr(1));
        assert_eq!(
            p.demotion_mask(&g, &line, 0),
            Some(WayMask::from_range(8..16))
        );
        assert_eq!(
            p.demotion_mask(&g, &line, 5),
            Some(WayMask::from_range(8..16))
        );
        assert_eq!(p.demotion_mask(&g, &line, 12), None);
    }

    #[test]
    fn promotes_straight_to_nearest_group() {
        let g = geom();
        let mut p = NuRapid::new(&g);
        let line = LineState::new(LineAddr(1));
        assert_eq!(p.promotion_mask(&g, &line, 0), None);
        assert_eq!(
            p.promotion_mask(&g, &line, 6),
            Some(WayMask::from_range(0..4))
        );
        assert_eq!(
            p.promotion_mask(&g, &line, 15),
            Some(WayMask::from_range(0..4))
        );
    }

    #[test]
    fn uses_movement_queue_but_not_slip_metadata() {
        let g = geom();
        let p = NuRapid::new(&g);
        assert!(p.uses_movement_queue());
        assert!(!p.uses_line_metadata());
        assert_eq!(p.name(), "NuRAPID");
    }
}
