//! Time-based sampling of reuse-distance distributions (paper §4.2).
//!
//! Fetching the 32 b distribution metadata on *every* TLB miss is too
//! much traffic for TLB-miss-heavy workloads (the paper measured up to
//! +27% L2 traffic on xalancbmk), and a page stuck in a bypassing SLIP
//! would never observe the hits that could rehabilitate it. Time-based
//! sampling solves both: each page is either *sampling* (distribution
//! fetched and updated, lines inserted with the Default SLIP) or
//! *stable* (PTE SLIP applied, no distribution traffic). On every TLB
//! miss the state flips randomly: sampling→stable with probability
//! `1/N_samp`, stable→sampling with probability `1/N_stab`. With the
//! paper's `N_samp = 16, N_stab = 256`, a stationary ~6% of TLB misses
//! carry distribution traffic.

use cache_sim::rng::SplitMix64;

/// Whether a page's reuse distribution is currently being collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageState {
    /// Collecting reuse distances; lines insert with the Default SLIP.
    #[default]
    Sampling,
    /// Distribution frozen; the PTE's SLIP drives insertions.
    Stable,
}

/// Sampling transition probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// A sampling page becomes stable with probability `1/n_samp`.
    pub n_samp: u64,
    /// A stable page becomes sampling with probability `1/n_stab`.
    pub n_stab: u64,
}

impl SamplingConfig {
    /// The paper's configuration: `N_samp = 16`, `N_stab = 256`.
    pub fn paper_default() -> Self {
        SamplingConfig {
            n_samp: 16,
            n_stab: 256,
        }
    }

    /// Stationary fraction of time a page spends sampling:
    /// `N_samp / (N_samp + N_stab)` (~5.9% for the paper's values).
    pub fn expected_sampling_fraction(&self) -> f64 {
        self.n_samp as f64 / (self.n_samp + self.n_stab) as f64
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig::paper_default()
    }
}

/// The randomized page-state transition machine, applied on TLB misses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSampler {
    config: SamplingConfig,
    rng: SplitMix64,
}

/// What a TLB-miss transition decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The page's new state.
    pub state: PageState,
    /// `true` exactly when the page just moved sampling→stable, which
    /// is when the SLIP must be recomputed (paper Figure 7, step Í).
    pub became_stable: bool,
}

impl TimeSampler {
    /// Creates a sampler with the paper's probabilities.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, SamplingConfig::paper_default())
    }

    /// Creates a sampler with custom probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either denominator is zero.
    pub fn with_config(seed: u64, config: SamplingConfig) -> Self {
        assert!(
            config.n_samp > 0 && config.n_stab > 0,
            "denominators must be positive"
        );
        TimeSampler {
            config,
            rng: SplitMix64::new(seed),
        }
    }

    /// The configured probabilities.
    pub fn config(&self) -> SamplingConfig {
        self.config
    }

    /// Applies one randomized transition (called on a TLB miss).
    pub fn transition(&mut self, current: PageState) -> Transition {
        match current {
            PageState::Sampling => {
                if self.rng.one_in(self.config.n_samp) {
                    Transition {
                        state: PageState::Stable,
                        became_stable: true,
                    }
                } else {
                    Transition {
                        state: PageState::Sampling,
                        became_stable: false,
                    }
                }
            }
            PageState::Stable => {
                let state = if self.rng.one_in(self.config.n_stab) {
                    PageState::Sampling
                } else {
                    PageState::Stable
                };
                Transition {
                    state,
                    became_stable: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_fraction() {
        let c = SamplingConfig::paper_default();
        let f = c.expected_sampling_fraction();
        assert!((f - 16.0 / 272.0).abs() < 1e-12);
        assert!(f > 0.05 && f < 0.07, "paper says ~6%, got {f}");
    }

    #[test]
    fn stationary_fraction_matches_theory() {
        let mut s = TimeSampler::new(7);
        let mut state = PageState::Sampling;
        let mut sampling_ticks = 0u64;
        let n = 2_000_000u64;
        for _ in 0..n {
            state = s.transition(state).state;
            if state == PageState::Sampling {
                sampling_ticks += 1;
            }
        }
        let f = sampling_ticks as f64 / n as f64;
        let expect = s.config().expected_sampling_fraction();
        assert!((f - expect).abs() < 0.01, "measured {f}, theory {expect}");
    }

    #[test]
    fn became_stable_only_on_that_edge() {
        let mut s = TimeSampler::new(3);
        let mut seen_stable_edge = false;
        let mut state = PageState::Sampling;
        for _ in 0..10_000 {
            let t = s.transition(state);
            if t.became_stable {
                assert_eq!(state, PageState::Sampling);
                assert_eq!(t.state, PageState::Stable);
                seen_stable_edge = true;
            }
            if state == PageState::Stable {
                assert!(!t.became_stable);
            }
            state = t.state;
        }
        assert!(seen_stable_edge);
    }

    #[test]
    fn default_state_is_sampling() {
        // New pages start sampling so their first SLIP is informed.
        assert_eq!(PageState::default(), PageState::Sampling);
    }

    #[test]
    #[should_panic(expected = "denominators")]
    fn zero_denominator_rejected() {
        TimeSampler::with_config(
            0,
            SamplingConfig {
                n_samp: 0,
                n_stab: 1,
            },
        );
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = TimeSampler::new(11);
        let mut b = TimeSampler::new(11);
        let mut sa = PageState::Sampling;
        let mut sb = PageState::Sampling;
        for _ in 0..1000 {
            sa = a.transition(sa).state;
            sb = b.transition(sb).state;
            assert_eq!(sa, sb);
        }
    }
}
