//! The analytical energy model of paper Section 3.2 (Equations 1–4).
//!
//! For a line `x` with reuse-distance distribution `P_x` and a SLIP with
//! chunks `G_0..G_{M-1}`, the model estimates per-access energy as
//!
//! ```text
//! E_x = Σ_i E_access(x,i)  +  Σ_i E_move(x,i)  +  E_miss(x)  +  E_insert(x)
//! ```
//!
//! * **Access** (Eq. 2/3): references with reuse distance inside chunk
//!   `i`'s cumulative capacity window are served from chunk `i` at its
//!   mean energy `Ē_i`.
//! * **Movement** (Eq. 2): a line moves from chunk `i` to `i+1` whenever
//!   its reuse distance exceeds `CC_i`, costing `Ē_i + Ē_{i+1}`.
//! * **Miss** (Eq. 4): references beyond `CC_M` cost the next level's
//!   mean access energy `E_NL`.
//! * **Insertion** (documented model extension, see DESIGN.md §3): each
//!   miss re-inserts the line into chunk 0, costing `Ē_0`. The paper's
//!   energy accounting includes insertion energy in its movement group
//!   (Fig. 11 caption); without this term the All-Bypass Policy is
//!   dominated by `{[S0]}` for every distribution and Figure 14's bypass
//!   fractions are unreachable.
//!
//! Because every term is linear in the bin probabilities, the model
//! reduces to a per-SLIP coefficient vector `α` with `E = α · p`
//! (Eq. 5), which is what the [EOU](crate::eou) evaluates in hardware.

use crate::slip::Slip;
use energy_model::{Energy, LevelEnergyParams};

/// Hardware parameters the model needs for one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelModelParams {
    /// Mean access energy per sublevel, nearest first (`Ē` inputs).
    pub sublevel_energy: Vec<Energy>,
    /// Capacity per sublevel in lines.
    pub sublevel_lines: Vec<usize>,
    /// Mean access energy of the next level down (`E_NL`): the L3 mean
    /// for the L2 model, the DRAM line energy for the L3 model.
    pub next_level_energy: Energy,
}

impl LevelModelParams {
    /// Builds model parameters from a Table 2 level description and the
    /// next level's energy.
    pub fn from_level(level: &LevelEnergyParams, next_level_energy: Energy) -> Self {
        LevelModelParams {
            sublevel_energy: level.sublevel_access.clone(),
            sublevel_lines: level.sublevel_lines.clone(),
            next_level_energy,
        }
    }

    /// Number of sublevels.
    pub fn sublevels(&self) -> usize {
        self.sublevel_energy.len()
    }

    /// Number of distribution bins (`sublevels + 1`).
    pub fn bins(&self) -> usize {
        self.sublevels() + 1
    }

    /// Capacity-weighted mean access energy of a chunk of sublevels
    /// (`Ē_i` of Eq. 2/3).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn chunk_energy(&self, chunk: core::ops::RangeInclusive<usize>) -> Energy {
        let lines: usize = self.sublevel_lines[chunk.clone()].iter().sum();
        assert!(lines > 0, "chunk must have nonzero capacity");
        self.sublevel_energy[chunk.clone()]
            .iter()
            .zip(&self.sublevel_lines[chunk])
            .map(|(&e, &l)| e * (l as f64 / lines as f64))
            .sum()
    }
}

/// Computes the coefficient vector `α` of Eq. 5 for `slip` including
/// the insertion term: the expected per-access energy contributed by a
/// reference falling in each reuse-distance bin.
///
/// This is the objective used when the All-Bypass Policy is in the
/// candidate pool — without the insertion term the ABP can never win
/// (see the module docs).
///
/// The returned vector has `params.bins()` entries: bin `i < S` covers
/// distances within sublevel `i`'s cumulative capacity window, and the
/// last bin covers everything beyond the level.
///
/// # Panics
///
/// Panics if `slip.sublevels() != params.sublevels()`.
pub fn coefficients(params: &LevelModelParams, slip: Slip) -> Vec<Energy> {
    build_coefficients(params, slip, true)
}

/// Computes the coefficient vector of the paper's published Equations
/// 1–4 verbatim (access + movement + miss, no insertion term).
///
/// Under this objective a pure-miss distribution ties every
/// non-bypassing SLIP with the Default SLIP (they all pay `E_NL` per
/// reference), and the EOU's Default-favoring tie-break keeps such
/// lines from crowding the near sublevel. This is the objective used
/// for the paper's "SLIP" (no-ABP) configuration.
///
/// # Panics
///
/// Panics if `slip.sublevels() != params.sublevels()`.
pub fn coefficients_paper(params: &LevelModelParams, slip: Slip) -> Vec<Energy> {
    build_coefficients(params, slip, false)
}

fn build_coefficients(
    params: &LevelModelParams,
    slip: Slip,
    include_insertion: bool,
) -> Vec<Energy> {
    assert_eq!(
        slip.sublevels(),
        params.sublevels(),
        "SLIP and model must agree on sublevel count"
    );
    let s = params.sublevels();
    let chunks = slip.chunks();
    let m_used = slip.used_sublevels();
    let chunk_e: Vec<Energy> = chunks
        .iter()
        .map(|c| params.chunk_energy(c.clone()))
        .collect();
    let mut alpha = vec![Energy::ZERO; s + 1];

    // Access energy: bin i (< m_used) is served from the chunk holding
    // sublevel i.
    for (bin, a) in alpha.iter_mut().enumerate().take(m_used) {
        let k = slip
            .chunk_of_sublevel(bin)
            .expect("bins below m are covered by a chunk");
        *a += chunk_e[k];
    }

    // Movement energy: crossing out of chunk k costs Ē_k + Ē_{k+1} for
    // every reference with reuse distance beyond chunk k's cumulative
    // capacity (bins starting at the chunk-end sublevel + 1).
    for k in 0..chunks.len().saturating_sub(1) {
        let first_bin = *chunks[k].end() + 1;
        let cost = chunk_e[k] + chunk_e[k + 1];
        for a in alpha.iter_mut().skip(first_bin) {
            *a += cost;
        }
    }

    // Miss energy, plus (for the ABP-aware objective) the re-insertion
    // of the line into chunk 0 that every miss implies.
    let miss_cost = if chunks.is_empty() || !include_insertion {
        params.next_level_energy
    } else {
        params.next_level_energy + chunk_e[0]
    };
    for a in alpha.iter_mut().skip(m_used) {
        *a += miss_cost;
    }

    alpha
}

/// Evaluates the model for `slip` on bin probabilities `probs` by the
/// coefficient dot product of Eq. 5.
///
/// # Panics
///
/// Panics if `probs.len() != params.bins()`.
pub fn slip_energy(params: &LevelModelParams, slip: Slip, probs: &[f64]) -> Energy {
    assert_eq!(probs.len(), params.bins(), "one probability per bin");
    coefficients(params, slip)
        .iter()
        .zip(probs)
        .map(|(&a, &p)| a * p)
        .sum()
}

/// Evaluates the model for `slip` on `probs` directly from Equations
/// 1–4 (plus the insertion term), without going through coefficients.
///
/// Exists to cross-check [`coefficients`]; the two must agree exactly
/// (up to floating-point associativity).
///
/// # Panics
///
/// Panics if `probs.len() != params.bins()`.
pub fn slip_energy_direct(params: &LevelModelParams, slip: Slip, probs: &[f64]) -> Energy {
    assert_eq!(probs.len(), params.bins(), "one probability per bin");
    let chunks = slip.chunks();
    if chunks.is_empty() {
        // All-Bypass: every reference goes to the next level.
        return params.next_level_energy * probs.iter().sum::<f64>();
    }
    let chunk_e: Vec<Energy> = chunks
        .iter()
        .map(|c| params.chunk_energy(c.clone()))
        .collect();
    let m_used = slip.used_sublevels();

    // Eq. 3: accesses served per chunk.
    let mut access = Energy::ZERO;
    for (k, c) in chunks.iter().enumerate() {
        let f: f64 = probs[*c.start()..=*c.end()].iter().sum();
        access += chunk_e[k] * f;
    }

    // Eq. 2: movements out of each non-final chunk.
    let mut movement = Energy::ZERO;
    for k in 0..chunks.len() - 1 {
        let p_beyond: f64 = probs[*chunks[k].end() + 1..].iter().sum();
        movement += (chunk_e[k] + chunk_e[k + 1]) * p_beyond;
    }

    // Eq. 4 + insertion extension.
    let p_miss: f64 = probs[m_used..].iter().sum();
    let miss = (params.next_level_energy + chunk_e[0]) * p_miss;

    access + movement + miss
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's L2 at 45 nm with the L3 mean as E_NL.
    fn l2_params() -> LevelModelParams {
        LevelModelParams {
            sublevel_energy: vec![
                Energy::from_pj(21.0),
                Energy::from_pj(33.0),
                Energy::from_pj(50.0),
            ],
            sublevel_lines: vec![1024, 1024, 2048],
            next_level_energy: Energy::from_pj(136.0),
        }
    }

    /// The paper's L3 at 45 nm with the DRAM line energy as E_NL.
    fn l3_params() -> LevelModelParams {
        LevelModelParams {
            sublevel_energy: vec![
                Energy::from_pj(67.0),
                Energy::from_pj(113.0),
                Energy::from_pj(176.0),
            ],
            sublevel_lines: vec![8192, 8192, 16384],
            next_level_energy: Energy::from_pj(20.0 * 512.0),
        }
    }

    #[test]
    fn chunk_energy_is_capacity_weighted() {
        let p = l2_params();
        assert_eq!(p.chunk_energy(0..=0).as_pj(), 21.0);
        // Sublevels 1..=2: (33*1024 + 50*2048) / 3072.
        let expect = (33.0 * 1024.0 + 50.0 * 2048.0) / 3072.0;
        assert!((p.chunk_energy(1..=2).as_pj() - expect).abs() < 1e-9);
        // Whole level mean ~ 38.5 pJ (Table 2 baseline ~ 39 pJ).
        assert!((p.chunk_energy(0..=2).as_pj() - 38.5).abs() < 1e-9);
    }

    #[test]
    fn coefficients_match_direct_evaluation_for_all_slips() {
        for params in [l2_params(), l3_params()] {
            for slip in Slip::enumerate(3) {
                // A spread of probability vectors, including corners.
                for probs in [
                    [1.0, 0.0, 0.0, 0.0],
                    [0.0, 0.0, 0.0, 1.0],
                    [0.25, 0.25, 0.25, 0.25],
                    [0.7, 0.2, 0.05, 0.05],
                    [0.1, 0.0, 0.4, 0.5],
                ] {
                    let a = slip_energy(&params, slip, &probs).as_pj();
                    let b = slip_energy_direct(&params, slip, &probs).as_pj();
                    assert!(
                        (a - b).abs() < 1e-9,
                        "{slip}: coeff {a} vs direct {b} for {probs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_bypass_costs_next_level_always() {
        let p = l2_params();
        let abp = Slip::all_bypass(3).unwrap();
        let e = slip_energy(&p, abp, &[0.25, 0.25, 0.25, 0.25]);
        assert!((e.as_pj() - 136.0).abs() < 1e-9);
    }

    #[test]
    fn default_slip_charges_mean_energy_on_hits() {
        let p = l2_params();
        let def = Slip::default_slip(3).unwrap();
        // All references hit within the level.
        let e = slip_energy(&p, def, &[1.0, 0.0, 0.0, 0.0]);
        assert!((e.as_pj() - 38.5).abs() < 1e-9);
        // All references miss: E_NL + re-insertion at chunk 0 (= whole
        // level for the default SLIP).
        let e = slip_energy(&p, def, &[0.0, 0.0, 0.0, 1.0]);
        assert!((e.as_pj() - (136.0 + 38.5)).abs() < 1e-9);
    }

    #[test]
    fn bypass_wins_for_streaming_lines_at_l2() {
        // A pure-miss line: ABP must beat every caching SLIP.
        let p = l2_params();
        let probs = [0.0, 0.0, 0.0, 1.0];
        let abp = Slip::all_bypass(3).unwrap();
        let e_abp = slip_energy(&p, abp, &probs);
        for slip in Slip::enumerate(3) {
            if slip != abp {
                assert!(
                    slip_energy(&p, slip, &probs) > e_abp,
                    "{slip} should lose to ABP on pure misses"
                );
            }
        }
    }

    #[test]
    fn near_chunk_wins_for_tight_loops() {
        // All reuse distances fit in sublevel 0: {[S0]} must beat the
        // Default SLIP (21 pJ vs 38.5 pJ per access).
        let p = l2_params();
        let probs = [1.0, 0.0, 0.0, 0.0];
        let near = Slip::from_chunk_ends(3, &[0]).unwrap();
        let def = Slip::default_slip(3).unwrap();
        assert!(slip_energy(&p, near, &probs) < slip_energy(&p, def, &probs));
        assert!((slip_energy(&p, near, &probs).as_pj() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn tailored_slip_beats_default_for_bimodal_lines() {
        // The paper's cperm pattern: most hits near, some far, some miss.
        // The energy-optimal SLIP keeps a dedicated near chunk (here the
        // optimizer picks {[0]}: the sparse far hits don't pay for the
        // movement + far-chunk energy) and clearly beats the Default.
        let p = l2_params();
        let probs = [0.66, 0.0, 0.10, 0.24];
        let def = Slip::default_slip(3).unwrap();
        let e_def = slip_energy(&p, def, &probs);
        let best = Slip::enumerate(3)
            .into_iter()
            .min_by(|&a, &b| {
                slip_energy(&p, a, &probs)
                    .partial_cmp(&slip_energy(&p, b, &probs))
                    .unwrap()
            })
            .unwrap();
        assert!(slip_energy(&p, best, &probs) < e_def, "best {best}");
        // And the winner's first chunk is the energy-efficient near
        // sublevel alone.
        assert_eq!(best.chunks()[0], 0..=0, "best {best}");
    }

    #[test]
    fn l3_bypass_needs_far_lower_hit_rate_than_l2() {
        // The L2->L3 energy differential is small, the L3->DRAM one is
        // huge, so bypass is profitable at much lower hit rates at L2
        // (the paper's explanation for 27% vs 14% bypassing in Fig. 14).
        let near = Slip::from_chunk_ends(3, &[0]).unwrap();
        let abp = Slip::all_bypass(3).unwrap();
        let crossover = |params: &LevelModelParams| -> f64 {
            // Smallest p0 (rest misses) where caching in S0 beats ABP.
            let mut lo = 0.0f64;
            let mut hi = 1.0f64;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let probs = [mid, 0.0, 0.0, 1.0 - mid];
                if slip_energy(params, near, &probs) < slip_energy(params, abp, &probs) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi
        };
        let l2_x = crossover(&l2_params());
        let l3_x = crossover(&l3_params());
        assert!(l2_x > 10.0 * l3_x, "L2 {l2_x} vs L3 {l3_x}");
        assert!(l2_x > 0.10 && l2_x < 0.25, "L2 crossover {l2_x}");
        assert!(l3_x < 0.01, "L3 crossover {l3_x}");
    }

    #[test]
    fn paper_variant_drops_only_the_insertion_term() {
        let p = l2_params();
        for slip in Slip::enumerate(3) {
            let with = coefficients(&p, slip);
            let without = coefficients_paper(&p, slip);
            let m = slip.used_sublevels();
            let e0 = slip
                .chunks()
                .first()
                .map(|c| p.chunk_energy(c.clone()))
                .unwrap_or(Energy::ZERO);
            for (bin, (a, b)) in with.iter().zip(&without).enumerate() {
                let diff = (*a - *b).as_pj();
                if bin >= m && !slip.is_all_bypass() {
                    assert!((diff - e0.as_pj()).abs() < 1e-9, "{slip} bin {bin}");
                } else {
                    assert!(diff.abs() < 1e-9, "{slip} bin {bin}");
                }
            }
        }
    }

    #[test]
    fn paper_variant_ties_pure_miss_lines_with_default() {
        // Under the published Eq. 1-4, a pure-miss line costs E_NL per
        // reference no matter which single-chunk SLIP holds it, so the
        // EOU's Default-favoring tie-break applies.
        let p = l2_params();
        let probs = [0.0, 0.0, 0.0, 1.0];
        let def = Slip::default_slip(3).unwrap();
        let near = Slip::from_chunk_ends(3, &[0]).unwrap();
        let e_def: Energy = coefficients_paper(&p, def)
            .iter()
            .zip(&probs)
            .map(|(&a, &x)| a * x)
            .sum();
        let e_near: Energy = coefficients_paper(&p, near)
            .iter()
            .zip(&probs)
            .map(|(&a, &x)| a * x)
            .sum();
        assert!((e_def - e_near).as_pj().abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "agree on sublevel count")]
    fn mismatched_sublevels_rejected() {
        let p = l2_params();
        coefficients(&p, Slip::default_slip(2).unwrap());
    }

    #[test]
    #[should_panic(expected = "one probability per bin")]
    fn wrong_prob_len_rejected() {
        let p = l2_params();
        slip_energy(&p, Slip::default_slip(3).unwrap(), &[1.0]);
    }
}
