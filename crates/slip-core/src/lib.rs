//! SLIP — Sub-Level Insertion Policy (Das, Aamodt, Dally; ISCA 2015).
//!
//! The paper's primary contribution, reimplemented as a library:
//!
//! * [`Slip`] — the policy representation: `2^S` insertion/movement
//!   policies over `S` cache sublevels, encoded in `S` bits
//!   (paper §3.1).
//! * [`RdDistribution`] — quantized per-page reuse-distance
//!   distributions: 4-bit saturating bins with global halving
//!   (paper §4.1).
//! * [`model`] — the analytical access + movement + miss energy model
//!   (paper §3.2, Eq. 1–5) reduced to per-SLIP coefficient vectors.
//! * [`EnergyOptimizerUnit`] — the EOU: an argmin of dot products over
//!   all candidate SLIPs, with the paper's synthesized hardware costs
//!   (paper §4.4, §5).
//! * [`TimeSampler`] — randomized sampling/stable page states that bound
//!   distribution-metadata traffic (paper §4.2).
//! * [`SlipPlacement`] — the Figure 6 state machine as a
//!   [`cache_sim::PlacementPolicy`]: insert into `C_0`, demote along
//!   chunks, never promote.
//!
//! # Example: choose and apply a policy for a bimodal line
//!
//! ```
//! use energy_model::TECH_45NM;
//! use slip_core::{EnergyOptimizerUnit, LevelModelParams, RdDistribution};
//!
//! let params = LevelModelParams::from_level(
//!     &TECH_45NM.l2,
//!     TECH_45NM.l3.mean_access(),
//! );
//! let mut eou = EnergyOptimizerUnit::new(&params);
//!
//! // The paper's `cperm` pattern: 66% of reuses fit the nearest 64 KB,
//! // a few need the full 256 KB, 24% miss.
//! let mut dist = RdDistribution::paper_default();
//! for _ in 0..10 { dist.observe(0); }
//! dist.observe(2);
//! for _ in 0..4 { dist.observe(3); }
//!
//! let decision = eou.optimize(&dist);
//! // An energy-optimized SLIP keeps the near chunk separate.
//! assert_eq!(decision.slip.chunks()[0], 0..=0);
//! ```

pub mod eou;
pub mod model;
pub mod partition;
pub mod placement;
pub mod rd_dist;
pub mod sampling;
pub mod slip;

pub use eou::{EnergyOptimizerUnit, EouCost, EouDecision, EouObjective};
pub use model::{
    coefficients, coefficients_paper, slip_energy, slip_energy_direct, LevelModelParams,
};
pub use partition::{interleaved_partitions, PartitionedSlip};
pub use placement::{SlipLevel, SlipPlacement};
pub use rd_dist::{bin_for_distance, RdDistribution, PAPER_BINS, PAPER_BIN_BITS};
pub use sampling::{PageState, SamplingConfig, TimeSampler, Transition};
pub use slip::{Slip, SlipError, MAX_SUBLEVELS};
