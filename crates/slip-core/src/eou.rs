//! The Energy Optimizer Unit (paper Sections 3.2, 4.4, and 5).
//!
//! The EOU is an array of Energy Evaluation Units, one per candidate
//! SLIP, each preprogrammed with the coefficient vector `α` of Eq. 5.
//! Given a reuse-distance distribution it computes one dot product per
//! SLIP and returns the argmin. The paper's synthesized 45 nm RTL runs
//! one optimization per cycle at a 2-cycle latency, costs 1.27 pJ per
//! operation, and occupies 0.00366 mm² — constants carried here as
//! [`EouCost`] so the simulator can charge them.

use crate::model::{coefficients, coefficients_paper, LevelModelParams};
use crate::rd_dist::RdDistribution;
use crate::slip::Slip;
use energy_model::Energy;

/// Which analytical objective the EOU's coefficient tables encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EouObjective {
    /// Eq. 1–4 plus the insertion term `Ē₀ · P(d > CC_M)` (each miss
    /// re-inserts the line into chunk 0). Required for the All-Bypass
    /// Policy to ever win; the default.
    #[default]
    InsertionAware,
    /// The paper's published Eq. 1–4 verbatim (access + movement +
    /// miss only). Pure-miss lines tie all caching SLIPs, and the
    /// Default-favoring tie-break leaves them spread across the cache.
    PaperLiteral,
}

/// Hardware cost of one EOU instance (paper Section 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EouCost {
    /// Latency of one optimization, in processor cycles.
    pub latency_cycles: u32,
    /// Optimizations accepted per cycle (fully pipelined).
    pub throughput_per_cycle: u32,
    /// Energy per optimization, including pipeline registers.
    pub energy_per_op: Energy,
    /// Synthesized area in mm² (TSMC 45 nm).
    pub area_mm2: f64,
}

impl EouCost {
    /// The paper's synthesized 45 nm figures.
    pub fn paper_45nm() -> Self {
        EouCost {
            latency_cycles: 2,
            throughput_per_cycle: 1,
            energy_per_op: Energy::from_pj(1.27),
            area_mm2: 0.003_66,
        }
    }
}

/// The decision produced by one EOU optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EouDecision {
    /// The energy-minimizing SLIP.
    pub slip: Slip,
    /// The model's estimated per-access energy under that SLIP.
    pub estimated_energy: Energy,
}

/// An Energy Optimizer Unit for one cache level.
///
/// # Example
///
/// ```
/// use energy_model::{Energy, TECH_45NM};
/// use slip_core::{EnergyOptimizerUnit, LevelModelParams, RdDistribution};
///
/// let params = LevelModelParams::from_level(
///     &TECH_45NM.l2,
///     TECH_45NM.l3.mean_access(),
/// );
/// let mut eou = EnergyOptimizerUnit::new(&params);
///
/// // A line that always misses: the EOU chooses the All-Bypass Policy.
/// let mut dist = RdDistribution::paper_default();
/// for _ in 0..15 { dist.observe(3); }
/// let decision = eou.optimize(&dist);
/// assert!(decision.slip.is_all_bypass());
/// ```
#[derive(Debug, Clone)]
pub struct EnergyOptimizerUnit {
    sublevels: usize,
    /// Coefficients per candidate row (`sublevels + 1` bins).
    bins: usize,
    /// Candidate SLIPs in code order (code 0 = All-Bypass Policy).
    slips: Vec<Slip>,
    /// Flattened coefficient matrix, `matrix[code * bins + bin]` — one
    /// contiguous Eq. 5 `α` row per candidate so the argmin kernel
    /// streams the whole table in a single pass.
    matrix: Vec<Energy>,
    /// Reusable probability scratch so `optimize` never allocates.
    probs: Vec<f64>,
    default_slip: Slip,
    cost: EouCost,
    /// When cleared, the All-Bypass Policy is excluded from the
    /// candidate pool ("SLIP" vs "SLIP+ABP" in the paper's figures).
    allow_abp: bool,
    /// Optimizations performed (for energy accounting).
    ops: u64,
}

impl PartialEq for EnergyOptimizerUnit {
    fn eq(&self, other: &Self) -> bool {
        // `probs` is transient scratch, not observable state.
        self.sublevels == other.sublevels
            && self.slips == other.slips
            && self.matrix == other.matrix
            && self.default_slip == other.default_slip
            && self.cost == other.cost
            && self.allow_abp == other.allow_abp
            && self.ops == other.ops
    }
}

impl EnergyOptimizerUnit {
    /// Builds an EOU for a level, precomputing the coefficient vectors
    /// of all `2^S` candidate SLIPs.
    pub fn new(params: &LevelModelParams) -> Self {
        Self::with_objective(params, EouObjective::InsertionAware)
    }

    /// Builds an EOU with an explicit objective (see [`EouObjective`]).
    pub fn with_objective(params: &LevelModelParams, objective: EouObjective) -> Self {
        let s = params.sublevels();
        let bins = s + 1;
        let slips = Slip::enumerate(s);
        let mut matrix = Vec::with_capacity(slips.len() * bins);
        for &slip in &slips {
            let alpha = match objective {
                EouObjective::InsertionAware => coefficients(params, slip),
                EouObjective::PaperLiteral => coefficients_paper(params, slip),
            };
            assert_eq!(alpha.len(), bins, "one coefficient per bin");
            matrix.extend_from_slice(&alpha);
        }
        EnergyOptimizerUnit {
            sublevels: s,
            bins,
            slips,
            matrix,
            probs: vec![0.0; bins],
            default_slip: Slip::default_slip(s).expect("1..=8 sublevels"),
            cost: EouCost::paper_45nm(),
            allow_abp: true,
            ops: 0,
        }
    }

    /// Overrides the hardware cost constants.
    pub fn with_cost(mut self, cost: EouCost) -> Self {
        self.cost = cost;
        self
    }

    /// Excludes the All-Bypass Policy from the candidate pool. The
    /// paper evaluates both configurations: "SLIP" (no ABP) and
    /// "SLIP+ABP".
    pub fn forbid_all_bypass(mut self) -> Self {
        self.allow_abp = false;
        self
    }

    /// `true` if the All-Bypass Policy may be chosen.
    pub fn allows_all_bypass(&self) -> bool {
        self.allow_abp
    }

    /// Number of candidate SLIPs (the paper's `P = 2^S`).
    pub fn candidates(&self) -> usize {
        self.slips.len()
    }

    /// The hardware cost constants of this unit.
    pub fn cost(&self) -> EouCost {
        self.cost
    }

    /// Optimizations performed so far.
    pub fn operations(&self) -> u64 {
        self.ops
    }

    /// Total EOU energy consumed so far.
    pub fn energy_consumed(&self) -> Energy {
        self.cost.energy_per_op * self.ops as f64
    }

    /// Zeroes the operation counter (for post-warmup measurement).
    pub fn reset_operations(&mut self) {
        self.ops = 0;
    }

    /// Finds the energy-minimizing SLIP for a distribution.
    ///
    /// An empty distribution (warmup) yields the Default SLIP, as the
    /// paper prescribes. Ties favor the Default SLIP, then the lower
    /// code.
    ///
    /// Allocation-free: the bin probabilities land in an internal
    /// scratch buffer and the argmin runs as one fused pass over the
    /// flat coefficient matrix ([`best_slip`](Self::best_slip)). The
    /// result is bit-identical to the pre-kernel implementation, kept
    /// as [`optimize_reference`](Self::optimize_reference).
    pub fn optimize(&mut self, dist: &RdDistribution) -> EouDecision {
        self.ops += 1;
        dist.write_probabilities(&mut self.probs);
        if dist.is_empty() {
            return EouDecision {
                slip: self.default_slip,
                estimated_energy: self.dot(self.default_slip.code() as usize, &self.probs),
            };
        }
        self.best_slip(&self.probs)
    }

    /// The seed (pre-kernel) implementation of
    /// [`optimize`](Self::optimize): allocates a fresh probability
    /// vector and folds each candidate's dot product through iterator
    /// `Sum`. Kept verbatim so golden-equivalence tests can prove the
    /// fused kernel is bit-identical.
    pub fn optimize_reference(&mut self, dist: &RdDistribution) -> EouDecision {
        self.ops += 1;
        if dist.is_empty() {
            let probs = dist.probabilities();
            return EouDecision {
                slip: self.default_slip,
                estimated_energy: self.evaluate(self.default_slip, &probs),
            };
        }
        let probs = dist.probabilities();
        // Seed with the Default SLIP so ties keep regular behavior.
        let mut best = self.default_slip;
        let mut best_e = self.evaluate(best, &probs);
        for (code, &slip) in self.slips.iter().enumerate() {
            if slip.is_all_bypass() && !self.allow_abp {
                continue;
            }
            let alpha = &self.matrix[code * self.bins..(code + 1) * self.bins];
            let e: Energy = alpha.iter().zip(&probs).map(|(&a, &p)| a * p).sum();
            if e < best_e {
                best = slip;
                best_e = e;
            }
        }
        EouDecision {
            slip: best,
            estimated_energy: best_e,
        }
    }

    /// The fused dot-product/argmin kernel: one pass over the flat
    /// coefficient matrix, no allocation. Ties favor the Default SLIP,
    /// then the lower code, exactly as [`optimize`](Self::optimize).
    ///
    /// Vectorized with the same explicit-lane discipline as the cache
    /// probe's SWAR path: four candidate rows are evaluated per
    /// iteration into independent `[Energy; 4]` lane accumulators.
    /// Each lane folds its own row front-to-back — the exact add/mul
    /// sequence of [`dot`](Self::dot) — and the four results are
    /// compared in code order with strict `<`, so the decision and its
    /// energy are bit-identical to the scalar kernel
    /// ([`best_slip_scalar`](Self::best_slip_scalar)), including NaN,
    /// denormal, and tied-cost rows.
    ///
    /// # Panics
    ///
    /// Panics if the probability slice length disagrees with the bin
    /// count.
    pub fn best_slip(&self, probs: &[f64]) -> EouDecision {
        assert_eq!(probs.len(), self.bins, "one probability per bin");
        // Seed with the Default SLIP so ties keep regular behavior.
        let mut best = self.default_slip;
        let mut best_e = self.dot(best.code() as usize, probs);
        // Code 0 is the All-Bypass Policy; skip it when forbidden.
        let start = usize::from(!self.allow_abp);
        let n = self.slips.len();
        let bins = self.bins;
        let mut code = start;
        if bins == 4 {
            // Every paper configuration has 3 sublevels, so bins is 4
            // in practice; with the trip count fixed, each 4-row block
            // becomes a straight-line 4x4 multiply-accumulate — no
            // loop, no bounds checks. `Energy::ZERO +` leads each lane
            // so the fold order is exactly `dot`'s.
            let (p0, p1, p2, p3) = (probs[0], probs[1], probs[2], probs[3]);
            while code + 4 <= n {
                let r = &self.matrix[code * 4..code * 4 + 16];
                let acc = [
                    Energy::ZERO + r[0] * p0 + r[1] * p1 + r[2] * p2 + r[3] * p3,
                    Energy::ZERO + r[4] * p0 + r[5] * p1 + r[6] * p2 + r[7] * p3,
                    Energy::ZERO + r[8] * p0 + r[9] * p1 + r[10] * p2 + r[11] * p3,
                    Energy::ZERO + r[12] * p0 + r[13] * p1 + r[14] * p2 + r[15] * p3,
                ];
                for (lane, &e) in acc.iter().enumerate() {
                    if e < best_e {
                        best = self.slips[code + lane];
                        best_e = e;
                    }
                }
                code += 4;
            }
        }
        while code + 4 <= n {
            let rows = &self.matrix[code * bins..(code + 4) * bins];
            // Split into per-row slices so the zipped walk below is
            // bounds-check free — indexed `rows[k * bins + bin]` loads
            // cost more than the four extra dot products they replace.
            let (r0, rest) = rows.split_at(bins);
            let (r1, rest) = rest.split_at(bins);
            let (r2, r3) = rest.split_at(bins);
            let mut acc = [Energy::ZERO; 4];
            for ((((&p, &a0), &a1), &a2), &a3) in probs.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
                acc[0] += a0 * p;
                acc[1] += a1 * p;
                acc[2] += a2 * p;
                acc[3] += a3 * p;
            }
            for (lane, &e) in acc.iter().enumerate() {
                if e < best_e {
                    best = self.slips[code + lane];
                    best_e = e;
                }
            }
            code += 4;
        }
        for tail in code..n {
            let e = self.dot(tail, probs);
            if e < best_e {
                best = self.slips[tail];
                best_e = e;
            }
        }
        EouDecision {
            slip: best,
            estimated_energy: best_e,
        }
    }

    /// The scalar argmin kernel the vectorized
    /// [`best_slip`](Self::best_slip) must match bit-for-bit: one
    /// [`dot`](Self::dot) per candidate in code order, strict `<`.
    /// Kept as the equivalence reference for property tests.
    pub fn best_slip_scalar(&self, probs: &[f64]) -> EouDecision {
        assert_eq!(probs.len(), self.bins, "one probability per bin");
        let mut best = self.default_slip;
        let mut best_e = self.dot(best.code() as usize, probs);
        let start = usize::from(!self.allow_abp);
        for code in start..self.slips.len() {
            let e = self.dot(code, probs);
            if e < best_e {
                best = self.slips[code];
                best_e = e;
            }
        }
        EouDecision {
            slip: best,
            estimated_energy: best_e,
        }
    }

    /// One row dot product, accumulated in the same order as iterator
    /// `Sum` (fold from zero) so results stay bit-identical.
    #[inline]
    fn dot(&self, code: usize, probs: &[f64]) -> Energy {
        let row = &self.matrix[code * self.bins..(code + 1) * self.bins];
        let mut e = Energy::ZERO;
        for (&a, &p) in row.iter().zip(probs) {
            e += a * p;
        }
        e
    }

    /// Evaluates the model for one SLIP on bin probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the probability vector length disagrees with the bin
    /// count, or the SLIP belongs to a different sublevel count.
    pub fn evaluate(&self, slip: Slip, probs: &[f64]) -> Energy {
        assert_eq!(slip.sublevels(), self.sublevels, "sublevel mismatch");
        assert_eq!(probs.len(), self.sublevels + 1, "one probability per bin");
        let code = slip.code() as usize;
        let alpha = &self.matrix[code * self.bins..(code + 1) * self.bins];
        alpha.iter().zip(probs).map(|(&a, &p)| a * p).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::slip_energy;

    fn l2_params() -> LevelModelParams {
        LevelModelParams {
            sublevel_energy: vec![
                Energy::from_pj(21.0),
                Energy::from_pj(33.0),
                Energy::from_pj(50.0),
            ],
            sublevel_lines: vec![1024, 1024, 2048],
            next_level_energy: Energy::from_pj(136.0),
        }
    }

    fn l3_params() -> LevelModelParams {
        LevelModelParams {
            sublevel_energy: vec![
                Energy::from_pj(67.0),
                Energy::from_pj(113.0),
                Energy::from_pj(176.0),
            ],
            sublevel_lines: vec![8192, 8192, 16384],
            next_level_energy: Energy::from_pj(20.0 * 512.0),
        }
    }

    fn dist_from(counts: &[u16; 4]) -> RdDistribution {
        let mut d = RdDistribution::paper_default();
        for (bin, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                d.observe(bin);
            }
        }
        d
    }

    #[test]
    fn has_two_to_the_s_candidates() {
        let eou = EnergyOptimizerUnit::new(&l2_params());
        assert_eq!(eou.candidates(), 8);
    }

    #[test]
    fn empty_distribution_yields_default() {
        let mut eou = EnergyOptimizerUnit::new(&l2_params());
        let d = eou.optimize(&RdDistribution::paper_default());
        assert!(d.slip.is_default());
    }

    #[test]
    fn optimize_is_argmin_over_all_slips() {
        let mut eou = EnergyOptimizerUnit::new(&l2_params());
        let params = l2_params();
        for counts in [
            [15u16, 0, 0, 0],
            [0, 0, 0, 15],
            [10, 2, 1, 2],
            [2, 2, 2, 9],
            [8, 0, 4, 3],
            [1, 1, 1, 1],
        ] {
            let dist = dist_from(&counts);
            let probs = dist.probabilities();
            let decision = eou.optimize(&dist);
            for slip in Slip::enumerate(3) {
                let e = slip_energy(&params, slip, &probs);
                assert!(
                    decision.estimated_energy <= e + Energy::from_pj(1e-9),
                    "{slip} beats chosen {} for {counts:?}",
                    decision.slip
                );
            }
        }
    }

    #[test]
    fn streaming_lines_get_bypassed() {
        let mut eou = EnergyOptimizerUnit::new(&l2_params());
        let d = eou.optimize(&dist_from(&[0, 0, 0, 15]));
        assert!(d.slip.is_all_bypass());
    }

    #[test]
    fn forbidding_abp_excludes_it() {
        let mut eou = EnergyOptimizerUnit::new(&l2_params()).forbid_all_bypass();
        assert!(!eou.allows_all_bypass());
        let d = eou.optimize(&dist_from(&[0, 0, 0, 15]));
        assert!(!d.slip.is_all_bypass());
        // For a pure-miss line the cheapest non-ABP choice is the
        // smallest partial bypass {[0]}.
        assert_eq!(d.slip.to_string(), "{[0]}");
    }

    #[test]
    fn tight_loops_get_the_near_chunk() {
        let mut eou = EnergyOptimizerUnit::new(&l2_params());
        let d = eou.optimize(&dist_from(&[15, 0, 0, 0]));
        assert_eq!(d.slip.to_string(), "{[0]}");
        assert!((d.estimated_energy.as_pj() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn l3_rarely_bypasses() {
        // Even a 3%-hit line is worth caching at L3 because a DRAM miss
        // costs 10.24 nJ.
        let mut eou = EnergyOptimizerUnit::new(&l3_params());
        let d = eou.optimize(&dist_from(&[1, 0, 0, 14]));
        assert!(!d.slip.is_all_bypass());
    }

    #[test]
    fn operations_and_energy_are_counted() {
        let mut eou = EnergyOptimizerUnit::new(&l2_params());
        assert_eq!(eou.operations(), 0);
        eou.optimize(&dist_from(&[1, 0, 0, 0]));
        eou.optimize(&RdDistribution::paper_default());
        assert_eq!(eou.operations(), 2);
        assert!((eou.energy_consumed().as_pj() - 2.0 * 1.27).abs() < 1e-9);
    }

    #[test]
    fn paper_cost_constants() {
        let c = EouCost::paper_45nm();
        assert_eq!(c.latency_cycles, 2);
        assert_eq!(c.throughput_per_cycle, 1);
        assert!((c.energy_per_op.as_pj() - 1.27).abs() < 1e-12);
        assert!((c.area_mm2 - 0.00366).abs() < 1e-9);
    }

    #[test]
    fn kernel_matches_reference_bit_for_bit() {
        for forbid in [false, true] {
            let mut fast_eou = EnergyOptimizerUnit::new(&l2_params());
            let mut ref_eou = EnergyOptimizerUnit::new(&l2_params());
            if forbid {
                fast_eou = fast_eou.forbid_all_bypass();
                ref_eou = ref_eou.forbid_all_bypass();
            }
            for counts in [
                [0u16, 0, 0, 0],
                [15, 0, 0, 0],
                [0, 0, 0, 15],
                [10, 2, 1, 2],
                [2, 2, 2, 9],
                [8, 0, 4, 3],
                [1, 1, 1, 1],
                [3, 7, 11, 5],
            ] {
                let dist = dist_from(&counts);
                let fast = fast_eou.optimize(&dist);
                let slow = ref_eou.optimize_reference(&dist);
                assert_eq!(fast.slip, slow.slip, "{counts:?} forbid={forbid}");
                assert_eq!(
                    fast.estimated_energy.as_pj().to_bits(),
                    slow.estimated_energy.as_pj().to_bits(),
                    "{counts:?} forbid={forbid}"
                );
            }
            // Scratch contents are not state: both units compare equal.
            assert_eq!(fast_eou, ref_eou);
        }
    }

    #[test]
    fn simd_argmin_matches_scalar_bit_for_bit() {
        // Equal sublevel energies make many candidate rows tie exactly;
        // denormal and zero probabilities stress the lane accumulators'
        // rounding. The vectorized kernel must agree with the scalar
        // reference on the chosen slip AND the exact energy bits.
        let tied = LevelModelParams {
            sublevel_energy: vec![Energy::from_pj(25.0); 3],
            sublevel_lines: vec![1024, 1024, 1024],
            next_level_energy: Energy::from_pj(136.0),
        };
        let mut state = 0x851f_42d4_c957_f2d5u64;
        let mut next_f64 = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut cases: Vec<[f64; 4]> = vec![
            [0.0; 4],
            [0.25; 4],
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [1e-320; 4],
            [1e-320, 0.0, 1e-320, 0.0],
            [f64::MIN_POSITIVE, 1e-320, 0.5, 0.5],
        ];
        for _ in 0..500 {
            let raw = [next_f64(), next_f64(), next_f64(), next_f64()];
            let sum: f64 = raw.iter().sum();
            cases.push(if sum > 0.0 {
                [raw[0] / sum, raw[1] / sum, raw[2] / sum, raw[3] / sum]
            } else {
                raw
            });
        }
        for params in [l2_params(), l3_params(), tied] {
            for forbid in [false, true] {
                let mut eou = EnergyOptimizerUnit::new(&params);
                if forbid {
                    eou = eou.forbid_all_bypass();
                }
                for probs in &cases {
                    let fast = eou.best_slip(probs);
                    let slow = eou.best_slip_scalar(probs);
                    assert_eq!(fast.slip, slow.slip, "{probs:?} forbid={forbid}");
                    assert_eq!(
                        fast.estimated_energy.as_pj().to_bits(),
                        slow.estimated_energy.as_pj().to_bits(),
                        "{probs:?} forbid={forbid}"
                    );
                }
            }
        }
    }

    #[test]
    fn best_slip_is_pure_and_allocation_free_interface() {
        let eou = EnergyOptimizerUnit::new(&l2_params());
        let d = eou.best_slip(&[0.0, 0.0, 0.0, 1.0]);
        assert!(d.slip.is_all_bypass());
        // Repeated calls on &self give the same answer (no hidden state).
        let d2 = eou.best_slip(&[0.0, 0.0, 0.0, 1.0]);
        assert_eq!(d.slip, d2.slip);
        assert_eq!(eou.operations(), 0, "best_slip does not count as an op");
    }

    #[test]
    fn evaluate_matches_model() {
        let eou = EnergyOptimizerUnit::new(&l2_params());
        let params = l2_params();
        let probs = [0.5, 0.2, 0.1, 0.2];
        for slip in Slip::enumerate(3) {
            let a = eou.evaluate(slip, &probs).as_pj();
            let b = slip_energy(&params, slip, &probs).as_pj();
            assert!((a - b).abs() < 1e-9);
        }
    }
}
