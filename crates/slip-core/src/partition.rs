//! Way-partitioned SLIP for shared caches (paper Section 7).
//!
//! For CMPs, the paper argues SLIP is orthogonal to cache partitioning:
//! given any assignment of ways to cores, SLIP can run *within* each
//! core's partition to minimize its access energy. [`PartitionedSlip`]
//! implements that: it wraps a policy's decisions and intersects every
//! insertion/demotion mask with the owning core's way partition, so a
//! core's lines never displace another core's.
//!
//! Partitions should take an equal share of every sublevel (e.g. ways
//! {0,1,4,5,8,9,10,11} vs {2,3,6,7,12,13,14,15} under the paper's 4/4/8
//! split), so both cores see the same energy ladder; see
//! [`interleaved_partitions`].

use crate::placement::{SlipLevel, SlipPlacement};
use cache_sim::policy::{FillRequest, InsertionClass, PlacementPolicy};
use cache_sim::{CacheGeometry, LineState, WayMask};

/// Splits a geometry's ways into `n` partitions, each taking an equal
/// share of every sublevel (so every partition sees the same
/// near-to-far energy ladder).
///
/// # Panics
///
/// Panics if any sublevel's way count is not divisible by `n`.
pub fn interleaved_partitions(geom: &CacheGeometry, n: usize) -> Vec<WayMask> {
    assert!(n >= 1, "need at least one partition");
    let mut parts = vec![WayMask::EMPTY; n];
    for s in 0..geom.sublevels() {
        let ways: Vec<usize> = geom.sublevel_ways(s).iter().collect();
        assert_eq!(
            ways.len() % n,
            0,
            "sublevel {s} ways ({}) not divisible by {n} partitions",
            ways.len()
        );
        let share = ways.len() / n;
        for (p, chunk) in ways.chunks(share).enumerate() {
            for &w in chunk {
                parts[p] = parts[p].union(WayMask::single(w));
            }
        }
    }
    parts
}

/// SLIP placement restricted to one core's way partition.
///
/// # Example
///
/// ```
/// use cache_sim::{CacheGeometry, FillRequest, LineAddr, PlacementPolicy};
/// use energy_model::Energy;
/// use slip_core::{interleaved_partitions, PartitionedSlip, Slip, SlipLevel};
///
/// let geom = CacheGeometry::from_sublevels(
///     2048,
///     &[(4, Energy::from_pj(67.0), 15),
///       (4, Energy::from_pj(113.0), 19),
///       (8, Energy::from_pj(176.0), 23)],
/// );
/// let parts = interleaved_partitions(&geom, 2);
/// let mut core0 = PartitionedSlip::new(SlipLevel::L3, &geom, parts[0]);
///
/// let mut req = FillRequest::new(LineAddr(0));
/// req.slip_codes[1] = Slip::default_slip(3).unwrap().code();
/// let mask = core0.insertion_mask(&geom, &req).unwrap();
/// // Only core 0's 8 ways are eligible.
/// assert_eq!(mask, parts[0]);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedSlip {
    inner: SlipPlacement,
    partition: WayMask,
}

impl PartitionedSlip {
    /// Creates SLIP placement confined to `partition`.
    ///
    /// # Panics
    ///
    /// Panics if the partition misses any sublevel entirely (a SLIP
    /// chunk there would have no eligible ways).
    pub fn new(level: SlipLevel, geom: &CacheGeometry, partition: WayMask) -> Self {
        for s in 0..geom.sublevels() {
            assert!(
                !geom.sublevel_ways(s).intersect(partition).is_empty(),
                "partition must cover every sublevel (misses sublevel {s})"
            );
        }
        PartitionedSlip {
            inner: SlipPlacement::new(level, geom),
            partition,
        }
    }

    /// The way partition this policy is confined to.
    pub fn partition(&self) -> WayMask {
        self.partition
    }
}

impl PlacementPolicy for PartitionedSlip {
    fn name(&self) -> &'static str {
        "SLIP(partitioned)"
    }

    fn insertion_mask(&mut self, geom: &CacheGeometry, req: &FillRequest) -> Option<WayMask> {
        self.inner
            .insertion_mask(geom, req)
            .map(|m| m.intersect(self.partition))
    }

    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        line: &LineState,
        from_way: usize,
    ) -> Option<WayMask> {
        let m = self.inner.demotion_mask(geom, line, from_way)?;
        let restricted = m.intersect(self.partition);
        // A foreign line (placed by the other core's policy) displaced
        // from our partition would get an empty mask; evict it instead.
        if restricted.is_empty() {
            None
        } else {
            Some(restricted)
        }
    }

    fn classify_insertion(&self, geom: &CacheGeometry, req: &FillRequest) -> InsertionClass {
        self.inner.classify_insertion(geom, req)
    }

    fn uses_movement_queue(&self) -> bool {
        true
    }

    fn uses_line_metadata(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slip::Slip;
    use cache_sim::LineAddr;
    use energy_model::Energy;

    fn paper_l3() -> CacheGeometry {
        CacheGeometry::from_sublevels(
            64,
            &[
                (4, Energy::from_pj(67.0), 15),
                (4, Energy::from_pj(113.0), 19),
                (8, Energy::from_pj(176.0), 23),
            ],
        )
    }

    #[test]
    fn interleaved_partitions_cover_all_ways_disjointly() {
        let g = paper_l3();
        let parts = interleaved_partitions(&g, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].intersect(parts[1]), WayMask::EMPTY);
        assert_eq!(parts[0].union(parts[1]), WayMask::full(16));
        // Each partition holds half of every sublevel.
        for s in 0..3 {
            let sub = g.sublevel_ways(s);
            assert_eq!(parts[0].intersect(sub).count(), sub.count() / 2);
        }
    }

    #[test]
    fn four_way_partitioning_works_too() {
        let g = paper_l3();
        let parts = interleaved_partitions(&g, 4);
        assert_eq!(parts.len(), 4);
        let mut union = WayMask::EMPTY;
        for p in &parts {
            assert_eq!(p.count(), 4);
            union = union.union(*p);
        }
        assert_eq!(union, WayMask::full(16));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_partitioning_rejected() {
        interleaved_partitions(&paper_l3(), 3);
    }

    fn req_with(code: u8) -> FillRequest {
        let mut r = FillRequest::new(LineAddr(0));
        r.slip_codes = [code, code];
        r
    }

    #[test]
    fn insertion_and_demotion_stay_in_partition() {
        let g = paper_l3();
        let parts = interleaved_partitions(&g, 2);
        let mut p = PartitionedSlip::new(SlipLevel::L3, &g, parts[1]);
        let slip = Slip::from_chunk_ends(3, &[0, 2]).unwrap();
        let mask = p.insertion_mask(&g, &req_with(slip.code())).unwrap();
        assert!(!mask.is_empty());
        assert_eq!(mask.difference(parts[1]), WayMask::EMPTY);
        // Demotion from the partition's sublevel-0 way stays inside too.
        let way = mask.first().unwrap();
        let mut line = LineState::new(LineAddr(0));
        line.slip_codes = [slip.code(), slip.code()];
        let next = p.demotion_mask(&g, &line, way).unwrap();
        assert!(!next.is_empty());
        assert_eq!(next.difference(parts[1]), WayMask::EMPTY);
    }

    #[test]
    fn abp_still_bypasses() {
        let g = paper_l3();
        let parts = interleaved_partitions(&g, 2);
        let mut p = PartitionedSlip::new(SlipLevel::L3, &g, parts[0]);
        let abp = Slip::all_bypass(3).unwrap();
        assert_eq!(p.insertion_mask(&g, &req_with(abp.code())), None);
        assert_eq!(
            p.classify_insertion(&g, &req_with(abp.code())),
            InsertionClass::AllBypass
        );
    }

    #[test]
    #[should_panic(expected = "cover every sublevel")]
    fn partition_missing_a_sublevel_rejected() {
        let g = paper_l3();
        // Only sublevel-0 ways: demotions would have nowhere to go.
        PartitionedSlip::new(SlipLevel::L3, &g, WayMask::from_range(0..4));
    }
}
