//! The Sub-Level Insertion Policy representation (paper Section 3.1).
//!
//! A cache level with `S` sublevels admits exactly `2^S` SLIPs: pick how
//! many leading sublevels `m ∈ 0..=S` the policy uses (trailing
//! sublevels are bypassed — "skipping" interior sublevels is excluded,
//! as in the paper's footnote 1), then pick one of the `2^(m-1)` ways to
//! split those `m` sublevels into contiguous chunks. Summing,
//! `1 + Σ_{m=1..S} 2^(m-1) = 2^S`.
//!
//! A SLIP is stored in `S` bits using a self-delimiting code:
//!
//! * code `0` is the All-Bypass Policy (no chunks);
//! * for `m ≥ 1`, code `= 2^(m-1) | boundaries`, where bit `i` of
//!   `boundaries` (for `i < m-1`) marks a chunk boundary after sublevel
//!   `i`. The most-significant set bit of the code recovers `m`.
//!
//! For the paper's 3-sublevel levels this is the 3 b-per-level encoding
//! stored in the PTE.

use core::fmt;

/// Maximum number of sublevels supported by the 8-bit code.
pub const MAX_SUBLEVELS: usize = 8;

/// Error returned when constructing a [`Slip`] from invalid parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlipError {
    /// The sublevel count is 0 or exceeds [`MAX_SUBLEVELS`].
    BadSublevelCount(usize),
    /// The code does not denote a SLIP for the given sublevel count.
    BadCode(u8),
    /// The chunk list is not a partition of a prefix of the sublevels.
    BadChunks,
}

impl fmt::Display for SlipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlipError::BadSublevelCount(s) => {
                write!(f, "sublevel count {s} not in 1..={MAX_SUBLEVELS}")
            }
            SlipError::BadCode(c) => write!(f, "code {c} is not a valid SLIP code"),
            SlipError::BadChunks => write!(
                f,
                "chunks must partition a prefix of the sublevels in order"
            ),
        }
    }
}

impl std::error::Error for SlipError {}

/// One Sub-Level Insertion Policy over `S` sublevels.
///
/// # Example
///
/// ```
/// use slip_core::Slip;
///
/// // The paper's third motivating policy for a 3-sublevel L2:
/// // insert into sublevel 0; on eviction move into sublevels 1-2.
/// let slip = Slip::from_chunk_ends(3, &[0, 2]).unwrap();
/// assert_eq!(slip.num_chunks(), 2);
/// assert_eq!(slip.used_sublevels(), 3);
/// assert!(!slip.is_default() && !slip.is_all_bypass());
///
/// // Round-trips through its S-bit code.
/// let code = slip.code();
/// assert_eq!(Slip::from_code(3, code).unwrap(), slip);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slip {
    sublevels: u8,
    code: u8,
}

impl Slip {
    /// The All-Bypass Policy (no chunks) for `sublevels` sublevels.
    ///
    /// # Errors
    ///
    /// Fails if `sublevels` is not in `1..=8`.
    pub fn all_bypass(sublevels: usize) -> Result<Slip, SlipError> {
        check_sublevels(sublevels)?;
        Ok(Slip {
            sublevels: sublevels as u8,
            code: 0,
        })
    }

    /// The Default SLIP: one chunk containing every sublevel (the level
    /// behaves as a regular cache).
    ///
    /// # Errors
    ///
    /// Fails if `sublevels` is not in `1..=8`.
    pub fn default_slip(sublevels: usize) -> Result<Slip, SlipError> {
        check_sublevels(sublevels)?;
        Ok(Slip {
            sublevels: sublevels as u8,
            code: 1 << (sublevels - 1),
        })
    }

    /// Decodes a SLIP from its `S`-bit code.
    ///
    /// # Errors
    ///
    /// Fails if `sublevels` is out of range or `code >= 2^S`.
    pub fn from_code(sublevels: usize, code: u8) -> Result<Slip, SlipError> {
        check_sublevels(sublevels)?;
        if (code as usize) >= (1usize << sublevels) {
            return Err(SlipError::BadCode(code));
        }
        Ok(Slip {
            sublevels: sublevels as u8,
            code,
        })
    }

    /// Builds a SLIP from the (inclusive) end sublevel of each chunk.
    ///
    /// `ends` must be strictly increasing and start chunking at sublevel
    /// 0; e.g. `&[0, 2]` means chunk 0 = sublevel 0, chunk 1 = sublevels
    /// 1..=2. An empty slice yields the All-Bypass Policy.
    ///
    /// # Errors
    ///
    /// Fails if the ends are not strictly increasing within range.
    pub fn from_chunk_ends(sublevels: usize, ends: &[usize]) -> Result<Slip, SlipError> {
        check_sublevels(sublevels)?;
        if ends.is_empty() {
            return Slip::all_bypass(sublevels);
        }
        let m = *ends.last().expect("nonempty") + 1;
        if m > sublevels {
            return Err(SlipError::BadChunks);
        }
        let mut boundaries = 0u8;
        let mut prev: Option<usize> = None;
        for (i, &e) in ends.iter().enumerate() {
            if let Some(p) = prev {
                if e <= p {
                    return Err(SlipError::BadChunks);
                }
            }
            prev = Some(e);
            // Every chunk end but the last marks a boundary after it.
            if i + 1 < ends.len() {
                boundaries |= 1 << e;
            }
        }
        let code = (1u8 << (m - 1)) | boundaries;
        debug_assert!((code as usize) < (1usize << sublevels));
        Ok(Slip {
            sublevels: sublevels as u8,
            code,
        })
    }

    /// Enumerates all `2^S` SLIPs for `sublevels` sublevels, in code
    /// order (code 0 = All-Bypass first).
    ///
    /// # Panics
    ///
    /// Panics if `sublevels` is not in `1..=8`.
    pub fn enumerate(sublevels: usize) -> Vec<Slip> {
        check_sublevels(sublevels).expect("sublevels in 1..=8");
        (0..(1u16 << sublevels))
            .map(|c| Slip {
                sublevels: sublevels as u8,
                code: c as u8,
            })
            .collect()
    }

    /// The `S`-bit code of this SLIP.
    pub fn code(self) -> u8 {
        self.code
    }

    /// Number of sublevels of the level this SLIP applies to.
    pub fn sublevels(self) -> usize {
        self.sublevels as usize
    }

    /// Number of leading sublevels this SLIP uses (`m`); bypassed
    /// trailing sublevels are not counted.
    pub fn used_sublevels(self) -> usize {
        if self.code == 0 {
            0
        } else {
            8 - self.code.leading_zeros() as usize
        }
    }

    /// Number of chunks (`M`).
    pub fn num_chunks(self) -> usize {
        if self.code == 0 {
            0
        } else {
            let m = self.used_sublevels();
            let boundaries = self.code & !(1 << (m - 1));
            1 + boundaries.count_ones() as usize
        }
    }

    /// `true` for the All-Bypass Policy.
    pub fn is_all_bypass(self) -> bool {
        self.code == 0
    }

    /// `true` for the Default SLIP (one chunk of all sublevels).
    pub fn is_default(self) -> bool {
        self.code == 1 << (self.sublevels - 1)
    }

    /// `true` if this SLIP bypasses at least one sublevel (including the
    /// All-Bypass Policy).
    pub fn bypasses_sublevels(self) -> bool {
        self.used_sublevels() < self.sublevels()
    }

    /// The chunks of this SLIP as inclusive sublevel ranges, nearest
    /// chunk first.
    pub fn chunks(self) -> Vec<core::ops::RangeInclusive<usize>> {
        let m = self.used_sublevels();
        if m == 0 {
            return Vec::new();
        }
        let boundaries = self.code & !(1 << (m - 1));
        let mut out = Vec::new();
        let mut start = 0usize;
        for s in 0..m {
            let is_boundary = s + 1 < m && boundaries & (1 << s) != 0;
            if is_boundary || s + 1 == m {
                out.push(start..=s);
                start = s + 1;
            }
        }
        out
    }

    /// The chunk index containing sublevel `s`, if this SLIP uses it.
    pub fn chunk_of_sublevel(self, s: usize) -> Option<usize> {
        self.chunks().iter().position(|c| c.contains(&s))
    }
}

impl fmt::Display for Slip {
    /// Formats in the paper's notation, e.g. `{[0],[1,2]}` (sublevel
    /// indices), `{}` for the All-Bypass Policy.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.chunks().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "[")?;
            for (j, s) in c.clone().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, "]")?;
        }
        write!(f, "}}")
    }
}

fn check_sublevels(s: usize) -> Result<(), SlipError> {
    if (1..=MAX_SUBLEVELS).contains(&s) {
        Ok(())
    } else {
        Err(SlipError::BadSublevelCount(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumeration_count_is_two_to_the_s() {
        for s in 1..=8 {
            assert_eq!(Slip::enumerate(s).len(), 1 << s, "S = {s}");
        }
    }

    #[test]
    fn three_sublevel_enumeration_matches_paper_example() {
        // Paper §3.1 lists for a 3-way cache (1 way per sublevel):
        // {}, {[0]}, {[0,1]}, {[0],[1]}, {[0,1,2]}, {[0,1],[2]},
        // {[0],[1,2]}, {[0],[1],[2]}.
        let all: HashSet<String> = Slip::enumerate(3)
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        for expect in [
            "{}",
            "{[0]}",
            "{[0,1]}",
            "{[0],[1]}",
            "{[0,1,2]}",
            "{[0,1],[2]}",
            "{[0],[1,2]}",
            "{[0],[1],[2]}",
        ] {
            assert!(all.contains(expect), "missing {expect} in {all:?}");
        }
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn code_round_trips() {
        for s in 1..=8 {
            for slip in Slip::enumerate(s) {
                let back = Slip::from_code(s, slip.code()).unwrap();
                assert_eq!(back, slip);
                assert_eq!(back.chunks(), slip.chunks());
            }
        }
    }

    #[test]
    fn chunk_ends_round_trip() {
        for slip in Slip::enumerate(4) {
            let ends: Vec<usize> = slip.chunks().iter().map(|c| *c.end()).collect();
            let back = Slip::from_chunk_ends(4, &ends).unwrap();
            assert_eq!(back, slip, "ends {ends:?}");
        }
    }

    #[test]
    fn special_slips() {
        let abp = Slip::all_bypass(3).unwrap();
        assert!(abp.is_all_bypass());
        assert_eq!(abp.num_chunks(), 0);
        assert_eq!(abp.used_sublevels(), 0);
        assert_eq!(abp.to_string(), "{}");

        let def = Slip::default_slip(3).unwrap();
        assert!(def.is_default());
        assert_eq!(def.num_chunks(), 1);
        assert_eq!(def.used_sublevels(), 3);
        assert_eq!(def.to_string(), "{[0,1,2]}");
        assert_eq!(def.code(), 0b100);
    }

    #[test]
    fn chunks_partition_used_prefix() {
        for s in 1..=6 {
            for slip in Slip::enumerate(s) {
                let chunks = slip.chunks();
                let mut next = 0usize;
                for c in &chunks {
                    assert_eq!(*c.start(), next, "{slip}");
                    next = *c.end() + 1;
                }
                assert_eq!(next, slip.used_sublevels(), "{slip}");
            }
        }
    }

    #[test]
    fn chunk_of_sublevel_consistency() {
        let slip = Slip::from_chunk_ends(3, &[0, 2]).unwrap();
        assert_eq!(slip.chunk_of_sublevel(0), Some(0));
        assert_eq!(slip.chunk_of_sublevel(1), Some(1));
        assert_eq!(slip.chunk_of_sublevel(2), Some(1));
        let partial = Slip::from_chunk_ends(3, &[1]).unwrap();
        assert_eq!(partial.chunk_of_sublevel(2), None);
        assert!(partial.bypasses_sublevels());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert_eq!(Slip::from_code(0, 0), Err(SlipError::BadSublevelCount(0)));
        assert_eq!(Slip::from_code(9, 0), Err(SlipError::BadSublevelCount(9)));
        assert_eq!(Slip::from_code(3, 8), Err(SlipError::BadCode(8)));
        assert_eq!(Slip::from_chunk_ends(3, &[1, 1]), Err(SlipError::BadChunks));
        assert_eq!(Slip::from_chunk_ends(3, &[2, 1]), Err(SlipError::BadChunks));
        assert_eq!(Slip::from_chunk_ends(3, &[3]), Err(SlipError::BadChunks));
    }

    #[test]
    fn display_of_errors() {
        assert!(SlipError::BadCode(9).to_string().contains("9"));
        assert!(SlipError::BadSublevelCount(0).to_string().contains("0"));
        assert!(!SlipError::BadChunks.to_string().is_empty());
    }

    #[test]
    fn paper_way_notation_example() {
        // The paper's {[0,1,2,3],[4..15]} over ways maps to sublevel
        // chunks {[0],[1,2]} with the 4/4/8 sublevel split.
        let slip = Slip::from_chunk_ends(3, &[0, 2]).unwrap();
        assert_eq!(slip.to_string(), "{[0],[1,2]}");
    }
}
