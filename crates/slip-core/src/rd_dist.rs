//! Quantized reuse-distance distributions (paper Section 4.1).
//!
//! SLIP stores, per page and per cache level, the distribution of reuse
//! distances of the page's lines over `K + 1` bins, where `K` is the
//! number of sublevels: bin `i < K` counts references with reuse
//! distance in `[CC_{i-1}, CC_i)` lines (`CC` = cumulative sublevel
//! capacity), and the last bin counts references beyond the level's
//! used capacity — including all misses. Each bin is a low-precision
//! saturating counter (4 bits in the paper); when a bin would overflow,
//! *all* bins are halved, which both avoids saturation and exponentially
//! decays stale history.

use core::fmt;

/// Number of distribution bins used by the paper (3 sublevels + 1).
pub const PAPER_BINS: usize = 4;

/// Counter width used by the paper.
pub const PAPER_BIN_BITS: u32 = 4;

/// A quantized reuse-distance distribution.
///
/// # Example
///
/// ```
/// use slip_core::RdDistribution;
///
/// let mut d = RdDistribution::paper_default();
/// for _ in 0..3 {
///     d.observe(0); // three near reuses
/// }
/// d.observe(3); // one miss
/// let p = d.probabilities();
/// assert!((p[0] - 0.75).abs() < 1e-12);
/// assert!((p[3] - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RdDistribution {
    counts: Vec<u16>,
    max_count: u16,
}

impl RdDistribution {
    /// Creates a zeroed distribution with `bins` bins of `bits`-wide
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `bits` is not in `1..=16`.
    pub fn new(bins: usize, bits: u32) -> Self {
        assert!(bins > 0, "at least one bin required");
        assert!((1..=16).contains(&bits), "counter width must be 1..=16");
        RdDistribution {
            counts: vec![0; bins],
            max_count: ((1u32 << bits) - 1) as u16,
        }
    }

    /// The paper's configuration: 4 bins x 4 bits.
    pub fn paper_default() -> Self {
        Self::new(PAPER_BINS, PAPER_BIN_BITS)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Maximum value a counter may hold.
    pub fn max_count(&self) -> u16 {
        self.max_count
    }

    /// Raw counter values.
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Sum of all counters.
    pub fn total(&self) -> u32 {
        self.counts.iter().map(|&c| u32::from(c)).sum()
    }

    /// `true` if no observations have been recorded (or all have decayed
    /// away).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Records one reference whose reuse distance falls in `bin`.
    ///
    /// If the bin counter is saturated, all counters are halved first
    /// (paper Section 4.1: `[4, 15, 0, 12]` + overflow in bin 1 becomes
    /// `[2, 8, 0, 6]` including the new observation).
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    pub fn observe(&mut self, bin: usize) {
        assert!(bin < self.counts.len(), "bin {bin} out of range");
        if self.counts[bin] == self.max_count {
            for c in &mut self.counts {
                *c /= 2;
            }
        }
        self.counts[bin] += 1;
    }

    /// Normalized probabilities per bin (`P_x^d` aggregated to bins).
    /// All-zero counts yield a uniform distribution, matching the
    /// paper's treatment of unknown reuse behavior as Default-SLIP-like.
    ///
    /// Thin allocating wrapper over
    /// [`write_probabilities`](Self::write_probabilities); hot paths
    /// should reuse a buffer with that method instead.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.counts.len()];
        self.write_probabilities(&mut out);
        out
    }

    /// Writes the normalized bin probabilities into a caller-owned
    /// buffer (the allocation-free form of
    /// [`probabilities`](Self::probabilities); identical values, bit
    /// for bit).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the bin count.
    pub fn write_probabilities(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.counts.len(), "one slot per bin");
        let total = self.total();
        if total == 0 {
            out.fill(1.0 / self.counts.len() as f64);
            return;
        }
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = f64::from(c) / total as f64;
        }
    }

    /// Fixed-point (Q16) variant of
    /// [`write_probabilities`](Self::write_probabilities) for
    /// integer-only consumers: each slot gets
    /// `floor(count * 2^16 / total)` (or `floor(2^16 / bins)` when
    /// empty), so a hardware EOU can run the Eq. 5 dot products without
    /// a floating-point unit.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the bin count.
    pub fn write_probabilities_q16(&self, out: &mut [u32]) {
        assert_eq!(out.len(), self.counts.len(), "one slot per bin");
        let total = self.total();
        if total == 0 {
            out.fill((1u32 << 16) / self.counts.len() as u32);
            return;
        }
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = ((u64::from(c) << 16) / u64::from(total)) as u32;
        }
    }

    /// Packs the counters into a little-endian bit string (16 bits for
    /// the paper configuration), the form stored per page in DRAM.
    ///
    /// # Panics
    ///
    /// Panics if the configuration needs more than 64 bits.
    pub fn to_bits(&self) -> u64 {
        let width = 16 - self.max_count.leading_zeros();
        assert!(
            width as usize * self.counts.len() <= 64,
            "packed distribution exceeds 64 bits"
        );
        let mut out = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            out |= u64::from(c) << (i as u32 * width);
        }
        out
    }

    /// Unpacks a distribution packed by [`to_bits`](Self::to_bits) with
    /// the same geometry.
    pub fn from_bits(bins: usize, bits: u32, packed: u64) -> Self {
        let mut d = Self::new(bins, bits);
        let mask = u64::from(d.max_count);
        for i in 0..bins {
            d.counts[i] = ((packed >> (i as u32 * bits)) & mask) as u16;
        }
        d
    }

    /// Storage size of the packed form, in bits.
    pub fn storage_bits(&self) -> u32 {
        let width = 16 - self.max_count.leading_zeros();
        width * self.counts.len() as u32
    }
}

impl fmt::Display for RdDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Maps a reuse distance in lines to its distribution bin, given the
/// cumulative sublevel capacities `CC_i` in lines (paper Section 4.1).
///
/// Distances below `cumulative[0]` land in bin 0; distances at or above
/// the last capacity land in the final bin `cumulative.len()`.
///
/// # Example
///
/// ```
/// use slip_core::bin_for_distance;
///
/// let cc = [1024, 2048, 4096]; // paper L2 sublevels in lines
/// assert_eq!(bin_for_distance(100, &cc), 0);
/// assert_eq!(bin_for_distance(1024, &cc), 1);
/// assert_eq!(bin_for_distance(4095, &cc), 2);
/// assert_eq!(bin_for_distance(1 << 30, &cc), 3);
/// ```
pub fn bin_for_distance(distance: u64, cumulative: &[usize]) -> usize {
    cumulative
        .iter()
        .position(|&cc| distance < cc as u64)
        .unwrap_or(cumulative.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_halving_example() {
        // Paper §4.1: counts [4, 15, 0, 12], new access in the bin
        // holding 15 => [2, 8, 0, 6].
        let mut d = RdDistribution::paper_default();
        d.counts = vec![4, 15, 0, 12];
        d.observe(1);
        assert_eq!(d.counts(), &[2, 8, 0, 6]);
    }

    #[test]
    fn counters_never_exceed_max() {
        let mut d = RdDistribution::paper_default();
        for _ in 0..1000 {
            d.observe(2);
        }
        assert!(d.counts().iter().all(|&c| c <= d.max_count()));
    }

    #[test]
    fn empty_distribution_is_uniform() {
        let d = RdDistribution::paper_default();
        assert!(d.is_empty());
        assert_eq!(d.probabilities(), vec![0.25; 4]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut d = RdDistribution::paper_default();
        for bin in [0, 0, 1, 3, 3, 3, 2] {
            d.observe(bin);
        }
        let sum: f64 = d.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn write_probabilities_matches_allocating_form() {
        let mut d = RdDistribution::paper_default();
        for bin in [0, 0, 1, 3, 3, 3, 2] {
            d.observe(bin);
        }
        let mut buf = [0.0f64; 4];
        d.write_probabilities(&mut buf);
        for (a, b) in buf.iter().zip(&d.probabilities()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn q16_probabilities_track_the_float_form() {
        let mut d = RdDistribution::paper_default();
        let mut q = [0u32; 4];
        d.write_probabilities_q16(&mut q);
        assert_eq!(q, [16384; 4], "empty distribution is uniform");
        for bin in [0, 0, 0, 3] {
            d.observe(bin);
        }
        d.write_probabilities_q16(&mut q);
        assert_eq!(q, [49152, 0, 0, 16384]);
        for (qi, pi) in q.iter().zip(&d.probabilities()) {
            assert!((f64::from(*qi) / 65536.0 - pi).abs() < 1.0 / 65536.0);
        }
    }

    #[test]
    #[should_panic(expected = "one slot per bin")]
    fn write_probabilities_rejects_wrong_len() {
        RdDistribution::paper_default().write_probabilities(&mut [0.0; 3]);
    }

    #[test]
    fn pack_round_trip() {
        let mut d = RdDistribution::paper_default();
        for bin in [0, 1, 1, 2, 3, 3, 3, 3, 0] {
            d.observe(bin);
        }
        let packed = d.to_bits();
        let back = RdDistribution::from_bits(4, 4, packed);
        assert_eq!(back, d);
        assert_eq!(d.storage_bits(), 16);
    }

    #[test]
    fn storage_matches_paper_claims() {
        // One 4x4 distribution = 16 b; two per page (L2 + L3) = 32 b,
        // the paper's per-page DRAM overhead.
        let d = RdDistribution::paper_default();
        assert_eq!(2 * d.storage_bits(), 32);
    }

    #[test]
    fn narrow_counters_saturate_faster() {
        let mut d = RdDistribution::new(4, 2);
        assert_eq!(d.max_count(), 3);
        for _ in 0..3 {
            d.observe(0);
        }
        d.observe(1);
        // Bin 0 is full (3) but bin 1's observe does not halve.
        assert_eq!(d.counts(), &[3, 1, 0, 0]);
        d.observe(0); // halves: [1, 0, 0, 0] then +1 -> [2, 0, 0, 0]
        assert_eq!(d.counts(), &[2, 0, 0, 0]);
    }

    #[test]
    fn bin_for_distance_edges() {
        let cc = [1024usize, 2048, 4096];
        assert_eq!(bin_for_distance(0, &cc), 0);
        assert_eq!(bin_for_distance(1023, &cc), 0);
        assert_eq!(bin_for_distance(1024, &cc), 1);
        assert_eq!(bin_for_distance(2047, &cc), 1);
        assert_eq!(bin_for_distance(2048, &cc), 2);
        assert_eq!(bin_for_distance(4096, &cc), 3);
        assert_eq!(bin_for_distance(u64::MAX, &cc), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_rejects_bad_bin() {
        RdDistribution::paper_default().observe(4);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_zero_width() {
        RdDistribution::new(4, 0);
    }

    #[test]
    fn display_shows_counts() {
        let mut d = RdDistribution::paper_default();
        d.observe(0);
        d.observe(3);
        assert_eq!(d.to_string(), "[1, 0, 0, 1]");
    }
}
