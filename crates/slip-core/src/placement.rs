//! The SLIP placement policy: the state machine of paper Figure 6,
//! expressed as a [`cache_sim::PlacementPolicy`].
//!
//! * **Insertion**: a line's 3 b SLIP code (delivered with the fill
//!   request from the TLB/PTE) selects chunk `C_0`; the victim is chosen
//!   inside `C_0` by the underlying replacement policy. The All-Bypass
//!   code skips the level.
//! * **Demotion**: a line displaced from a way in chunk `C_i` of *its
//!   own* SLIP moves into `C_{i+1}`; from the last chunk it leaves the
//!   level (written back if dirty).
//! * **No promotion**: SLIP never moves lines on hits — that is the
//!   core energy argument against NUCA promotion policies.
//!
//! The optional *sublevel-randomized victimization* implements paper
//! Section 7: to preserve DRRIP/SHiP's scan and thrash resistance, the
//! victim chunk is first narrowed to one random sublevel, chosen in
//! proportion to sublevel sizes.

use crate::slip::Slip;
use cache_sim::policy::{FillRequest, InsertionClass, PlacementPolicy};
use cache_sim::rng::SplitMix64;
use cache_sim::{CacheGeometry, LineState, WayMask};

/// Which per-line SLIP code a level consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlipLevel {
    /// Use `slip_codes[0]` (the L2 SLIP).
    L2,
    /// Use `slip_codes[1]` (the L3 SLIP).
    L3,
}

impl SlipLevel {
    /// Index into the 2-entry `slip_codes` arrays.
    pub fn index(self) -> usize {
        match self {
            SlipLevel::L2 => 0,
            SlipLevel::L3 => 1,
        }
    }
}

/// SLIP placement for one cache level.
///
/// # Example
///
/// ```
/// use cache_sim::{CacheGeometry, FillRequest, LineAddr, PlacementPolicy,
///                 WayMask};
/// use energy_model::Energy;
/// use slip_core::{Slip, SlipLevel, SlipPlacement};
///
/// let geom = CacheGeometry::from_sublevels(
///     256,
///     &[(4, Energy::from_pj(21.0), 4),
///       (4, Energy::from_pj(33.0), 6),
///       (8, Energy::from_pj(50.0), 8)],
/// );
/// let mut policy = SlipPlacement::new(SlipLevel::L2, &geom);
///
/// // A {[S0],[S1,S2]} line inserts into the nearest 4 ways.
/// let slip = Slip::from_chunk_ends(3, &[0, 2]).unwrap();
/// let mut req = FillRequest::new(LineAddr(0));
/// req.slip_codes[0] = slip.code();
/// assert_eq!(policy.insertion_mask(&geom, &req),
///            Some(WayMask::from_range(0..4)));
/// ```
#[derive(Debug, Clone)]
pub struct SlipPlacement {
    level: SlipLevel,
    sublevels: usize,
    /// Way mask per sublevel, cached from the geometry.
    sublevel_masks: Vec<WayMask>,
    /// Way count per sublevel (weights for randomized victimization).
    sublevel_weights: Vec<u64>,
    randomize_sublevel: bool,
    rng: SplitMix64,
}

impl SlipPlacement {
    /// Creates SLIP placement for `level` over `geom`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has no sublevels or more than 8.
    pub fn new(level: SlipLevel, geom: &CacheGeometry) -> Self {
        let s = geom.sublevels();
        assert!((1..=8).contains(&s), "1..=8 sublevels required");
        let sublevel_masks: Vec<WayMask> = (0..s).map(|i| geom.sublevel_ways(i)).collect();
        let sublevel_weights = sublevel_masks.iter().map(|m| m.count() as u64).collect();
        SlipPlacement {
            level,
            sublevels: s,
            sublevel_masks,
            sublevel_weights,
            randomize_sublevel: false,
            rng: SplitMix64::new(0x51ae_c0de),
        }
    }

    /// Enables Section 7's sublevel-randomized victimization (for use
    /// with DRRIP/SHiP replacement).
    pub fn with_randomized_victim_sublevel(mut self, seed: u64) -> Self {
        self.randomize_sublevel = true;
        self.rng = SplitMix64::new(seed);
        self
    }

    /// The level whose SLIP codes this policy consumes.
    pub fn level(&self) -> SlipLevel {
        self.level
    }

    fn slip_of_code(&self, code: u8) -> Slip {
        // Mask in usize: `1u8 << 8` would overflow for S = 8.
        let mask = (1usize << self.sublevels) - 1;
        Slip::from_code(self.sublevels, (code as usize & mask) as u8)
            .expect("masked code is always in range")
    }

    fn chunk_mask(&mut self, chunk: core::ops::RangeInclusive<usize>) -> WayMask {
        if self.randomize_sublevel && chunk.clone().count() > 1 {
            let lo = *chunk.start();
            let weights: Vec<u64> = self.sublevel_weights[chunk.clone()].to_vec();
            let pick = lo + self.rng.pick_weighted(&weights);
            return self.sublevel_masks[pick];
        }
        let mut m = WayMask::EMPTY;
        for s in chunk {
            m = m.union(self.sublevel_masks[s]);
        }
        m
    }
}

impl PlacementPolicy for SlipPlacement {
    fn name(&self) -> &'static str {
        "SLIP"
    }

    fn insertion_mask(&mut self, _geom: &CacheGeometry, req: &FillRequest) -> Option<WayMask> {
        let slip = self.slip_of_code(req.slip_codes[self.level.index()]);
        let chunks = slip.chunks();
        let first = chunks.first()?.clone();
        Some(self.chunk_mask(first))
    }

    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        line: &LineState,
        from_way: usize,
    ) -> Option<WayMask> {
        let slip = self.slip_of_code(line.slip_codes[self.level.index()]);
        let sublevel = geom.sublevel(from_way);
        // A line may sit outside its SLIP's sublevels if its page's
        // policy changed while it was resident; evict it.
        let chunk = slip.chunk_of_sublevel(sublevel)?;
        let chunks = slip.chunks();
        let next = chunks.get(chunk + 1)?.clone();
        Some(self.chunk_mask(next))
    }

    fn classify_insertion(&self, _geom: &CacheGeometry, req: &FillRequest) -> InsertionClass {
        let slip = self.slip_of_code(req.slip_codes[self.level.index()]);
        if slip.is_all_bypass() {
            InsertionClass::AllBypass
        } else if slip.bypasses_sublevels() {
            InsertionClass::PartialBypass
        } else if slip.is_default() {
            InsertionClass::Default
        } else {
            InsertionClass::Other
        }
    }

    fn uses_movement_queue(&self) -> bool {
        true
    }

    fn uses_line_metadata(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::LineAddr;
    use energy_model::Energy;

    fn paper_l2_geom() -> CacheGeometry {
        CacheGeometry::from_sublevels(
            256,
            &[
                (4, Energy::from_pj(21.0), 4),
                (4, Energy::from_pj(33.0), 6),
                (8, Energy::from_pj(50.0), 8),
            ],
        )
    }

    fn req_with(code: u8) -> FillRequest {
        let mut r = FillRequest::new(LineAddr(0));
        r.slip_codes = [code, code];
        r
    }

    fn line_with(code: u8) -> LineState {
        let mut l = LineState::new(LineAddr(0));
        l.slip_codes = [code, code];
        l
    }

    #[test]
    fn abp_bypasses_the_level() {
        let g = paper_l2_geom();
        let mut p = SlipPlacement::new(SlipLevel::L2, &g);
        let abp = Slip::all_bypass(3).unwrap();
        assert_eq!(p.insertion_mask(&g, &req_with(abp.code())), None);
        assert_eq!(
            p.classify_insertion(&g, &req_with(abp.code())),
            InsertionClass::AllBypass
        );
    }

    #[test]
    fn default_slip_inserts_anywhere_and_never_demotes() {
        let g = paper_l2_geom();
        let mut p = SlipPlacement::new(SlipLevel::L2, &g);
        let def = Slip::default_slip(3).unwrap();
        assert_eq!(
            p.insertion_mask(&g, &req_with(def.code())),
            Some(WayMask::full(16))
        );
        // From any way, no next chunk exists.
        for way in [0, 5, 12] {
            assert_eq!(p.demotion_mask(&g, &line_with(def.code()), way), None);
        }
        assert_eq!(
            p.classify_insertion(&g, &req_with(def.code())),
            InsertionClass::Default
        );
    }

    #[test]
    fn split_slip_demotes_along_chunks() {
        let g = paper_l2_geom();
        let mut p = SlipPlacement::new(SlipLevel::L2, &g);
        let slip = Slip::from_chunk_ends(3, &[0, 2]).unwrap(); // {[0],[1,2]}
        assert_eq!(
            p.insertion_mask(&g, &req_with(slip.code())),
            Some(WayMask::from_range(0..4))
        );
        // Displaced from sublevel 0 => chunk 1 (ways 4..16).
        assert_eq!(
            p.demotion_mask(&g, &line_with(slip.code()), 2),
            Some(WayMask::from_range(4..16))
        );
        // Displaced from the last chunk => leaves the level.
        assert_eq!(p.demotion_mask(&g, &line_with(slip.code()), 9), None);
        assert_eq!(
            p.classify_insertion(&g, &req_with(slip.code())),
            InsertionClass::Other
        );
    }

    #[test]
    fn partial_bypass_evicts_after_used_prefix() {
        let g = paper_l2_geom();
        let mut p = SlipPlacement::new(SlipLevel::L2, &g);
        let slip = Slip::from_chunk_ends(3, &[0]).unwrap(); // {[0]}
        assert_eq!(
            p.insertion_mask(&g, &req_with(slip.code())),
            Some(WayMask::from_range(0..4))
        );
        assert_eq!(p.demotion_mask(&g, &line_with(slip.code()), 1), None);
        assert_eq!(
            p.classify_insertion(&g, &req_with(slip.code())),
            InsertionClass::PartialBypass
        );
    }

    #[test]
    fn line_outside_its_slip_is_evicted() {
        let g = paper_l2_geom();
        let mut p = SlipPlacement::new(SlipLevel::L2, &g);
        // Line's SLIP only uses sublevel 0, but it sits in way 10
        // (sublevel 2) after a policy change: evict on displacement.
        let slip = Slip::from_chunk_ends(3, &[0]).unwrap();
        assert_eq!(p.demotion_mask(&g, &line_with(slip.code()), 10), None);
    }

    #[test]
    fn l3_level_reads_second_code() {
        let g = paper_l2_geom();
        let mut p = SlipPlacement::new(SlipLevel::L3, &g);
        let mut req = FillRequest::new(LineAddr(0));
        req.slip_codes = [
            Slip::all_bypass(3).unwrap().code(),
            Slip::default_slip(3).unwrap().code(),
        ];
        // L3 uses code[1] = default, not the bypass in code[0].
        assert_eq!(p.insertion_mask(&g, &req), Some(WayMask::full(16)));
    }

    #[test]
    fn randomized_victim_sublevel_stays_in_chunk_and_follows_weights() {
        let g = paper_l2_geom();
        let mut p = SlipPlacement::new(SlipLevel::L2, &g).with_randomized_victim_sublevel(5);
        let slip = Slip::from_chunk_ends(3, &[2]).unwrap(); // one chunk of all
        let chunk_mask = WayMask::full(16);
        let mut per_sublevel = [0u64; 3];
        for _ in 0..3000 {
            let m = p.insertion_mask(&g, &req_with(slip.code())).unwrap();
            assert!(m.difference(chunk_mask).is_empty());
            // The mask must be exactly one sublevel.
            let s = g.sublevel(m.first().unwrap());
            assert_eq!(m, g.sublevel_ways(s));
            per_sublevel[s] += 1;
        }
        // Sublevel 2 has twice the ways of 0 and 1: expect ~2x picks.
        let ratio = per_sublevel[2] as f64 / per_sublevel[0] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn eight_sublevel_codes_are_not_truncated() {
        // Regression: masking the code with `1u8 << 8` wraps in release
        // builds and turned every S = 8 SLIP into the ABP.
        let g = CacheGeometry::from_sublevels(
            16,
            &(0..8)
                .map(|i| (2usize, Energy::from_pj(10.0 + i as f64), 4u32))
                .collect::<Vec<_>>(),
        );
        let mut p = SlipPlacement::new(SlipLevel::L2, &g);
        let def = Slip::default_slip(8).unwrap();
        let mut req = FillRequest::new(LineAddr(0));
        req.slip_codes = [def.code(), def.code()];
        assert_eq!(p.insertion_mask(&g, &req), Some(WayMask::full(16)));
        assert_eq!(p.classify_insertion(&g, &req), InsertionClass::Default);
    }

    #[test]
    fn uses_metadata_and_movement_queue() {
        let g = paper_l2_geom();
        let p = SlipPlacement::new(SlipLevel::L2, &g);
        assert!(p.uses_movement_queue());
        assert!(p.uses_line_metadata());
        assert_eq!(p.name(), "SLIP");
    }
}
