//! Property-based tests of the SLIP mechanism's algebra: policy-space
//! structure, model monotonicity, EOU dominance, and sampling
//! statistics.

use energy_model::Energy;
use proptest::prelude::*;
use slip_core::{
    coefficients, coefficients_paper, slip_energy, EnergyOptimizerUnit, EouObjective,
    LevelModelParams, PageState, RdDistribution, SamplingConfig, Slip, TimeSampler,
};

fn l2_params() -> LevelModelParams {
    LevelModelParams {
        sublevel_energy: vec![
            Energy::from_pj(21.0),
            Energy::from_pj(33.0),
            Energy::from_pj(50.0),
        ],
        sublevel_lines: vec![1024, 1024, 2048],
        next_level_energy: Energy::from_pj(136.0),
    }
}

proptest! {
    /// The number of chunks never exceeds the number of used sublevels,
    /// and chunk count 0 iff the ABP.
    #[test]
    fn chunk_structure(sublevels in 1usize..=8, code_raw in 0u16..256) {
        let code = (code_raw as usize % (1 << sublevels)) as u8;
        let slip = Slip::from_code(sublevels, code).expect("valid");
        prop_assert!(slip.num_chunks() <= slip.used_sublevels());
        prop_assert_eq!(slip.num_chunks() == 0, slip.is_all_bypass());
        prop_assert_eq!(slip.chunks().len(), slip.num_chunks());
    }

    /// Display/notation round-trip: the chunk ends parsed back from the
    /// chunks() view rebuild the same SLIP.
    #[test]
    fn chunks_rebuild_the_slip(sublevels in 1usize..=8, code_raw in 0u16..256) {
        let code = (code_raw as usize % (1 << sublevels)) as u8;
        let slip = Slip::from_code(sublevels, code).expect("valid");
        let ends: Vec<usize> = slip.chunks().iter().map(|c| *c.end()).collect();
        let back = Slip::from_chunk_ends(sublevels, &ends).expect("valid ends");
        prop_assert_eq!(back, slip);
    }

    /// Coefficient vectors are nonnegative and the miss bin is the most
    /// expensive bin for every caching SLIP (it pays the next level).
    #[test]
    fn coefficients_shape(code in 0u8..8) {
        let params = l2_params();
        let slip = Slip::from_code(3, code).expect("valid");
        for alpha in [coefficients(&params, slip), coefficients_paper(&params, slip)] {
            prop_assert_eq!(alpha.len(), 4);
            for a in &alpha {
                prop_assert!(a.as_pj() >= 0.0);
            }
            if !slip.is_all_bypass() {
                let miss = alpha.last().unwrap().as_pj();
                for a in &alpha[..3] {
                    prop_assert!(miss >= a.as_pj() - 1e-9);
                }
            }
        }
    }

    /// The insertion-aware objective never undercuts the paper-literal
    /// one (it only adds a nonnegative term).
    #[test]
    fn insertion_term_is_nonnegative(
        code in 0u8..8,
        raw in prop::array::uniform4(0u32..100),
    ) {
        let total: u32 = raw.iter().sum();
        prop_assume!(total > 0);
        let probs: Vec<f64> = raw.iter().map(|&c| f64::from(c) / f64::from(total)).collect();
        let params = l2_params();
        let slip = Slip::from_code(3, code).expect("valid");
        let with: Energy = coefficients(&params, slip)
            .iter().zip(&probs).map(|(&a, &p)| a * p).sum();
        let without: Energy = coefficients_paper(&params, slip)
            .iter().zip(&probs).map(|(&a, &p)| a * p).sum();
        prop_assert!(with >= without - Energy::from_pj(1e-9));
    }

    /// The EOU's choice never loses to the Default SLIP under either
    /// objective (Default is always a candidate).
    #[test]
    fn eou_never_worse_than_default(
        raw in prop::array::uniform4(0u16..15),
        paper_literal in any::<bool>(),
    ) {
        let params = l2_params();
        let objective = if paper_literal {
            EouObjective::PaperLiteral
        } else {
            EouObjective::InsertionAware
        };
        let mut eou = EnergyOptimizerUnit::with_objective(&params, objective);
        let mut d = RdDistribution::paper_default();
        for (bin, &c) in raw.iter().enumerate() {
            for _ in 0..c {
                d.observe(bin);
            }
        }
        let decision = eou.optimize(&d);
        let def = Slip::default_slip(3).expect("valid");
        let def_e = eou.evaluate(def, &d.probabilities());
        prop_assert!(decision.estimated_energy <= def_e + Energy::from_pj(1e-9));
    }

    /// Halving preserves the distribution's argmax bin.
    #[test]
    fn halving_preserves_dominant_bin(
        dominant in 0usize..4,
        others in prop::array::uniform3(0u16..7),
    ) {
        let mut d = RdDistribution::paper_default();
        // Give the dominant bin twice the max of the others plus slack.
        let dom_count = 15u16;
        let mut k = 0;
        for bin in 0..4usize {
            if bin == dominant {
                continue;
            }
            for _ in 0..others[k] {
                d.observe(bin);
            }
            k += 1;
        }
        for _ in 0..dom_count {
            d.observe(dominant); // forces at least one halving
        }
        let counts = d.counts();
        let max = *counts.iter().max().unwrap();
        prop_assert_eq!(counts[dominant], max);
    }

    /// The sampler's long-run sampling fraction tracks the configured
    /// stationary value for arbitrary (sane) configurations.
    #[test]
    fn sampler_tracks_stationary_fraction(
        n_samp in 2u64..32,
        n_stab in 32u64..512,
        seed in 0u64..1000,
    ) {
        let config = SamplingConfig { n_samp, n_stab };
        let mut s = TimeSampler::with_config(seed, config);
        let mut state = PageState::Sampling;
        let mut sampling = 0u64;
        let n = 200_000u64;
        for _ in 0..n {
            state = s.transition(state).state;
            if state == PageState::Sampling {
                sampling += 1;
            }
        }
        let f = sampling as f64 / n as f64;
        let expect = config.expected_sampling_fraction();
        prop_assert!((f - expect).abs() < 0.05, "measured {} expected {}", f, expect);
    }

    /// slip_energy is scale-invariant in the probability vector only up
    /// to the scale: E(k·p) = k·E(p) (linearity).
    #[test]
    fn model_is_linear(code in 0u8..8, k in 0.1f64..10.0) {
        let params = l2_params();
        let slip = Slip::from_code(3, code).expect("valid");
        let p = [0.4, 0.3, 0.2, 0.1];
        let scaled: Vec<f64> = p.iter().map(|x| x * k).collect();
        let a = slip_energy(&params, slip, &p).as_pj() * k;
        let b = slip_energy(&params, slip, &scaled).as_pj();
        prop_assert!((a - b).abs() < 1e-9);
    }
}
