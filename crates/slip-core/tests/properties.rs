//! Randomized property tests of the SLIP mechanism's algebra:
//! policy-space structure, model monotonicity, EOU dominance, and
//! sampling statistics.
//!
//! Cases are drawn from seeded [`SplitMix64`] streams so every run is
//! deterministic without an external property-testing framework.

use cache_sim::rng::SplitMix64;
use energy_model::Energy;
use slip_core::{
    coefficients, coefficients_paper, slip_energy, EnergyOptimizerUnit, EouObjective,
    LevelModelParams, PageState, RdDistribution, SamplingConfig, Slip, TimeSampler,
};

const CASES: u64 = 128;

fn l2_params() -> LevelModelParams {
    LevelModelParams {
        sublevel_energy: vec![
            Energy::from_pj(21.0),
            Energy::from_pj(33.0),
            Energy::from_pj(50.0),
        ],
        sublevel_lines: vec![1024, 1024, 2048],
        next_level_energy: Energy::from_pj(136.0),
    }
}

/// Draws four bin counts below `bound` from the stream.
fn random_bins(rng: &mut SplitMix64, bound: u64) -> [u64; 4] {
    [
        rng.next_below(bound),
        rng.next_below(bound),
        rng.next_below(bound),
        rng.next_below(bound),
    ]
}

/// The number of chunks never exceeds the number of used sublevels,
/// and chunk count 0 iff the ABP; chunk ends rebuild the same SLIP.
#[test]
fn chunk_structure_and_rebuild() {
    for sublevels in 1usize..=8 {
        for code in 0..(1u16 << sublevels) {
            let slip = Slip::from_code(sublevels, code as u8).expect("valid");
            assert!(slip.num_chunks() <= slip.used_sublevels());
            assert_eq!(slip.num_chunks() == 0, slip.is_all_bypass());
            assert_eq!(slip.chunks().len(), slip.num_chunks());
            let ends: Vec<usize> = slip.chunks().iter().map(|c| *c.end()).collect();
            let back = Slip::from_chunk_ends(sublevels, &ends).expect("valid ends");
            assert_eq!(back, slip);
        }
    }
}

/// Coefficient vectors are nonnegative and the miss bin is the most
/// expensive bin for every caching SLIP (it pays the next level).
#[test]
fn coefficients_shape() {
    let params = l2_params();
    for code in 0u8..8 {
        let slip = Slip::from_code(3, code).expect("valid");
        for alpha in [
            coefficients(&params, slip),
            coefficients_paper(&params, slip),
        ] {
            assert_eq!(alpha.len(), 4);
            for a in &alpha {
                assert!(a.as_pj() >= 0.0);
            }
            if !slip.is_all_bypass() {
                let miss = alpha.last().unwrap().as_pj();
                for a in &alpha[..3] {
                    assert!(miss >= a.as_pj() - 1e-9);
                }
            }
        }
    }
}

/// The insertion-aware objective never undercuts the paper-literal one
/// (it only adds a nonnegative term).
#[test]
fn insertion_term_is_nonnegative() {
    let params = l2_params();
    let mut rng = SplitMix64::new(0x17E);
    for _ in 0..CASES {
        let raw = random_bins(&mut rng, 100);
        let total: u64 = raw.iter().sum();
        if total == 0 {
            continue;
        }
        let probs: Vec<f64> = raw.iter().map(|&c| c as f64 / total as f64).collect();
        let slip = Slip::from_code(3, rng.next_below(8) as u8).expect("valid");
        let with: Energy = coefficients(&params, slip)
            .iter()
            .zip(&probs)
            .map(|(&a, &p)| a * p)
            .sum();
        let without: Energy = coefficients_paper(&params, slip)
            .iter()
            .zip(&probs)
            .map(|(&a, &p)| a * p)
            .sum();
        assert!(with >= without - Energy::from_pj(1e-9));
    }
}

/// The EOU's choice never loses to the Default SLIP under either
/// objective (Default is always a candidate).
#[test]
fn eou_never_worse_than_default() {
    let params = l2_params();
    let mut rng = SplitMix64::new(0xE0D);
    for case in 0..CASES {
        let objective = if case % 2 == 0 {
            EouObjective::PaperLiteral
        } else {
            EouObjective::InsertionAware
        };
        let mut eou = EnergyOptimizerUnit::with_objective(&params, objective);
        let mut d = RdDistribution::paper_default();
        for (bin, &c) in random_bins(&mut rng, 15).iter().enumerate() {
            for _ in 0..c {
                d.observe(bin);
            }
        }
        let decision = eou.optimize(&d);
        let def = Slip::default_slip(3).expect("valid");
        let def_e = eou.evaluate(def, &d.probabilities());
        assert!(decision.estimated_energy <= def_e + Energy::from_pj(1e-9));
    }
}

/// Halving preserves the distribution's argmax bin.
#[test]
fn halving_preserves_dominant_bin() {
    let mut rng = SplitMix64::new(0x4A1F);
    for _ in 0..CASES {
        let dominant = rng.next_below(4) as usize;
        let mut d = RdDistribution::paper_default();
        // Give the dominant bin twice the max of the others plus slack.
        let dom_count = 15u64;
        for bin in 0..4usize {
            if bin == dominant {
                continue;
            }
            let c = rng.next_below(7);
            for _ in 0..c {
                d.observe(bin);
            }
        }
        for _ in 0..dom_count {
            d.observe(dominant); // forces at least one halving
        }
        let counts = d.counts();
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[dominant], max);
    }
}

/// The sampler's long-run sampling fraction tracks the configured
/// stationary value for arbitrary (sane) configurations.
#[test]
fn sampler_tracks_stationary_fraction() {
    let mut rng = SplitMix64::new(0x5A3);
    for _ in 0..8 {
        let config = SamplingConfig {
            n_samp: 2 + rng.next_below(30),
            n_stab: 32 + rng.next_below(480),
        };
        let mut s = TimeSampler::with_config(rng.next_below(1000), config);
        let mut state = PageState::Sampling;
        let mut sampling = 0u64;
        let n = 200_000u64;
        for _ in 0..n {
            state = s.transition(state).state;
            if state == PageState::Sampling {
                sampling += 1;
            }
        }
        let f = sampling as f64 / n as f64;
        let expect = config.expected_sampling_fraction();
        assert!(
            (f - expect).abs() < 0.05,
            "measured {} expected {}",
            f,
            expect
        );
    }
}

/// slip_energy is scale-invariant in the probability vector only up to
/// the scale: E(k·p) = k·E(p) (linearity).
#[test]
fn model_is_linear() {
    let params = l2_params();
    let mut rng = SplitMix64::new(0x11E);
    for _ in 0..CASES {
        let slip = Slip::from_code(3, rng.next_below(8) as u8).expect("valid");
        let k = 0.1 + rng.next_f64() * 9.9;
        let p = [0.4, 0.3, 0.2, 0.1];
        let scaled: Vec<f64> = p.iter().map(|x| x * k).collect();
        let a = slip_energy(&params, slip, &p).as_pj() * k;
        let b = slip_energy(&params, slip, &scaled).as_pj();
        assert!((a - b).abs() < 1e-9);
    }
}
