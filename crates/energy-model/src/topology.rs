//! Geometric wire-energy model for the cache topologies of paper Figure 4.
//!
//! Large caches are built from small SRAM banks joined by an interconnect.
//! Which topology and which way-to-bank interleaving is chosen determines
//! whether different ways of the same set have different access energies —
//! the asymmetry SLIP exploits. Three schemes from the paper:
//!
//! * **Hierarchical bus, way interleaving** (Fig. 4a — Intel Xeon E5 LLC
//!   slice, Samsung SRAM macro): ways are spread across banks at different
//!   distances from the cache controller, so access energy varies per way.
//!   This is the baseline organization of the paper's evaluation.
//! * **Hierarchical bus, set interleaving** (Fig. 4b): all ways of a set
//!   live in the same bank; every candidate location of a line costs the
//!   same, so there is nothing for a placement policy to exploit.
//! * **H-tree** (Fig. 4c): every access traverses a path as long as the
//!   path to the furthest bank; uniform but maximally expensive. The paper
//!   reports this costs 37% more L2 energy and 32% more L3 energy than the
//!   hierarchical bus baseline (Section 2.1).
//!
//! The model here is deliberately simple: banks sit in a `rows x cols`
//! grid above the cache controller; the request/response path runs up a
//! vertical spine, so the wire length to a bank is `base_offset +
//! (row + 0.5) * bank_height`. Horizontal distribution within a row is
//! folded into the intrinsic bank access energy. The calibrated grids
//! below reproduce the paper's Table 2 sublevel energies to within 5%.

use crate::params::LINE_BITS;
use crate::Energy;

/// Interconnect parameters of a technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Wire energy per transition, pJ/bit/mm (Table 2: 0.16 at 45 nm).
    pub pj_per_bit_mm: f64,
    /// Wire delay, ns/mm (Table 2: 0.3 at 45 nm).
    pub delay_ns_per_mm: f64,
}

impl WireParams {
    /// Table 2 wire parameters for the 45 nm node.
    pub const NM45: WireParams = WireParams {
        pj_per_bit_mm: 0.16,
        delay_ns_per_mm: 0.3,
    };

    /// Energy to move `bits` over `mm` of wire.
    pub fn transfer(&self, bits: usize, mm: f64) -> Energy {
        Energy::from_pj(self.pj_per_bit_mm * bits as f64 * mm)
    }
}

/// Cache interconnect topology and interleaving scheme (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Fig. 4a: hierarchical bus, ways interleaved across banks.
    /// Access energy differs per way; SLIP applies.
    HierarchicalBusWayInterleaved,
    /// Fig. 4b: hierarchical bus, all ways of a set in one bank.
    /// Access energy is uniform across ways (set-position average).
    HierarchicalBusSetInterleaved,
    /// Fig. 4c: H-tree. Every access costs as much as reaching the
    /// furthest bank.
    HTree,
}

/// A grid of SRAM banks making up one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct BankGrid {
    /// Bank rows, counted outward from the cache controller.
    pub rows: usize,
    /// Bank columns.
    pub cols: usize,
    /// Number of ways in the level.
    pub ways: usize,
    /// Physical bank height in mm (row pitch of the vertical spine).
    pub bank_height_mm: f64,
    /// Fixed wire length between the controller and row 0, in mm.
    pub base_offset_mm: f64,
    /// Intrinsic (wire-free) energy of one bank access, including the
    /// horizontal distribution within a row.
    pub bank_access: Energy,
    /// Bits moved per access (a full 64 B line).
    pub bits_per_access: usize,
}

impl BankGrid {
    /// Calibrated L2 grid for the 45 nm node: a 2 (wide) x 4 (high) array
    /// of 32 KB banks, two complete ways per bank (paper Section 5).
    pub fn l2_45nm() -> BankGrid {
        BankGrid {
            rows: 4,
            cols: 2,
            ways: 16,
            bank_height_mm: 0.1465,
            base_offset_mm: 0.0,
            bank_access: Energy::from_pj(15.0),
            bits_per_access: LINE_BITS,
        }
    }

    /// Calibrated L3 grid for the 45 nm node: a 16 (high) x 4 (wide)
    /// array of 32 KB banks, one way per row (paper Section 5).
    pub fn l3_45nm() -> BankGrid {
        BankGrid {
            rows: 16,
            cols: 4,
            ways: 16,
            bank_height_mm: 0.1404,
            base_offset_mm: 0.3540,
            bank_access: Energy::from_pj(15.0),
            bits_per_access: LINE_BITS,
        }
    }

    /// Number of banks in the grid.
    pub fn banks(&self) -> usize {
        self.rows * self.cols
    }

    /// The bank row that holds `way` under way interleaving.
    ///
    /// Ways are assigned to rows in order, nearest row first, evenly.
    ///
    /// # Panics
    ///
    /// Panics if `way >= self.ways`.
    pub fn way_row(&self, way: usize) -> usize {
        assert!(way < self.ways, "way {way} out of range ({})", self.ways);
        way * self.rows / self.ways
    }

    /// Wire length from the controller to the banks of `row`, in mm.
    pub fn row_distance_mm(&self, row: usize) -> f64 {
        self.base_offset_mm + (row as f64 + 0.5) * self.bank_height_mm
    }

    /// Access energy of a single row's banks under the way-interleaved
    /// hierarchical bus: intrinsic bank energy plus spine wire energy.
    pub fn row_energy(&self, row: usize, wire: &WireParams) -> Energy {
        self.bank_access + wire.transfer(self.bits_per_access, self.row_distance_mm(row))
    }

    /// Per-way access energy under `topology`.
    ///
    /// The returned vector has one entry per way, way 0 first.
    pub fn way_energies(&self, topology: Topology, wire: &WireParams) -> Vec<Energy> {
        match topology {
            Topology::HierarchicalBusWayInterleaved => (0..self.ways)
                .map(|w| self.row_energy(self.way_row(w), wire))
                .collect(),
            Topology::HierarchicalBusSetInterleaved => {
                // All ways of a set share a bank; a line's candidate
                // locations all cost the same. Averaged over sets this is
                // the mean row energy.
                let mean = (0..self.rows)
                    .map(|r| self.row_energy(r, wire))
                    .sum::<Energy>()
                    / self.rows as f64;
                vec![mean; self.ways]
            }
            Topology::HTree => {
                // Every access pays the path to the furthest bank.
                let worst = self.row_energy(self.rows - 1, wire);
                vec![worst; self.ways]
            }
        }
    }

    /// Mean access energy per sublevel, given the way count of each
    /// sublevel (nearest first).
    ///
    /// # Panics
    ///
    /// Panics if the way counts do not sum to `self.ways`.
    pub fn sublevel_energies(
        &self,
        topology: Topology,
        wire: &WireParams,
        ways_per_sublevel: &[usize],
    ) -> Vec<Energy> {
        let total: usize = ways_per_sublevel.iter().sum();
        assert_eq!(
            total, self.ways,
            "sublevel way counts must cover all {} ways",
            self.ways
        );
        let per_way = self.way_energies(topology, wire);
        let mut out = Vec::with_capacity(ways_per_sublevel.len());
        let mut next = 0;
        for &n in ways_per_sublevel {
            let slice = &per_way[next..next + n];
            out.push(slice.iter().sum::<Energy>() / n as f64);
            next += n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TECH_45NM;

    const PAPER_SUBLEVEL_WAYS: [usize; 3] = [4, 4, 8];

    fn close(a: Energy, b: Energy, tol: f64) -> bool {
        (a.as_pj() - b.as_pj()).abs() / b.as_pj() <= tol
    }

    #[test]
    fn l2_grid_reproduces_table2_sublevels() {
        let grid = BankGrid::l2_45nm();
        let got = grid.sublevel_energies(
            Topology::HierarchicalBusWayInterleaved,
            &WireParams::NM45,
            &PAPER_SUBLEVEL_WAYS,
        );
        for (g, want) in got.iter().zip(&TECH_45NM.l2.sublevel_access) {
            assert!(close(*g, *want, 0.05), "got {g}, want {want}");
        }
    }

    #[test]
    fn l3_grid_reproduces_table2_sublevels() {
        let grid = BankGrid::l3_45nm();
        let got = grid.sublevel_energies(
            Topology::HierarchicalBusWayInterleaved,
            &WireParams::NM45,
            &PAPER_SUBLEVEL_WAYS,
        );
        for (g, want) in got.iter().zip(&TECH_45NM.l3.sublevel_access) {
            assert!(close(*g, *want, 0.05), "got {g}, want {want}");
        }
    }

    #[test]
    fn way_row_assignment_is_monotone_and_even() {
        let grid = BankGrid::l2_45nm();
        let rows: Vec<usize> = (0..grid.ways).map(|w| grid.way_row(w)).collect();
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rows[0], 0);
        assert_eq!(rows[grid.ways - 1], grid.rows - 1);
        // 16 ways over 4 rows: exactly 4 per row.
        for r in 0..grid.rows {
            assert_eq!(rows.iter().filter(|&&x| x == r).count(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn way_row_rejects_out_of_range() {
        BankGrid::l2_45nm().way_row(16);
    }

    #[test]
    fn set_interleaving_is_uniform_and_equals_mean() {
        let grid = BankGrid::l2_45nm();
        let set = grid.way_energies(Topology::HierarchicalBusSetInterleaved, &WireParams::NM45);
        let way = grid.way_energies(Topology::HierarchicalBusWayInterleaved, &WireParams::NM45);
        assert!(set.windows(2).all(|w| w[0] == w[1]));
        let mean = way.iter().sum::<Energy>() / way.len() as f64;
        assert!(close(set[0], mean, 1e-9));
    }

    #[test]
    fn htree_is_uniform_and_worst_case() {
        let grid = BankGrid::l3_45nm();
        let ht = grid.way_energies(Topology::HTree, &WireParams::NM45);
        let way = grid.way_energies(Topology::HierarchicalBusWayInterleaved, &WireParams::NM45);
        assert!(ht.windows(2).all(|w| w[0] == w[1]));
        let worst = way.iter().copied().fold(Energy::ZERO, Energy::max);
        assert_eq!(ht[0], worst);
        // H-tree must be strictly worse than the way-interleaved mean --
        // this is the premise of the paper's Section 2.1 comparison.
        let mean = way.iter().sum::<Energy>() / way.len() as f64;
        assert!(ht[0] > mean);
    }

    #[test]
    fn wire_transfer_scales_linearly() {
        let w = WireParams::NM45;
        let e1 = w.transfer(512, 1.0);
        let e2 = w.transfer(512, 2.0);
        let e3 = w.transfer(1024, 1.0);
        assert!((e2.as_pj() - 2.0 * e1.as_pj()).abs() < 1e-12);
        assert!((e3.as_pj() - 2.0 * e1.as_pj()).abs() < 1e-12);
        assert!((e1.as_pj() - 0.16 * 512.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must cover all")]
    fn sublevel_energies_validates_way_counts() {
        let grid = BankGrid::l2_45nm();
        grid.sublevel_energies(
            Topology::HierarchicalBusWayInterleaved,
            &WireParams::NM45,
            &[4, 4],
        );
    }
}
