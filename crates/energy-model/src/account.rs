//! Energy accounting, split into the categories of paper Figure 11.

use crate::Energy;
use core::fmt;

/// Category of energy consumption inside one cache level (or DRAM).
///
/// Paper Figure 11 groups these into *access* energy (`Access`) and
/// *movement* energy ("inter-sublevel movement energy, insertion energy,
/// and writeback energy" — `Movement` + `Insertion` + `Writeback`). The
/// remaining categories are the hardware overheads of SLIP itself that the
/// paper accounts separately (metadata reads/writes, EOU operations,
/// movement-queue lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnergyCategory {
    /// Data read on a hit (or the read half of a demand access).
    Access,
    /// Read+write pair for an inter-sublevel movement.
    Movement,
    /// Write of an incoming line into the level.
    Insertion,
    /// Read of a dirty victim leaving the level.
    Writeback,
    /// 12 b-per-line SLIP/timestamp metadata reads and writes.
    Metadata,
    /// Energy Optimizer Unit operations.
    Eou,
    /// Movement-queue lookups.
    MovementQueue,
    /// DRAM data transfer.
    Dram,
}

impl EnergyCategory {
    /// All categories, in reporting order.
    pub const ALL: [EnergyCategory; 8] = [
        EnergyCategory::Access,
        EnergyCategory::Movement,
        EnergyCategory::Insertion,
        EnergyCategory::Writeback,
        EnergyCategory::Metadata,
        EnergyCategory::Eou,
        EnergyCategory::MovementQueue,
        EnergyCategory::Dram,
    ];

    fn index(self) -> usize {
        match self {
            EnergyCategory::Access => 0,
            EnergyCategory::Movement => 1,
            EnergyCategory::Insertion => 2,
            EnergyCategory::Writeback => 3,
            EnergyCategory::Metadata => 4,
            EnergyCategory::Eou => 5,
            EnergyCategory::MovementQueue => 6,
            EnergyCategory::Dram => 7,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Access => "access",
            EnergyCategory::Movement => "movement",
            EnergyCategory::Insertion => "insertion",
            EnergyCategory::Writeback => "writeback",
            EnergyCategory::Metadata => "metadata",
            EnergyCategory::Eou => "eou",
            EnergyCategory::MovementQueue => "mvq",
            EnergyCategory::Dram => "dram",
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulator of energy split by [`EnergyCategory`].
///
/// # Example
///
/// ```
/// use energy_model::{Energy, EnergyAccount, EnergyCategory};
///
/// let mut acct = EnergyAccount::new();
/// acct.charge(EnergyCategory::Access, Energy::from_pj(21.0));
/// acct.charge(EnergyCategory::Insertion, Energy::from_pj(21.0));
/// assert_eq!(acct.total(), Energy::from_pj(42.0));
/// assert_eq!(acct.get(EnergyCategory::Access), Energy::from_pj(21.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyAccount {
    by_category: [Energy; 8],
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `category`.
    #[inline]
    pub fn charge(&mut self, category: EnergyCategory, amount: Energy) {
        self.by_category[category.index()] += amount;
    }

    /// Energy accumulated in one category.
    #[inline]
    pub fn get(&self, category: EnergyCategory) -> Energy {
        self.by_category[category.index()]
    }

    /// Total energy over all categories.
    pub fn total(&self) -> Energy {
        self.by_category.iter().sum()
    }

    /// Paper Figure 11's "access" bar: demand access energy only.
    pub fn access_energy(&self) -> Energy {
        self.get(EnergyCategory::Access)
    }

    /// Paper Figure 11's "movement" bar: inter-sublevel movement +
    /// insertion + writeback energy.
    pub fn movement_energy(&self) -> Energy {
        self.get(EnergyCategory::Movement)
            + self.get(EnergyCategory::Insertion)
            + self.get(EnergyCategory::Writeback)
    }

    /// SLIP hardware overhead energy (metadata + EOU + movement queue).
    pub fn overhead_energy(&self) -> Energy {
        self.get(EnergyCategory::Metadata)
            + self.get(EnergyCategory::Eou)
            + self.get(EnergyCategory::MovementQueue)
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (dst, src) in self.by_category.iter_mut().zip(&other.by_category) {
            *dst += *src;
        }
    }

    /// Iterates over `(category, energy)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyCategory, Energy)> + '_ {
        EnergyCategory::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {}", self.total())?;
        for (cat, e) in self.iter() {
            if !e.is_zero() {
                write!(f, ", {cat} {e}")?;
            }
        }
        Ok(())
    }
}

/// Integer event ledger behind a cache level's [`EnergyAccount`].
///
/// Instead of accumulating floating-point energy on every event, the hot
/// path counts *events* (per way for the way-priced categories, plus flat
/// metadata / movement-queue counters) and the account is rebuilt on demand
/// by [`EnergyLedger::to_account`] with one multiply per (category, way)
/// pair. Because the ledger is pure integers, merging the ledgers of two
/// set-shards and then finalizing is bit-identical to finalizing the serial
/// ledger — the property the set-sharded runner relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyLedger {
    ways: usize,
    /// `WAY_CATEGORIES.len()` blocks of `ways` counters each.
    way_counts: Vec<u64>,
    /// Events priced at the level's metadata energy, charged to `Metadata`.
    metadata_events: u64,
    /// Events priced at the level's metadata energy, charged to `Access`
    /// (metadata-class hits read the metadata array, not a data way).
    access_metadata_events: u64,
    /// Movement-queue lookups, priced at the level's MVQ lookup energy.
    mvq_events: u64,
}

impl EnergyLedger {
    /// Categories whose events are priced by the way they touch, in the
    /// fixed order used for both storage and finalization.
    pub const WAY_CATEGORIES: [EnergyCategory; 4] = [
        EnergyCategory::Access,
        EnergyCategory::Movement,
        EnergyCategory::Insertion,
        EnergyCategory::Writeback,
    ];

    /// Creates an empty ledger for a level with `ways` ways.
    pub fn new(ways: usize) -> Self {
        Self {
            ways,
            way_counts: vec![0; Self::WAY_CATEGORIES.len() * ways],
            metadata_events: 0,
            access_metadata_events: 0,
            mvq_events: 0,
        }
    }

    #[inline]
    fn slot(&self, category: EnergyCategory, way: usize) -> usize {
        let ci = category.index();
        debug_assert!(ci < Self::WAY_CATEGORIES.len(), "not a way category");
        debug_assert!(way < self.ways);
        ci * self.ways + way
    }

    /// Records one event of a way-priced `category` at `way`.
    #[inline]
    pub fn count_way(&mut self, category: EnergyCategory, way: usize) {
        let slot = self.slot(category, way);
        self.way_counts[slot] += 1;
    }

    /// Records `n` events of a way-priced `category` at `way`.
    #[inline]
    pub fn count_way_n(&mut self, category: EnergyCategory, way: usize, n: u64) {
        let slot = self.slot(category, way);
        self.way_counts[slot] += n;
    }

    /// Records one metadata-priced event charged to `Metadata`.
    #[inline]
    pub fn count_metadata(&mut self) {
        self.metadata_events += 1;
    }

    /// Records one metadata-priced event charged to `Access`.
    #[inline]
    pub fn count_access_metadata(&mut self) {
        self.access_metadata_events += 1;
    }

    /// Records one movement-queue lookup.
    #[inline]
    pub fn count_mvq(&mut self) {
        self.mvq_events += 1;
    }

    /// Number of recorded events for a way-priced `category` at `way`.
    pub fn way_count(&self, category: EnergyCategory, way: usize) -> u64 {
        self.way_counts[self.slot(category, way)]
    }

    /// Adds another ledger's counts into this one. Pure integer addition,
    /// so merge order cannot perturb the finalized account.
    pub fn merge(&mut self, other: &EnergyLedger) {
        assert_eq!(self.ways, other.ways, "ledger geometry mismatch");
        for (dst, src) in self.way_counts.iter_mut().zip(&other.way_counts) {
            *dst += *src;
        }
        self.metadata_events += other.metadata_events;
        self.access_metadata_events += other.access_metadata_events;
        self.mvq_events += other.mvq_events;
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.way_counts.fill(0);
        self.metadata_events = 0;
        self.access_metadata_events = 0;
        self.mvq_events = 0;
    }

    /// Rebuilds the account: one `energy * count` multiply per slot, folded
    /// in the fixed `WAY_CATEGORIES`-then-way order so the result is a pure
    /// function of the counts regardless of how they were accumulated.
    pub fn to_account(
        &self,
        way_energy: &[Energy],
        metadata_energy: Energy,
        mvq_energy: Energy,
    ) -> EnergyAccount {
        assert_eq!(way_energy.len(), self.ways, "way energy table mismatch");
        let mut acct = EnergyAccount::new();
        for (ci, &cat) in Self::WAY_CATEGORIES.iter().enumerate() {
            for (way, &e) in way_energy.iter().enumerate() {
                let n = self.way_counts[ci * self.ways + way];
                if n != 0 {
                    acct.charge(cat, e * n as f64);
                }
            }
        }
        if self.access_metadata_events != 0 {
            acct.charge(
                EnergyCategory::Access,
                metadata_energy * self.access_metadata_events as f64,
            );
        }
        if self.metadata_events != 0 {
            acct.charge(
                EnergyCategory::Metadata,
                metadata_energy * self.metadata_events as f64,
            );
        }
        if self.mvq_events != 0 {
            acct.charge(
                EnergyCategory::MovementQueue,
                mvq_energy * self.mvq_events as f64,
            );
        }
        acct
    }

    /// Like [`EnergyLedger::to_account`], but with separate read, write,
    /// and insertion energy tables for asymmetric technologies (STT-RAM):
    ///
    /// * `Access` and `Writeback` events are reads — a writeback *reads*
    ///   the dirty victim out of the level;
    /// * `Insertion` events are writes of the incoming line, priced by
    ///   the insert table;
    /// * `Movement` events are recorded once at the source way (a read)
    ///   and once at the target way (a write), so each event is priced
    ///   at the read/write mean of its way — the pair then sums to one
    ///   full read plus one full write on average.
    ///
    /// With `write == insert == read` this is bit-identical to
    /// [`EnergyLedger::to_account`]: `(r + r) * 0.5` is exactly `r` in
    /// IEEE arithmetic and every charge folds in the same order.
    pub fn to_account_rw(
        &self,
        read_energy: &[Energy],
        write_energy: &[Energy],
        insert_energy: &[Energy],
        metadata_energy: Energy,
        mvq_energy: Energy,
    ) -> EnergyAccount {
        assert_eq!(read_energy.len(), self.ways, "read energy table mismatch");
        assert_eq!(write_energy.len(), self.ways, "write energy table mismatch");
        assert_eq!(
            insert_energy.len(),
            self.ways,
            "insert energy table mismatch"
        );
        let mut acct = EnergyAccount::new();
        for (ci, &cat) in Self::WAY_CATEGORIES.iter().enumerate() {
            for way in 0..self.ways {
                let n = self.way_counts[ci * self.ways + way];
                if n != 0 {
                    let e = match cat {
                        EnergyCategory::Access | EnergyCategory::Writeback => read_energy[way],
                        EnergyCategory::Insertion => insert_energy[way],
                        EnergyCategory::Movement => (read_energy[way] + write_energy[way]) * 0.5,
                        _ => unreachable!("not a way category"),
                    };
                    acct.charge(cat, e * n as f64);
                }
            }
        }
        if self.access_metadata_events != 0 {
            acct.charge(
                EnergyCategory::Access,
                metadata_energy * self.access_metadata_events as f64,
            );
        }
        if self.metadata_events != 0 {
            acct.charge(
                EnergyCategory::Metadata,
                metadata_energy * self.metadata_events as f64,
            );
        }
        if self.mvq_events != 0 {
            acct.charge(
                EnergyCategory::MovementQueue,
                mvq_energy * self.mvq_events as f64,
            );
        }
        acct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Access, Energy::from_pj(10.0));
        a.charge(EnergyCategory::Access, Energy::from_pj(5.0));
        a.charge(EnergyCategory::Dram, Energy::from_pj(100.0));
        assert_eq!(a.get(EnergyCategory::Access).as_pj(), 15.0);
        assert_eq!(a.get(EnergyCategory::Movement).as_pj(), 0.0);
        assert_eq!(a.total().as_pj(), 115.0);
    }

    #[test]
    fn figure11_grouping() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Access, Energy::from_pj(1.0));
        a.charge(EnergyCategory::Movement, Energy::from_pj(2.0));
        a.charge(EnergyCategory::Insertion, Energy::from_pj(3.0));
        a.charge(EnergyCategory::Writeback, Energy::from_pj(4.0));
        a.charge(EnergyCategory::Metadata, Energy::from_pj(5.0));
        a.charge(EnergyCategory::Eou, Energy::from_pj(6.0));
        a.charge(EnergyCategory::MovementQueue, Energy::from_pj(7.0));
        assert_eq!(a.access_energy().as_pj(), 1.0);
        assert_eq!(a.movement_energy().as_pj(), 9.0);
        assert_eq!(a.overhead_energy().as_pj(), 18.0);
    }

    #[test]
    fn merge_accounts() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Access, Energy::from_pj(1.0));
        let mut b = EnergyAccount::new();
        b.charge(EnergyCategory::Access, Energy::from_pj(2.0));
        b.charge(EnergyCategory::Eou, Energy::from_pj(3.0));
        a.merge(&b);
        assert_eq!(a.get(EnergyCategory::Access).as_pj(), 3.0);
        assert_eq!(a.get(EnergyCategory::Eou).as_pj(), 3.0);
    }

    #[test]
    fn display_skips_zero_categories() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Dram, Energy::from_pj(10.0));
        let s = a.to_string();
        assert!(s.contains("dram"));
        assert!(!s.contains("movement"));
    }

    #[test]
    fn ledger_rebuilds_account_from_counts() {
        let ways = [Energy::from_pj(10.0), Energy::from_pj(30.0)];
        let mut l = EnergyLedger::new(2);
        l.count_way(EnergyCategory::Access, 0);
        l.count_way_n(EnergyCategory::Movement, 1, 3);
        l.count_way(EnergyCategory::Insertion, 1);
        l.count_way(EnergyCategory::Writeback, 0);
        l.count_metadata();
        l.count_access_metadata();
        l.count_mvq();
        let a = l.to_account(&ways, Energy::from_pj(2.0), Energy::from_pj(0.5));
        assert_eq!(a.get(EnergyCategory::Access).as_pj(), 10.0 + 2.0);
        assert_eq!(a.get(EnergyCategory::Movement).as_pj(), 90.0);
        assert_eq!(a.get(EnergyCategory::Insertion).as_pj(), 30.0);
        assert_eq!(a.get(EnergyCategory::Writeback).as_pj(), 10.0);
        assert_eq!(a.get(EnergyCategory::Metadata).as_pj(), 2.0);
        assert_eq!(a.get(EnergyCategory::MovementQueue).as_pj(), 0.5);
        assert_eq!(l.way_count(EnergyCategory::Movement, 1), 3);
    }

    #[test]
    fn ledger_merge_then_finalize_is_bit_exact() {
        // Awkward energies so any floating-point reassociation would show.
        let ways = [
            Energy::from_pj(0.1),
            Energy::from_pj(1.0 / 3.0),
            Energy::from_pj(7.77e-3),
        ];
        let meta = Energy::from_pj(0.061);
        let mvq = Energy::from_pj(0.013);
        let mut serial = EnergyLedger::new(3);
        let mut shards = [EnergyLedger::new(3), EnergyLedger::new(3)];
        let mut state = 0x1234_5678_u64;
        for i in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cat = EnergyLedger::WAY_CATEGORIES[(state >> 33) as usize % 4];
            let way = (state >> 17) as usize % 3;
            serial.count_way(cat, way);
            shards[i % 2].count_way(cat, way);
            if state.is_multiple_of(5) {
                serial.count_metadata();
                shards[i % 2].count_metadata();
            }
            if state.is_multiple_of(7) {
                serial.count_mvq();
                shards[i % 2].count_mvq();
            }
        }
        let mut merged = shards[0].clone();
        merged.merge(&shards[1]);
        assert_eq!(merged, serial);
        let a = serial.to_account(&ways, meta, mvq);
        let b = merged.to_account(&ways, meta, mvq);
        for c in EnergyCategory::ALL {
            assert_eq!(a.get(c).as_pj().to_bits(), b.get(c).as_pj().to_bits());
        }
    }

    #[test]
    fn symmetric_rw_tables_are_bit_exact_with_plain_finalize() {
        // Awkward energies again: the read/write-mean pricing must
        // collapse to the plain path exactly when the tables coincide.
        let ways = [
            Energy::from_pj(0.1),
            Energy::from_pj(1.0 / 3.0),
            Energy::from_pj(7.77e-3),
        ];
        let meta = Energy::from_pj(0.061);
        let mvq = Energy::from_pj(0.013);
        let mut l = EnergyLedger::new(3);
        let mut state = 0xdead_beef_u64;
        for _ in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let cat = EnergyLedger::WAY_CATEGORIES[(state >> 33) as usize % 4];
            l.count_way(cat, (state >> 17) as usize % 3);
            if state.is_multiple_of(3) {
                l.count_metadata();
            }
            if state.is_multiple_of(5) {
                l.count_access_metadata();
            }
            if state.is_multiple_of(7) {
                l.count_mvq();
            }
        }
        let plain = l.to_account(&ways, meta, mvq);
        let rw = l.to_account_rw(&ways, &ways, &ways, meta, mvq);
        for c in EnergyCategory::ALL {
            assert_eq!(
                plain.get(c).as_pj().to_bits(),
                rw.get(c).as_pj().to_bits(),
                "{c}"
            );
        }
    }

    #[test]
    fn asymmetric_tables_price_each_category_by_its_operation() {
        let read = [Energy::from_pj(10.0)];
        let write = [Energy::from_pj(60.0)];
        let insert = [Energy::from_pj(50.0)];
        let mut l = EnergyLedger::new(1);
        l.count_way(EnergyCategory::Access, 0); // read
        l.count_way_n(EnergyCategory::Movement, 0, 2); // one source + one target
        l.count_way(EnergyCategory::Insertion, 0); // insert-priced write
        l.count_way(EnergyCategory::Writeback, 0); // read of the victim
        let a = l.to_account_rw(&read, &write, &insert, Energy::ZERO, Energy::ZERO);
        assert_eq!(a.get(EnergyCategory::Access).as_pj(), 10.0);
        // Movement pair = one read + one write = 10 + 60.
        assert_eq!(a.get(EnergyCategory::Movement).as_pj(), 70.0);
        assert_eq!(a.get(EnergyCategory::Insertion).as_pj(), 50.0);
        assert_eq!(a.get(EnergyCategory::Writeback).as_pj(), 10.0);
    }

    #[test]
    fn ledger_reset_clears_all_counts() {
        let mut l = EnergyLedger::new(1);
        l.count_way(EnergyCategory::Access, 0);
        l.count_metadata();
        l.count_access_metadata();
        l.count_mvq();
        l.reset();
        assert_eq!(l, EnergyLedger::new(1));
    }

    #[test]
    fn all_categories_have_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for c in EnergyCategory::ALL {
            assert!(seen.insert(c.index()));
        }
        assert_eq!(seen.len(), 8);
    }
}
