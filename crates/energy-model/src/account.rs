//! Energy accounting, split into the categories of paper Figure 11.

use crate::Energy;
use core::fmt;

/// Category of energy consumption inside one cache level (or DRAM).
///
/// Paper Figure 11 groups these into *access* energy (`Access`) and
/// *movement* energy ("inter-sublevel movement energy, insertion energy,
/// and writeback energy" — `Movement` + `Insertion` + `Writeback`). The
/// remaining categories are the hardware overheads of SLIP itself that the
/// paper accounts separately (metadata reads/writes, EOU operations,
/// movement-queue lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EnergyCategory {
    /// Data read on a hit (or the read half of a demand access).
    Access,
    /// Read+write pair for an inter-sublevel movement.
    Movement,
    /// Write of an incoming line into the level.
    Insertion,
    /// Read of a dirty victim leaving the level.
    Writeback,
    /// 12 b-per-line SLIP/timestamp metadata reads and writes.
    Metadata,
    /// Energy Optimizer Unit operations.
    Eou,
    /// Movement-queue lookups.
    MovementQueue,
    /// DRAM data transfer.
    Dram,
}

impl EnergyCategory {
    /// All categories, in reporting order.
    pub const ALL: [EnergyCategory; 8] = [
        EnergyCategory::Access,
        EnergyCategory::Movement,
        EnergyCategory::Insertion,
        EnergyCategory::Writeback,
        EnergyCategory::Metadata,
        EnergyCategory::Eou,
        EnergyCategory::MovementQueue,
        EnergyCategory::Dram,
    ];

    fn index(self) -> usize {
        match self {
            EnergyCategory::Access => 0,
            EnergyCategory::Movement => 1,
            EnergyCategory::Insertion => 2,
            EnergyCategory::Writeback => 3,
            EnergyCategory::Metadata => 4,
            EnergyCategory::Eou => 5,
            EnergyCategory::MovementQueue => 6,
            EnergyCategory::Dram => 7,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::Access => "access",
            EnergyCategory::Movement => "movement",
            EnergyCategory::Insertion => "insertion",
            EnergyCategory::Writeback => "writeback",
            EnergyCategory::Metadata => "metadata",
            EnergyCategory::Eou => "eou",
            EnergyCategory::MovementQueue => "mvq",
            EnergyCategory::Dram => "dram",
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulator of energy split by [`EnergyCategory`].
///
/// # Example
///
/// ```
/// use energy_model::{Energy, EnergyAccount, EnergyCategory};
///
/// let mut acct = EnergyAccount::new();
/// acct.charge(EnergyCategory::Access, Energy::from_pj(21.0));
/// acct.charge(EnergyCategory::Insertion, Energy::from_pj(21.0));
/// assert_eq!(acct.total(), Energy::from_pj(42.0));
/// assert_eq!(acct.get(EnergyCategory::Access), Energy::from_pj(21.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyAccount {
    by_category: [Energy; 8],
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `category`.
    #[inline]
    pub fn charge(&mut self, category: EnergyCategory, amount: Energy) {
        self.by_category[category.index()] += amount;
    }

    /// Energy accumulated in one category.
    #[inline]
    pub fn get(&self, category: EnergyCategory) -> Energy {
        self.by_category[category.index()]
    }

    /// Total energy over all categories.
    pub fn total(&self) -> Energy {
        self.by_category.iter().sum()
    }

    /// Paper Figure 11's "access" bar: demand access energy only.
    pub fn access_energy(&self) -> Energy {
        self.get(EnergyCategory::Access)
    }

    /// Paper Figure 11's "movement" bar: inter-sublevel movement +
    /// insertion + writeback energy.
    pub fn movement_energy(&self) -> Energy {
        self.get(EnergyCategory::Movement)
            + self.get(EnergyCategory::Insertion)
            + self.get(EnergyCategory::Writeback)
    }

    /// SLIP hardware overhead energy (metadata + EOU + movement queue).
    pub fn overhead_energy(&self) -> Energy {
        self.get(EnergyCategory::Metadata)
            + self.get(EnergyCategory::Eou)
            + self.get(EnergyCategory::MovementQueue)
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (dst, src) in self.by_category.iter_mut().zip(&other.by_category) {
            *dst += *src;
        }
    }

    /// Iterates over `(category, energy)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyCategory, Energy)> + '_ {
        EnergyCategory::ALL.iter().map(move |&c| (c, self.get(c)))
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {}", self.total())?;
        for (cat, e) in self.iter() {
            if !e.is_zero() {
                write!(f, ", {cat} {e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Access, Energy::from_pj(10.0));
        a.charge(EnergyCategory::Access, Energy::from_pj(5.0));
        a.charge(EnergyCategory::Dram, Energy::from_pj(100.0));
        assert_eq!(a.get(EnergyCategory::Access).as_pj(), 15.0);
        assert_eq!(a.get(EnergyCategory::Movement).as_pj(), 0.0);
        assert_eq!(a.total().as_pj(), 115.0);
    }

    #[test]
    fn figure11_grouping() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Access, Energy::from_pj(1.0));
        a.charge(EnergyCategory::Movement, Energy::from_pj(2.0));
        a.charge(EnergyCategory::Insertion, Energy::from_pj(3.0));
        a.charge(EnergyCategory::Writeback, Energy::from_pj(4.0));
        a.charge(EnergyCategory::Metadata, Energy::from_pj(5.0));
        a.charge(EnergyCategory::Eou, Energy::from_pj(6.0));
        a.charge(EnergyCategory::MovementQueue, Energy::from_pj(7.0));
        assert_eq!(a.access_energy().as_pj(), 1.0);
        assert_eq!(a.movement_energy().as_pj(), 9.0);
        assert_eq!(a.overhead_energy().as_pj(), 18.0);
    }

    #[test]
    fn merge_accounts() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Access, Energy::from_pj(1.0));
        let mut b = EnergyAccount::new();
        b.charge(EnergyCategory::Access, Energy::from_pj(2.0));
        b.charge(EnergyCategory::Eou, Energy::from_pj(3.0));
        a.merge(&b);
        assert_eq!(a.get(EnergyCategory::Access).as_pj(), 3.0);
        assert_eq!(a.get(EnergyCategory::Eou).as_pj(), 3.0);
    }

    #[test]
    fn display_skips_zero_categories() {
        let mut a = EnergyAccount::new();
        a.charge(EnergyCategory::Dram, Energy::from_pj(10.0));
        let s = a.to_string();
        assert!(s.contains("dram"));
        assert!(!s.contains("movement"));
    }

    #[test]
    fn all_categories_have_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for c in EnergyCategory::ALL {
            assert!(seen.insert(c.index()));
        }
        assert_eq!(seen.len(), 8);
    }
}
