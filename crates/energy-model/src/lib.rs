//! Wire/bank energy models, cache topologies, and energy accounting.
//!
//! This crate is the energy substrate of the SLIP reproduction. It provides:
//!
//! * [`Energy`] — a picojoule newtype used throughout the workspace so that
//!   energy quantities cannot be confused with latencies or counts.
//! * [`params`] — the paper's Table 2 energy parameters for the 45 nm node,
//!   plus a derived 22 nm parameter set used by the technology-node study.
//! * [`topology`] — a geometric wire-energy model for the three cache
//!   topologies of paper Figure 4 (hierarchical bus with way or set
//!   interleaving, and H-tree), used both to validate the Table 2 constants
//!   and to drive the Section 2.1 H-tree comparison experiment.
//! * [`account`] — an [`account::EnergyAccount`] accumulator that splits
//!   consumed energy into the categories reported in paper Figure 11
//!   (access, movement, insertion, writeback, metadata, ...).
//! * [`spec`] — declarative hierarchy specs: a std-only text format
//!   describing per-level geometry and read/write/insertion energies
//!   (including asymmetric STT-RAM nodes), with built-in `45nm`,
//!   `22nm`, and `stt-llc` nodes and line/column/byte diagnostics.
//!
//! # Example
//!
//! ```
//! use energy_model::{params::TECH_45NM, Energy};
//!
//! // Access energy of the nearest L2 sublevel at 45 nm (paper Table 2).
//! let e = TECH_45NM.l2.sublevel_access[0];
//! assert_eq!(e, Energy::from_pj(21.0));
//! ```

pub mod account;
pub mod params;
pub mod spec;
pub mod topology;

pub use account::{EnergyAccount, EnergyCategory, EnergyLedger};
pub use params::{LevelEnergyParams, TechnologyParams, TECH_22NM, TECH_45NM};
pub use spec::{HierarchySpec, L1Spec, LevelSpec, SpecError, SublevelSpec, BUILTIN_NAMES};
pub use topology::{BankGrid, Topology, WireParams};

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An amount of energy, stored in picojoules.
///
/// `Energy` is a transparent `f64` newtype: it exists so that the many `f64`
/// quantities flowing through the simulator (energies, latencies, counts,
/// probabilities) cannot be accidentally mixed. All arithmetic needed by the
/// analytical model of paper Section 3.2 is provided (`+`, `-`, scaling by
/// `f64`, summation, division producing a dimensionless ratio).
///
/// # Example
///
/// ```
/// use energy_model::Energy;
///
/// let read = Energy::from_pj(21.0);
/// let write = Energy::from_pj(33.0);
/// let movement = read + write;
/// assert_eq!(movement.as_pj(), 54.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from a picojoule value.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `pj` is NaN.
    #[inline]
    pub fn from_pj(pj: f64) -> Self {
        debug_assert!(!pj.is_nan(), "energy must not be NaN");
        Energy(pj)
    }

    /// Creates an energy from a nanojoule value.
    #[inline]
    pub fn from_nj(nj: f64) -> Self {
        Energy::from_pj(nj * 1e3)
    }

    /// Returns the value in picojoules.
    #[inline]
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// Returns the value in nanojoules.
    #[inline]
    pub fn as_nj(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the value in microjoules.
    #[inline]
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the smaller of two energies.
    #[inline]
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }

    /// Returns the larger of two energies.
    #[inline]
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// `true` if this energy is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    #[inline]
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    #[inline]
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Dividing two energies yields a dimensionless ratio.
    type Output = f64;
    #[inline]
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Energy> for Energy {
    fn sum<I: Iterator<Item = &'a Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |acc, e| acc + *e)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1e6 {
            write!(f, "{:.3} uJ", self.as_uj())
        } else if self.0.abs() >= 1e3 {
            write!(f, "{:.3} nJ", self.as_nj())
        } else {
            write!(f, "{:.3} pJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let a = Energy::from_pj(10.0);
        let b = Energy::from_pj(4.0);
        assert_eq!((a + b).as_pj(), 14.0);
        assert_eq!((a - b).as_pj(), 6.0);
        assert_eq!((a * 2.0).as_pj(), 20.0);
        assert_eq!((2.0 * a).as_pj(), 20.0);
        assert_eq!((a / 2.0).as_pj(), 5.0);
        assert_eq!(a / b, 2.5);
    }

    #[test]
    fn unit_conversions() {
        let e = Energy::from_nj(1.5);
        assert_eq!(e.as_pj(), 1500.0);
        assert!((e.as_nj() - 1.5).abs() < 1e-12);
        assert!((Energy::from_pj(2e6).as_uj() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = [
            Energy::from_pj(1.0),
            Energy::from_pj(2.0),
            Energy::from_pj(3.0),
        ];
        let owned: Energy = parts.iter().copied().sum();
        let borrowed: Energy = parts.iter().sum();
        assert_eq!(owned.as_pj(), 6.0);
        assert_eq!(borrowed.as_pj(), 6.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Energy::from_pj(21.0).to_string(), "21.000 pJ");
        assert_eq!(Energy::from_pj(10_240.0).to_string(), "10.240 nJ");
        assert_eq!(Energy::from_pj(3.5e6).to_string(), "3.500 uJ");
    }

    #[test]
    fn min_max_zero() {
        let a = Energy::from_pj(1.0);
        let b = Energy::from_pj(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Energy::ZERO.is_zero());
        assert!(!a.is_zero());
        assert_eq!(Energy::default(), Energy::ZERO);
    }

    #[test]
    fn add_sub_assign() {
        let mut e = Energy::from_pj(5.0);
        e += Energy::from_pj(3.0);
        assert_eq!(e.as_pj(), 8.0);
        e -= Energy::from_pj(2.0);
        assert_eq!(e.as_pj(), 6.0);
    }
}
