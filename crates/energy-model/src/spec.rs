//! Declarative hierarchy specs: a std-only text format describing the
//! whole L1/L2/L3/DRAM topology — per-level size/ways/banks/ports and
//! latencies, plus per-sublevel read/write/insertion energies — so a
//! sweep can range over arbitrary hierarchies instead of the compiled-in
//! paper configuration (`slip sweep --topology FILE`).
//!
//! # Grammar
//!
//! The format is line-oriented — one directive per line; `#` starts a
//! comment, blank lines are ignored, tokens are whitespace-separated:
//!
//! ```text
//! node NAME                  # technology-node name (reports, dedup keys)
//! wire PJ_PER_BIT_MM NS_PER_MM
//! dram PJ_PER_BIT
//! eou PJ                     # one EOU optimization operation
//! mvq PJ                     # one movement-queue lookup
//!
//! level l1
//!   size 32KiB               # optional; checked against sets*ways*64B
//!   sets N                   # power of two
//!   ways N                   # power of two, <= 16
//!   banks N                  # optional physical description, default 1
//!   ports N                  # optional, default 1
//!   latency CYCLES
//!   read PJ
//! end
//!
//! level l2                   # same for l3
//!   size 256KiB
//!   sets N                   # power of two
//!   banks N
//!   ports N
//!   metadata PJ              # SLIP metadata read/write energy
//!   uniform-latency CYCLES   # flat latency of the regular cache
//!   baseline PJ              # optional flat access energy (reporting)
//!   sublevel WAYS read PJ [write PJ] [insert PJ] latency CYCLES
//!   ...                      # 1..=8 sublevels; ways sum to a power of
//! end                        # two <= 32
//! ```
//!
//! `write` defaults to `read` (SRAM); `insert` defaults to `write`.
//! Asymmetric values model STT-RAM LLCs after "Reuse Detector"
//! (Rodríguez-Rodríguez et al.), where a write costs several times a
//! read and SLIP's insertion-energy term dominates.
//!
//! Parse errors carry line, column, *and byte offset* diagnostics.
//! [`HierarchySpec::format`] renders the canonical text; format →
//! parse → format is the identity (property-tested).
//!
//! Built-in nodes ([`HierarchySpec::builtin`]) are themselves stored as
//! spec text, so `--topology 45nm` exercises the same parser as a file.

use crate::params::{LevelEnergyParams, TechnologyParams, LINE_BYTES};
use crate::Energy;
use core::fmt;

/// A parse/validation error with its position in the spec text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte within the line).
    pub col: usize,
    /// Byte offset of the offending token in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology spec error at line {}, col {} (byte {}): {}",
            self.line, self.col, self.offset, self.message
        )
    }
}

impl std::error::Error for SpecError {}

/// The L1 level of a hierarchy spec (uniform SRAM).
#[derive(Debug, Clone, PartialEq)]
pub struct L1Spec {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set (power of two, at most 16 — the packed-LRU bound).
    pub ways: usize,
    /// Physical banks (descriptive; recorded and round-tripped).
    pub banks: usize,
    /// Access ports (descriptive).
    pub ports: usize,
    /// Hit latency in cycles.
    pub latency: u32,
    /// Access energy in pJ (read == write at L1).
    pub read_pj: f64,
}

/// One sublevel of an L2/L3 level spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SublevelSpec {
    /// Ways in this sublevel.
    pub ways: usize,
    /// Read energy in pJ.
    pub read_pj: f64,
    /// Write energy in pJ; `None` means same as read.
    pub write_pj: Option<f64>,
    /// Insertion energy in pJ; `None` means same as write.
    pub insert_pj: Option<f64>,
    /// Hit latency in cycles.
    pub latency: u32,
}

/// An L2 or L3 level of a hierarchy spec.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSpec {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Physical banks (descriptive).
    pub banks: usize,
    /// Access ports (descriptive).
    pub ports: usize,
    /// SLIP metadata read/write energy in pJ.
    pub metadata_pj: f64,
    /// Flat latency of the regular (baseline) cache, in cycles.
    pub uniform_latency: u32,
    /// Flat access energy in pJ for reporting; `None` means the
    /// capacity-weighted mean of the sublevel read energies.
    pub baseline_pj: Option<f64>,
    /// Sublevels, nearest first (1..=8; ways sum to a power of two).
    pub sublevels: Vec<SublevelSpec>,
}

impl LevelSpec {
    /// Total ways per set over all sublevels.
    pub fn total_ways(&self) -> usize {
        self.sublevels.iter().map(|s| s.ways).sum()
    }

    /// `true` if any sublevel has an explicit write or insert energy.
    pub fn is_asymmetric(&self) -> bool {
        self.sublevels
            .iter()
            .any(|s| s.write_pj.is_some() || s.insert_pj.is_some())
    }

    /// Builds the [`LevelEnergyParams`] for this level.
    pub fn energy_params(&self) -> LevelEnergyParams {
        let read: Vec<Energy> = self
            .sublevels
            .iter()
            .map(|s| Energy::from_pj(s.read_pj))
            .collect();
        let lines: Vec<usize> = self.sublevels.iter().map(|s| s.ways * self.sets).collect();
        let baseline = match self.baseline_pj {
            Some(pj) => Energy::from_pj(pj),
            None => {
                let total: usize = lines.iter().sum();
                read.iter()
                    .zip(&lines)
                    .map(|(&e, &l)| e * (l as f64 / total as f64))
                    .sum()
            }
        };
        let any_write = self.sublevels.iter().any(|s| s.write_pj.is_some());
        let any_insert = self.sublevels.iter().any(|s| s.insert_pj.is_some());
        let write: Option<Vec<Energy>> = any_write.then(|| {
            self.sublevels
                .iter()
                .map(|s| Energy::from_pj(s.write_pj.unwrap_or(s.read_pj)))
                .collect()
        });
        let insert: Option<Vec<Energy>> = any_insert.then(|| {
            self.sublevels
                .iter()
                .map(|s| {
                    Energy::from_pj(
                        s.insert_pj
                            .unwrap_or_else(|| s.write_pj.unwrap_or(s.read_pj)),
                    )
                })
                .collect()
        });
        LevelEnergyParams {
            baseline_access: baseline,
            sublevel_access: read,
            sublevel_lines: lines,
            metadata_access: Energy::from_pj(self.metadata_pj),
            sublevel_write: write,
            sublevel_insert: insert,
        }
    }
}

/// A full parsed hierarchy spec: one technology node plus the geometry
/// and energy of all three cache levels (DRAM is the fourth level,
/// described by its per-bit transfer energy).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchySpec {
    /// Node name, e.g. `"45nm"` or `"stt-llc"`.
    pub name: String,
    /// Wire energy per transition, pJ/bit/mm.
    pub wire_pj_per_bit_mm: f64,
    /// Wire delay, ns/mm.
    pub wire_delay_ns_per_mm: f64,
    /// DRAM access energy, pJ/bit.
    pub dram_pj_per_bit: f64,
    /// Energy of one EOU optimization operation, pJ.
    pub eou_op_pj: f64,
    /// Energy of one movement-queue lookup, pJ.
    pub mvq_lookup_pj: f64,
    /// L1 level.
    pub l1: L1Spec,
    /// L2 level.
    pub l2: LevelSpec,
    /// L3 (LLC) level.
    pub l3: LevelSpec,
}

/// Maximum ways the packed-nibble L1 LRU stack can order.
pub const MAX_L1_WAYS: usize = 16;
/// Maximum ways per L2/L3 set (the `WayMask` bound).
pub const MAX_LEVEL_WAYS: usize = 32;
/// Maximum sublevels per level (EOU candidate enumeration is `2^S`).
pub const MAX_SUBLEVELS: usize = 8;

/// The built-in 45 nm node: paper Table 1 + Table 2 verbatim. Loading
/// this spec reproduces the hard-coded configuration bit-exactly (a
/// golden test pins it).
pub const BUILTIN_45NM: &str = "\
# SLIP built-in node: 45 nm (paper Table 1 + Table 2).
node 45nm
wire 0.16 0.3
dram 20
eou 1.27
mvq 0.3
level l1
  size 32KiB
  sets 64
  ways 8
  banks 1
  ports 1
  latency 4
  read 5
end
level l2
  size 256KiB
  sets 256
  banks 16
  ports 1
  metadata 1
  uniform-latency 7
  baseline 39
  sublevel 4 read 21 latency 4
  sublevel 4 read 33 latency 6
  sublevel 8 read 50 latency 8
end
level l3
  size 2MiB
  sets 2048
  banks 16
  ports 1
  metadata 2.5
  uniform-latency 20
  baseline 136
  sublevel 4 read 67 latency 15
  sublevel 4 read 113 latency 19
  sublevel 8 read 176 latency 23
end
";

/// The built-in 22 nm node of the Section 6 technology study (see
/// DESIGN.md: bank energy scales faster than wire energy, growing the
/// near/far asymmetry).
pub const BUILTIN_22NM: &str = "\
# SLIP built-in node: derived 22 nm (paper Section 6 node study).
node 22nm
wire 0.11 0.35
dram 14
eou 0.7
mvq 0.18
level l1
  size 32KiB
  sets 64
  ways 8
  banks 1
  ports 1
  latency 4
  read 5
end
level l2
  size 256KiB
  sets 256
  banks 16
  ports 1
  metadata 0.6
  uniform-latency 7
  baseline 20.5
  sublevel 4 read 10 latency 4
  sublevel 4 read 17 latency 6
  sublevel 8 read 27.5 latency 8
end
level l3
  size 2MiB
  sets 2048
  banks 16
  ports 1
  metadata 1.5
  uniform-latency 20
  baseline 72
  sublevel 4 read 33 latency 15
  sublevel 4 read 59 latency 19
  sublevel 8 read 98 latency 23
end
";

/// The built-in STT-RAM LLC node: 45 nm SRAM L1/L2 with an STT-RAM L3
/// whose reads cost ~0.6x the SRAM read (denser, lower-leakage array)
/// but whose writes cost 6x the read, after "Reuse Detector"
/// (Rodríguez-Rodríguez et al.). Under these parameters SLIP's
/// insertion-energy term dominates the L3 account — see DESIGN.md §15
/// and EXPERIMENTS.md for the measured ordering.
pub const BUILTIN_STT_LLC: &str = "\
# SLIP built-in node: stt-llc (45 nm SRAM L1/L2, STT-RAM L3).
# STT-RAM reads ~0.6x the SRAM read; writes 6x the read.
node stt-llc
wire 0.16 0.3
dram 20
eou 1.27
mvq 0.3
level l1
  size 32KiB
  sets 64
  ways 8
  banks 1
  ports 1
  latency 4
  read 5
end
level l2
  size 256KiB
  sets 256
  banks 16
  ports 1
  metadata 1
  uniform-latency 7
  baseline 39
  sublevel 4 read 21 latency 4
  sublevel 4 read 33 latency 6
  sublevel 8 read 50 latency 8
end
level l3
  size 2MiB
  sets 2048
  banks 16
  ports 1
  metadata 2.5
  uniform-latency 20
  baseline 80
  sublevel 4 read 40 write 240 latency 15
  sublevel 4 read 68 write 408 latency 19
  sublevel 8 read 106 write 636 latency 23
end
";

/// Names of the built-in nodes, in presentation order.
pub const BUILTIN_NAMES: [&str; 3] = ["45nm", "22nm", "stt-llc"];

impl HierarchySpec {
    /// Returns a built-in node by name (`45nm`, `22nm`, `stt-llc`).
    pub fn builtin(name: &str) -> Option<HierarchySpec> {
        let text = match name {
            "45nm" => BUILTIN_45NM,
            "22nm" => BUILTIN_22NM,
            "stt-llc" => BUILTIN_STT_LLC,
            _ => return None,
        };
        Some(Self::parse(text).expect("built-in specs parse"))
    }

    /// Loads a spec from a built-in name or a file path: the CLI's
    /// `--topology` / `SLIP_TOPOLOGY` resolution. Errors are rendered
    /// with the source (name or path) prefixed.
    pub fn load(arg: &str) -> Result<HierarchySpec, String> {
        if let Some(spec) = Self::builtin(arg) {
            return Ok(spec);
        }
        let text = std::fs::read_to_string(arg).map_err(|e| {
            format!(
                "topology {arg:?}: not a built-in node ({}) and not a readable file: {e}",
                BUILTIN_NAMES.join(", ")
            )
        })?;
        Self::parse(&text).map_err(|e| format!("{arg}: {e}"))
    }

    /// Parses a spec from text. See the module docs for the grammar.
    pub fn parse(text: &str) -> Result<HierarchySpec, SpecError> {
        Parser::new(text).parse()
    }

    /// Renders the canonical text form. `parse(format(spec)) == spec`
    /// for any valid spec (property-tested round trip).
    pub fn format(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("node {}\n", self.name));
        out.push_str(&format!(
            "wire {} {}\n",
            self.wire_pj_per_bit_mm, self.wire_delay_ns_per_mm
        ));
        out.push_str(&format!("dram {}\n", self.dram_pj_per_bit));
        out.push_str(&format!("eou {}\n", self.eou_op_pj));
        out.push_str(&format!("mvq {}\n", self.mvq_lookup_pj));
        out.push_str("level l1\n");
        out.push_str(&format!("  sets {}\n", self.l1.sets));
        out.push_str(&format!("  ways {}\n", self.l1.ways));
        out.push_str(&format!("  banks {}\n", self.l1.banks));
        out.push_str(&format!("  ports {}\n", self.l1.ports));
        out.push_str(&format!("  latency {}\n", self.l1.latency));
        out.push_str(&format!("  read {}\n", self.l1.read_pj));
        out.push_str("end\n");
        for (name, level) in [("l2", &self.l2), ("l3", &self.l3)] {
            out.push_str(&format!("level {name}\n"));
            out.push_str(&format!("  sets {}\n", level.sets));
            out.push_str(&format!("  banks {}\n", level.banks));
            out.push_str(&format!("  ports {}\n", level.ports));
            out.push_str(&format!("  metadata {}\n", level.metadata_pj));
            out.push_str(&format!("  uniform-latency {}\n", level.uniform_latency));
            if let Some(b) = level.baseline_pj {
                out.push_str(&format!("  baseline {b}\n"));
            }
            for s in &level.sublevels {
                out.push_str(&format!("  sublevel {} read {}", s.ways, s.read_pj));
                if let Some(w) = s.write_pj {
                    out.push_str(&format!(" write {w}"));
                }
                if let Some(i) = s.insert_pj {
                    out.push_str(&format!(" insert {i}"));
                }
                out.push_str(&format!(" latency {}\n", s.latency));
            }
            out.push_str("end\n");
        }
        out
    }

    /// FNV-1a 64 hash of the canonical text: the topology identity used
    /// in sweep cell keys and `slip serve` dedup.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.format().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Semantic validation, independent of parsing — re-checked when a
    /// spec is constructed programmatically (the parser enforces the
    /// same rules with positions). The limits exist so every spec stays
    /// eligible for the optimized execution paths: power-of-two sets
    /// keep set-sharding's bit-field ownership exact, `ways <= 16` at
    /// L1 fits the packed-nibble LRU stack, `ways <= 32` fits
    /// `WayMask`, and `sublevels <= 8` bounds the EOU's `2^S`
    /// enumeration.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        {
            return Err(format!(
                "node name {:?} must be non-empty [A-Za-z0-9._-]",
                self.name
            ));
        }
        for (what, v) in [
            ("wire energy", self.wire_pj_per_bit_mm),
            ("wire delay", self.wire_delay_ns_per_mm),
            ("dram energy", self.dram_pj_per_bit),
            ("eou energy", self.eou_op_pj),
            ("mvq energy", self.mvq_lookup_pj),
            ("l1 read energy", self.l1.read_pj),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{what} must be positive and finite, got {v}"));
            }
        }
        if !self.l1.sets.is_power_of_two() {
            return Err(format!(
                "l1 sets must be a power of two, got {}",
                self.l1.sets
            ));
        }
        if !self.l1.ways.is_power_of_two() || self.l1.ways > MAX_L1_WAYS {
            return Err(format!(
                "l1 ways must be a power of two <= {MAX_L1_WAYS}, got {}",
                self.l1.ways
            ));
        }
        if self.l1.latency == 0 || self.l1.banks == 0 || self.l1.ports == 0 {
            return Err("l1 latency/banks/ports must be at least 1".to_owned());
        }
        for (name, level) in [("l2", &self.l2), ("l3", &self.l3)] {
            if !level.sets.is_power_of_two() {
                return Err(format!(
                    "{name} sets must be a power of two, got {}",
                    level.sets
                ));
            }
            if level.banks == 0 || level.ports == 0 || level.uniform_latency == 0 {
                return Err(format!(
                    "{name} banks/ports/uniform-latency must be at least 1"
                ));
            }
            if !(level.metadata_pj > 0.0 && level.metadata_pj.is_finite()) {
                return Err(format!("{name} metadata energy must be positive"));
            }
            if let Some(b) = level.baseline_pj {
                if !(b > 0.0 && b.is_finite()) {
                    return Err(format!("{name} baseline energy must be positive"));
                }
            }
            if level.sublevels.is_empty() || level.sublevels.len() > MAX_SUBLEVELS {
                return Err(format!(
                    "{name} needs 1..={MAX_SUBLEVELS} sublevels, got {}",
                    level.sublevels.len()
                ));
            }
            let ways = level.total_ways();
            if !ways.is_power_of_two() || ways > MAX_LEVEL_WAYS {
                return Err(format!(
                    "{name} sublevel ways must sum to a power of two <= {MAX_LEVEL_WAYS}, got {ways}"
                ));
            }
            for s in &level.sublevels {
                if s.ways == 0 || s.latency == 0 {
                    return Err(format!("{name} sublevel ways/latency must be at least 1"));
                }
                for e in [Some(s.read_pj), s.write_pj, s.insert_pj]
                    .into_iter()
                    .flatten()
                {
                    if !(e > 0.0 && e.is_finite()) {
                        return Err(format!("{name} sublevel energies must be positive"));
                    }
                }
            }
        }
        // The MMU's per-line sublevel metadata is one field shared by
        // both SLIP levels, so the hierarchy must give L2 and L3 the
        // same sublevel count.
        if self.l2.sublevels.len() != self.l3.sublevels.len() {
            return Err(format!(
                "l2 and l3 must have the same sublevel count, got {} and {}",
                self.l2.sublevels.len(),
                self.l3.sublevels.len()
            ));
        }
        Ok(())
    }

    /// Builds the [`TechnologyParams`] this spec describes. The node
    /// name is interned (built-in names stay static; others leak one
    /// small string per distinct load, which topology loading does once
    /// per run).
    pub fn technology(&self) -> TechnologyParams {
        TechnologyParams {
            name: intern_name(&self.name),
            wire_pj_per_bit_mm: self.wire_pj_per_bit_mm,
            wire_delay_ns_per_mm: self.wire_delay_ns_per_mm,
            l2: self.l2.energy_params(),
            l3: self.l3.energy_params(),
            dram_pj_per_bit: self.dram_pj_per_bit,
            eou_op: Energy::from_pj(self.eou_op_pj),
            movement_queue_lookup: Energy::from_pj(self.mvq_lookup_pj),
        }
    }
}

fn intern_name(name: &str) -> &'static str {
    match name {
        "45nm" => "45nm",
        "22nm" => "22nm",
        "stt-llc" => "stt-llc",
        other => Box::leak(other.to_owned().into_boxed_str()),
    }
}

/// One token with its position.
#[derive(Clone, Copy)]
struct Tok<'a> {
    text: &'a str,
    line: usize,
    col0: usize,
    offset: usize,
}

struct Parser<'a> {
    text: &'a str,
    /// All tokens of all lines, grouped per line.
    lines: Vec<Vec<Tok<'a>>>,
    /// End-of-input position for "missing X" errors.
    eof: (usize, usize), // (line, offset)
}

/// Partially parsed L2/L3 block.
#[derive(Default)]
struct LevelDraft {
    size_bytes: Option<usize>,
    sets: Option<usize>,
    banks: Option<usize>,
    ports: Option<usize>,
    metadata: Option<f64>,
    uniform_latency: Option<u32>,
    baseline: Option<f64>,
    sublevels: Vec<SublevelSpec>,
}

/// Partially parsed L1 block.
#[derive(Default)]
struct L1Draft {
    size_bytes: Option<usize>,
    sets: Option<usize>,
    ways: Option<usize>,
    banks: Option<usize>,
    ports: Option<usize>,
    latency: Option<u32>,
    read: Option<f64>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let mut lines = Vec::new();
        let mut offset = 0usize;
        for (li, line) in text.split('\n').enumerate() {
            let mut toks = Vec::new();
            let bytes = line.as_bytes();
            let mut i = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'#' {
                    break;
                }
                if bytes[i].is_ascii_whitespace() {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'#' {
                    i += 1;
                }
                toks.push(Tok {
                    text: &line[start..i],
                    line: li + 1,
                    col0: start,
                    offset: offset + start,
                });
            }
            lines.push(toks);
            offset += line.len() + 1;
        }
        let eof = (text.split('\n').count(), text.len());
        Parser { text, lines, eof }
    }

    fn err(&self, tok: &Tok<'_>, message: impl Into<String>) -> SpecError {
        SpecError {
            line: tok.line,
            col: tok.col0 + 1,
            offset: tok.offset,
            message: message.into(),
        }
    }

    fn err_eof(&self, message: impl Into<String>) -> SpecError {
        SpecError {
            line: self.eof.0,
            col: 1,
            offset: self.eof.1,
            message: message.into(),
        }
    }

    fn f64_pos(&self, tok: &Tok<'_>, what: &str) -> Result<f64, SpecError> {
        let v: f64 = tok.text.parse().map_err(|_| {
            self.err(
                tok,
                format!("{what}: expected a number, got {:?}", tok.text),
            )
        })?;
        if !(v > 0.0 && v.is_finite()) {
            return Err(self.err(tok, format!("{what} must be positive, got {}", tok.text)));
        }
        Ok(v)
    }

    fn usize_pos(&self, tok: &Tok<'_>, what: &str) -> Result<usize, SpecError> {
        let v: usize = tok.text.parse().map_err(|_| {
            self.err(
                tok,
                format!("{what}: expected an integer, got {:?}", tok.text),
            )
        })?;
        if v == 0 {
            return Err(self.err(tok, format!("{what} must be at least 1")));
        }
        Ok(v)
    }

    fn pow2(&self, tok: &Tok<'_>, what: &str) -> Result<usize, SpecError> {
        let v = self.usize_pos(tok, what)?;
        if !v.is_power_of_two() {
            return Err(self.err(tok, format!("{what} must be a power of two, got {v}")));
        }
        Ok(v)
    }

    fn size_bytes(&self, tok: &Tok<'_>) -> Result<usize, SpecError> {
        let t = tok.text;
        let (num, mult) = if let Some(n) = t.strip_suffix("KiB") {
            (n, 1024usize)
        } else if let Some(n) = t.strip_suffix("MiB") {
            (n, 1024 * 1024)
        } else if let Some(n) = t.strip_suffix('B') {
            (n, 1)
        } else {
            return Err(self.err(
                tok,
                format!("size: expected e.g. 256KiB or 2MiB, got {t:?}"),
            ));
        };
        let v: usize = num
            .parse()
            .map_err(|_| self.err(tok, format!("size: expected an integer count, got {t:?}")))?;
        Ok(v * mult)
    }

    fn set_once<T>(
        &self,
        slot: &mut Option<T>,
        value: T,
        tok: &Tok<'_>,
        what: &str,
    ) -> Result<(), SpecError> {
        if slot.is_some() {
            return Err(self.err(tok, format!("duplicate `{what}`")));
        }
        *slot = Some(value);
        Ok(())
    }

    fn parse(self) -> Result<HierarchySpec, SpecError> {
        let mut name: Option<String> = None;
        let mut wire: Option<(f64, f64)> = None;
        let mut dram: Option<f64> = None;
        let mut eou: Option<f64> = None;
        let mut mvq: Option<f64> = None;
        let mut l1: Option<L1Spec> = None;
        let mut l2: Option<LevelSpec> = None;
        let mut l3: Option<LevelSpec> = None;

        let mut li = 0usize;
        while li < self.lines.len() {
            let toks = &self.lines[li];
            li += 1;
            let Some(head) = toks.first() else { continue };
            let arity = |n: usize| -> Result<(), SpecError> {
                if toks.len() != n + 1 {
                    Err(self.err(
                        head,
                        format!("`{}` takes {n} value(s), got {}", head.text, toks.len() - 1),
                    ))
                } else {
                    Ok(())
                }
            };
            match head.text {
                "node" => {
                    arity(1)?;
                    let t = &toks[1];
                    if !t
                        .text
                        .bytes()
                        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
                    {
                        return Err(
                            self.err(t, format!("node name {:?} must be [A-Za-z0-9._-]", t.text))
                        );
                    }
                    self.set_once(&mut name, t.text.to_owned(), head, "node")?;
                }
                "wire" => {
                    arity(2)?;
                    let e = self.f64_pos(&toks[1], "wire energy")?;
                    let d = self.f64_pos(&toks[2], "wire delay")?;
                    self.set_once(&mut wire, (e, d), head, "wire")?;
                }
                "dram" => {
                    arity(1)?;
                    let v = self.f64_pos(&toks[1], "dram energy")?;
                    self.set_once(&mut dram, v, head, "dram")?;
                }
                "eou" => {
                    arity(1)?;
                    let v = self.f64_pos(&toks[1], "eou energy")?;
                    self.set_once(&mut eou, v, head, "eou")?;
                }
                "mvq" => {
                    arity(1)?;
                    let v = self.f64_pos(&toks[1], "mvq energy")?;
                    self.set_once(&mut mvq, v, head, "mvq")?;
                }
                "level" => {
                    arity(1)?;
                    let which = &toks[1];
                    match which.text {
                        "l1" => {
                            if l1.is_some() {
                                return Err(self.err(which, "duplicate `level l1` block"));
                            }
                            l1 = Some(self.parse_l1(&mut li)?);
                        }
                        "l2" | "l3" => {
                            let slot = if which.text == "l2" { &mut l2 } else { &mut l3 };
                            if slot.is_some() {
                                return Err(self.err(
                                    which,
                                    format!("duplicate `level {}` block", which.text),
                                ));
                            }
                            *slot = Some(self.parse_level(which.text, &mut li)?);
                        }
                        other => {
                            return Err(self.err(
                                which,
                                format!("unknown level {other:?} (expected l1, l2, or l3)"),
                            ))
                        }
                    }
                }
                "end" => return Err(self.err(head, "`end` without an open `level` block")),
                other => {
                    return Err(self.err(head, format!("unknown directive {other:?}")));
                }
            }
        }

        let (wire_e, wire_d) = wire.ok_or_else(|| self.err_eof("missing `wire` directive"))?;
        let spec = HierarchySpec {
            name: name.ok_or_else(|| self.err_eof("missing `node` directive"))?,
            wire_pj_per_bit_mm: wire_e,
            wire_delay_ns_per_mm: wire_d,
            dram_pj_per_bit: dram.ok_or_else(|| self.err_eof("missing `dram` directive"))?,
            eou_op_pj: eou.ok_or_else(|| self.err_eof("missing `eou` directive"))?,
            mvq_lookup_pj: mvq.ok_or_else(|| self.err_eof("missing `mvq` directive"))?,
            l1: l1.ok_or_else(|| self.err_eof("missing `level l1` block"))?,
            l2: l2.ok_or_else(|| self.err_eof("missing `level l2` block"))?,
            l3: l3.ok_or_else(|| self.err_eof("missing `level l3` block"))?,
        };
        // The parser enforced everything positionally; this is a cheap
        // belt-and-braces pass so parse and programmatic construction
        // share one rulebook.
        spec.validate().map_err(|m| self.err_eof(m))?;
        Ok(spec)
    }

    /// Parses an `level l1 ... end` body starting at line index `*li`.
    fn parse_l1(&self, li: &mut usize) -> Result<L1Spec, SpecError> {
        let mut d = L1Draft::default();
        let end = self.walk_block(li, |toks, head| {
            let kv = |what: &str| -> Result<&Tok<'a>, SpecError> {
                if toks.len() != 2 {
                    Err(self.err(
                        head,
                        format!("`{what}` takes 1 value, got {}", toks.len() - 1),
                    ))
                } else {
                    Ok(&toks[1])
                }
            };
            match head.text {
                "size" => {
                    let v = self.size_bytes(kv("size")?)?;
                    self.set_once(&mut d.size_bytes, v, head, "size")
                }
                "sets" => {
                    let v = self.pow2(kv("sets")?, "sets")?;
                    self.set_once(&mut d.sets, v, head, "sets")
                }
                "ways" => {
                    let t = kv("ways")?;
                    let v = self.pow2(t, "ways")?;
                    if v > MAX_L1_WAYS {
                        return Err(self.err(
                            t,
                            format!("l1 ways must be at most {MAX_L1_WAYS} (packed LRU), got {v}"),
                        ));
                    }
                    self.set_once(&mut d.ways, v, head, "ways")
                }
                "banks" => {
                    let v = self.usize_pos(kv("banks")?, "banks")?;
                    self.set_once(&mut d.banks, v, head, "banks")
                }
                "ports" => {
                    let v = self.usize_pos(kv("ports")?, "ports")?;
                    self.set_once(&mut d.ports, v, head, "ports")
                }
                "latency" => {
                    let v = self.usize_pos(kv("latency")?, "latency")? as u32;
                    self.set_once(&mut d.latency, v, head, "latency")
                }
                "read" => {
                    let v = self.f64_pos(kv("read")?, "read energy")?;
                    self.set_once(&mut d.read, v, head, "read")
                }
                other => Err(self.err(head, format!("unknown l1 key {other:?}"))),
            }
        })?;
        let missing = |what: &str| self.err(&end, format!("level l1 is missing `{what}`"));
        let spec = L1Spec {
            sets: d.sets.ok_or_else(|| missing("sets"))?,
            ways: d.ways.ok_or_else(|| missing("ways"))?,
            banks: d.banks.unwrap_or(1),
            ports: d.ports.unwrap_or(1),
            latency: d.latency.ok_or_else(|| missing("latency"))?,
            read_pj: d.read.ok_or_else(|| missing("read"))?,
        };
        if let Some(size) = d.size_bytes {
            let actual = spec.sets * spec.ways * LINE_BYTES;
            if size != actual {
                return Err(self.err(
                    &end,
                    format!("l1 size {size} B != sets*ways*{LINE_BYTES} B = {actual} B"),
                ));
            }
        }
        Ok(spec)
    }

    /// Parses an `level l2|l3 ... end` body starting at line index `*li`.
    fn parse_level(&self, name: &str, li: &mut usize) -> Result<LevelSpec, SpecError> {
        let mut d = LevelDraft::default();
        let end = self.walk_block(li, |toks, head| {
            let kv = |what: &str| -> Result<&Tok<'a>, SpecError> {
                if toks.len() != 2 {
                    Err(self.err(
                        head,
                        format!("`{what}` takes 1 value, got {}", toks.len() - 1),
                    ))
                } else {
                    Ok(&toks[1])
                }
            };
            match head.text {
                "size" => {
                    let v = self.size_bytes(kv("size")?)?;
                    self.set_once(&mut d.size_bytes, v, head, "size")
                }
                "sets" => {
                    let v = self.pow2(kv("sets")?, "sets")?;
                    self.set_once(&mut d.sets, v, head, "sets")
                }
                "banks" => {
                    let v = self.usize_pos(kv("banks")?, "banks")?;
                    self.set_once(&mut d.banks, v, head, "banks")
                }
                "ports" => {
                    let v = self.usize_pos(kv("ports")?, "ports")?;
                    self.set_once(&mut d.ports, v, head, "ports")
                }
                "metadata" => {
                    let v = self.f64_pos(kv("metadata")?, "metadata energy")?;
                    self.set_once(&mut d.metadata, v, head, "metadata")
                }
                "uniform-latency" => {
                    let v = self.usize_pos(kv("uniform-latency")?, "uniform-latency")? as u32;
                    self.set_once(&mut d.uniform_latency, v, head, "uniform-latency")
                }
                "baseline" => {
                    let v = self.f64_pos(kv("baseline")?, "baseline energy")?;
                    self.set_once(&mut d.baseline, v, head, "baseline")
                }
                "sublevel" => {
                    d.sublevels.push(self.parse_sublevel(toks, head)?);
                    Ok(())
                }
                other => Err(self.err(head, format!("unknown level key {other:?}"))),
            }
        })?;
        let missing = |what: &str| self.err(&end, format!("level {name} is missing `{what}`"));
        let spec = LevelSpec {
            sets: d.sets.ok_or_else(|| missing("sets"))?,
            banks: d.banks.unwrap_or(1),
            ports: d.ports.unwrap_or(1),
            metadata_pj: d.metadata.ok_or_else(|| missing("metadata"))?,
            uniform_latency: d
                .uniform_latency
                .ok_or_else(|| missing("uniform-latency"))?,
            baseline_pj: d.baseline,
            sublevels: d.sublevels,
        };
        if spec.sublevels.is_empty() {
            return Err(missing("sublevel"));
        }
        if spec.sublevels.len() > MAX_SUBLEVELS {
            return Err(self.err(
                &end,
                format!(
                    "level {name} has {} sublevels, at most {MAX_SUBLEVELS} supported",
                    spec.sublevels.len()
                ),
            ));
        }
        let ways = spec.total_ways();
        if !ways.is_power_of_two() || ways > MAX_LEVEL_WAYS {
            return Err(self.err(
                &end,
                format!(
                    "level {name} sublevel ways must sum to a power of two <= {MAX_LEVEL_WAYS}, \
                     got {ways}"
                ),
            ));
        }
        if let Some(size) = d.size_bytes {
            let actual = spec.sets * ways * LINE_BYTES;
            if size != actual {
                return Err(self.err(
                    &end,
                    format!("{name} size {size} B != sets*ways*{LINE_BYTES} B = {actual} B"),
                ));
            }
        }
        Ok(spec)
    }

    /// Parses one `sublevel WAYS read PJ [write PJ] [insert PJ] latency N`.
    fn parse_sublevel(&self, toks: &[Tok<'a>], head: &Tok<'a>) -> Result<SublevelSpec, SpecError> {
        if toks.len() < 2 {
            return Err(self.err(head, "`sublevel` needs a way count"));
        }
        let ways = self.usize_pos(&toks[1], "sublevel ways")?;
        let mut read: Option<f64> = None;
        let mut write: Option<f64> = None;
        let mut insert: Option<f64> = None;
        let mut latency: Option<u32> = None;
        let mut i = 2usize;
        while i < toks.len() {
            let key = &toks[i];
            let Some(value) = toks.get(i + 1) else {
                return Err(self.err(key, format!("`{}` needs a value", key.text)));
            };
            match key.text {
                "read" => {
                    let v = self.f64_pos(value, "read energy")?;
                    self.set_once(&mut read, v, key, "read")?;
                }
                "write" => {
                    let v = self.f64_pos(value, "write energy")?;
                    self.set_once(&mut write, v, key, "write")?;
                }
                "insert" => {
                    let v = self.f64_pos(value, "insert energy")?;
                    self.set_once(&mut insert, v, key, "insert")?;
                }
                "latency" => {
                    let v = self.usize_pos(value, "latency")? as u32;
                    self.set_once(&mut latency, v, key, "latency")?;
                }
                other => {
                    return Err(self.err(
                        key,
                        format!("unknown sublevel key {other:?} (read/write/insert/latency)"),
                    ))
                }
            }
            i += 2;
        }
        Ok(SublevelSpec {
            ways,
            read_pj: read.ok_or_else(|| self.err(head, "sublevel is missing `read`"))?,
            write_pj: write,
            insert_pj: insert,
            latency: latency.ok_or_else(|| self.err(head, "sublevel is missing `latency`"))?,
        })
    }

    /// Runs `body` on each non-empty line until the matching `end`,
    /// advancing `*li` past it. Returns the `end` token for positioned
    /// "missing key" errors.
    fn walk_block(
        &self,
        li: &mut usize,
        mut body: impl FnMut(&[Tok<'a>], &Tok<'a>) -> Result<(), SpecError>,
    ) -> Result<Tok<'a>, SpecError> {
        while *li < self.lines.len() {
            let toks = &self.lines[*li];
            *li += 1;
            let Some(head) = toks.first() else { continue };
            if head.text == "end" {
                if toks.len() != 1 {
                    return Err(self.err(head, "`end` takes no values"));
                }
                return Ok(*head);
            }
            if head.text == "level" {
                return Err(self.err(head, "`level` blocks cannot nest (missing `end`?)"));
            }
            body(toks, head)?;
        }
        let _ = self.text;
        Err(self.err_eof("unterminated `level` block (missing `end`)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{TECH_22NM, TECH_45NM};

    /// SplitMix64 — the same tiny deterministic generator the serve
    /// protocol property tests use.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn pick(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_spec(rng: &mut Rng) -> HierarchySpec {
        let sublevel = |rng: &mut Rng, ways: usize| SublevelSpec {
            ways,
            read_pj: 1.0 + rng.pick(500) as f64 / 4.0,
            write_pj: (rng.pick(3) == 0).then(|| 1.0 + rng.pick(4000) as f64 / 4.0),
            insert_pj: (rng.pick(4) == 0).then(|| 1.0 + rng.pick(4000) as f64 / 4.0),
            latency: 1 + rng.pick(40) as u32,
        };
        let level = |rng: &mut Rng, n_sub: u64| {
            // Sublevels whose ways sum to a power of two. The count is
            // shared by l2 and l3 (the validator requires it).
            let total: usize = 1 << (2 + rng.pick(4)); // 4..=32
            let splits: Vec<usize> = match n_sub {
                0 => vec![total],
                1 => vec![total / 2, total / 2],
                _ => vec![total / 4, total / 4, total / 2],
            };
            LevelSpec {
                sets: 1 << (4 + rng.pick(8)),
                banks: 1 + rng.pick(16) as usize,
                ports: 1 + rng.pick(4) as usize,
                metadata_pj: 0.25 + rng.pick(40) as f64 / 8.0,
                uniform_latency: 1 + rng.pick(30) as u32,
                baseline_pj: (rng.pick(2) == 0).then(|| 1.0 + rng.pick(800) as f64 / 4.0),
                sublevels: splits.iter().map(|&w| sublevel(rng, w)).collect(),
            }
        };
        let n_sub = rng.pick(3);
        HierarchySpec {
            name: format!("node-{:x}", rng.next() & 0xffff),
            wire_pj_per_bit_mm: 0.01 + rng.pick(100) as f64 / 100.0,
            wire_delay_ns_per_mm: 0.01 + rng.pick(100) as f64 / 100.0,
            dram_pj_per_bit: 1.0 + rng.pick(50) as f64,
            eou_op_pj: 0.1 + rng.pick(30) as f64 / 10.0,
            mvq_lookup_pj: 0.05 + rng.pick(10) as f64 / 10.0,
            l1: L1Spec {
                sets: 1 << (3 + rng.pick(5)),
                ways: 1 << (1 + rng.pick(4)), // 2..=16
                banks: 1 + rng.pick(4) as usize,
                ports: 1 + rng.pick(2) as usize,
                latency: 1 + rng.pick(6) as u32,
                read_pj: 0.5 + rng.pick(80) as f64 / 8.0,
            },
            l2: level(rng, n_sub),
            l3: level(rng, n_sub),
        }
    }

    #[test]
    fn builtins_parse_and_are_named() {
        for name in BUILTIN_NAMES {
            let spec = HierarchySpec::builtin(name).expect("builtin exists");
            assert_eq!(spec.name, name);
            assert!(spec.validate().is_ok(), "{name}");
        }
        assert!(HierarchySpec::builtin("7nm").is_none());
    }

    #[test]
    fn builtin_45nm_reproduces_table2_exactly() {
        let tech = HierarchySpec::builtin("45nm").unwrap().technology();
        assert_eq!(&tech, &*TECH_45NM);
    }

    #[test]
    fn builtin_22nm_reproduces_derived_node_exactly() {
        let tech = HierarchySpec::builtin("22nm").unwrap().technology();
        assert_eq!(&tech, &*TECH_22NM);
    }

    #[test]
    fn stt_llc_has_asymmetric_l3_and_symmetric_l2() {
        let spec = HierarchySpec::builtin("stt-llc").unwrap();
        assert!(!spec.l2.is_asymmetric());
        assert!(spec.l3.is_asymmetric());
        let tech = spec.technology();
        assert!(tech.l2.is_symmetric());
        assert!(!tech.l3.is_symmetric());
        // Writes are 6x reads at every L3 sublevel.
        let w = tech.l3.resolved_write();
        for (r, w) in tech.l3.sublevel_access.iter().zip(&w) {
            assert_eq!(w.as_pj(), r.as_pj() * 6.0);
        }
        // Insertions default to the write cost.
        assert_eq!(tech.l3.resolved_insert(), w);
        // L2 matches the 45 nm SRAM table.
        assert_eq!(tech.l2.sublevel_access, TECH_45NM.l2.sublevel_access);
    }

    #[test]
    fn format_parse_round_trips_builtins() {
        for name in BUILTIN_NAMES {
            let spec = HierarchySpec::builtin(name).unwrap();
            let text = spec.format();
            let reparsed = HierarchySpec::parse(&text).expect("canonical text parses");
            assert_eq!(reparsed, spec, "{name}");
            assert_eq!(reparsed.format(), text, "{name}");
            assert_eq!(reparsed.fingerprint(), spec.fingerprint());
        }
    }

    #[test]
    fn format_parse_round_trips_random_specs() {
        // Satellite property test: format -> parse -> format is the
        // identity over randomized valid specs.
        let mut rng = Rng(0x511b);
        for i in 0..200 {
            let spec = random_spec(&mut rng);
            assert!(spec.validate().is_ok(), "iter {i}: {spec:?}");
            let text = spec.format();
            let reparsed =
                HierarchySpec::parse(&text).unwrap_or_else(|e| panic!("iter {i}: {e}\n{text}"));
            assert_eq!(reparsed, spec, "iter {i}");
            assert_eq!(reparsed.format(), text, "iter {i}");
        }
    }

    #[test]
    fn fingerprints_differ_across_builtins() {
        let fps: Vec<u64> = BUILTIN_NAMES
            .iter()
            .map(|n| HierarchySpec::builtin(n).unwrap().fingerprint())
            .collect();
        assert_eq!(
            fps.iter().collect::<std::collections::HashSet<_>>().len(),
            fps.len()
        );
    }

    /// Asserts that parsing fails and the error's position points
    /// `skip` bytes past the first occurrence of the (unique) `context`
    /// string — a byte-offset assertion on the diagnostic.
    fn assert_rejects_at(text: &str, context: &str, skip: usize, msg_contains: &str) {
        let err = HierarchySpec::parse(text).expect_err("should reject");
        assert!(
            err.message.contains(msg_contains),
            "message {:?} should contain {:?}",
            err.message,
            msg_contains
        );
        let expect_offset = text.find(context).expect("marker present in test input") + skip;
        assert_eq!(
            err.offset, expect_offset,
            "error offset {} should point {skip} bytes into {:?} (offset {}): {}",
            err.offset, context, expect_offset, err
        );
        // Line/col must agree with the byte offset.
        let line = text[..err.offset].matches('\n').count() + 1;
        let col = err.offset - text[..err.offset].rfind('\n').map_or(0, |p| p + 1) + 1;
        assert_eq!((err.line, err.col), (line, col), "{err}");
    }

    #[test]
    fn rejects_duplicate_levels() {
        let dup = BUILTIN_45NM.replace(
            "level l3\n",
            "level l2X\n", // placeholder so only one l3 edit below
        );
        // Turn the l3 block into a second l2 block.
        let dup = dup.replace("level l2X", "level l2");
        let err = HierarchySpec::parse(&dup).expect_err("duplicate l2");
        assert!(err.message.contains("duplicate `level l2` block"), "{err}");
        // The error points at the *second* `l2` token.
        let second = dup.match_indices("level l2").nth(1).unwrap().0 + "level ".len();
        assert_eq!(err.offset, second, "{err}");
    }

    #[test]
    fn rejects_non_power_of_two_sets_and_ways() {
        assert_rejects_at(
            &BUILTIN_45NM.replace("  sets 256\n", "  sets 300\n"),
            "sets 300",
            "sets ".len(),
            "power of two",
        );
        assert_rejects_at(
            &BUILTIN_45NM.replace("  ways 8\n", "  ways 6\n"),
            "ways 6",
            "ways ".len(),
            "power of two",
        );
        // Sublevel ways summing to 12 (4+4+4) are caught at `end`.
        let text = BUILTIN_45NM.replace(
            "sublevel 8 read 50 latency 8",
            "sublevel 4 read 50 latency 8",
        );
        let err = HierarchySpec::parse(&text).expect_err("non-pow2 total");
        assert!(err.message.contains("sum to a power of two"), "{err}");
    }

    #[test]
    fn rejects_zero_energies() {
        assert_rejects_at(
            &BUILTIN_45NM.replace("  read 5\n", "  read 0\n"),
            "read 0",
            "read ".len(),
            "must be positive",
        );
        assert_rejects_at(
            &BUILTIN_45NM.replace("dram 20", "dram 0"),
            "dram 0",
            "dram ".len(),
            "must be positive",
        );
        assert_rejects_at(
            &BUILTIN_45NM.replace(
                "sublevel 4 read 21 latency 4",
                "sublevel 4 read 0 latency 4",
            ),
            "read 0 latency 4",
            "read ".len(),
            "must be positive",
        );
    }

    #[test]
    fn rejects_unknown_directives_with_position() {
        assert_rejects_at(
            &format!("{BUILTIN_45NM}bogus 1\n"),
            "bogus",
            0,
            "unknown directive",
        );
        assert_rejects_at(
            &BUILTIN_45NM.replace("  ports 1\n  metadata 1\n", "  ports 1\n  shiny 1\n"),
            "shiny",
            0,
            "unknown level key",
        );
    }

    #[test]
    fn rejects_missing_pieces() {
        let err = HierarchySpec::parse("node x\n").expect_err("incomplete");
        assert!(err.message.contains("missing"), "{err}");
        let err = HierarchySpec::parse(&BUILTIN_45NM.replace("end\nlevel l2", "level l2"))
            .expect_err("unterminated block");
        assert!(err.message.contains("cannot nest"), "{err}");
        let unterminated = &BUILTIN_45NM[..BUILTIN_45NM.rfind("end").unwrap()];
        let err = HierarchySpec::parse(unterminated).expect_err("missing final end");
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn rejects_size_mismatch() {
        let err = HierarchySpec::parse(&BUILTIN_45NM.replace("size 256KiB", "size 128KiB"))
            .expect_err("size mismatch");
        assert!(err.message.contains("size"), "{err}");
    }

    #[test]
    fn load_resolves_builtins_and_reports_unknown() {
        assert_eq!(HierarchySpec::load("stt-llc").unwrap().name, "stt-llc");
        let err = HierarchySpec::load("no-such-node-or-file").expect_err("unknown");
        assert!(err.contains("45nm, 22nm, stt-llc"), "{err}");
    }

    #[test]
    fn validate_catches_programmatic_violations() {
        let mut spec = HierarchySpec::builtin("45nm").unwrap();
        spec.l1.ways = 12;
        assert!(spec.validate().unwrap_err().contains("power of two"));
        let mut spec = HierarchySpec::builtin("45nm").unwrap();
        spec.l2.sublevels[0].read_pj = -1.0;
        assert!(spec.validate().unwrap_err().contains("positive"));
        let mut spec = HierarchySpec::builtin("45nm").unwrap();
        spec.name = "bad name".to_owned();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn mismatched_l2_l3_sublevel_counts_are_rejected() {
        // The MMU keys one per-line sublevel field for both SLIP
        // levels; a 2-vs-3 hierarchy must die in the parser, not on an
        // assert deep inside system construction.
        let mut spec = HierarchySpec::builtin("45nm").unwrap();
        let merged = SublevelSpec {
            ways: spec.l2.sublevels[0].ways + spec.l2.sublevels[1].ways,
            ..spec.l2.sublevels[0].clone()
        };
        spec.l2.sublevels = vec![merged, spec.l2.sublevels[2].clone()];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("same sublevel count"), "{err}");
        let err = HierarchySpec::parse(&spec.format()).unwrap_err();
        assert!(err.message.contains("same sublevel count"), "{err}");
    }
}
