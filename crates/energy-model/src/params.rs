//! Energy parameters from paper Table 2 (45 nm) and a derived 22 nm set.
//!
//! The 45 nm numbers are taken verbatim from Table 2 of the paper, which the
//! authors obtained from HSPICE simulations of PTM CMOS and wire models of an
//! Intel Xeon E5-style LLC slice. The 22 nm set is our derivation for the
//! Section 6 technology-node study: the paper states only that it reran the
//! same configuration at 22 nm and observed 36% L2 / 25% L3 savings; we scale
//! bank energy down faster than wire energy (wires scale poorly), which
//! slightly *increases* the near/far asymmetry, reproducing the reported
//! trend of marginally higher relative savings.

use crate::Energy;

/// Energy parameters for one cache level.
///
/// A level is split into sublevels — groups of ways with similar access
/// energy (paper Section 3). `sublevel_access[i]` is the energy of one
/// read or write access serviced by sublevel `i`; index 0 is the sublevel
/// nearest the cache controller.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelEnergyParams {
    /// Flat access energy of the level when treated as a uniform cache
    /// (paper Table 2 "Baseline access"). This is the capacity-weighted
    /// average of the sublevel energies and is used only for reporting;
    /// the simulator always charges the actual sublevel energy.
    pub baseline_access: Energy,
    /// Per-sublevel access energy, nearest first.
    pub sublevel_access: Vec<Energy>,
    /// Lines of capacity per sublevel, nearest first.
    pub sublevel_lines: Vec<usize>,
    /// Energy of one metadata (12 b per line: two 3 b SLIPs + 6 b
    /// timestamp) read or write at this level.
    pub metadata_access: Energy,
    /// Per-sublevel *write* energy, nearest first. `None` means writes
    /// cost the same as reads (SRAM, the paper's Table 2 assumption);
    /// `Some` models asymmetric technologies such as STT-RAM, where a
    /// write costs several times a read (Rodríguez-Rodríguez et al.,
    /// "Reuse Detector").
    pub sublevel_write: Option<Vec<Energy>>,
    /// Per-sublevel *insertion* energy (the write of an incoming line),
    /// nearest first. `None` means insertions are priced as writes.
    pub sublevel_insert: Option<Vec<Energy>>,
}

impl LevelEnergyParams {
    /// Total capacity of the level in lines.
    pub fn total_lines(&self) -> usize {
        self.sublevel_lines.iter().sum()
    }

    /// Number of sublevels.
    pub fn sublevels(&self) -> usize {
        self.sublevel_access.len()
    }

    /// Capacity-weighted mean access energy over all sublevels.
    ///
    /// For the paper's configurations this reproduces the Table 2
    /// "Baseline access" values (39 pJ for L2, 136 pJ for L3) to within a
    /// few percent.
    pub fn mean_access(&self) -> Energy {
        let total: usize = self.total_lines();
        assert!(total > 0, "level must have nonzero capacity");
        self.sublevel_access
            .iter()
            .zip(&self.sublevel_lines)
            .map(|(&e, &lines)| e * (lines as f64 / total as f64))
            .sum()
    }

    /// `true` when reads, writes, and insertions all share one energy
    /// table (every SRAM node; the pre-topology behavior).
    pub fn is_symmetric(&self) -> bool {
        self.sublevel_write.is_none() && self.sublevel_insert.is_none()
    }

    /// Resolved per-sublevel write energies: `sublevel_write` when
    /// present, else the read energies.
    pub fn resolved_write(&self) -> Vec<Energy> {
        self.sublevel_write
            .clone()
            .unwrap_or_else(|| self.sublevel_access.clone())
    }

    /// Resolved per-sublevel insertion energies: `sublevel_insert` when
    /// present, else the resolved write energies.
    pub fn resolved_insert(&self) -> Vec<Energy> {
        self.sublevel_insert
            .clone()
            .unwrap_or_else(|| self.resolved_write())
    }

    /// Cumulative capacity (in lines) of sublevels `0..=i`, i.e. the
    /// `CC_i` terms of paper Section 3.2.
    pub fn cumulative_lines(&self) -> Vec<usize> {
        self.sublevel_lines
            .iter()
            .scan(0usize, |acc, &l| {
                *acc += l;
                Some(*acc)
            })
            .collect()
    }
}

/// A complete technology-node parameter set (paper Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyParams {
    /// Human-readable node name, e.g. `"45nm"`.
    pub name: &'static str,
    /// Wire energy per transition, pJ/bit/mm.
    pub wire_pj_per_bit_mm: f64,
    /// Wire delay, ns/mm.
    pub wire_delay_ns_per_mm: f64,
    /// L2 level parameters.
    pub l2: LevelEnergyParams,
    /// L3 level parameters.
    pub l3: LevelEnergyParams,
    /// DRAM access energy, pJ/bit (sum of Idd4 and Idd7RW per Vogelsang).
    pub dram_pj_per_bit: f64,
    /// Energy of one EOU optimization operation (paper Section 5:
    /// synthesized RTL, 1.27 pJ including pipeline registers).
    pub eou_op: Energy,
    /// Energy of one movement-queue lookup (paper Section 5: 0.3 pJ).
    pub movement_queue_lookup: Energy,
}

/// Number of bytes in a cache line throughout the workspace.
pub const LINE_BYTES: usize = 64;

/// Bits transferred for one full line.
pub const LINE_BITS: usize = LINE_BYTES * 8;

impl TechnologyParams {
    /// Energy to transfer one full 64 B line to/from DRAM.
    pub fn dram_line_energy(&self) -> Energy {
        Energy::from_pj(self.dram_pj_per_bit * LINE_BITS as f64)
    }
}

fn kib_lines(kib: usize) -> usize {
    kib * 1024 / LINE_BYTES
}

/// Paper Table 2, 45 nm node.
pub static TECH_45NM: std::sync::LazyLock<TechnologyParams> = std::sync::LazyLock::new(|| {
    TechnologyParams {
        name: "45nm",
        wire_pj_per_bit_mm: 0.16,
        wire_delay_ns_per_mm: 0.3,
        l2: LevelEnergyParams {
            baseline_access: Energy::from_pj(39.0),
            sublevel_access: vec![
                Energy::from_pj(21.0),
                Energy::from_pj(33.0),
                Energy::from_pj(50.0),
            ],
            // 64 KB + 64 KB + 128 KB = 256 KB, 16 ways (Table 1).
            sublevel_lines: vec![kib_lines(64), kib_lines(64), kib_lines(128)],
            metadata_access: Energy::from_pj(1.0),
            sublevel_write: None,
            sublevel_insert: None,
        },
        l3: LevelEnergyParams {
            baseline_access: Energy::from_pj(136.0),
            sublevel_access: vec![
                Energy::from_pj(67.0),
                Energy::from_pj(113.0),
                Energy::from_pj(176.0),
            ],
            // 512 KB + 512 KB + 1 MB = 2 MB, 16 ways (Table 1).
            sublevel_lines: vec![kib_lines(512), kib_lines(512), kib_lines(1024)],
            metadata_access: Energy::from_pj(2.5),
            sublevel_write: None,
            sublevel_insert: None,
        },
        dram_pj_per_bit: 20.0,
        eou_op: Energy::from_pj(1.27),
        movement_queue_lookup: Energy::from_pj(0.3),
    }
});

/// Derived 22 nm node for the Section 6 technology study.
///
/// Bank (transistor) energy scales by roughly 0.45x from 45 nm to 22 nm while
/// wire energy scales by only ~0.7x, so the far/near asymmetry grows. These
/// constants are our estimates (see DESIGN.md §4); the paper reports only the
/// resulting savings (36% L2, 25% L3 for SLIP+ABP).
pub static TECH_22NM: std::sync::LazyLock<TechnologyParams> =
    std::sync::LazyLock::new(|| TechnologyParams {
        name: "22nm",
        wire_pj_per_bit_mm: 0.11,
        wire_delay_ns_per_mm: 0.35,
        l2: LevelEnergyParams {
            baseline_access: Energy::from_pj(20.5),
            sublevel_access: vec![
                Energy::from_pj(10.0),
                Energy::from_pj(17.0),
                Energy::from_pj(27.5),
            ],
            sublevel_lines: vec![kib_lines(64), kib_lines(64), kib_lines(128)],
            metadata_access: Energy::from_pj(0.6),
            sublevel_write: None,
            sublevel_insert: None,
        },
        l3: LevelEnergyParams {
            baseline_access: Energy::from_pj(72.0),
            sublevel_access: vec![
                Energy::from_pj(33.0),
                Energy::from_pj(59.0),
                Energy::from_pj(98.0),
            ],
            sublevel_lines: vec![kib_lines(512), kib_lines(512), kib_lines(1024)],
            metadata_access: Energy::from_pj(1.5),
            sublevel_write: None,
            sublevel_insert: None,
        },
        dram_pj_per_bit: 14.0,
        eou_op: Energy::from_pj(0.7),
        movement_queue_lookup: Energy::from_pj(0.18),
    });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let t = &*TECH_45NM;
        assert_eq!(t.wire_pj_per_bit_mm, 0.16);
        assert_eq!(t.l2.sublevel_access[0].as_pj(), 21.0);
        assert_eq!(t.l2.sublevel_access[1].as_pj(), 33.0);
        assert_eq!(t.l2.sublevel_access[2].as_pj(), 50.0);
        assert_eq!(t.l3.sublevel_access[0].as_pj(), 67.0);
        assert_eq!(t.l3.sublevel_access[1].as_pj(), 113.0);
        assert_eq!(t.l3.sublevel_access[2].as_pj(), 176.0);
        assert_eq!(t.l2.metadata_access.as_pj(), 1.0);
        assert_eq!(t.l3.metadata_access.as_pj(), 2.5);
        assert_eq!(t.dram_pj_per_bit, 20.0);
    }

    #[test]
    fn capacities_match_table1() {
        let t = &*TECH_45NM;
        // 256 KB L2 and 2 MB L3 at 64 B lines.
        assert_eq!(t.l2.total_lines(), 256 * 1024 / 64);
        assert_eq!(t.l3.total_lines(), 2 * 1024 * 1024 / 64);
        assert_eq!(t.l2.cumulative_lines(), vec![1024, 2048, 4096]);
        assert_eq!(t.l3.cumulative_lines(), vec![8192, 16384, 32768]);
    }

    #[test]
    fn mean_access_close_to_baseline_constant() {
        // The capacity-weighted mean of the sublevel energies should land
        // near the paper's flat "baseline access" constants.
        let t = &*TECH_45NM;
        let l2_mean = t.l2.mean_access().as_pj();
        let l3_mean = t.l3.mean_access().as_pj();
        assert!((l2_mean - 39.0).abs() / 39.0 < 0.05, "L2 mean {l2_mean}");
        assert!((l3_mean - 136.0).abs() / 136.0 < 0.05, "L3 mean {l3_mean}");
    }

    #[test]
    fn dram_line_energy_is_20pj_per_bit() {
        assert_eq!(TECH_45NM.dram_line_energy().as_pj(), 20.0 * 512.0);
    }

    #[test]
    fn node_22nm_is_more_asymmetric_than_45nm() {
        // Wire scaling lags transistor scaling, so far/near energy ratio
        // must grow at 22 nm — this is what yields the slightly larger
        // relative savings the paper reports.
        let r45 = TECH_45NM.l2.sublevel_access[2] / TECH_45NM.l2.sublevel_access[0];
        let r22 = TECH_22NM.l2.sublevel_access[2] / TECH_22NM.l2.sublevel_access[0];
        assert!(r22 > r45);
        // And everything must be cheaper in absolute terms.
        for i in 0..3 {
            assert!(TECH_22NM.l2.sublevel_access[i] < TECH_45NM.l2.sublevel_access[i]);
            assert!(TECH_22NM.l3.sublevel_access[i] < TECH_45NM.l3.sublevel_access[i]);
        }
    }

    #[test]
    fn sublevel_energies_strictly_increase_with_distance() {
        for t in [&*TECH_45NM, &*TECH_22NM] {
            for lvl in [&t.l2, &t.l3] {
                for w in lvl.sublevel_access.windows(2) {
                    assert!(w[0] < w[1]);
                }
            }
        }
    }
}
