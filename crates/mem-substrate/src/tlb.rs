//! A fully-associative, LRU translation lookaside buffer.
//!
//! Table 1 does not specify the TLB; we use a 64-entry fully-associative
//! LRU TLB, typical of the paper's era (documented in DESIGN.md). The
//! TLB matters to SLIP because all policy work — state transitions,
//! distribution fetches, SLIP recomputation — happens on TLB misses
//! (paper Figure 7).
//!
//! Recency is an intrusive doubly-linked list threaded through the
//! entry slots, so lookup, refresh, and capacity eviction are all O(1)
//! — the TLB sits on the per-access hot path, and high-miss-rate
//! workloads evict on a third of their accesses.

use cache_sim::hash::FxHashMap;
use cache_sim::PageId;

/// Default TLB capacity in entries.
pub const DEFAULT_TLB_ENTRIES: usize = 64;

/// Sentinel "no slot" link.
const NONE: usize = usize::MAX;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Slot {
    page: PageId,
    prev: usize,
    next: usize,
}

/// A fully-associative LRU TLB.
///
/// # Example
///
/// ```
/// use cache_sim::PageId;
/// use mem_substrate::Tlb;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.lookup(PageId(1))); // cold miss
/// tlb.insert(PageId(1));
/// assert!(tlb.lookup(PageId(1)));
/// tlb.insert(PageId(2));
/// let evicted = tlb.insert(PageId(3)); // capacity eviction
/// assert_eq!(evicted, Some(PageId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlb {
    capacity: usize,
    /// page -> slot index. Consulted every access, so it uses the fast
    /// deterministic hasher rather than std's seeded SipHash.
    map: FxHashMap<PageId, usize>,
    slots: Vec<Slot>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (the eviction victim).
    tail: usize,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            map: FxHashMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            slots: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            hits: 0,
            misses: 0,
        }
    }

    /// Creates the default 64-entry TLB.
    pub fn paper_default() -> Self {
        Tlb::new(DEFAULT_TLB_ENTRIES)
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.map.len()
    }

    /// Detaches slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let Slot { prev, next, .. } = self.slots[i];
        match prev {
            NONE => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NONE => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Attaches slot `i` at the MRU end of the recency list.
    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NONE;
        self.slots[i].next = self.head;
        match self.head {
            NONE => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    /// Looks up `page`, updating recency and hit/miss counters.
    /// Returns `true` on a hit.
    pub fn lookup(&mut self, page: PageId) -> bool {
        match self.probe(page) {
            Some(i) => {
                self.commit_hit(i);
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Pure residency probe returning the entry's slot handle — no
    /// counters, no recency update. A `Some` handle stays valid until
    /// the next insertion or lookup miss; pass it to
    /// [`Self::commit_hit`] to turn the probe into a real hit without
    /// paying the map lookup twice.
    #[inline]
    pub fn probe(&self, page: PageId) -> Option<usize> {
        self.map.get(&page).copied()
    }

    /// Commits a hit on a slot handle from [`Self::probe`]: counts it
    /// and refreshes recency, exactly like a successful
    /// [`Self::lookup`] on the probed page.
    #[inline]
    pub fn commit_hit(&mut self, i: usize) {
        debug_assert!(i < self.slots.len(), "stale TLB slot handle");
        self.hits += 1;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Inserts `page` (after a miss), returning the evicted page if the
    /// TLB was full. Inserting a resident page just refreshes it.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if let Some(&i) = self.map.get(&page) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return None;
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot {
                page,
                prev: NONE,
                next: NONE,
            });
            self.map.insert(page, i);
            self.push_front(i);
            return None;
        }
        // Full: reuse the LRU slot for the incoming page.
        let i = self.tail;
        let victim = self.slots[i].page;
        self.map.remove(&victim);
        self.unlink(i);
        self.slots[i].page = page;
        self.map.insert(page, i);
        self.push_front(i);
        Some(victim)
    }

    /// `true` if `page` is resident (no recency update).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// TLB miss rate in [0, 1]; 0 before any lookups.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4);
        assert!(!t.lookup(PageId(1)));
        t.insert(PageId(1));
        assert!(t.lookup(PageId(1)));
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
        assert!((t.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_entry() {
        let mut t = Tlb::new(2);
        t.insert(PageId(1));
        t.insert(PageId(2));
        // Touch 1 so 2 becomes LRU.
        assert!(t.lookup(PageId(1)));
        let e = t.insert(PageId(3));
        assert_eq!(e, Some(PageId(2)));
        assert!(t.contains(PageId(1)));
        assert!(t.contains(PageId(3)));
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn reinserting_resident_page_evicts_nothing() {
        let mut t = Tlb::new(2);
        t.insert(PageId(1));
        t.insert(PageId(2));
        assert_eq!(t.insert(PageId(1)), None);
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn reinsertion_refreshes_recency() {
        let mut t = Tlb::new(2);
        t.insert(PageId(1));
        t.insert(PageId(2));
        // Refresh 1 via insert; 2 becomes the victim.
        assert_eq!(t.insert(PageId(1)), None);
        assert_eq!(t.insert(PageId(3)), Some(PageId(2)));
    }

    #[test]
    fn eviction_order_matches_a_reference_lru_model() {
        // Drive the TLB with a deterministic access mix and mirror it
        // against a naive stamp-based LRU; every eviction must agree.
        let mut t = Tlb::new(8);
        let mut stamps: Vec<(u64, u64)> = Vec::new(); // (page, stamp)
        let mut clock = 0u64;
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = x % 24;
            clock += 1;
            let hit = t.lookup(PageId(page));
            let model_hit = stamps.iter().any(|&(p, _)| p == page);
            assert_eq!(hit, model_hit);
            if let Some(e) = stamps.iter_mut().find(|(p, _)| *p == page) {
                e.1 = clock;
            } else {
                let evicted = t.insert(PageId(page));
                stamps.push((page, clock));
                let model_evicted = (stamps.len() > 8).then(|| {
                    let at = stamps
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, s))| s)
                        .expect("nonempty")
                        .0;
                    stamps.remove(at).0
                });
                assert_eq!(evicted, model_evicted.map(PageId));
            }
        }
    }

    #[test]
    fn paper_default_is_64_entries() {
        assert_eq!(Tlb::paper_default().capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        Tlb::new(0);
    }
}
