//! A fully-associative, LRU translation lookaside buffer.
//!
//! Table 1 does not specify the TLB; we use a 64-entry fully-associative
//! LRU TLB, typical of the paper's era (documented in DESIGN.md). The
//! TLB matters to SLIP because all policy work — state transitions,
//! distribution fetches, SLIP recomputation — happens on TLB misses
//! (paper Figure 7).

use cache_sim::PageId;
use std::collections::HashMap;

/// Default TLB capacity in entries.
pub const DEFAULT_TLB_ENTRIES: usize = 64;

/// A fully-associative LRU TLB.
///
/// # Example
///
/// ```
/// use cache_sim::PageId;
/// use mem_substrate::Tlb;
///
/// let mut tlb = Tlb::new(2);
/// assert!(!tlb.lookup(PageId(1))); // cold miss
/// tlb.insert(PageId(1));
/// assert!(tlb.lookup(PageId(1)));
/// tlb.insert(PageId(2));
/// let evicted = tlb.insert(PageId(3)); // capacity eviction
/// assert_eq!(evicted, Some(PageId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tlb {
    capacity: usize,
    /// page -> last-use stamp.
    entries: HashMap<PageId, u64>,
    clock: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Creates the default 64-entry TLB.
    pub fn paper_default() -> Self {
        Tlb::new(DEFAULT_TLB_ENTRIES)
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Looks up `page`, updating recency and hit/miss counters.
    /// Returns `true` on a hit.
    pub fn lookup(&mut self, page: PageId) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.entries.get_mut(&page) {
            *stamp = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts `page` (after a miss), returning the evicted page if the
    /// TLB was full. Inserting a resident page just refreshes it.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        self.clock += 1;
        self.entries.insert(page, self.clock);
        if self.entries.len() <= self.capacity {
            return None;
        }
        let victim = *self
            .entries
            .iter()
            .min_by_key(|(_, &stamp)| stamp)
            .expect("nonempty")
            .0;
        self.entries.remove(&victim);
        Some(victim)
    }

    /// `true` if `page` is resident (no recency update).
    pub fn contains(&self, page: PageId) -> bool {
        self.entries.contains_key(&page)
    }

    /// TLB miss rate in [0, 1]; 0 before any lookups.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(4);
        assert!(!t.lookup(PageId(1)));
        t.insert(PageId(1));
        assert!(t.lookup(PageId(1)));
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
        assert!((t.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_entry() {
        let mut t = Tlb::new(2);
        t.insert(PageId(1));
        t.insert(PageId(2));
        // Touch 1 so 2 becomes LRU.
        assert!(t.lookup(PageId(1)));
        let e = t.insert(PageId(3));
        assert_eq!(e, Some(PageId(2)));
        assert!(t.contains(PageId(1)));
        assert!(t.contains(PageId(3)));
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn reinserting_resident_page_evicts_nothing() {
        let mut t = Tlb::new(2);
        t.insert(PageId(1));
        t.insert(PageId(2));
        assert_eq!(t.insert(PageId(1)), None);
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn paper_default_is_64_entries() {
        assert_eq!(Tlb::paper_default().capacity(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        Tlb::new(0);
    }
}
