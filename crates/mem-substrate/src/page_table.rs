//! The page table, holding per-page SLIP codes (in "ignored" PTE bits)
//! and the sampling state bit, plus the per-page 32 b reuse-distance
//! distributions conceptually stored in DRAM (paper §3.1, §4.1).

use cache_sim::hash::FxHashMap;
use cache_sim::PageId;
use slip_core::{PageState, RdDistribution, Slip, SlipLevel};

/// Per-page metadata: 6 b of SLIPs + 1 state bit in the PTE, and two
/// 16 b distributions (L2, L3) in DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct PageEntry {
    /// 3 b SLIP codes for [L2, L3].
    pub slips: [u8; 2],
    /// Sampling/stable state (one PTE bit).
    pub state: PageState,
    /// Reuse-distance distributions for [L2, L3].
    pub dists: [RdDistribution; 2],
}

impl PageEntry {
    /// A fresh page: sampling, Default SLIPs, empty distributions.
    pub fn new(sublevels: usize) -> Self {
        Self::with_bin_bits(sublevels, 4)
    }

    /// A fresh page with custom distribution-counter width (for the §6
    /// bin-width sensitivity study).
    pub fn with_bin_bits(sublevels: usize, bin_bits: u32) -> Self {
        let default = Slip::default_slip(sublevels)
            .expect("1..=8 sublevels")
            .code();
        let bins = sublevels + 1;
        PageEntry {
            slips: [default, default],
            state: PageState::Sampling,
            dists: [
                RdDistribution::new(bins, bin_bits),
                RdDistribution::new(bins, bin_bits),
            ],
        }
    }

    /// PTE storage the SLIP mechanism consumes, in bits (paper: 6 b of
    /// SLIPs + 1 state bit, fitting in the x86-64 PTE's ignored bits).
    pub const PTE_BITS: u32 = 7;

    /// DRAM distribution storage per page, in bits (paper: 32 b).
    pub fn dram_metadata_bits(&self) -> u32 {
        self.dists.iter().map(|d| d.storage_bits()).sum()
    }
}

/// The page table: a growable map from page number to [`PageEntry`].
///
/// # Example
///
/// ```
/// use cache_sim::PageId;
/// use mem_substrate::PageTable;
/// use slip_core::{PageState, SlipLevel};
///
/// let mut pt = PageTable::new(3);
/// let entry = pt.entry_mut(PageId(7));
/// assert_eq!(entry.state, PageState::Sampling);
/// entry.dists[SlipLevel::L2.index()].observe(0);
/// assert_eq!(pt.entry_mut(PageId(7)).dists[0].counts()[0], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PageTable {
    sublevels: usize,
    bin_bits: u32,
    /// Looked up on every translation, so it uses the fast
    /// deterministic hasher rather than std's seeded SipHash.
    pages: FxHashMap<PageId, PageEntry>,
}

impl PageTable {
    /// Creates an empty page table for levels with `sublevels`
    /// sublevels and the paper's 4-bit distribution counters.
    ///
    /// # Panics
    ///
    /// Panics if `sublevels` is not in `1..=8`.
    pub fn new(sublevels: usize) -> Self {
        Self::with_bin_bits(sublevels, 4)
    }

    /// Creates an empty page table with custom distribution-counter
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `sublevels` is not in `1..=8` or `bin_bits` is not in
    /// `1..=16`.
    pub fn with_bin_bits(sublevels: usize, bin_bits: u32) -> Self {
        assert!((1..=8).contains(&sublevels), "1..=8 sublevels required");
        assert!((1..=16).contains(&bin_bits), "1..=16 bin bits required");
        PageTable {
            sublevels,
            bin_bits,
            pages: FxHashMap::default(),
        }
    }

    /// Number of pages touched so far.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` if no page has been touched.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The entry for `page`, creating a fresh sampling entry on first
    /// touch.
    pub fn entry_mut(&mut self, page: PageId) -> &mut PageEntry {
        self.pages
            .entry(page)
            .or_insert_with(|| PageEntry::with_bin_bits(self.sublevels, self.bin_bits))
    }

    /// Read-only view of an existing entry.
    pub fn entry(&self, page: PageId) -> Option<&PageEntry> {
        self.pages.get(&page)
    }

    /// Records an observed reuse-distance bin for `page` at `level`.
    pub fn observe(&mut self, page: PageId, level: SlipLevel, bin: usize) {
        self.entry_mut(page).dists[level.index()].observe(bin);
    }

    /// Iterates over all (page, entry) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PageId, &PageEntry)> {
        self.pages.iter()
    }

    /// Total metadata overhead in DRAM bits for the touched pages.
    pub fn total_dram_metadata_bits(&self) -> u64 {
        self.pages
            .values()
            .map(|e| u64::from(e.dram_metadata_bits()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entry_is_sampling_with_default_slip() {
        let mut pt = PageTable::new(3);
        let e = pt.entry_mut(PageId(1));
        assert_eq!(e.state, PageState::Sampling);
        let def = Slip::default_slip(3).unwrap().code();
        assert_eq!(e.slips, [def, def]);
        assert!(e.dists[0].is_empty());
        assert!(e.dists[1].is_empty());
    }

    #[test]
    fn paper_storage_overheads() {
        let e = PageEntry::new(3);
        // 32 b of distribution metadata per page => 0.1% of a 4 KB page.
        assert_eq!(e.dram_metadata_bits(), 32);
        let overhead = f64::from(e.dram_metadata_bits()) / (4096.0 * 8.0);
        assert!(overhead < 0.0011, "overhead {overhead}");
        // 6 b of SLIPs + 1 state bit fit the PTE's >= 14 ignored bits
        // (the Intel SDM guarantees at least 14 in 64-bit paging).
        let ignored_pte_bits = 14;
        assert!(PageEntry::PTE_BITS <= ignored_pte_bits);
    }

    #[test]
    fn observe_updates_the_right_level() {
        let mut pt = PageTable::new(3);
        pt.observe(PageId(3), SlipLevel::L2, 0);
        pt.observe(PageId(3), SlipLevel::L3, 3);
        let e = pt.entry(PageId(3)).unwrap();
        assert_eq!(e.dists[0].counts(), &[1, 0, 0, 0]);
        assert_eq!(e.dists[1].counts(), &[0, 0, 0, 1]);
    }

    #[test]
    fn len_counts_touched_pages() {
        let mut pt = PageTable::new(3);
        assert!(pt.is_empty());
        pt.entry_mut(PageId(1));
        pt.entry_mut(PageId(2));
        pt.entry_mut(PageId(1));
        assert_eq!(pt.len(), 2);
        assert_eq!(pt.total_dram_metadata_bits(), 64);
    }
}
