//! DRAM traffic and energy model.
//!
//! The paper models DRAM energy as 20 pJ/bit (the sum of the Idd4 and
//! Idd7RW terms of Vogelsang's model) and a flat 100-cycle latency
//! (Table 1). We track demand line transfers and SLIP distribution-
//! metadata transfers separately, since Figures 12 and 16 report the
//! metadata overhead and DRAM traffic deltas explicitly.

use energy_model::{Energy, EnergyAccount, EnergyCategory};

/// Default DRAM latency in cycles (Table 1).
pub const DRAM_LATENCY_CYCLES: u32 = 100;

/// The DRAM backing store: pure traffic/energy accounting.
///
/// Energy is derived from the transfer counters on demand (one multiply
/// per counter), so two shards' counters can be summed and the combined
/// energy is bit-identical to a serial run's.
///
/// # Example
///
/// ```
/// use mem_substrate::Dram;
/// use energy_model::Energy;
///
/// let mut dram = Dram::new(Energy::from_pj(20.0 * 512.0),
///                          Energy::from_pj(20.0 * 32.0), 100);
/// dram.read_line();
/// dram.write_line();
/// assert_eq!(dram.demand_transfers(), 2);
/// assert_eq!(dram.energy().total().as_nj(), 2.0 * 10.24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dram {
    line_energy: Energy,
    metadata_energy: Energy,
    latency: u32,
    /// Demand line reads.
    pub reads: u64,
    /// Demand line writes (writebacks reaching DRAM).
    pub writes: u64,
    /// Distribution-metadata reads.
    pub metadata_reads: u64,
    /// Distribution-metadata writes.
    pub metadata_writes: u64,
}

impl Dram {
    /// Creates a DRAM model with explicit energies and latency.
    pub fn new(line_energy: Energy, metadata_energy: Energy, latency: u32) -> Self {
        Dram {
            line_energy,
            metadata_energy,
            latency,
            reads: 0,
            writes: 0,
            metadata_reads: 0,
            metadata_writes: 0,
        }
    }

    /// Creates a DRAM model from a technology's pJ/bit figure: 512 b per
    /// demand line, 32 b per distribution-metadata transfer.
    pub fn from_pj_per_bit(pj_per_bit: f64) -> Self {
        Dram::new(
            Energy::from_pj(pj_per_bit * 512.0),
            Energy::from_pj(pj_per_bit * 32.0),
            DRAM_LATENCY_CYCLES,
        )
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Reads one demand line; returns the latency.
    pub fn read_line(&mut self) -> u32 {
        self.reads += 1;
        self.latency
    }

    /// Writes one demand line (a writeback that reached DRAM).
    pub fn write_line(&mut self) {
        self.writes += 1;
    }

    /// Reads one page's 32 b distribution metadata; returns the latency.
    pub fn read_metadata(&mut self) -> u32 {
        self.metadata_reads += 1;
        self.latency
    }

    /// Writes one page's distribution metadata back.
    pub fn write_metadata(&mut self) {
        self.metadata_writes += 1;
    }

    /// Demand line transfers (reads + writes), the paper's "DRAM
    /// traffic".
    pub fn demand_transfers(&self) -> u64 {
        self.reads + self.writes
    }

    /// All transfers including metadata.
    pub fn total_transfers(&self) -> u64 {
        self.demand_transfers() + self.metadata_reads + self.metadata_writes
    }

    /// Energy account (Dram and Metadata categories), rebuilt from the
    /// transfer counters.
    pub fn energy(&self) -> EnergyAccount {
        let mut acct = EnergyAccount::new();
        if self.demand_transfers() != 0 {
            acct.charge(
                EnergyCategory::Dram,
                self.line_energy * self.demand_transfers() as f64,
            );
        }
        let metadata = self.metadata_reads + self.metadata_writes;
        if metadata != 0 {
            acct.charge(
                EnergyCategory::Metadata,
                self.metadata_energy * metadata as f64,
            );
        }
        acct
    }

    /// Adds another DRAM model's transfer counters into this one (the
    /// set-sharded runner's reduction step).
    pub fn absorb(&mut self, other: &Dram) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.metadata_reads += other.metadata_reads;
        self.metadata_writes += other.metadata_writes;
    }

    /// Clears all counters (for post-warmup measurement).
    pub fn reset_measurements(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.metadata_reads = 0;
        self.metadata_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram_45nm() -> Dram {
        Dram::from_pj_per_bit(20.0)
    }

    #[test]
    fn line_transfer_energy_matches_paper() {
        let mut d = dram_45nm();
        assert_eq!(d.read_line(), 100);
        assert_eq!(d.energy().get(EnergyCategory::Dram).as_pj(), 10_240.0);
    }

    #[test]
    fn metadata_is_32_bits_worth() {
        let mut d = dram_45nm();
        d.read_metadata();
        d.write_metadata();
        assert_eq!(
            d.energy().get(EnergyCategory::Metadata).as_pj(),
            2.0 * 640.0
        );
        assert_eq!(d.metadata_reads, 1);
        assert_eq!(d.metadata_writes, 1);
        // Metadata does not count as demand traffic.
        assert_eq!(d.demand_transfers(), 0);
        assert_eq!(d.total_transfers(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = dram_45nm();
        d.read_line();
        d.read_line();
        d.write_line();
        assert_eq!(d.reads, 2);
        assert_eq!(d.writes, 1);
        assert_eq!(d.demand_transfers(), 3);
    }

    #[test]
    fn absorb_sums_counters_bit_exactly() {
        let mut serial = dram_45nm();
        let mut a = dram_45nm();
        let mut b = dram_45nm();
        for i in 0..100 {
            serial.read_line();
            if i % 2 == 0 {
                a.read_line();
            } else {
                b.read_line();
            }
            if i % 3 == 0 {
                serial.write_metadata();
                a.write_metadata();
            }
        }
        a.absorb(&b);
        assert_eq!(a, serial);
        assert_eq!(
            a.energy().total().as_pj().to_bits(),
            serial.energy().total().as_pj().to_bits()
        );
    }
}
