//! Memory-system substrate for the SLIP reproduction.
//!
//! The paper stores its policy state in the virtual-memory system: 6 b
//! of SLIP codes and a sampling-state bit live in otherwise-ignored PTE
//! bits, and each page's 32 b reuse-distance distribution lives in DRAM
//! and is fetched on (a sampled subset of) TLB misses. This crate
//! provides those pieces:
//!
//! * [`Tlb`] — a fully-associative LRU TLB,
//! * [`PageTable`] / [`PageEntry`] — per-page SLIPs, state, and
//!   distributions,
//! * [`Dram`] — DRAM traffic and energy accounting (20 pJ/bit),
//! * [`SlipMmu`] — the Figure 7 TLB-miss machinery tying them together
//!   with the time-based sampler and the two EOUs.

pub mod dram;
pub mod mmu;
pub mod page_table;
pub mod tlb;

pub use dram::{Dram, DRAM_LATENCY_CYCLES};
pub use mmu::{MmuStats, SlipMmu, Translation};
pub use page_table::{PageEntry, PageTable};
pub use tlb::{Tlb, DEFAULT_TLB_ENTRIES};
