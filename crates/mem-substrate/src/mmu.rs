//! The SLIP MMU: the TLB-side mechanism of paper Figure 7.
//!
//! On every TLB miss the MMU (steps Ê–Í):
//!
//! 1. reads the PTE (SLIP codes + sampling-state bit),
//! 2. if the page samples, loads its 32 b reuse-distance distribution
//!    (this is the metadata traffic bounded by time-based sampling),
//! 3. randomly transitions the sampling state,
//! 4. on a sampling→stable transition, recomputes the page's L2/L3
//!    SLIPs with the two EOUs (blocking the TLB for one cycle).
//!
//! During hits in lower-level caches (step Î), observed reuse-distance
//! bins are recorded into the distribution of sampling pages via
//! [`SlipMmu::record_reuse`].

use crate::page_table::PageTable;
use crate::tlb::Tlb;
use cache_sim::{LineAddr, PageId};
use energy_model::Energy;
use slip_core::{
    EnergyOptimizerUnit, EouObjective, LevelModelParams, PageState, SamplingConfig, Slip,
    SlipLevel, TimeSampler, Transition,
};

/// Counters for the MMU-side mechanism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (where all SLIP policy work happens).
    pub tlb_misses: u64,
    /// Distribution-metadata fetches issued (sampling pages only).
    pub metadata_fetches: u64,
    /// Distribution-metadata writebacks on TLB eviction of sampling
    /// pages.
    pub metadata_writebacks: u64,
    /// SLIP recomputations (sampling→stable edges).
    pub slip_recomputes: u64,
    /// Cycles the TLB was blocked for SLIP updates (1 per recompute).
    pub tlb_block_cycles: u64,
}

/// The result of one address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Effective 3 b SLIP codes for [L2, L3]: the PTE codes for stable
    /// pages, the Default SLIP for sampling pages (paper §4.2).
    pub slip_codes: [u8; 2],
    /// Whether the page is currently sampling.
    pub sampling: bool,
    /// Whether this translation missed the TLB.
    pub tlb_miss: bool,
    /// The caller must issue a 32 b distribution-metadata *read* through
    /// the memory hierarchy.
    pub fetch_metadata: bool,
    /// The caller must issue a distribution-metadata *writeback* for
    /// this evicted sampling page.
    pub writeback_metadata_page: Option<PageId>,
    /// Extra cycles this translation cost (TLB blocking on SLIP update).
    pub extra_cycles: u32,
}

/// The SLIP MMU: TLB + page table + time-based sampler + two EOUs.
///
/// # Example
///
/// ```
/// use cache_sim::PageId;
/// use energy_model::TECH_45NM;
/// use mem_substrate::SlipMmu;
/// use slip_core::{LevelModelParams, SlipLevel};
///
/// let l2 = LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access());
/// let l3 = LevelModelParams::from_level(&TECH_45NM.l3, TECH_45NM.dram_line_energy());
/// let mut mmu = SlipMmu::new(1, l2, l3);
///
/// let t = mmu.translate(PageId(42));
/// assert!(t.tlb_miss && t.sampling); // fresh pages sample
/// // A hit at L2 with a near reuse distance feeds the distribution.
/// mmu.record_reuse(PageId(42), SlipLevel::L2, 0);
/// ```
#[derive(Debug)]
pub struct SlipMmu {
    tlb: Tlb,
    /// The page table (public for experiment introspection).
    pub page_table: PageTable,
    sampler: TimeSampler,
    eou_l2: EnergyOptimizerUnit,
    eou_l3: EnergyOptimizerUnit,
    params: (LevelModelParams, LevelModelParams),
    default_codes: [u8; 2],
    /// log2 of the rd-block size in bytes (paper default: the 4 KB
    /// page, i.e. 12). Section 7 proposes smaller rd-blocks for large
    /// pages, with the per-block SLIPs held in a SLIP-cache managed
    /// like a TLB; here the TLB structure itself plays that role, so a
    /// non-default shift turns it into the SLIP-cache.
    block_shift: u32,
    /// When set, SLIP recomputation runs the EOU's pre-kernel
    /// `optimize_reference` path (for golden-equivalence testing).
    reference_path: bool,
    /// MMU statistics.
    pub stats: MmuStats,
}

impl SlipMmu {
    /// Creates an MMU with the paper's sampling probabilities and a
    /// 64-entry TLB.
    ///
    /// # Panics
    ///
    /// Panics if the two levels disagree on sublevel count.
    pub fn new(seed: u64, l2: LevelModelParams, l3: LevelModelParams) -> Self {
        Self::with_config(
            seed,
            l2,
            l3,
            SamplingConfig::paper_default(),
            Tlb::paper_default(),
        )
    }

    /// Creates an MMU with explicit sampling configuration and TLB.
    ///
    /// # Panics
    ///
    /// Panics if the two levels disagree on sublevel count.
    pub fn with_config(
        seed: u64,
        l2: LevelModelParams,
        l3: LevelModelParams,
        sampling: SamplingConfig,
        tlb: Tlb,
    ) -> Self {
        assert_eq!(
            l2.sublevels(),
            l3.sublevels(),
            "L2 and L3 must have the same sublevel count"
        );
        let sublevels = l2.sublevels();
        let default = Slip::default_slip(sublevels)
            .expect("1..=8 sublevels")
            .code();
        SlipMmu {
            tlb,
            page_table: PageTable::new(sublevels),
            sampler: TimeSampler::with_config(seed, sampling),
            eou_l2: EnergyOptimizerUnit::new(&l2),
            eou_l3: EnergyOptimizerUnit::new(&l3),
            params: (l2, l3),
            default_codes: [default, default],
            block_shift: 12,
            reference_path: false,
            stats: MmuStats::default(),
        }
    }

    /// Routes SLIP recomputation through the EOU's pre-kernel reference
    /// implementation instead of the fused kernel. The two are
    /// bit-identical by contract; golden-equivalence tests run both and
    /// compare.
    pub fn with_reference_path(mut self, reference: bool) -> Self {
        self.reference_path = reference;
        self
    }

    /// Rebuilds both EOUs with an explicit analytical objective (for
    /// the EOU-objective ablation). Preserves the ABP setting.
    pub fn with_eou_objective(mut self, objective: EouObjective) -> Self {
        let abp = self.eou_l2.allows_all_bypass();
        self.eou_l2 = EnergyOptimizerUnit::with_objective(&self.params.0, objective);
        self.eou_l3 = EnergyOptimizerUnit::with_objective(&self.params.1, objective);
        if !abp {
            self.eou_l2 = self.eou_l2.forbid_all_bypass();
            self.eou_l3 = self.eou_l3.forbid_all_bypass();
        }
        self
    }

    /// Uses rd-blocks of `2^shift` bytes instead of 4 KB pages as the
    /// profiling/policy granularity (paper Section 7). Must be set
    /// before any access.
    ///
    /// # Panics
    ///
    /// Panics if blocks have already been touched, or the shift is
    /// outside `7..=21` (at least two lines per block, at most 2 MB).
    pub fn with_block_shift(mut self, shift: u32) -> Self {
        assert!(
            self.page_table.is_empty(),
            "block size must be set before any access"
        );
        assert!((7..=21).contains(&shift), "shift must be in 7..=21");
        self.block_shift = shift;
        self
    }

    /// The rd-block a line belongs to (a page number when the shift is
    /// the default 12).
    pub fn block_of(&self, line: LineAddr) -> PageId {
        PageId(line.0 >> (self.block_shift - 6))
    }

    /// `true` if `line`'s rd-block is TLB-resident: translating it is
    /// a TLB hit — `extra_cycles == 0`, no metadata traffic, no
    /// page-table or sampler transition — so an access that also hits
    /// the L1 never reads the rest of the `Translation`
    /// (`slip_codes`/`sampling` matter below the L1 only). This is the
    /// pure residency probe of the L1 hit-run scanner; once the L1 hit
    /// is confirmed, [`Self::commit_resident_hit`] performs the real
    /// translation state change.
    #[inline]
    pub fn is_resident_line(&self, line: LineAddr) -> bool {
        self.tlb.contains(self.block_of(line))
    }

    /// Commits the TLB-hit half of [`Self::translate_line`] for a
    /// resident line: the recency splice and the hit credits, skipping
    /// the `Translation` build (on a hit it is assembled from pure
    /// reads of the existing page-table entry, and an L1 hit consumes
    /// none of it).
    #[inline]
    pub fn commit_resident_hit(&mut self, line: LineAddr) {
        let hit = self.tlb.lookup(self.block_of(line));
        debug_assert!(hit, "callers probe residency before committing");
        self.stats.tlb_hits += 1;
    }

    /// [`Self::commit_resident_hit`] for `n` back-to-back accesses to
    /// the same resident line: `n` lookups of a resident page are `n`
    /// hit credits but a single recency splice (after the first the
    /// page already heads the recency list).
    #[inline]
    pub fn commit_resident_hits(&mut self, line: LineAddr, n: u64) {
        debug_assert!(n >= 1, "a hit run has at least one access");
        let hit = self.tlb.lookup(self.block_of(line));
        debug_assert!(hit, "callers probe residency before committing");
        self.tlb.hits += n - 1;
        self.stats.tlb_hits += n;
    }

    /// Excludes the All-Bypass Policy from both EOUs ("SLIP" vs
    /// "SLIP+ABP" in the paper's figures).
    pub fn forbid_all_bypass(mut self) -> Self {
        self.eou_l2 = self.eou_l2.clone().forbid_all_bypass();
        self.eou_l3 = self.eou_l3.clone().forbid_all_bypass();
        self
    }

    /// Uses `bin_bits`-wide distribution counters instead of the
    /// paper's 4 bits (for the §6 sensitivity study). Must be called
    /// before any page is touched.
    ///
    /// # Panics
    ///
    /// Panics if pages have already been touched.
    pub fn with_bin_bits(mut self, bin_bits: u32) -> Self {
        assert!(
            self.page_table.is_empty(),
            "bin width must be set before any page is touched"
        );
        self.page_table = PageTable::with_bin_bits(self.page_table_sublevels(), bin_bits);
        self
    }

    fn page_table_sublevels(&self) -> usize {
        // Recover S from the Default SLIP code, which is 2^(S-1).
        (self.default_codes[0].trailing_zeros() + 1) as usize
    }

    /// Translates an access to the line's rd-block (a page at the
    /// default shift), performing the Figure 7 TLB-miss work when
    /// needed.
    pub fn translate_line(&mut self, line: LineAddr) -> Translation {
        let block = self.block_of(line);
        self.translate(block)
    }

    /// Translates an access to `page` (or rd-block id), performing the
    /// Figure 7 TLB/SLIP-cache miss work when needed.
    pub fn translate(&mut self, page: PageId) -> Translation {
        if self.tlb.lookup(page) {
            self.stats.tlb_hits += 1;
            let entry = self.page_table.entry_mut(page);
            let sampling = entry.state == PageState::Sampling;
            return Translation {
                slip_codes: if sampling {
                    self.default_codes
                } else {
                    entry.slips
                },
                sampling,
                tlb_miss: false,
                fetch_metadata: false,
                writeback_metadata_page: None,
                extra_cycles: 0,
            };
        }

        // --- TLB miss: steps Ê-Í of Figure 7 ---
        self.stats.tlb_misses += 1;
        let first_touch = self.page_table.entry(page).is_none();
        let transition = {
            let entry = self.page_table.entry_mut(page);
            if first_touch {
                // A fresh PTE starts sampling; the random state
                // transition applies to subsequent misses only, so a
                // page cannot stabilize before observing anything.
                Transition {
                    state: entry.state,
                    became_stable: false,
                }
            } else {
                self.sampler.transition(entry.state)
            }
        };
        let mut extra_cycles = 0;
        if transition.became_stable {
            // Step Í: recompute the SLIPs from the collected profile.
            // Borrowing the entry and the EOUs simultaneously is fine —
            // they are disjoint fields — so no distribution clones.
            let entry = self.page_table.entry_mut(page);
            let (s2, s3) = if self.reference_path {
                (
                    self.eou_l2.optimize_reference(&entry.dists[0]).slip.code(),
                    self.eou_l3.optimize_reference(&entry.dists[1]).slip.code(),
                )
            } else {
                (
                    self.eou_l2.optimize(&entry.dists[0]).slip.code(),
                    self.eou_l3.optimize(&entry.dists[1]).slip.code(),
                )
            };
            entry.slips = [s2, s3];
            self.stats.slip_recomputes += 1;
            self.stats.tlb_block_cycles += 1;
            extra_cycles += 1;
        }
        // The profile must be resident whenever the page samples — and
        // to compute the new SLIP on a sampling→stable edge.
        let was_or_is_sampling =
            transition.became_stable || transition.state == PageState::Sampling;
        let fetch_metadata = was_or_is_sampling;
        if fetch_metadata {
            self.stats.metadata_fetches += 1;
        }
        let entry = self.page_table.entry_mut(page);
        entry.state = transition.state;
        let sampling = entry.state == PageState::Sampling;
        let slip_codes = if sampling {
            self.default_codes
        } else {
            entry.slips
        };

        // Step Ì/TLB fill: a sampling page evicted from the TLB must
        // write its (possibly updated) profile back to DRAM.
        let evicted = self.tlb.insert(page);
        let writeback_metadata_page = evicted.filter(|p| {
            self.page_table
                .entry(*p)
                .is_some_and(|e| e.state == PageState::Sampling)
        });
        if writeback_metadata_page.is_some() {
            self.stats.metadata_writebacks += 1;
        }

        Translation {
            slip_codes,
            sampling,
            tlb_miss: true,
            fetch_metadata,
            writeback_metadata_page,
            extra_cycles,
        }
    }

    /// Records an observed reuse-distance bin for the rd-block of
    /// `line` (Figure 7 step Î). Ignored for stable blocks.
    pub fn record_reuse_line(&mut self, line: LineAddr, level: SlipLevel, bin: usize) {
        let block = self.block_of(line);
        self.record_reuse(block, level, bin);
    }

    /// Records an observed reuse-distance bin for `page` at `level`
    /// (Figure 7 step Î). Ignored for stable pages.
    pub fn record_reuse(&mut self, page: PageId, level: SlipLevel, bin: usize) {
        let entry = self.page_table.entry_mut(page);
        if entry.state == PageState::Sampling {
            entry.dists[level.index()].observe(bin);
        }
    }

    /// Total energy consumed by the two EOUs so far.
    pub fn eou_energy(&self) -> Energy {
        self.eou_l2.energy_consumed() + self.eou_l3.energy_consumed()
    }

    /// Number of EOU optimizations performed (both levels).
    pub fn eou_operations(&self) -> u64 {
        self.eou_l2.operations() + self.eou_l3.operations()
    }

    /// Clears MMU statistics while keeping the TLB, page table, and
    /// sampler state (for post-warmup measurement). EOU operation
    /// counts are preserved — their energy is charged where consumed.
    pub fn reset_measurements(&mut self) {
        self.stats = MmuStats::default();
        self.eou_l2.reset_operations();
        self.eou_l3.reset_operations();
    }

    /// The TLB, for inspection.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energy_model::TECH_45NM;

    fn mmu(seed: u64) -> SlipMmu {
        let l2 = LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access());
        let l3 = LevelModelParams::from_level(&TECH_45NM.l3, TECH_45NM.dram_line_energy());
        SlipMmu::new(seed, l2, l3)
    }

    #[test]
    fn fresh_page_misses_and_samples_with_default_slip() {
        let mut m = mmu(1);
        let t = m.translate(PageId(1));
        assert!(t.tlb_miss);
        assert!(t.sampling);
        assert!(t.fetch_metadata);
        let def = Slip::default_slip(3).unwrap().code();
        assert_eq!(t.slip_codes, [def, def]);
    }

    #[test]
    fn second_access_hits_tlb_without_metadata_traffic() {
        let mut m = mmu(1);
        m.translate(PageId(1));
        let t = m.translate(PageId(1));
        assert!(!t.tlb_miss);
        assert!(!t.fetch_metadata);
        assert_eq!(m.stats.tlb_hits, 1);
        assert_eq!(m.stats.tlb_misses, 1);
    }

    #[test]
    fn pages_eventually_stabilize_and_get_optimized_slips() {
        let mut m = mmu(2);
        // Teach page 1 a pure-miss profile at L2.
        for _ in 0..15 {
            m.record_reuse(PageId(1), SlipLevel::L2, 3);
            m.record_reuse(PageId(1), SlipLevel::L3, 3);
        }
        // Force many TLB misses by cycling through > TLB-capacity pages.
        let mut stable_seen = false;
        for round in 0..200u64 {
            for p in 0..80u64 {
                m.translate(PageId(p));
            }
            let e = m.page_table.entry(PageId(1)).unwrap();
            if e.state == PageState::Stable {
                stable_seen = true;
                // An all-miss profile must produce a bypass at L2.
                let slip = Slip::from_code(3, e.slips[0]).unwrap();
                assert!(slip.is_all_bypass(), "round {round}: got {slip}");
                break;
            }
        }
        assert!(stable_seen, "page never stabilized");
        assert!(m.stats.slip_recomputes > 0);
        assert_eq!(m.stats.tlb_block_cycles, m.stats.slip_recomputes);
        assert!(m.eou_operations() >= 2 * m.stats.slip_recomputes);
        assert!(m.eou_energy() > Energy::ZERO);
    }

    #[test]
    fn metadata_fetch_fraction_is_near_sampling_fraction() {
        let mut m = mmu(3);
        // Cycle pages to generate many TLB misses; no reuse recording so
        // profiles stay empty (Default SLIP when stable too). Run long
        // enough for the per-page Markov chains to reach stationarity —
        // every page starts in the sampling state.
        for _ in 0..4000 {
            for p in 0..100u64 {
                m.translate(PageId(p));
            }
        }
        let f = m.stats.metadata_fetches as f64 / m.stats.tlb_misses as f64;
        let expect = SamplingConfig::paper_default().expected_sampling_fraction();
        // The paper says ~6% of TLB misses fetch distribution data.
        assert!(
            (f - expect).abs() < 0.02,
            "metadata fetch fraction {f}, expected near {expect}"
        );
    }

    #[test]
    fn sampling_page_eviction_writes_metadata_back() {
        let mut m = mmu(4);
        // Fill the 64-entry TLB with sampling pages, then overflow it.
        let mut writebacks = 0;
        for p in 0..200u64 {
            let t = m.translate(PageId(p));
            if t.writeback_metadata_page.is_some() {
                writebacks += 1;
            }
        }
        assert!(writebacks > 0);
        assert_eq!(m.stats.metadata_writebacks, writebacks);
    }

    #[test]
    fn sub_page_blocks_profile_independently() {
        let mut m = {
            let l2 = LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access());
            let l3 = LevelModelParams::from_level(&TECH_45NM.l3, TECH_45NM.dram_line_energy());
            SlipMmu::new(8, l2, l3).with_block_shift(11) // 2 KB rd-blocks
        };
        use cache_sim::LineAddr;
        // Lines 0 and 32 sit in the same 4 KB page but different 2 KB
        // blocks.
        let a = LineAddr(0);
        let b = LineAddr(32);
        assert_ne!(m.block_of(a), m.block_of(b));
        m.translate_line(a);
        m.translate_line(b);
        m.record_reuse_line(a, SlipLevel::L2, 0);
        m.record_reuse_line(b, SlipLevel::L2, 3);
        let ea = m.page_table.entry(m.block_of(a)).unwrap().dists[0].clone();
        let eb = m.page_table.entry(m.block_of(b)).unwrap().dists[0].clone();
        assert_eq!(ea.counts(), &[1, 0, 0, 0]);
        assert_eq!(eb.counts(), &[0, 0, 0, 1]);
    }

    #[test]
    fn default_block_is_the_page() {
        let m = mmu(1);
        use cache_sim::LineAddr;
        assert_eq!(m.block_of(LineAddr(0)), PageId(0));
        assert_eq!(m.block_of(LineAddr(63)), PageId(0));
        assert_eq!(m.block_of(LineAddr(64)), PageId(1));
    }

    #[test]
    fn objective_switch_preserves_abp_setting() {
        use slip_core::EouObjective;
        let l2 = LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access());
        let l3 = LevelModelParams::from_level(&TECH_45NM.l3, TECH_45NM.dram_line_energy());
        let mut m = SlipMmu::new(9, l2, l3)
            .forbid_all_bypass()
            .with_eou_objective(EouObjective::PaperLiteral);
        // A pure-miss profile must now stabilize to the Default SLIP
        // (paper-literal objective ties, Default wins the tie-break).
        for _ in 0..15 {
            m.record_reuse(PageId(1), SlipLevel::L2, 3);
        }
        for _ in 0..400 {
            for p in 0..80u64 {
                m.translate(PageId(p));
            }
            if let Some(e) = m.page_table.entry(PageId(1)) {
                if e.state == PageState::Stable {
                    let slip = Slip::from_code(3, e.slips[0]).unwrap();
                    assert!(slip.is_default(), "got {slip}");
                    return;
                }
            }
        }
        panic!("page never stabilized");
    }

    #[test]
    fn stable_pages_do_not_record_reuse() {
        let mut m = mmu(5);
        m.translate(PageId(9));
        // Force the page stable directly.
        m.page_table.entry_mut(PageId(9)).state = PageState::Stable;
        m.record_reuse(PageId(9), SlipLevel::L2, 0);
        assert!(m.page_table.entry(PageId(9)).unwrap().dists[0].is_empty());
    }
}
