//! The single-core full-hierarchy simulation driver.
//!
//! Each demand access flows core → (MMU, for SLIP) → L1 → L2 → L3 →
//! DRAM, with fills propagating back up, writebacks flowing down
//! (write-no-allocate below L1), SLIP distribution-metadata traffic
//! injected at the L2 (it is TLB-side, not core-side), and reuse
//! distances recorded for sampling pages. The hierarchy is
//! non-inclusive, which is what makes the All-Bypass Policy legal
//! (paper §4.3).

use crate::config::{PolicyKind, ReplacementKind, SystemConfig};
use crate::dispatch::{AnyPlacement, AnyReplacement};
use crate::result::SimResult;
use cache_sim::{
    AccessClass, AccessKind, AccessResult, BaselinePolicy, CacheLevel, Drrip, FillOutcome,
    FillRequest, LineAddr, Lru, PageId, Ship,
};
use energy_model::Energy;
use mem_substrate::{Dram, SlipMmu};
use nuca_baselines::{LruPea, NuRapid, PeaLru};
use slip_core::{bin_for_distance, LevelModelParams, SlipLevel, SlipPlacement};
use workloads::WorkloadSpec;

/// Line address region where per-page distribution metadata lives.
/// 16 pages' worth of 32 b records pack into each 64 B line.
const METADATA_BASE_LINE: u64 = 1 << 50;

/// Ceiling on the fast-path probe backoff: with near-zero L1 hit
/// rates the scanner settles into one probe per 64 accesses (~1.5%
/// residual overhead), while a single fast hit re-arms it instantly.
const FAST_BACKOFF_MAX: u32 = 64;

/// A complete single-core system: L1 + L2 + L3 + DRAM (+ SLIP MMU).
pub struct SingleCoreSystem {
    config: SystemConfig,
    l1: CacheLevel,
    l2: CacheLevel,
    l3: CacheLevel,
    dram: Dram,
    mmu: Option<SlipMmu>,
    l1_policy: BaselinePolicy,
    l1_repl: Lru,
    l2_policy: AnyPlacement,
    l3_policy: AnyPlacement,
    l2_repl: AnyReplacement,
    l3_repl: AnyReplacement,
    l2_cum_caps: Vec<usize>,
    l3_cum_caps: Vec<usize>,
    cycles: u64,
    accesses: u64,
    /// Whether the L1 hit-run scanner is armed (`!reference_hot_path`):
    /// [`Self::step_fast`] retires consecutive L1 hits through the SoA
    /// fast path and defers their accounting into the pending
    /// accumulators below, flushed before anything can observe them.
    fast_path: bool,
    /// Batched L1 hits not yet folded into `accesses`/`cycles`.
    pending_hits: u64,
    /// Summed L1 hit latencies of the pending batch.
    pending_hit_latency: u64,
    /// Accesses left to route straight to [`Self::step`] before the
    /// fast path is probed again. The workload generator models reuse
    /// at L2/L3 scale, so many benchmarks have near-zero L1 hit rates;
    /// exponential backoff keeps the failed-probe overhead (a TLB map
    /// lookup plus an L1 tag probe that `step` then repeats) off such
    /// runs. Purely an execution-strategy knob: whichever path an
    /// access takes, the result is bit-identical.
    fast_backoff: u32,
    /// Next backoff length after another fast-path fallback; doubles to
    /// [`FAST_BACKOFF_MAX`], reset to 1 by any fast hit.
    fast_penalty: u32,
    /// Reusable fill-outcome buffer: every fill at every level writes
    /// into this scratch via `fill_into`, so the steady-state access
    /// loop performs no per-access allocation.
    fill_scratch: FillOutcome,
}

impl SingleCoreSystem {
    /// Builds a system for `config`.
    pub fn new(config: SystemConfig) -> Self {
        let l1 = config.build_l1();
        let l2 = config.build_l2();
        let l3 = config.build_l3();
        let l2_geom = l2.geometry().clone();
        let l3_geom = l3.geometry().clone();
        let seed = config.seed;

        let randomized_victims = config.replacement != ReplacementKind::Lru;
        let (l2_policy, l3_policy): (AnyPlacement, AnyPlacement) = match config.policy {
            PolicyKind::Baseline => (
                AnyPlacement::Baseline(BaselinePolicy::new()),
                AnyPlacement::Baseline(BaselinePolicy::new()),
            ),
            PolicyKind::NuRapid => (
                AnyPlacement::NuRapid(NuRapid::new(&l2_geom)),
                AnyPlacement::NuRapid(NuRapid::new(&l3_geom)),
            ),
            PolicyKind::LruPea => (
                AnyPlacement::LruPea(LruPea::new(&l2_geom, seed ^ 0xA)),
                AnyPlacement::LruPea(LruPea::new(&l3_geom, seed ^ 0xB)),
            ),
            PolicyKind::Slip | PolicyKind::SlipAbp => {
                let mut p2 = SlipPlacement::new(SlipLevel::L2, &l2_geom);
                let mut p3 = SlipPlacement::new(SlipLevel::L3, &l3_geom);
                if randomized_victims {
                    p2 = p2.with_randomized_victim_sublevel(seed ^ 0xC);
                    p3 = p3.with_randomized_victim_sublevel(seed ^ 0xD);
                }
                (AnyPlacement::Slip(p2), AnyPlacement::Slip(p3))
            }
        };

        let make_repl = |salt: u64| -> AnyReplacement {
            if config.policy == PolicyKind::LruPea {
                // LRU-PEA's defining feature is its eviction priority.
                return AnyReplacement::PeaLru(PeaLru::new());
            }
            match config.replacement {
                ReplacementKind::Lru => AnyReplacement::Lru(Lru::new()),
                ReplacementKind::Drrip => AnyReplacement::Drrip(Drrip::new(seed ^ salt)),
                ReplacementKind::Ship => AnyReplacement::Ship(Ship::new()),
            }
        };

        let mmu = if config.policy.is_slip() {
            let l2_params =
                LevelModelParams::from_level(&config.tech.l2, config.tech.l3.mean_access());
            let l3_params =
                LevelModelParams::from_level(&config.tech.l3, config.tech.dram_line_energy());
            let mut mmu = SlipMmu::with_config(
                seed ^ 0x1,
                l2_params,
                l3_params,
                config.sampling,
                mem_substrate::Tlb::paper_default(),
            )
            .with_bin_bits(config.rd_bin_bits)
            .with_block_shift(config.rd_block_shift);
            if config.policy == PolicyKind::Slip {
                mmu = mmu.forbid_all_bypass();
            }
            mmu = mmu.with_eou_objective(config.eou_objective);
            mmu = mmu.with_reference_path(config.reference_hot_path);
            Some(mmu)
        } else {
            None
        };

        let l2_cum_caps = l2_geom.cumulative_sublevel_lines();
        let l3_cum_caps = l3_geom.cumulative_sublevel_lines();
        let l2_repl = make_repl(0x22);
        let l3_repl = make_repl(0x33);
        let fast_path = !config.reference_hot_path;

        SingleCoreSystem {
            config,
            l1,
            l2,
            l3,
            dram: Dram::from_pj_per_bit(0.0), // replaced below
            mmu,
            l1_policy: BaselinePolicy::new(),
            l1_repl: Lru::new(),
            l2_policy,
            l3_policy,
            l2_repl,
            l3_repl,
            l2_cum_caps,
            l3_cum_caps,
            cycles: 0,
            accesses: 0,
            fast_path,
            pending_hits: 0,
            pending_hit_latency: 0,
            fast_backoff: 0,
            fast_penalty: 1,
            fill_scratch: FillOutcome::default(),
        }
        .with_dram()
    }

    fn with_dram(mut self) -> Self {
        self.dram = Dram::from_pj_per_bit(self.config.tech.dram_pj_per_bit);
        self
    }

    /// The metadata line holding `page`'s packed distribution record.
    fn meta_line(page: PageId) -> LineAddr {
        LineAddr(METADATA_BASE_LINE + page.0 / 16)
    }

    /// SHiP signature for a page.
    fn signature(page: PageId) -> u16 {
        (page.0 & 0x3FFF) as u16
    }

    /// Simulates one access, retiring L1 hit runs through the batched
    /// fast path when armed. Bit-exact to [`Self::step`]: an access
    /// takes the shortcut only when its whole effect is an L1 SoA hit
    /// plus (for SLIP systems) a TLB hit on a resident block. The TLB
    /// hit is committed eagerly — the same recency splice and credit
    /// `translate_line` performs, whose `Translation` an L1 hit never
    /// reads — while the access/cycle counters defer into the pending
    /// batch (pure sums that commute with every intervening fast hit).
    /// Anything else flushes the pending batch first and falls into
    /// [`Self::step`].
    #[inline]
    pub fn step_fast(&mut self, access: cache_sim::Access) {
        if self.fast_path && self.fast_backoff == 0 {
            let line = access.line();
            let resident = match &self.mmu {
                Some(mmu) => mmu.is_resident_line(line),
                None => true,
            };
            if resident {
                if let Some(latency) = self.l1.try_demand_hit(line, access.kind.is_write()) {
                    if let Some(mmu) = self.mmu.as_mut() {
                        mmu.commit_resident_hit(line);
                    }
                    self.pending_hits += 1;
                    self.pending_hit_latency += u64::from(latency);
                    self.fast_penalty = 1;
                    return;
                }
            }
            self.fast_backoff = self.fast_penalty;
            self.fast_penalty = (self.fast_penalty * 2).min(FAST_BACKOFF_MAX);
        } else if self.fast_backoff > 0 {
            self.fast_backoff -= 1;
        }
        self.flush_hit_run();
        self.step(access);
    }

    /// Retires `n` back-to-back copies of the *same* access — the trace
    /// runners collapse equal-neighbor runs before stepping. A run
    /// whose first access would take the fast path retires in closed
    /// form ([`CacheLevel::try_demand_hit_run`]); anything else replays
    /// the run through [`Self::step_fast`] one access at a time, which
    /// keeps the backoff evolution (and therefore every counter)
    /// exactly as if the caller had never batched.
    pub fn step_fast_run(&mut self, access: cache_sim::Access, n: u64) {
        if n > 1 && self.fast_path && self.fast_backoff == 0 {
            let line = access.line();
            let resident = match &self.mmu {
                Some(mmu) => mmu.is_resident_line(line),
                None => true,
            };
            if resident {
                if let Some(total) = self.l1.try_demand_hit_run(line, access.kind.is_write(), n) {
                    if let Some(mmu) = self.mmu.as_mut() {
                        mmu.commit_resident_hits(line, n);
                    }
                    self.pending_hits += n;
                    self.pending_hit_latency += total;
                    self.fast_penalty = 1;
                    return;
                }
            }
        }
        for _ in 0..n {
            self.step_fast(access);
        }
    }

    /// Folds the pending L1 hit batch into the architectural counters:
    /// each hit is `core_cycles_per_access + its hit latency` cycles
    /// and one access (its TLB hit, if any, was committed when the hit
    /// was absorbed).
    fn flush_hit_run(&mut self) {
        if self.pending_hits == 0 {
            return;
        }
        let n = core::mem::take(&mut self.pending_hits);
        let latency = core::mem::take(&mut self.pending_hit_latency);
        self.accesses += n;
        self.cycles += n * u64::from(self.config.core_cycles_per_access) + latency;
    }

    /// Simulates one access; advances the cycle clock.
    pub fn step(&mut self, access: cache_sim::Access) {
        let line = access.line();
        let page = access.page();
        self.accesses += 1;
        let mut latency = self.config.core_cycles_per_access;

        // --- Translation (SLIP only) ---
        let (slip_codes, sampling) = if let Some(mmu) = self.mmu.as_mut() {
            let t = mmu.translate_line(line);
            latency += t.extra_cycles;
            if t.fetch_metadata {
                // The distribution fetch overlaps the demand access (it
                // feeds the TLB, not the load); only its energy and
                // traffic are charged, not its latency.
                let block = self.mmu.as_ref().expect("mmu present").block_of(line);
                self.metadata_fetch(Self::meta_line(block));
            }
            if let Some(p) = t.writeback_metadata_page {
                self.metadata_writeback(Self::meta_line(p));
            }
            (t.slip_codes, t.sampling)
        } else {
            ([0, 0], false)
        };

        // --- L1 ---
        let now = self.cycles;
        let r1 = self.l1.access(
            line,
            access.kind,
            AccessClass::Demand,
            now,
            &mut self.l1_policy,
            &mut self.l1_repl,
        );
        if let AccessResult::Hit(h) = r1 {
            self.cycles += u64::from(latency + h.latency);
            return;
        }
        latency += r1.latency();

        // --- L2 ---
        let r2 = self.l2.access(
            line,
            access.kind,
            AccessClass::Demand,
            now,
            &mut self.l2_policy,
            &mut self.l2_repl,
        );
        match r2 {
            AccessResult::Hit(h2) => {
                latency += h2.latency;
                if sampling {
                    let bin = bin_for_distance(h2.reuse_distance, &self.l2_cum_caps);
                    if let Some(mmu) = self.mmu.as_mut() {
                        mmu.record_reuse_line(line, SlipLevel::L2, bin);
                    }
                }
                self.fill_l1(line, access.kind);
            }
            AccessResult::Miss { latency: l2_lat } => {
                latency += l2_lat;
                if sampling {
                    if let Some(mmu) = self.mmu.as_mut() {
                        mmu.record_reuse_line(line, SlipLevel::L2, self.l2_cum_caps.len());
                    }
                }
                // --- L3 ---
                let r3 = self.l3.access(
                    line,
                    access.kind,
                    AccessClass::Demand,
                    now,
                    &mut self.l3_policy,
                    &mut self.l3_repl,
                );
                match r3 {
                    AccessResult::Hit(h3) => {
                        latency += h3.latency;
                        if sampling {
                            let bin = bin_for_distance(h3.reuse_distance, &self.l3_cum_caps);
                            if let Some(mmu) = self.mmu.as_mut() {
                                mmu.record_reuse_line(line, SlipLevel::L3, bin);
                            }
                        }
                        self.fill_l2(line, slip_codes, sampling, page);
                        self.fill_l1(line, access.kind);
                    }
                    AccessResult::Miss { latency: l3_lat } => {
                        latency += l3_lat;
                        if sampling {
                            if let Some(mmu) = self.mmu.as_mut() {
                                mmu.record_reuse_line(line, SlipLevel::L3, self.l3_cum_caps.len());
                            }
                        }
                        latency += self.dram.read_line();
                        let l3_bypassed = self.fill_l3(line, slip_codes, sampling, page);
                        if l3_bypassed && self.config.inclusive_llc {
                            // An inclusive LLC cannot hold a copy above
                            // a line it does not hold (paper §4.3) —
                            // the line is served uncached.
                        } else {
                            self.fill_l2(line, slip_codes, sampling, page);
                            self.fill_l1(line, access.kind);
                        }
                    }
                }
            }
        }
        self.cycles += u64::from(latency);
    }

    /// Simulates one access whose L1 interaction was precomputed by a
    /// group-shared L1 (see [`crate::fused`]). Mirrors [`step`] exactly
    /// with the two L1 touch points replaced by `l1`: the probe result
    /// feeds the latency accounting, and the victims the L1 fill would
    /// have evicted are routed down this system's own L2/L3/DRAM at the
    /// position `fill_l1` holds in the serial sequence.
    ///
    /// Only legal for non-inclusive hierarchies, where nothing below
    /// the L1 ever reaches back into it — that is what makes the L1
    /// policy-invariant and thus shareable across a fused group.
    ///
    /// [`step`]: Self::step
    pub fn step_below_l1(&mut self, access: cache_sim::Access, l1: &L1Verdict<'_>) {
        debug_assert!(
            !self.config.inclusive_llc,
            "shared L1 requires non-inclusive LLC"
        );
        let line = access.line();
        let page = access.page();
        self.accesses += 1;
        let mut latency = self.config.core_cycles_per_access;

        let (slip_codes, sampling) = if let Some(mmu) = self.mmu.as_mut() {
            let t = mmu.translate_line(line);
            latency += t.extra_cycles;
            if t.fetch_metadata {
                let block = self.mmu.as_ref().expect("mmu present").block_of(line);
                self.metadata_fetch(Self::meta_line(block));
            }
            if let Some(p) = t.writeback_metadata_page {
                self.metadata_writeback(Self::meta_line(p));
            }
            (t.slip_codes, t.sampling)
        } else {
            ([0, 0], false)
        };

        if l1.hit {
            self.cycles += u64::from(latency + l1.latency);
            return;
        }
        latency += l1.latency;

        let now = self.cycles;
        let r2 = self.l2.access(
            line,
            access.kind,
            AccessClass::Demand,
            now,
            &mut self.l2_policy,
            &mut self.l2_repl,
        );
        match r2 {
            AccessResult::Hit(h2) => {
                latency += h2.latency;
                if sampling {
                    let bin = bin_for_distance(h2.reuse_distance, &self.l2_cum_caps);
                    if let Some(mmu) = self.mmu.as_mut() {
                        mmu.record_reuse_line(line, SlipLevel::L2, bin);
                    }
                }
                self.route_l1_writebacks(l1.writebacks);
            }
            AccessResult::Miss { latency: l2_lat } => {
                latency += l2_lat;
                if sampling {
                    if let Some(mmu) = self.mmu.as_mut() {
                        mmu.record_reuse_line(line, SlipLevel::L2, self.l2_cum_caps.len());
                    }
                }
                let r3 = self.l3.access(
                    line,
                    access.kind,
                    AccessClass::Demand,
                    now,
                    &mut self.l3_policy,
                    &mut self.l3_repl,
                );
                match r3 {
                    AccessResult::Hit(h3) => {
                        latency += h3.latency;
                        if sampling {
                            let bin = bin_for_distance(h3.reuse_distance, &self.l3_cum_caps);
                            if let Some(mmu) = self.mmu.as_mut() {
                                mmu.record_reuse_line(line, SlipLevel::L3, bin);
                            }
                        }
                        self.fill_l2(line, slip_codes, sampling, page);
                        self.route_l1_writebacks(l1.writebacks);
                    }
                    AccessResult::Miss { latency: l3_lat } => {
                        latency += l3_lat;
                        if sampling {
                            if let Some(mmu) = self.mmu.as_mut() {
                                mmu.record_reuse_line(line, SlipLevel::L3, self.l3_cum_caps.len());
                            }
                        }
                        latency += self.dram.read_line();
                        self.fill_l3(line, slip_codes, sampling, page);
                        self.fill_l2(line, slip_codes, sampling, page);
                        self.route_l1_writebacks(l1.writebacks);
                    }
                }
            }
        }
        self.cycles += u64::from(latency);
    }

    /// Dirty victims of the shared L1's fill, routed down this system's
    /// hierarchy exactly where its own `fill_l1` would have.
    fn route_l1_writebacks(&mut self, writebacks: &[LineAddr]) {
        for &wb in writebacks {
            self.writeback_below_l1(wb);
        }
    }

    /// Credits a run of consecutive L1 hits in one step. Only exact for
    /// systems without an MMU (no translation work per access): each
    /// hit contributes `core_cycles_per_access + its L1 hit latency`
    /// cycles and nothing else, so a batch folds to two sums.
    pub fn absorb_l1_hits(&mut self, count: u64, latency_sum: u64) {
        debug_assert!(
            self.mmu.is_none(),
            "hit batching requires no per-access MMU work"
        );
        self.accesses += count;
        self.cycles += count * u64::from(self.config.core_cycles_per_access) + latency_sum;
    }

    /// Whether this system carries a per-access MMU (the SLIP
    /// policies); such systems cannot batch L1 hit runs.
    pub fn has_mmu(&self) -> bool {
        self.mmu.is_some()
    }

    /// Fused-group fast path for an MMU-carrying cell: attempts to
    /// retire an access the shared L1 already verdicted as a hit (at
    /// `hit_latency`) as a committed TLB hit plus a batched
    /// access/cycle credit. Returns `false` when the scanner is off or
    /// the line's block is not TLB-resident; the caller then takes the
    /// full [`Self::step_below_l1`] path. Deferring the batch across
    /// that path is exact — the pending credits are pure counter adds
    /// that nothing below the L1 reads — but a non-resident line
    /// flushes eagerly anyway to keep batch lifetimes short.
    pub fn try_absorb_shared_hit(&mut self, access: cache_sim::Access, hit_latency: u32) -> bool {
        if !self.fast_path {
            return false;
        }
        if self.fast_backoff > 0 {
            self.fast_backoff -= 1;
            self.flush_hit_run();
            return false;
        }
        if let Some(mmu) = self.mmu.as_mut() {
            if !mmu.is_resident_line(access.line()) {
                self.fast_backoff = self.fast_penalty;
                self.fast_penalty = (self.fast_penalty * 2).min(FAST_BACKOFF_MAX);
                self.flush_hit_run();
                return false;
            }
            mmu.commit_resident_hit(access.line());
        }
        self.pending_hits += 1;
        self.pending_hit_latency += u64::from(hit_latency);
        self.fast_penalty = 1;
        true
    }

    /// Fills a line into L1 (write-allocate: stores dirty the L1 copy).
    fn fill_l1(&mut self, line: LineAddr, kind: AccessKind) {
        let mut req = FillRequest::new(line);
        req.dirty = kind.is_write();
        let now = self.cycles;
        // Writeback routing below never re-enters fill, so the scratch
        // buffer can be taken for the duration of the loop.
        let mut out = core::mem::take(&mut self.fill_scratch);
        self.l1
            .fill_into(req, now, &mut self.l1_policy, &mut self.l1_repl, &mut out);
        for wb in &out.writebacks {
            self.writeback_below_l1(wb.addr);
        }
        self.fill_scratch = out;
    }

    fn fill_l2(&mut self, line: LineAddr, slip_codes: [u8; 2], sampling: bool, page: PageId) {
        let mut req = FillRequest::new(line);
        req.slip_codes = slip_codes;
        req.sampling = sampling;
        req.signature = Self::signature(page);
        let now = self.cycles;
        let mut out = core::mem::take(&mut self.fill_scratch);
        self.l2
            .fill_into(req, now, &mut self.l2_policy, &mut self.l2_repl, &mut out);
        for wb in &out.writebacks {
            self.writeback_below_l2(wb.addr);
        }
        self.fill_scratch = out;
    }

    fn fill_l3(
        &mut self,
        line: LineAddr,
        slip_codes: [u8; 2],
        sampling: bool,
        page: PageId,
    ) -> bool {
        let mut req = FillRequest::new(line);
        req.slip_codes = slip_codes;
        req.sampling = sampling;
        req.signature = Self::signature(page);
        let now = self.cycles;
        let mut out = core::mem::take(&mut self.fill_scratch);
        self.l3
            .fill_into(req, now, &mut self.l3_policy, &mut self.l3_repl, &mut out);
        for wb in &out.writebacks {
            self.dram.write_line();
            if self.config.inclusive_llc {
                self.back_invalidate(wb.addr);
            }
        }
        if self.config.inclusive_llc {
            for ev in &out.clean_evictions {
                self.back_invalidate(ev.addr);
            }
        }
        let bypassed = out.bypassed;
        self.fill_scratch = out;
        bypassed
    }

    /// Inclusive-LLC back-invalidation: a line leaving the L3 must also
    /// leave the levels above; dirty upper copies go straight to DRAM
    /// (their L3 copy is gone).
    fn back_invalidate(&mut self, line: LineAddr) {
        let dirty_above = self.l1.invalidate(line).map(|e| e.dirty).unwrap_or(false)
            | self.l2.invalidate(line).map(|e| e.dirty).unwrap_or(false);
        if dirty_above {
            self.dram.write_line();
        }
    }

    /// Routes an L1 dirty eviction down the hierarchy
    /// (write-no-allocate at L2/L3).
    fn writeback_below_l1(&mut self, line: LineAddr) {
        if self.l2.writeback_access(line, &mut self.l2_policy) {
            return;
        }
        self.writeback_below_l2(line);
    }

    /// Routes an L2 dirty eviction to L3 or DRAM.
    fn writeback_below_l2(&mut self, line: LineAddr) {
        if self.l3.writeback_access(line, &mut self.l3_policy) {
            return;
        }
        self.dram.write_line();
    }

    /// Fetches a page's 32 b distribution record through L2 → L3 → DRAM
    /// (metadata class); fills the caches with the metadata line.
    /// Returns the latency.
    fn metadata_fetch(&mut self, meta_line: LineAddr) -> u32 {
        let now = self.cycles;
        let r2 = self.l2.access(
            meta_line,
            AccessKind::Read,
            AccessClass::Metadata,
            now,
            &mut self.l2_policy,
            &mut self.l2_repl,
        );
        if let AccessResult::Hit(h) = r2 {
            return h.latency;
        }
        let mut latency = r2.latency();
        let r3 = self.l3.access(
            meta_line,
            AccessKind::Read,
            AccessClass::Metadata,
            now,
            &mut self.l3_policy,
            &mut self.l3_repl,
        );
        match r3 {
            AccessResult::Hit(h3) => {
                latency += h3.latency;
            }
            AccessResult::Miss { latency: l3_lat } => {
                latency += l3_lat + self.dram.read_metadata();
                self.fill_metadata_line(meta_line, &FillLevel::L3);
            }
        }
        self.fill_metadata_line(meta_line, &FillLevel::L2);
        latency
    }

    fn fill_metadata_line(&mut self, meta_line: LineAddr, level: &FillLevel) {
        // Metadata lines carry the Default SLIP so they behave like
        // regular cache residents without recursive profiling.
        let default_code = slip_core::Slip::default_slip(self.l2.geometry().sublevels())
            .expect("valid sublevels")
            .code();
        let mut req = FillRequest::new(meta_line);
        req.slip_codes = [default_code, default_code];
        req.signature = 0xFFFF;
        let now = self.cycles;
        let mut out = core::mem::take(&mut self.fill_scratch);
        match level {
            FillLevel::L2 => {
                self.l2
                    .fill_into(req, now, &mut self.l2_policy, &mut self.l2_repl, &mut out);
                for wb in &out.writebacks {
                    self.writeback_below_l2(wb.addr);
                }
            }
            FillLevel::L3 => {
                self.l3
                    .fill_into(req, now, &mut self.l3_policy, &mut self.l3_repl, &mut out);
                for _wb in &out.writebacks {
                    self.dram.write_line();
                }
            }
        }
        self.fill_scratch = out;
    }

    /// Writes a page's distribution record back (TLB eviction of a
    /// sampling page).
    fn metadata_writeback(&mut self, meta_line: LineAddr) {
        if self.l2.writeback_access(meta_line, &mut self.l2_policy) {
            return;
        }
        if self.l3.writeback_access(meta_line, &mut self.l3_policy) {
            return;
        }
        self.dram.write_metadata();
    }

    /// Runs a whole trace (through the hit-run scanner when armed),
    /// collapsing runs of identical accesses into single
    /// [`Self::step_fast_run`] calls.
    pub fn run<I: IntoIterator<Item = cache_sim::Access>>(&mut self, trace: I) {
        let mut trace = trace.into_iter();
        let Some(mut current) = trace.next() else {
            self.flush_hit_run();
            return;
        };
        let mut n: u64 = 1;
        for access in trace {
            if access == current {
                n += 1;
            } else {
                self.step_fast_run(current, n);
                current = access;
                n = 1;
            }
        }
        self.step_fast_run(current, n);
        self.flush_hit_run();
    }

    /// Runs a materialized trace chunk by chunk. Each chunk holds
    /// packed words (see [`workloads::pack_access`]); the access stream
    /// is the chunks' concatenation, identical to
    /// [`run`](Self::run) over the trace they were packed from —
    /// equal-neighbor runs collapse across chunk boundaries too.
    pub fn run_chunks<'a, I: IntoIterator<Item = &'a [u64]>>(&mut self, chunks: I) {
        let mut pending: Option<(u64, u64)> = None; // (packed word, run length)
        for chunk in chunks {
            for &word in chunk {
                pending = match pending {
                    Some((w, n)) if w == word => Some((w, n + 1)),
                    Some((w, n)) => {
                        self.step_fast_run(workloads::unpack_access(w), n);
                        Some((word, 1))
                    }
                    None => Some((word, 1)),
                };
            }
        }
        if let Some((w, n)) = pending {
            self.step_fast_run(workloads::unpack_access(w), n);
        }
        self.flush_hit_run();
    }

    /// Clears all statistics and energy accounting while keeping the
    /// architectural state (cache contents, page table, TLB, sampler
    /// states). Call after a warmup run so measurements reflect steady
    /// state, as the paper's simpoint methodology does.
    pub fn reset_measurements(&mut self) {
        // Warmup hits must be fully retired (the TLB hit counter they
        // credit is architectural bookkeeping the reference run also
        // performs before its counters are zeroed).
        self.flush_hit_run();
        self.l1.reset_measurements();
        self.l2.reset_measurements();
        self.l3.reset_measurements();
        self.dram.reset_measurements();
        if let Some(mmu) = self.mmu.as_mut() {
            mmu.reset_measurements();
        }
        self.cycles = 0;
        self.accesses = 0;
    }

    /// Folds another system's measurements into this one — the
    /// set-sharded runner's reduction step. Both systems must share a
    /// configuration; only statistics merge (integer counters and the
    /// energy ledgers), never architectural state. The SLIP MMU carries
    /// global state and is never sharded, so `other` must not have one.
    pub fn absorb(&mut self, other: &mut SingleCoreSystem) {
        assert!(
            other.mmu.is_none(),
            "SLIP systems carry global MMU state and cannot be sharded"
        );
        self.flush_hit_run();
        other.flush_hit_run();
        self.l1.absorb_stats(&mut other.l1);
        self.l2.absorb_stats(&mut other.l2);
        self.l3.absorb_stats(&mut other.l3);
        self.dram.absorb(&other.dram);
        self.cycles += other.cycles;
        self.accesses += other.accesses;
    }

    /// Finalizes statistics and extracts the result.
    pub fn finish(mut self, workload: impl Into<String>) -> SimResult {
        self.flush_hit_run();
        self.l1.finalize();
        self.l2.finalize();
        self.l3.finalize();
        SimResult {
            workload: workload.into(),
            policy: self.config.policy,
            accesses: self.accesses,
            cycles: self.cycles,
            l1_stats: self.l1.stats.clone(),
            l2_stats: self.l2.stats.clone(),
            l3_stats: self.l3.stats.clone(),
            l1_energy: self.l1.energy(),
            l2_energy: self.l2.energy(),
            l3_energy: self.l3.energy(),
            dram_reads: self.dram.reads,
            dram_writes: self.dram.writes,
            dram_metadata_reads: self.dram.metadata_reads,
            dram_metadata_writes: self.dram.metadata_writes,
            dram_energy: self.dram.energy(),
            mmu_stats: self.mmu.as_ref().map(|m| m.stats),
            eou_energy: self.mmu.as_ref().map_or(Energy::ZERO, |m| m.eou_energy()),
            core_energy: self.config.core_energy_per_access * self.accesses as f64,
            wall_time_secs: 0.0,
            exec_mode: None,
        }
    }

    /// Cheap per-access divergence probe for lockstep conformance
    /// replays: the cumulative `(accesses, cycles)` counters. Two
    /// replays of the same stream that are bit-identical agree on this
    /// pair at every step, and cycle counts fold in hit/miss verdicts
    /// at every level — so the first step where two probes differ
    /// localizes a divergence without a full result comparison.
    pub fn probe(&self) -> (u64, u64) {
        // Fold the pending hit batch in on the fly so probes are
        // meaningful mid-run without forcing a flush.
        (
            self.accesses + self.pending_hits,
            self.cycles
                + self.pending_hits * u64::from(self.config.core_cycles_per_access)
                + self.pending_hit_latency,
        )
    }

    /// Read access to the L2 (for tests).
    pub fn l2(&self) -> &CacheLevel {
        &self.l2
    }

    /// Read access to the L3 (for tests).
    pub fn l3(&self) -> &CacheLevel {
        &self.l3
    }

    /// Read access to the MMU (for tests).
    pub fn mmu(&self) -> Option<&SlipMmu> {
        self.mmu.as_ref()
    }
}

enum FillLevel {
    L2,
    L3,
}

/// The L1 interaction of one demand access, computed once on a fused
/// group's shared L1 and consumed by every cell's
/// [`SingleCoreSystem::step_below_l1`].
#[derive(Debug)]
pub struct L1Verdict<'a> {
    /// Whether the access hit the L1.
    pub hit: bool,
    /// Hit latency (including port wait) for hits; miss latency for
    /// misses — exactly what `CacheLevel::access` reported.
    pub latency: u32,
    /// Dirty victims the L1 fill evicted (empty for hits), in eviction
    /// order; each cell routes them down its own hierarchy.
    pub writebacks: &'a [LineAddr],
}

/// Runs `spec` for `len` accesses under `config` and returns the result.
pub fn run_workload(config: SystemConfig, spec: &WorkloadSpec, len: u64) -> SimResult {
    run_workload_with_warmup(config, spec, len, 0)
}

/// Runs `warmup` accesses unmeasured (caches and policy state warm up),
/// then measures the next `len` accesses.
pub fn run_workload_with_warmup(
    config: SystemConfig,
    spec: &WorkloadSpec,
    len: u64,
    warmup: u64,
) -> SimResult {
    let seed = config.seed;
    let mut system = SingleCoreSystem::new(config);
    let mut trace = spec.trace(warmup + len, seed);
    for _ in 0..warmup {
        let access = trace.next().expect("trace long enough for warmup");
        system.step_fast(access);
    }
    system.reset_measurements();
    let started = std::time::Instant::now();
    system.run(trace);
    let wall = started.elapsed().as_secs_f64();
    let mut result = system.finish(spec.name().to_owned());
    result.wall_time_secs = wall;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::Access;

    fn config(policy: PolicyKind) -> SystemConfig {
        SystemConfig::paper_45nm(policy)
    }

    #[test]
    fn baseline_hit_flow() {
        let mut sys = SingleCoreSystem::new(config(PolicyKind::Baseline));
        // Touch one line twice: first access misses everywhere, second
        // hits the L1.
        sys.step(Access::read(0x1000));
        sys.step(Access::read(0x1000));
        let r = sys.finish("t");
        assert_eq!(r.l1_stats.demand_accesses, 2);
        assert_eq!(r.l1_stats.demand_hits, 1);
        assert_eq!(r.l2_stats.demand_misses, 1);
        assert_eq!(r.l3_stats.demand_misses, 1);
        assert_eq!(r.dram_reads, 1);
        assert_eq!(r.accesses, 2);
        assert!(r.cycles > 0);
    }

    #[test]
    fn slip_system_has_mmu_and_metadata_traffic() {
        let mut sys = SingleCoreSystem::new(config(PolicyKind::SlipAbp));
        assert!(sys.mmu().is_some());
        // Touch many pages to force TLB misses on sampling pages.
        for p in 0..100u64 {
            sys.step(Access::read(p * 4096));
        }
        let r = sys.finish("t");
        let mmu = r.mmu_stats.unwrap();
        assert_eq!(mmu.tlb_misses, 100);
        assert!(mmu.metadata_fetches > 0);
        // Metadata traffic shows up in cache stats.
        assert!(r.l2_stats.metadata_accesses > 0);
    }

    #[test]
    fn dirty_lines_write_back_to_dram_eventually() {
        let mut sys = SingleCoreSystem::new(config(PolicyKind::Baseline));
        // Write a large streaming region so dirty lines are evicted all
        // the way down.
        for i in 0..200_000u64 {
            sys.step(Access::write(i * 64));
        }
        let r = sys.finish("t");
        assert!(r.dram_writes > 0, "dram writes {}", r.dram_writes);
    }

    #[test]
    fn policies_see_identical_demand_streams() {
        // The demand access counts at L1/L2 must be identical across
        // policies for the same trace (metadata traffic differs).
        let spec = workloads::workload("gcc").unwrap();
        let base = run_workload(config(PolicyKind::Baseline), &spec, 20_000);
        let slip = run_workload(config(PolicyKind::SlipAbp), &spec, 20_000);
        assert_eq!(base.l1_stats.demand_accesses, slip.l1_stats.demand_accesses);
        assert_eq!(base.l2_stats.demand_accesses, slip.l2_stats.demand_accesses);
    }

    #[test]
    fn nuca_policies_promote() {
        let spec = workloads::workload("sphinx3").unwrap();
        let r = run_workload(config(PolicyKind::NuRapid), &spec, 50_000);
        assert!(r.l2_stats.promotions > 0);
        let r = run_workload(config(PolicyKind::LruPea), &spec, 50_000);
        assert!(r.l2_stats.promotions > 0);
    }

    #[test]
    fn warmup_is_excluded_from_measurements() {
        let spec = workloads::workload("gcc").unwrap();
        let cold = run_workload(config(PolicyKind::SlipAbp), &spec, 50_000);
        let warm =
            super::run_workload_with_warmup(config(PolicyKind::SlipAbp), &spec, 50_000, 100_000);
        // Same measured access count...
        assert_eq!(cold.accesses, warm.accesses);
        // ...but the warmed run measures steady state: caches are full
        // and pages stabilized, so its L2 hit rate differs from the
        // cold run's and no cold-start insertions inflate its counts.
        assert!(warm.l2_stats.insertions < cold.l2_stats.insertions + 50_000);
        assert!(warm.cycles > 0);
        // Bypassing is established from the first measured access.
        assert!(
            warm.l2_stats.insertion_class_fractions()[0]
                >= cold.l2_stats.insertion_class_fractions()[0]
        );
    }

    #[test]
    fn slip_never_promotes() {
        let spec = workloads::workload("sphinx3").unwrap();
        let r = run_workload(config(PolicyKind::SlipAbp), &spec, 50_000);
        assert_eq!(r.l2_stats.promotions, 0);
        assert_eq!(r.l3_stats.promotions, 0);
    }
}
