//! Simulation results and the derived metrics the paper reports.

use crate::config::PolicyKind;
use cache_sim::CacheStats;
use energy_model::{Energy, EnergyAccount};
use mem_substrate::MmuStats;

/// Everything one simulation run produced.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Placement policy that ran.
    pub policy: PolicyKind,
    /// Demand accesses simulated.
    pub accesses: u64,
    /// Total cycles of the timing model.
    pub cycles: u64,
    /// L1 statistics.
    pub l1_stats: CacheStats,
    /// L2 statistics.
    pub l2_stats: CacheStats,
    /// L3 statistics.
    pub l3_stats: CacheStats,
    /// L1 energy account.
    pub l1_energy: EnergyAccount,
    /// L2 energy account.
    pub l2_energy: EnergyAccount,
    /// L3 energy account.
    pub l3_energy: EnergyAccount,
    /// Demand lines read from DRAM.
    pub dram_reads: u64,
    /// Demand lines written to DRAM.
    pub dram_writes: u64,
    /// Metadata records read from DRAM.
    pub dram_metadata_reads: u64,
    /// Metadata records written to DRAM.
    pub dram_metadata_writes: u64,
    /// DRAM energy account.
    pub dram_energy: EnergyAccount,
    /// MMU statistics (SLIP policies only).
    pub mmu_stats: Option<MmuStats>,
    /// Total EOU optimization energy.
    pub eou_energy: Energy,
    /// Core (non-cache) dynamic energy.
    pub core_energy: Energy,
    /// Host wall-clock seconds spent simulating the measured region
    /// (0.0 when untimed, e.g. results decoded from a journal — wall
    /// time is host-specific and deliberately outside the codec's
    /// bit-exact payload).
    pub wall_time_secs: f64,
    /// Execution path that actually produced this result (`"inline"`,
    /// `"pipelined"`, `"shared"`, `"sharded"`, `"fused"`), so A/B
    /// comparisons can't mislabel what ran when a mode falls back to
    /// another path. `None` when the run predates the label (journal
    /// restores) or bypassed the suite driver. Like `wall_time_secs`,
    /// this describes *how* the host executed — it stays outside the
    /// codec's bit-exact payload.
    pub exec_mode: Option<&'static str>,
}

impl SimResult {
    /// Total L2 energy including SLIP hardware overheads and half the
    /// EOU energy (the EOU serves both levels).
    pub fn l2_total_energy(&self) -> Energy {
        self.l2_energy.total() + self.eou_energy * 0.5
    }

    /// Total L3 energy including overheads and half the EOU energy.
    pub fn l3_total_energy(&self) -> Energy {
        self.l3_energy.total() + self.eou_energy * 0.5
    }

    /// Full-system dynamic energy: core + all caches + EOU + DRAM
    /// (paper Figure 10's metric).
    pub fn full_system_energy(&self) -> Energy {
        self.core_energy
            + self.l1_energy.total()
            + self.l2_energy.total()
            + self.l3_energy.total()
            + self.eou_energy
            + self.dram_energy.total()
    }

    /// DRAM demand traffic in line transfers (reads + writebacks).
    pub fn dram_demand_traffic(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }

    /// DRAM traffic including distribution metadata.
    pub fn dram_total_traffic(&self) -> u64 {
        self.dram_demand_traffic() + self.dram_metadata_reads + self.dram_metadata_writes
    }

    /// Speedup of this run versus a baseline run of the same trace
    /// (1.0 = equal; 1.01 = 1% faster).
    ///
    /// # Panics
    ///
    /// Panics if the runs simulated different access counts.
    pub fn speedup_vs(&self, baseline: &SimResult) -> f64 {
        assert_eq!(
            self.accesses, baseline.accesses,
            "speedup requires identical traces"
        );
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Energy savings of this run's metric versus a baseline value:
    /// `1 - self/baseline` (positive = saving).
    pub fn savings(ours: Energy, baseline: Energy) -> f64 {
        1.0 - ours / baseline
    }

    /// Instructions (accesses) per cycle of the simple timing model.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.accesses as f64 / self.cycles as f64
        }
    }

    /// Simulated accesses per host wall-clock second (simulator
    /// throughput). `None` when the run was not timed.
    pub fn accesses_per_sec(&self) -> Option<f64> {
        (self.wall_time_secs > 0.0).then(|| self.accesses as f64 / self.wall_time_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(policy: PolicyKind, cycles: u64) -> SimResult {
        SimResult {
            workload: "w".into(),
            policy,
            accesses: 100,
            cycles,
            l1_stats: CacheStats::new(1),
            l2_stats: CacheStats::new(3),
            l3_stats: CacheStats::new(3),
            l1_energy: EnergyAccount::new(),
            l2_energy: EnergyAccount::new(),
            l3_energy: EnergyAccount::new(),
            dram_reads: 10,
            dram_writes: 5,
            dram_metadata_reads: 2,
            dram_metadata_writes: 1,
            dram_energy: EnergyAccount::new(),
            mmu_stats: None,
            eou_energy: Energy::from_pj(10.0),
            core_energy: Energy::from_pj(1000.0),
            wall_time_secs: 0.0,
            exec_mode: None,
        }
    }

    #[test]
    fn traffic_split() {
        let r = dummy(PolicyKind::SlipAbp, 100);
        assert_eq!(r.dram_demand_traffic(), 15);
        assert_eq!(r.dram_total_traffic(), 18);
    }

    #[test]
    fn eou_energy_split_between_levels() {
        let r = dummy(PolicyKind::SlipAbp, 100);
        assert_eq!(r.l2_total_energy().as_pj(), 5.0);
        assert_eq!(r.l3_total_energy().as_pj(), 5.0);
        // Full system counts the EOU once.
        assert_eq!(r.full_system_energy().as_pj(), 1010.0);
    }

    #[test]
    fn speedup_and_savings() {
        let base = dummy(PolicyKind::Baseline, 200);
        let fast = dummy(PolicyKind::SlipAbp, 190);
        assert!((fast.speedup_vs(&base) - 200.0 / 190.0).abs() < 1e-12);
        let s = SimResult::savings(Energy::from_pj(65.0), Energy::from_pj(100.0));
        assert!((s - 0.35).abs() < 1e-12);
    }

    #[test]
    fn ipc_guards_zero_cycles() {
        let mut r = dummy(PolicyKind::Baseline, 0);
        assert_eq!(r.ipc(), 0.0);
        r.cycles = 400;
        assert!((r.ipc() - 0.25).abs() < 1e-12);
    }
}
