//! Server-wide byte-budgeted LRU of materialized trace buffers.
//!
//! PR 4's suite-local cache amortized trace decoding across the policy
//! cells of one sweep; [`TraceLru`] promotes that idea to a process-wide
//! resource keyed by [`TraceKey`] `(workload, seed, len)` so concurrent
//! sweeps — the `slip serve` daemon in particular — share one buffer
//! per distinct stream no matter which request materialized it.
//!
//! Concurrency contract: the map lock is held only to look up or insert
//! an entry; materialization itself runs outside the lock behind a
//! per-entry [`OnceLock`], so two cells racing for the same key block
//! on each other (one builds, both share) without serializing unrelated
//! keys. Eviction removes the least-recently-used entries from the map;
//! in-flight users keep their `Arc` and finish unaffected.
//!
//! Every outcome is counted ([`TraceCacheStats`]): `hits` (buffer was
//! resident, including waits on an in-flight build), `misses` (this
//! call materialized), `evictions`, and `bypasses` (stream larger than
//! the whole budget — the caller regenerates pipelined instead).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use sweep_runner::json::Value;
use workloads::TraceBuffer;

/// Identity of one materialized access stream. Two cells with equal
/// keys consume bit-identical traces, so sharing is always sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Workload name (e.g. `"gcc"`).
    pub workload: String,
    /// Generator seed.
    pub seed: u64,
    /// Total accesses materialized (warmup + measured).
    pub len: u64,
}

impl TraceKey {
    /// Convenience constructor.
    pub fn new(workload: impl Into<String>, seed: u64, len: u64) -> TraceKey {
        TraceKey {
            workload: workload.into(),
            seed,
            len,
        }
    }

    /// Packed size of this stream's buffer in bytes.
    pub fn bytes(&self) -> u64 {
        TraceBuffer::bytes_for(self.len)
    }
}

/// One cache slot: reservation bookkeeping plus the lazily-filled
/// buffer. The `OnceLock` lives behind its own `Arc` so waiters can
/// block on an in-flight materialization without holding the map lock.
struct Entry {
    slot: Arc<OnceLock<Arc<TraceBuffer>>>,
    bytes: u64,
    last_use: u64,
}

struct Inner {
    entries: HashMap<TraceKey, Entry>,
    /// Monotonic use counter; larger is more recent.
    tick: u64,
    /// Bytes reserved by resident entries (reserved at insert, released
    /// on eviction — in-flight builds count so the budget cannot
    /// oversubscribe).
    resident_bytes: u64,
}

/// Cumulative counters plus a point-in-time residency snapshot.
///
/// Counter fields are monotonic over the cache's lifetime; use
/// [`TraceCacheStats::delta_since`] to scope them to one sweep of a
/// long-lived (server-wide) cache.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups satisfied by a resident (or in-flight) buffer.
    pub hits: u64,
    /// Lookups that materialized the buffer.
    pub misses: u64,
    /// Entries removed to make room.
    pub evictions: u64,
    /// Lookups refused because the stream exceeds the whole budget.
    pub bypasses: u64,
    /// Bytes currently reserved by resident entries.
    pub resident_bytes: u64,
    /// Resident entry count.
    pub resident_entries: u64,
}

impl TraceCacheStats {
    /// Counter deltas relative to an `earlier` snapshot of the same
    /// cache; residency fields stay absolute (they are gauges, not
    /// counters).
    pub fn delta_since(&self, earlier: &TraceCacheStats) -> TraceCacheStats {
        TraceCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            bypasses: self.bypasses - earlier.bypasses,
            resident_bytes: self.resident_bytes,
            resident_entries: self.resident_entries,
        }
    }

    /// JSON encoding, used by `SuiteResults` reports and the serve
    /// protocol's `stats` response.
    pub fn to_value(&self) -> Value {
        Value::object()
            .with("hits", Value::u64(self.hits))
            .with("misses", Value::u64(self.misses))
            .with("evictions", Value::u64(self.evictions))
            .with("bypasses", Value::u64(self.bypasses))
            .with("resident_bytes", Value::u64(self.resident_bytes))
            .with("resident_entries", Value::u64(self.resident_entries))
    }
}

/// How a lookup was satisfied; becomes the cell's `trace_source`
/// metric label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Buffer was already resident (or being built by another cell).
    Cached,
    /// This call materialized the buffer.
    Materialized,
}

impl TraceOutcome {
    /// Metric label (`"cached"` / `"materialized"`).
    pub fn label(self) -> &'static str {
        match self {
            TraceOutcome::Cached => "cached",
            TraceOutcome::Materialized => "materialized",
        }
    }
}

/// Byte-budgeted LRU of shared [`TraceBuffer`]s. Cheap to share:
/// wrap in an [`Arc`] and clone the handle per sweep/connection.
pub struct TraceLru {
    inner: Mutex<Inner>,
    budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl std::fmt::Debug for TraceLru {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("TraceLru")
            .field("budget", &self.budget)
            .field("stats", &stats)
            .finish()
    }
}

impl TraceLru {
    /// A cache holding at most `budget_mb` MiB of packed trace words.
    /// A zero budget disables sharing: every lookup bypasses.
    pub fn new(budget_mb: u64) -> TraceLru {
        TraceLru {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                resident_bytes: 0,
            }),
            budget: budget_mb.saturating_mul(1 << 20),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// The shared buffer for `key`, materializing it via `materialize`
    /// on first use. `None` means the stream cannot fit the budget at
    /// all — the caller must regenerate (pipelined) instead.
    pub fn get_or_materialize(
        &self,
        key: &TraceKey,
        materialize: impl FnOnce() -> TraceBuffer,
    ) -> Option<(Arc<TraceBuffer>, TraceOutcome)> {
        let bytes = key.bytes();
        if bytes > self.budget {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let slot = {
            let mut inner = self.inner.lock().expect("trace cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(key) {
                entry.last_use = tick;
                Arc::clone(&entry.slot)
            } else {
                self.evict_to_fit(&mut inner, bytes);
                let slot = Arc::new(OnceLock::new());
                inner.entries.insert(
                    key.clone(),
                    Entry {
                        slot: Arc::clone(&slot),
                        bytes,
                        last_use: tick,
                    },
                );
                inner.resident_bytes += bytes;
                slot
            }
        };
        // Build (or wait for the in-flight builder) without the map
        // lock, so unrelated keys proceed concurrently.
        let mut built = false;
        let buffer = Arc::clone(slot.get_or_init(|| {
            built = true;
            Arc::new(materialize())
        }));
        let outcome = if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
            TraceOutcome::Materialized
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            TraceOutcome::Cached
        };
        Some((buffer, outcome))
    }

    /// Evicts least-recently-used entries until `bytes` more fit the
    /// budget. Callers guarantee `bytes <= budget`, so this always
    /// terminates with enough room.
    fn evict_to_fit(&self, inner: &mut Inner, bytes: u64) {
        while inner.resident_bytes + bytes > self.budget {
            let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            let entry = inner.entries.remove(&oldest).expect("key just observed");
            inner.resident_bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time statistics snapshot.
    pub fn stats(&self) -> TraceCacheStats {
        let inner = self.inner.lock().expect("trace cache poisoned");
        TraceCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            resident_bytes: inner.resident_bytes,
            resident_entries: inner.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::workload;

    fn buffer(name: &str, seed: u64, len: u64) -> TraceBuffer {
        let spec = workload(name).expect("known benchmark");
        TraceBuffer::materialize(spec.trace(len, seed))
    }

    fn key(name: &str, seed: u64, len: u64) -> TraceKey {
        TraceKey::new(name, seed, len)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_buffer() {
        let lru = TraceLru::new(64);
        let k = key("gcc", 7, 1000);
        let (a, first) = lru
            .get_or_materialize(&k, || buffer("gcc", 7, 1000))
            .unwrap();
        let (b, second) = lru
            .get_or_materialize(&k, || panic!("must not rebuild"))
            .unwrap();
        assert_eq!(first, TraceOutcome::Materialized);
        assert_eq!(second, TraceOutcome::Cached);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = lru.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.resident_entries, 1);
        assert_eq!(stats.resident_bytes, k.bytes());
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let lru = TraceLru::new(64);
        let (a, _) = lru
            .get_or_materialize(&key("gcc", 7, 1000), || buffer("gcc", 7, 1000))
            .unwrap();
        let (b, _) = lru
            .get_or_materialize(&key("gcc", 8, 1000), || buffer("gcc", 8, 1000))
            .unwrap();
        let (c, _) = lru
            .get_or_materialize(&key("gcc", 7, 2000), || buffer("gcc", 7, 2000))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(lru.stats().misses, 3);
    }

    #[test]
    fn zero_budget_bypasses_everything() {
        let lru = TraceLru::new(0);
        assert!(lru
            .get_or_materialize(&key("gcc", 7, 1000), || panic!("no materialization"))
            .is_none());
        let stats = lru.stats();
        assert_eq!(stats.bypasses, 1);
        assert_eq!(stats.resident_entries, 0);
    }

    #[test]
    fn lru_eviction_removes_the_least_recently_used() {
        // Budget fits exactly two 1000-access buffers (8 KB each is
        // far under 1 MiB, so craft the budget in bytes via len):
        // use a budget of 1 MiB and lengths that make 3 entries
        // overflow it.
        let lru = TraceLru::new(1); // 1 MiB
        let len = 60_000; // 480 KB each; two fit, three do not.
        let ka = key("gcc", 1, len);
        let kb = key("mcf", 2, len);
        let kc = key("lbm", 3, len);
        lru.get_or_materialize(&ka, || buffer("gcc", 1, len))
            .unwrap();
        lru.get_or_materialize(&kb, || buffer("mcf", 2, len))
            .unwrap();
        // Touch A so B is the LRU victim.
        lru.get_or_materialize(&ka, || panic!("resident")).unwrap();
        lru.get_or_materialize(&kc, || buffer("lbm", 3, len))
            .unwrap();
        let stats = lru.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_entries, 2);
        // A survived (recently used), B was evicted and rebuilds.
        lru.get_or_materialize(&ka, || panic!("A must be resident"))
            .unwrap();
        let (_, outcome) = lru
            .get_or_materialize(&kb, || buffer("mcf", 2, len))
            .unwrap();
        assert_eq!(outcome, TraceOutcome::Materialized);
    }

    #[test]
    fn oversized_stream_bypasses_without_evicting_residents() {
        let lru = TraceLru::new(1); // 1 MiB
        let small = key("gcc", 1, 1000);
        lru.get_or_materialize(&small, || buffer("gcc", 1, 1000))
            .unwrap();
        // 8 B/access: 200k accesses > 1 MiB.
        let huge = key("mcf", 2, 200_000);
        assert!(lru
            .get_or_materialize(&huge, || panic!("over budget"))
            .is_none());
        let stats = lru.stats();
        assert_eq!(stats.bypasses, 1);
        assert_eq!(stats.evictions, 0, "bypass must not evict residents");
        assert_eq!(stats.resident_entries, 1);
    }

    #[test]
    fn concurrent_same_key_lookups_build_once() {
        let lru = Arc::new(TraceLru::new(64));
        let builds = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lru = Arc::clone(&lru);
                let builds = Arc::clone(&builds);
                std::thread::spawn(move || {
                    let (buf, _) = lru
                        .get_or_materialize(&key("gcc", 7, 5000), || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            buffer("gcc", 7, 5000)
                        })
                        .unwrap();
                    buf.len()
                })
            })
            .collect();
        let lens: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(lens.iter().all(|&l| l == lens[0]));
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
        let stats = lru.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn stats_delta_scopes_counters_to_one_window() {
        let lru = TraceLru::new(64);
        lru.get_or_materialize(&key("gcc", 1, 1000), || buffer("gcc", 1, 1000))
            .unwrap();
        let before = lru.stats();
        lru.get_or_materialize(&key("gcc", 1, 1000), || panic!("resident"))
            .unwrap();
        lru.get_or_materialize(&key("mcf", 2, 1000), || buffer("mcf", 2, 1000))
            .unwrap();
        let delta = lru.stats().delta_since(&before);
        assert_eq!((delta.hits, delta.misses), (1, 1));
        assert_eq!(delta.resident_entries, 2);
        let json = delta.to_value().to_json();
        assert!(json.contains("\"hits\":1"), "{json}");
    }
}
