//! System configuration: paper Table 1 plus our documented additions.

use cache_sim::{CacheGeometry, CacheLevel, SublevelEnergies};
use energy_model::{
    BankGrid, Energy, HierarchySpec, LevelEnergyParams, TechnologyParams, Topology, WireParams,
    TECH_45NM,
};
use slip_core::{EouObjective, SamplingConfig};

/// Which placement policy drives the lower-level caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The regular cache hierarchy (LRU over all ways, no movement).
    Baseline,
    /// NuRAPID (Chishti et al.): nearest-insert, promote on hit.
    NuRapid,
    /// LRU-PEA (Lira et al.): random-insert, generational promotion.
    LruPea,
    /// SLIP without the All-Bypass Policy.
    Slip,
    /// SLIP with the All-Bypass Policy in the candidate pool.
    SlipAbp,
}

impl PolicyKind {
    /// All policies in the paper's reporting order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Baseline,
        PolicyKind::NuRapid,
        PolicyKind::LruPea,
        PolicyKind::Slip,
        PolicyKind::SlipAbp,
    ];

    /// Label used in reports (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "baseline",
            PolicyKind::NuRapid => "NuRAPID",
            PolicyKind::LruPea => "LRU-PEA",
            PolicyKind::Slip => "SLIP",
            PolicyKind::SlipAbp => "SLIP+ABP",
        }
    }

    /// `true` for the two SLIP variants.
    pub fn is_slip(self) -> bool {
        matches!(self, PolicyKind::Slip | PolicyKind::SlipAbp)
    }

    /// Parses a policy name, accepting both the report labels
    /// (`SLIP+ABP`) and the CLI spellings (`slip-abp`),
    /// case-insensitively.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        match name.to_ascii_lowercase().as_str() {
            "baseline" => Some(PolicyKind::Baseline),
            "nurapid" => Some(PolicyKind::NuRapid),
            "lru-pea" | "lrupea" => Some(PolicyKind::LruPea),
            "slip" => Some(PolicyKind::Slip),
            "slip+abp" | "slip-abp" | "slipabp" => Some(PolicyKind::SlipAbp),
            _ => None,
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which replacement policy picks victims within candidate ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// Least recently used (the paper's evaluation default).
    #[default]
    Lru,
    /// DRRIP with set dueling (Section 7 adaptation).
    Drrip,
    /// SHiP with page signatures (Section 7 adaptation).
    Ship,
}

impl ReplacementKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::Drrip => "DRRIP",
            ReplacementKind::Ship => "SHiP",
        }
    }
}

/// Full system configuration (paper Table 1 + Table 2 + our additions).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Technology parameters (Table 2); defaults to 45 nm.
    pub tech: TechnologyParams,
    /// Placement policy for L2 and L3.
    pub policy: PolicyKind,
    /// Replacement policy within candidate ways.
    pub replacement: ReplacementKind,
    /// L1: 32 KB, 8-way, 4 cycles (Table 1).
    pub l1_ways: usize,
    /// L1 sets (64 for 32 KB at 64 B lines and 8 ways).
    pub l1_sets: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L1 access energy (not in Table 2; our addition for the Figure 10
    /// full-system view).
    pub l1_energy: Energy,
    /// L2 sets (paper: 256 KB / 64 B / 16 ways = 256).
    pub l2_sets: usize,
    /// L3 sets (paper: 2 MB / 64 B / 16 ways = 2048).
    pub l3_sets: usize,
    /// Flat L2 latency for the regular cache (Table 1: 7 cycles).
    pub l2_uniform_latency: u32,
    /// Flat L3 latency for the regular cache (Table 1: 20 cycles).
    pub l3_uniform_latency: u32,
    /// Per-sublevel L2 latencies (Table 1: 4/6/8 cycles).
    pub l2_sublevel_latency: Vec<u32>,
    /// Per-sublevel L3 latencies (Table 1: 15/19/23 cycles).
    pub l3_sublevel_latency: Vec<u32>,
    /// Ways per L2 sublevel, nearest first (paper: 4/4/8).
    pub l2_sublevel_ways: Vec<usize>,
    /// Ways per L3 sublevel, nearest first (paper: 4/4/8).
    pub l3_sublevel_ways: Vec<usize>,
    /// Analytical objective for the EOU (ablation knob; see
    /// [`EouObjective`]).
    pub eou_objective: EouObjective,
    /// log2 of the rd-block (profiling granularity) size in bytes;
    /// the paper uses the 4 KB page (12). Section 7 extension.
    pub rd_block_shift: u32,
    /// Model an inclusive LLC: L3 evictions back-invalidate L2/L1, and
    /// L3-bypassed lines may not be cached above (paper §4.3 explains
    /// why ABP is undesirable there).
    pub inclusive_llc: bool,
    /// In two-core runs, way-partition the shared L3 between the cores
    /// and run SLIP within each partition (paper §7; only affects the
    /// SLIP policies).
    pub partitioned_l3: bool,
    /// Core energy per access excluding caches/DRAM (our addition for
    /// Figure 10; see DESIGN.md).
    pub core_energy_per_access: Energy,
    /// Core cycles per access besides memory latency.
    pub core_cycles_per_access: u32,
    /// Time-based sampling probabilities (paper §4.2).
    pub sampling: SamplingConfig,
    /// Reuse-distance bin counter width in bits (paper default 4; the
    /// §6 sensitivity study sweeps this).
    pub rd_bin_bits: u32,
    /// Master seed for all stochastic components.
    pub seed: u64,
    /// Run the pre-optimization reference hot path: line-array probes
    /// instead of the tag filter and the allocating EOU loop instead of
    /// the fused kernel. Results are bit-identical either way — the
    /// golden-equivalence tier-1 test runs both and compares.
    pub reference_hot_path: bool,
}

impl SystemConfig {
    /// Builds a configuration from a parsed hierarchy spec (`slip run
    /// --topology FILE`, `SLIP_TOPOLOGY`, or a built-in node name). The
    /// spec is re-validated so programmatically constructed specs go
    /// through the same eligibility rulebook as parsed ones: power-of-two
    /// sets keep set-sharding exact, `l1 ways <= 16` fits the packed-LRU
    /// fast path, total ways fit `WayMask`, and the sublevel count
    /// bounds the EOU's `2^S` enumeration — so every spec-built config
    /// stays eligible for the shard, fused, and fast-path runners.
    ///
    /// Knobs the spec does not describe (policy internals, sampling,
    /// seed, core model) keep their paper defaults; loading the built-in
    /// `45nm` spec reproduces [`SystemConfig::paper_45nm`] exactly.
    pub fn from_topology(spec: &HierarchySpec, policy: PolicyKind) -> Result<Self, String> {
        spec.validate()
            .map_err(|e| format!("topology {:?}: {e}", spec.name))?;
        let mut c = SystemConfig::paper_45nm(policy);
        c.tech = spec.technology();
        c.l1_sets = spec.l1.sets;
        c.l1_ways = spec.l1.ways;
        c.l1_latency = spec.l1.latency;
        c.l1_energy = Energy::from_pj(spec.l1.read_pj);
        c.l2_sets = spec.l2.sets;
        c.l3_sets = spec.l3.sets;
        c.l2_uniform_latency = spec.l2.uniform_latency;
        c.l3_uniform_latency = spec.l3.uniform_latency;
        c.l2_sublevel_latency = spec.l2.sublevels.iter().map(|s| s.latency).collect();
        c.l3_sublevel_latency = spec.l3.sublevels.iter().map(|s| s.latency).collect();
        c.l2_sublevel_ways = spec.l2.sublevels.iter().map(|s| s.ways).collect();
        c.l3_sublevel_ways = spec.l3.sublevels.iter().map(|s| s.ways).collect();
        Ok(c)
    }

    /// The paper's 45 nm single-core configuration with a given policy.
    pub fn paper_45nm(policy: PolicyKind) -> Self {
        SystemConfig {
            tech: TECH_45NM.clone(),
            policy,
            replacement: ReplacementKind::Lru,
            l1_ways: 8,
            l1_sets: 64,
            l1_latency: 4,
            l1_energy: Energy::from_pj(5.0),
            l2_sets: 256,
            l3_sets: 2048,
            l2_uniform_latency: 7,
            l3_uniform_latency: 20,
            l2_sublevel_latency: vec![4, 6, 8],
            l3_sublevel_latency: vec![15, 19, 23],
            l2_sublevel_ways: vec![4, 4, 8],
            l3_sublevel_ways: vec![4, 4, 8],
            eou_objective: EouObjective::InsertionAware,
            rd_block_shift: 12,
            inclusive_llc: false,
            partitioned_l3: false,
            core_energy_per_access: Energy::from_pj(50.0),
            core_cycles_per_access: 2,
            sampling: SamplingConfig::paper_default(),
            rd_bin_bits: 4,
            seed: 0x511b,
            reference_hot_path: false,
        }
    }

    /// L1 geometry (uniform energy and latency).
    pub fn l1_geometry(&self) -> CacheGeometry {
        CacheGeometry::uniform(self.l1_sets, self.l1_ways, self.l1_energy, self.l1_latency)
    }

    /// L2 geometry with per-sublevel energies and latencies from the
    /// technology parameters.
    pub fn l2_geometry(&self) -> CacheGeometry {
        Self::level_geometry(
            self.l2_sets,
            &self.tech.l2,
            &self.l2_sublevel_ways,
            &self.l2_sublevel_latency,
        )
    }

    /// L3 geometry with per-sublevel energies and latencies.
    pub fn l3_geometry(&self) -> CacheGeometry {
        Self::level_geometry(
            self.l3_sets,
            &self.tech.l3,
            &self.l3_sublevel_ways,
            &self.l3_sublevel_latency,
        )
    }

    /// Builds one level's geometry, carrying the technology's read,
    /// write, and insertion tables (symmetric SRAM nodes resolve all
    /// three to the same values).
    fn level_geometry(
        sets: usize,
        params: &LevelEnergyParams,
        sublevel_ways: &[usize],
        sublevel_latency: &[u32],
    ) -> CacheGeometry {
        let write = params.resolved_write();
        let insert = params.resolved_insert();
        let spec: Vec<SublevelEnergies> = sublevel_ways
            .iter()
            .enumerate()
            .map(|(i, &ways)| SublevelEnergies {
                ways,
                read: params.sublevel_access[i],
                write: write[i],
                insert: insert[i],
                latency: sublevel_latency[i],
            })
            .collect();
        CacheGeometry::from_rw_sublevels(sets, &spec)
    }

    /// Repartitions both levels into custom sublevel splits (the
    /// sublevel-count ablation). Per-sublevel energies are re-derived
    /// from the calibrated 45 nm bank grids and latencies from the
    /// grids' row positions, so the splits stay physically consistent
    /// with Table 2.
    ///
    /// # Panics
    ///
    /// Panics if either split does not sum to 16 ways or has more than
    /// 8 sublevels.
    pub fn with_sublevel_ways(mut self, l2: Vec<usize>, l3: Vec<usize>) -> Self {
        assert_eq!(l2.iter().sum::<usize>(), 16, "L2 has 16 ways");
        assert_eq!(l3.iter().sum::<usize>(), 16, "L3 has 16 ways");
        assert!(l2.len() <= 8 && l3.len() <= 8, "at most 8 sublevels");
        let wire = WireParams::NM45;
        let topo = Topology::HierarchicalBusWayInterleaved;
        let l2_grid = BankGrid::l2_45nm();
        let l3_grid = BankGrid::l3_45nm();
        self.tech.l2.sublevel_access = l2_grid.sublevel_energies(topo, &wire, &l2);
        self.tech.l3.sublevel_access = l3_grid.sublevel_energies(topo, &wire, &l3);
        self.tech.l2.sublevel_lines = l2.iter().map(|&w| w * self.l2_sets).collect();
        self.tech.l3.sublevel_lines = l3.iter().map(|&w| w * self.l3_sets).collect();
        // The splits are re-derived from the calibrated 45 nm SRAM
        // grids, so any asymmetric write tables no longer apply.
        self.tech.l2.sublevel_write = None;
        self.tech.l2.sublevel_insert = None;
        self.tech.l3.sublevel_write = None;
        self.tech.l3.sublevel_insert = None;
        // Latency from the mean bank row of each sublevel, calibrated
        // to reproduce Table 1 at the default 4/4/8 split.
        let mean_rows = |grid: &BankGrid, split: &[usize]| -> Vec<f64> {
            let mut rows = Vec::new();
            let mut way = 0;
            for &n in split {
                let sum: usize = (way..way + n).map(|w| grid.way_row(w)).sum();
                rows.push(sum as f64 / n as f64);
                way += n;
            }
            rows
        };
        self.l2_sublevel_latency = mean_rows(&l2_grid, &l2)
            .into_iter()
            .map(|r| (4.0 + 1.6 * r).round() as u32)
            .collect();
        self.l3_sublevel_latency = mean_rows(&l3_grid, &l3)
            .into_iter()
            .map(|r| (14.2 + 0.8 * r).round() as u32)
            .collect();
        self.l2_sublevel_ways = l2;
        self.l3_sublevel_ways = l3;
        self
    }

    /// Builds the L1 cache level.
    pub fn build_l1(&self) -> CacheLevel {
        CacheLevel::new("L1", self.l1_geometry())
            .with_tag_filter(!self.reference_hot_path)
            .with_packed_lru(!self.reference_hot_path)
    }

    /// Builds the L2 cache level; the regular cache clocks hits at the
    /// flat Table 1 latency, NUCA/SLIP policies expose per-way latency.
    pub fn build_l2(&self) -> CacheLevel {
        let mut l2 = CacheLevel::new("L2", self.l2_geometry())
            .with_tag_filter(!self.reference_hot_path)
            .with_metadata_energy(self.tech.l2.metadata_access)
            .with_mvq_lookup_energy(self.tech.movement_queue_lookup)
            .with_miss_latency(self.l2_uniform_latency);
        if self.policy == PolicyKind::Baseline {
            l2 = l2.with_uniform_latency(self.l2_uniform_latency);
        }
        l2
    }

    /// Builds the L3 cache level.
    pub fn build_l3(&self) -> CacheLevel {
        let mut l3 = CacheLevel::new("L3", self.l3_geometry())
            .with_tag_filter(!self.reference_hot_path)
            .with_metadata_energy(self.tech.l3.metadata_access)
            .with_mvq_lookup_energy(self.tech.movement_queue_lookup)
            .with_miss_latency(self.l3_uniform_latency);
        if self.policy == PolicyKind::Baseline {
            l3 = l3.with_uniform_latency(self.l3_uniform_latency);
        }
        l3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacities() {
        let c = SystemConfig::paper_45nm(PolicyKind::Baseline);
        assert_eq!(c.l1_geometry().total_lines() * 64, 32 * 1024);
        assert_eq!(c.l2_geometry().total_lines() * 64, 256 * 1024);
        assert_eq!(c.l3_geometry().total_lines() * 64, 2 * 1024 * 1024);
        assert_eq!(c.l2_geometry().ways, 16);
        assert_eq!(c.l3_geometry().ways, 16);
    }

    #[test]
    fn sublevel_splits_match_paper() {
        let c = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        let l2 = c.l2_geometry();
        // 64 KB / 64 KB / 128 KB.
        assert_eq!(l2.sublevel_lines(0) * 64, 64 * 1024);
        assert_eq!(l2.sublevel_lines(1) * 64, 64 * 1024);
        assert_eq!(l2.sublevel_lines(2) * 64, 128 * 1024);
        let l3 = c.l3_geometry();
        // 512 KB / 512 KB / 1 MB.
        assert_eq!(l3.sublevel_lines(0) * 64, 512 * 1024);
        assert_eq!(l3.sublevel_lines(2) * 64, 1024 * 1024);
    }

    #[test]
    fn baseline_uses_uniform_latency_slip_uses_sublevels() {
        let base = SystemConfig::paper_45nm(PolicyKind::Baseline);
        let slip = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        // Indirect check via geometry latencies.
        assert_eq!(slip.l2_geometry().latency(0), 4);
        assert_eq!(slip.l2_geometry().latency(15), 8);
        assert_eq!(base.l2_uniform_latency, 7);
    }

    #[test]
    fn custom_sublevel_splits_rebuild_geometry_consistently() {
        let c = SystemConfig::paper_45nm(PolicyKind::SlipAbp)
            .with_sublevel_ways(vec![8, 8], vec![4, 4, 4, 4]);
        let l2 = c.l2_geometry();
        let l3 = c.l3_geometry();
        assert_eq!(l2.sublevels(), 2);
        assert_eq!(l3.sublevels(), 4);
        // Capacity is preserved.
        assert_eq!(l2.total_lines(), 4096);
        assert_eq!(l3.total_lines(), 32768);
        // Energies increase with distance and tech lines were updated.
        assert!(c.tech.l2.sublevel_access[0] < c.tech.l2.sublevel_access[1]);
        assert_eq!(c.tech.l2.sublevel_lines, vec![2048, 2048]);
        assert_eq!(
            c.tech.l3.cumulative_lines(),
            vec![8192, 16384, 24576, 32768]
        );
        // Latencies are monotone.
        assert!(c.l2_sublevel_latency.windows(2).all(|w| w[0] <= w[1]));
        assert!(c.l3_sublevel_latency.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn default_split_latencies_match_table1_formula() {
        // The row-based latency model reproduces Table 1 at the
        // paper's split.
        let c = SystemConfig::paper_45nm(PolicyKind::SlipAbp)
            .with_sublevel_ways(vec![4, 4, 8], vec![4, 4, 8]);
        assert_eq!(c.l2_sublevel_latency, vec![4, 6, 8]);
        assert_eq!(c.l3_sublevel_latency, vec![15, 19, 23]);
    }

    #[test]
    #[should_panic(expected = "16 ways")]
    fn bad_split_rejected() {
        SystemConfig::paper_45nm(PolicyKind::SlipAbp).with_sublevel_ways(vec![4, 4], vec![4, 4, 8]);
    }

    #[test]
    fn extension_knobs_default_to_paper_values() {
        let c = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        assert_eq!(c.rd_block_shift, 12);
        assert!(!c.inclusive_llc);
        assert_eq!(c.eou_objective, slip_core::EouObjective::InsertionAware);
    }

    #[test]
    fn topology_45nm_equals_hardcoded_config() {
        // Golden pin: the built-in 45 nm spec reproduces every field of
        // the compiled-in configuration, so spec-loaded runs are
        // bit-exact with the defaults (the suite-level golden test
        // checks the full result payloads).
        let spec = HierarchySpec::builtin("45nm").unwrap();
        for policy in PolicyKind::ALL {
            let from_spec = SystemConfig::from_topology(&spec, policy).unwrap();
            let hard = SystemConfig::paper_45nm(policy);
            assert_eq!(format!("{from_spec:?}"), format!("{hard:?}"), "{policy:?}");
            assert_eq!(from_spec.l2_geometry(), hard.l2_geometry());
            assert_eq!(from_spec.l3_geometry(), hard.l3_geometry());
            assert_eq!(from_spec.l1_geometry(), hard.l1_geometry());
        }
    }

    #[test]
    fn topology_stt_llc_prices_l3_writes_asymmetrically() {
        let spec = HierarchySpec::builtin("stt-llc").unwrap();
        let c = SystemConfig::from_topology(&spec, PolicyKind::SlipAbp).unwrap();
        let l3 = c.l3_geometry();
        assert!(!l3.is_symmetric());
        assert_eq!(l3.energy(0).as_pj(), 40.0);
        assert_eq!(l3.write_energy(0).as_pj(), 240.0);
        assert_eq!(l3.insert_energy(15).as_pj(), 636.0);
        // L2 stays SRAM-symmetric.
        assert!(c.l2_geometry().is_symmetric());
    }

    #[test]
    fn from_topology_rejects_invalid_programmatic_specs() {
        let mut spec = HierarchySpec::builtin("45nm").unwrap();
        spec.l1.ways = 24;
        let err = SystemConfig::from_topology(&spec, PolicyKind::Baseline).unwrap_err();
        assert!(err.contains("l1 ways"), "{err}");
    }

    #[test]
    fn policy_parse_accepts_labels_and_cli_names() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.label()), Some(p));
        }
        assert_eq!(PolicyKind::parse("slip-abp"), Some(PolicyKind::SlipAbp));
        assert_eq!(PolicyKind::parse("LRU-PEA"), Some(PolicyKind::LruPea));
        assert_eq!(PolicyKind::parse("NuRAPID"), Some(PolicyKind::NuRapid));
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn policy_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            PolicyKind::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 5);
        assert!(PolicyKind::Slip.is_slip());
        assert!(PolicyKind::SlipAbp.is_slip());
        assert!(!PolicyKind::Baseline.is_slip());
    }
}
