//! Full-hierarchy simulation engine and experiment runners for the SLIP
//! reproduction.
//!
//! * [`config`] — paper Table 1/2 system configurations and policy
//!   selection.
//! * [`system`] — the single-core L1/L2/L3/DRAM driver with the SLIP
//!   MMU attached for SLIP runs.
//! * [`multicore`] — the two-core shared-L3 driver of Figure 16.
//! * [`experiments`] — one runner per paper table/figure; each returns
//!   structured rows and renders the same table the paper prints. The
//!   shared suite driver executes cells on the `sweep-runner` worker
//!   pool with an optional JSONL run journal for checkpoint/resume.
//! * [`codec`] — JSON round-trip codec for [`SimResult`] (the journal
//!   payload format).
//! * [`env`] — typed parsing of the `SLIP_*` environment variables.
//! * [`report`] — plain-text table formatting.
//!
//! # Example
//!
//! ```no_run
//! use sim_engine::config::{PolicyKind, SystemConfig};
//! use sim_engine::system::run_workload;
//!
//! let spec = workloads::workload("soplex").unwrap();
//! let base = run_workload(SystemConfig::paper_45nm(PolicyKind::Baseline), &spec, 1_000_000);
//! let slip = run_workload(SystemConfig::paper_45nm(PolicyKind::SlipAbp), &spec, 1_000_000);
//! let saving = 1.0 - slip.l2_total_energy() / base.l2_total_energy();
//! println!("L2 energy saving: {:.1}%", saving * 100.0);
//! ```

pub mod bench;
pub mod codec;
pub mod config;
pub mod dispatch;
pub mod env;
pub mod experiments;
pub mod fused;
pub mod multicore;
pub mod pipeline;
pub mod report;
pub mod result;
pub mod shard;
pub mod system;
pub mod trace_cache;

pub use config::{PolicyKind, ReplacementKind, SystemConfig};
pub use experiments::suite::SweepConfig;
pub use fused::{run_group_from_buffer, run_group_observed, shared_l1_eligible};
pub use pipeline::{
    run_mix_pipelined, run_workload_from_buffer, run_workload_pipelined, TraceMode,
};
pub use result::SimResult;
pub use shard::{
    effective_shards, run_buffer_sharded, run_workload_sharded, shardable, validate_shards,
};
pub use system::{run_workload, SingleCoreSystem};
pub use trace_cache::{TraceCacheStats, TraceKey, TraceLru, TraceOutcome};
