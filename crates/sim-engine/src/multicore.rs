//! The two-core, shared-L3 system of the paper's multicore evaluation
//! (Figure 16): private 32 KB L1s and 256 KB L2s per core, one shared
//! 2 MB L3, one DRAM channel. Workload pairs run interleaved with
//! disjoint address spaces (no data sharing, as in multiprogrammed
//! SPEC mixes).

use crate::config::{PolicyKind, ReplacementKind, SystemConfig};
use cache_sim::{
    AccessClass, AccessKind, AccessResult, BaselinePolicy, CacheLevel, CacheStats, Drrip,
    FillRequest, LineAddr, Lru, PageId, PlacementPolicy, ReplacementPolicy, Ship,
};
use energy_model::{Energy, EnergyAccount};
use mem_substrate::{Dram, SlipMmu};
use nuca_baselines::{LruPea, NuRapid, PeaLru};
use slip_core::{
    bin_for_distance, interleaved_partitions, LevelModelParams, PartitionedSlip, SlipLevel,
    SlipPlacement,
};
use workloads::WorkloadSpec;

const METADATA_BASE_LINE: u64 = 1 << 50;

type PolicyBox = Box<dyn PlacementPolicy + Send>;
type ReplBox = Box<dyn ReplacementPolicy + Send>;

struct Core {
    l1: CacheLevel,
    l2: CacheLevel,
    mmu: Option<SlipMmu>,
    l1_policy: BaselinePolicy,
    l1_repl: Lru,
    l2_policy: PolicyBox,
    l2_repl: ReplBox,
    cycles: u64,
    accesses: u64,
}

/// Result of one two-core run.
#[derive(Debug, Clone)]
pub struct MulticoreResult {
    /// The two benchmark names.
    pub mix: (String, String),
    /// The placement policy that ran.
    pub policy: PolicyKind,
    /// Per-core cycles.
    pub cycles: [u64; 2],
    /// Per-core accesses.
    pub accesses: [u64; 2],
    /// Combined private-L2 energy (both cores, incl. their EOU halves).
    pub l2_energy: Energy,
    /// Shared-L3 energy (incl. the cores' L3-side EOU halves).
    pub l3_energy: Energy,
    /// Shared-L3 statistics.
    pub l3_stats: CacheStats,
    /// Combined L2 statistics.
    pub l2_stats: CacheStats,
    /// DRAM demand traffic in line transfers.
    pub dram_demand_traffic: u64,
    /// DRAM traffic including distribution metadata.
    pub dram_total_traffic: u64,
    /// DRAM energy.
    pub dram_energy: EnergyAccount,
}

impl MulticoreResult {
    /// Combined L2+L3 energy.
    pub fn l2_plus_l3_energy(&self) -> Energy {
        self.l2_energy + self.l3_energy
    }

    /// Total cycles (max over cores — the mix finishes when the slower
    /// core does).
    pub fn total_cycles(&self) -> u64 {
        self.cycles[0].max(self.cycles[1])
    }
}

/// The two-core system.
pub struct DualCoreSystem {
    config: SystemConfig,
    cores: [Core; 2],
    l3: CacheLevel,
    /// One shared policy, or one per core when the L3 is way-partitioned
    /// (paper §7: SLIP applied within each core's partition).
    l3_policies: Vec<PolicyBox>,
    l3_repl: ReplBox,
    dram: Dram,
    l2_cum_caps: Vec<usize>,
    l3_cum_caps: Vec<usize>,
}

impl DualCoreSystem {
    /// Builds a two-core system for `config`.
    pub fn new(config: SystemConfig) -> Self {
        let l3 = config.build_l3();
        let l3_geom = l3.geometry().clone();
        let seed = config.seed;
        let cores = [0u64, 1u64].map(|i| Self::build_core(&config, seed ^ (i * 0x9999)));
        let (shared_policy, l3_repl) =
            build_policies(&config, &l3_geom, SlipLevel::L3, seed ^ 0x3333);
        let l3_policies: Vec<PolicyBox> = if config.partitioned_l3 && config.policy.is_slip() {
            // Paper §7: partition the shared cache among the cores and
            // apply SLIP within each partition.
            interleaved_partitions(&l3_geom, 2)
                .into_iter()
                .map(|part| {
                    Box::new(PartitionedSlip::new(SlipLevel::L3, &l3_geom, part)) as PolicyBox
                })
                .collect()
        } else {
            vec![shared_policy]
        };
        let l2_cum_caps = config.l2_geometry().cumulative_sublevel_lines();
        let l3_cum_caps = l3_geom.cumulative_sublevel_lines();
        DualCoreSystem {
            dram: Dram::from_pj_per_bit(config.tech.dram_pj_per_bit),
            cores,
            l3,
            l3_policies,
            l3_repl,
            l2_cum_caps,
            l3_cum_caps,
            config,
        }
    }

    fn build_core(config: &SystemConfig, seed: u64) -> Core {
        let l2 = config.build_l2();
        let l2_geom = l2.geometry().clone();
        let (l2_policy, l2_repl) = build_policies(config, &l2_geom, SlipLevel::L2, seed);
        let mmu = if config.policy.is_slip() {
            let l2_params =
                LevelModelParams::from_level(&config.tech.l2, config.tech.l3.mean_access());
            let l3_params =
                LevelModelParams::from_level(&config.tech.l3, config.tech.dram_line_energy());
            let mut mmu = SlipMmu::with_config(
                seed ^ 0x7,
                l2_params,
                l3_params,
                config.sampling,
                mem_substrate::Tlb::paper_default(),
            )
            .with_bin_bits(config.rd_bin_bits)
            .with_block_shift(config.rd_block_shift);
            if config.policy == PolicyKind::Slip {
                mmu = mmu.forbid_all_bypass();
            }
            mmu = mmu.with_eou_objective(config.eou_objective);
            Some(mmu)
        } else {
            None
        };
        Core {
            l1: config.build_l1(),
            l2,
            mmu,
            l1_policy: BaselinePolicy::new(),
            l1_repl: Lru::new(),
            l2_policy,
            l2_repl,
            cycles: 0,
            accesses: 0,
        }
    }

    fn meta_line(page: PageId) -> LineAddr {
        LineAddr(METADATA_BASE_LINE + page.0 / 16)
    }

    /// Simulates one access on `core_idx`.
    pub fn step(&mut self, core_idx: usize, access: cache_sim::Access) {
        let line = access.line();
        let page = access.page();
        let core = &mut self.cores[core_idx];
        core.accesses += 1;
        let mut latency = self.config.core_cycles_per_access;

        let (slip_codes, sampling) = if let Some(mmu) = core.mmu.as_mut() {
            let t = mmu.translate_line(line);
            latency += t.extra_cycles;
            let block = mmu.block_of(line);
            let fetch = t.fetch_metadata.then_some(Self::meta_line(block));
            let wb = t.writeback_metadata_page.map(Self::meta_line);
            let codes = (t.slip_codes, t.sampling);
            if let Some(m) = fetch {
                // Overlapped with the demand access; energy/traffic only.
                self.metadata_fetch(core_idx, m);
            }
            if let Some(m) = wb {
                self.metadata_writeback(core_idx, m);
            }
            codes
        } else {
            ([0, 0], false)
        };

        let core = &mut self.cores[core_idx];
        let now = core.cycles;
        let r1 = core.l1.access(
            line,
            access.kind,
            AccessClass::Demand,
            now,
            &mut core.l1_policy,
            &mut core.l1_repl,
        );
        if let AccessResult::Hit(h) = r1 {
            core.cycles += u64::from(latency + h.latency);
            return;
        }
        latency += r1.latency();

        let r2 = core.l2.access(
            line,
            access.kind,
            AccessClass::Demand,
            now,
            core.l2_policy.as_mut(),
            core.l2_repl.as_mut(),
        );
        match r2 {
            AccessResult::Hit(h2) => {
                latency += h2.latency;
                if sampling {
                    let bin = bin_for_distance(h2.reuse_distance, &self.l2_cum_caps);
                    if let Some(mmu) = core.mmu.as_mut() {
                        mmu.record_reuse_line(line, SlipLevel::L2, bin);
                    }
                }
                self.fill_l1(core_idx, line, access.kind);
            }
            AccessResult::Miss { latency: l2_lat } => {
                latency += l2_lat;
                if sampling {
                    if let Some(mmu) = core.mmu.as_mut() {
                        mmu.record_reuse_line(line, SlipLevel::L2, self.l2_cum_caps.len());
                    }
                }
                let l3_pol_idx = core_idx % self.l3_policies.len();
                let r3 = self.l3.access(
                    line,
                    access.kind,
                    AccessClass::Demand,
                    now,
                    self.l3_policies[l3_pol_idx].as_mut(),
                    self.l3_repl.as_mut(),
                );
                match r3 {
                    AccessResult::Hit(h3) => {
                        latency += h3.latency;
                        if sampling {
                            let bin = bin_for_distance(h3.reuse_distance, &self.l3_cum_caps);
                            if let Some(mmu) = self.cores[core_idx].mmu.as_mut() {
                                mmu.record_reuse_line(line, SlipLevel::L3, bin);
                            }
                        }
                        self.fill_l2(core_idx, line, slip_codes, sampling, page);
                        self.fill_l1(core_idx, line, access.kind);
                    }
                    AccessResult::Miss { latency: l3_lat } => {
                        latency += l3_lat;
                        if sampling {
                            if let Some(mmu) = self.cores[core_idx].mmu.as_mut() {
                                mmu.record_reuse_line(line, SlipLevel::L3, self.l3_cum_caps.len());
                            }
                        }
                        latency += self.dram.read_line();
                        self.fill_l3(core_idx, line, slip_codes, sampling, page);
                        self.fill_l2(core_idx, line, slip_codes, sampling, page);
                        self.fill_l1(core_idx, line, access.kind);
                    }
                }
            }
        }
        self.cores[core_idx].cycles += u64::from(latency);
    }

    fn fill_l1(&mut self, core_idx: usize, line: LineAddr, kind: AccessKind) {
        let core = &mut self.cores[core_idx];
        let mut req = FillRequest::new(line);
        req.dirty = kind.is_write();
        let now = core.cycles;
        let out = core
            .l1
            .fill(req, now, &mut core.l1_policy, &mut core.l1_repl);
        for wb in out.writebacks {
            self.writeback_below_l1(core_idx, wb.addr);
        }
    }

    fn fill_l2(
        &mut self,
        core_idx: usize,
        line: LineAddr,
        codes: [u8; 2],
        sampling: bool,
        page: PageId,
    ) {
        let core = &mut self.cores[core_idx];
        let mut req = FillRequest::new(line);
        req.slip_codes = codes;
        req.sampling = sampling;
        req.signature = (page.0 & 0x3FFF) as u16;
        let now = core.cycles;
        let out = core
            .l2
            .fill(req, now, core.l2_policy.as_mut(), core.l2_repl.as_mut());
        for wb in out.writebacks {
            self.writeback_below_l2(wb.addr);
        }
    }

    fn fill_l3(
        &mut self,
        core_idx: usize,
        line: LineAddr,
        codes: [u8; 2],
        sampling: bool,
        page: PageId,
    ) {
        let mut req = FillRequest::new(line);
        req.slip_codes = codes;
        req.sampling = sampling;
        req.signature = (page.0 & 0x3FFF) as u16;
        let now = self.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
        let idx = core_idx % self.l3_policies.len();
        let out = self.l3.fill(
            req,
            now,
            self.l3_policies[idx].as_mut(),
            self.l3_repl.as_mut(),
        );
        for _wb in out.writebacks {
            self.dram.write_line();
        }
    }

    fn writeback_below_l1(&mut self, core_idx: usize, line: LineAddr) {
        let core = &mut self.cores[core_idx];
        if core.l2.writeback_access(line, core.l2_policy.as_mut()) {
            return;
        }
        self.writeback_below_l2(line);
    }

    fn writeback_below_l2(&mut self, line: LineAddr) {
        // Writebacks only probe the movement queue; policy 0 suffices.
        if self.l3.writeback_access(line, self.l3_policies[0].as_mut()) {
            return;
        }
        self.dram.write_line();
    }

    fn metadata_fetch(&mut self, core_idx: usize, meta_line: LineAddr) -> u32 {
        let core = &mut self.cores[core_idx];
        let now = core.cycles;
        let r2 = core.l2.access(
            meta_line,
            AccessKind::Read,
            AccessClass::Metadata,
            now,
            core.l2_policy.as_mut(),
            core.l2_repl.as_mut(),
        );
        if let AccessResult::Hit(h) = r2 {
            return h.latency;
        }
        let mut latency = r2.latency();
        let idx = core_idx % self.l3_policies.len();
        let r3 = self.l3.access(
            meta_line,
            AccessKind::Read,
            AccessClass::Metadata,
            now,
            self.l3_policies[idx].as_mut(),
            self.l3_repl.as_mut(),
        );
        match r3 {
            AccessResult::Hit(h3) => latency += h3.latency,
            AccessResult::Miss { latency: l3_lat } => {
                latency += l3_lat + self.dram.read_metadata();
                let codes = self.default_codes();
                self.fill_meta_l3(core_idx, meta_line, codes);
            }
        }
        let codes = self.default_codes();
        self.fill_meta_l2(core_idx, meta_line, codes);
        latency
    }

    fn default_codes(&self) -> [u8; 2] {
        let code = slip_core::Slip::default_slip(self.l3.geometry().sublevels())
            .expect("valid sublevels")
            .code();
        [code, code]
    }

    fn fill_meta_l2(&mut self, core_idx: usize, meta_line: LineAddr, codes: [u8; 2]) {
        let core = &mut self.cores[core_idx];
        let mut req = FillRequest::new(meta_line);
        req.slip_codes = codes;
        req.signature = 0xFFFF;
        let now = core.cycles;
        let out = core
            .l2
            .fill(req, now, core.l2_policy.as_mut(), core.l2_repl.as_mut());
        for wb in out.writebacks {
            self.writeback_below_l2(wb.addr);
        }
    }

    fn fill_meta_l3(&mut self, core_idx: usize, meta_line: LineAddr, codes: [u8; 2]) {
        let mut req = FillRequest::new(meta_line);
        req.slip_codes = codes;
        req.signature = 0xFFFF;
        let now = self.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
        let idx = core_idx % self.l3_policies.len();
        let out = self.l3.fill(
            req,
            now,
            self.l3_policies[idx].as_mut(),
            self.l3_repl.as_mut(),
        );
        for _wb in out.writebacks {
            self.dram.write_line();
        }
    }

    fn metadata_writeback(&mut self, core_idx: usize, meta_line: LineAddr) {
        let core = &mut self.cores[core_idx];
        if core.l2.writeback_access(meta_line, core.l2_policy.as_mut()) {
            return;
        }
        if self
            .l3
            .writeback_access(meta_line, self.l3_policies[0].as_mut())
        {
            return;
        }
        self.dram.write_metadata();
    }

    /// Runs two traces round-robin until both are exhausted.
    pub fn run<A, B>(&mut self, mut trace_a: A, mut trace_b: B)
    where
        A: Iterator<Item = cache_sim::Access>,
        B: Iterator<Item = cache_sim::Access>,
    {
        loop {
            let a = trace_a.next();
            let b = trace_b.next();
            if a.is_none() && b.is_none() {
                break;
            }
            if let Some(acc) = a {
                self.step(0, acc);
            }
            if let Some(acc) = b {
                self.step(1, acc);
            }
        }
    }

    /// Finalizes statistics and extracts the result.
    pub fn finish(mut self, mix: (String, String)) -> MulticoreResult {
        for c in &mut self.cores {
            c.l1.finalize();
            c.l2.finalize();
        }
        self.l3.finalize();
        let mut l2_energy = Energy::ZERO;
        let mut l3_eou = Energy::ZERO;
        let mut l2_stats = CacheStats::new(self.cores[0].l2.geometry().sublevels());
        for c in &self.cores {
            let eou = c.mmu.as_ref().map_or(Energy::ZERO, |m| m.eou_energy());
            l2_energy += c.l2.energy().total() + eou * 0.5;
            l3_eou += eou * 0.5;
            merge_stats(&mut l2_stats, &c.l2.stats);
        }
        MulticoreResult {
            mix,
            policy: self.config.policy,
            cycles: [self.cores[0].cycles, self.cores[1].cycles],
            accesses: [self.cores[0].accesses, self.cores[1].accesses],
            l2_energy,
            l3_energy: self.l3.energy().total() + l3_eou,
            l3_stats: self.l3.stats.clone(),
            l2_stats,
            dram_demand_traffic: self.dram.reads + self.dram.writes,
            dram_total_traffic: self.dram.reads
                + self.dram.writes
                + self.dram.metadata_reads
                + self.dram.metadata_writes,
            dram_energy: self.dram.energy(),
        }
    }
}

fn build_policies(
    config: &SystemConfig,
    geom: &cache_sim::CacheGeometry,
    level: SlipLevel,
    seed: u64,
) -> (PolicyBox, ReplBox) {
    let policy: PolicyBox = match config.policy {
        PolicyKind::Baseline => Box::new(BaselinePolicy::new()),
        PolicyKind::NuRapid => Box::new(NuRapid::new(geom)),
        PolicyKind::LruPea => Box::new(LruPea::new(geom, seed)),
        PolicyKind::Slip | PolicyKind::SlipAbp => {
            let mut p = SlipPlacement::new(level, geom);
            if config.replacement != ReplacementKind::Lru {
                p = p.with_randomized_victim_sublevel(seed ^ 0xF);
            }
            Box::new(p)
        }
    };
    let repl: ReplBox = if config.policy == PolicyKind::LruPea {
        Box::new(PeaLru::new())
    } else {
        match config.replacement {
            ReplacementKind::Lru => Box::new(Lru::new()),
            ReplacementKind::Drrip => Box::new(Drrip::new(seed ^ 0x5)),
            ReplacementKind::Ship => Box::new(Ship::new()),
        }
    };
    (policy, repl)
}

fn merge_stats(dst: &mut CacheStats, src: &CacheStats) {
    dst.demand_accesses += src.demand_accesses;
    dst.demand_hits += src.demand_hits;
    dst.demand_misses += src.demand_misses;
    dst.metadata_accesses += src.metadata_accesses;
    dst.metadata_hits += src.metadata_hits;
    dst.metadata_misses += src.metadata_misses;
    for (d, s) in dst.hits_per_sublevel.iter_mut().zip(&src.hits_per_sublevel) {
        *d += *s;
    }
    dst.insertions += src.insertions;
    for (d, s) in dst.insertion_class.iter_mut().zip(&src.insertion_class) {
        *d += *s;
    }
    dst.bypasses += src.bypasses;
    dst.movements += src.movements;
    dst.promotions += src.promotions;
    dst.writebacks += src.writebacks;
    dst.evictions += src.evictions;
    for (d, s) in dst.nr_histogram.iter_mut().zip(&src.nr_histogram) {
        *d += *s;
    }
    dst.writeback_hits += src.writeback_hits;
    dst.writeback_misses += src.writeback_misses;
}

/// Runs a two-benchmark mix for `len` accesses per core.
pub fn run_mix(
    config: SystemConfig,
    spec_a: &WorkloadSpec,
    spec_b: &WorkloadSpec,
    len: u64,
) -> MulticoreResult {
    let seed = config.seed;
    let mut system = DualCoreSystem::new(config);
    // Core 1's workload lives 2^45 bytes away so the mixes never alias.
    let trace_a = spec_a.trace(len, seed);
    let trace_b = spec_b.trace_at(len, seed ^ 0xB0B, 1 << 45);
    system.run(trace_a, trace_b);
    system.finish((spec_a.name().to_owned(), spec_b.name().to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_runs_both_cores() {
        let spec_a = workloads::workload("gcc").unwrap();
        let spec_b = workloads::workload("lbm").unwrap();
        let cfg = SystemConfig::paper_45nm(PolicyKind::Baseline);
        let r = run_mix(cfg, &spec_a, &spec_b, 20_000);
        assert_eq!(r.accesses, [20_000, 20_000]);
        assert!(r.cycles[0] > 0 && r.cycles[1] > 0);
        assert!(r.l3_stats.demand_accesses > 0);
        assert!(r.l2_energy > Energy::ZERO);
        assert!(r.l3_energy > Energy::ZERO);
    }

    #[test]
    fn slip_mix_shares_the_l3() {
        let spec_a = workloads::workload("gcc").unwrap();
        let spec_b = workloads::workload("mcf").unwrap();
        let cfg = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        let r = run_mix(cfg, &spec_a, &spec_b, 20_000);
        // Both cores' misses land in the one shared L3.
        assert_eq!(
            r.l3_stats.demand_accesses, r.l2_stats.demand_misses,
            "shared L3 sees exactly the L2 miss stream"
        );
    }

    #[test]
    fn partitioned_l3_keeps_cores_in_their_ways() {
        let spec_a = workloads::workload("gcc").unwrap();
        let spec_b = workloads::workload("lbm").unwrap();
        let mut cfg = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        cfg.partitioned_l3 = true;
        let r = run_mix(cfg, &spec_a, &spec_b, 30_000);
        // The run completes and the shared L3 still serves both cores.
        assert_eq!(r.l3_stats.demand_accesses, r.l2_stats.demand_misses);
        assert!(r.l3_energy > Energy::ZERO);
    }

    #[test]
    fn partitioned_flag_is_inert_for_baseline() {
        let spec_a = workloads::workload("gcc").unwrap();
        let spec_b = workloads::workload("lbm").unwrap();
        let mut with = SystemConfig::paper_45nm(PolicyKind::Baseline);
        with.partitioned_l3 = true;
        let without = SystemConfig::paper_45nm(PolicyKind::Baseline);
        let a = run_mix(with, &spec_a, &spec_b, 20_000);
        let b = run_mix(without, &spec_a, &spec_b, 20_000);
        assert_eq!(a.l3_stats, b.l3_stats);
    }

    #[test]
    fn disjoint_address_spaces_never_alias() {
        let spec = workloads::workload("gcc").unwrap();
        let a: Vec<_> = spec.trace(1000, 1).collect();
        let b: Vec<_> = spec.trace_at(1000, 1, 1 << 45).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.line(), y.line());
        }
    }
}
