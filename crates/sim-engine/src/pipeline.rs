//! The trace pipeline: producer/consumer overlapped and shared-buffer
//! execution modes for the simulation drivers.
//!
//! The seed execution model synthesizes each cell's access stream one
//! [`Access`](cache_sim::Access) at a time, inline with simulation.
//! This module adds two alternatives that produce **bit-identical**
//! [`SimResult`]s (golden-tested in `tests/trace_pipeline.rs`):
//!
//! * **Pipelined** ([`run_workload_pipelined`], [`run_mix_pipelined`]):
//!   a dedicated producer thread materializes the trace into a small
//!   bounded ring of packed chunk buffers ([`RING_BUFFERS`] ×
//!   [`CHUNK_ACCESSES`]) while the simulator drains them, overlapping
//!   generation with simulation. The ring buffers round-trip between
//!   producer and consumer over two bounded channels, so the steady
//!   state allocates nothing. The two-core driver gets one producer
//!   per core feeding the access interleaver.
//! * **Shared buffer** ([`run_workload_from_buffer`]): the trace was
//!   materialized once into a [`TraceBuffer`] (typically held in an
//!   `Arc` and shared by every cell of a sweep group) and is replayed
//!   by the cheap unpack loop, eliminating regeneration entirely.
//!
//! [`TraceMode`] selects between the three models where a driver wants
//! the choice (the suite sweep, the bench harness).

use crate::config::SystemConfig;
use crate::multicore::{DualCoreSystem, MulticoreResult};
use crate::result::SimResult;
use crate::system::SingleCoreSystem;
use cache_sim::Access;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::time::Instant;
use workloads::buffer::{pack_access, unpack_access, DEFAULT_CHUNK_ACCESSES};
use workloads::{Trace, TraceBuffer, WorkloadSpec};

/// Accesses per pipeline chunk (256 KiB of packed words).
pub const CHUNK_ACCESSES: usize = DEFAULT_CHUNK_ACCESSES;

/// Chunk buffers in flight per producer: double-buffered — the
/// producer fills one chunk while the simulator drains the other.
pub const RING_BUFFERS: usize = 2;

/// How a driver obtains each cell's access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Synthesize inline with simulation (the seed behavior).
    Inline,
    /// Overlap synthesis with simulation via a producer thread.
    Pipelined,
    /// Materialize once per (workload, seed, length) group and share
    /// the buffer across cells, falling back to [`Pipelined`]
    /// (`TraceMode::Pipelined`) when the group would exceed the trace
    /// cache budget.
    Shared,
    /// Like [`Shared`](TraceMode::Shared), but all policy cells of a
    /// benchmark step in lockstep through one decode of the buffer
    /// ([`crate::fused`]): a fused group occupies one sweep worker and
    /// retires every cell of the benchmark at once.
    Fused,
}

impl TraceMode {
    /// Parses a CLI/env spelling; `None` for unknown ones.
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "inline" => Some(TraceMode::Inline),
            "pipelined" | "pipeline" => Some(TraceMode::Pipelined),
            "shared" => Some(TraceMode::Shared),
            "fused" => Some(TraceMode::Fused),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Inline => "inline",
            TraceMode::Pipelined => "pipelined",
            TraceMode::Shared => "shared",
            TraceMode::Fused => "fused",
        }
    }
}

/// Producer loop: drains `trace` into recycled ring buffers, blocking
/// when the simulator is more than [`RING_BUFFERS`] chunks behind.
fn produce(mut trace: Trace, full: SyncSender<Vec<u64>>, free: Receiver<Vec<u64>>) {
    while let Ok(mut buf) = free.recv() {
        buf.clear();
        while buf.len() < buf.capacity() {
            match trace.next() {
                Some(access) => buf.push(pack_access(access)),
                None => break,
            }
        }
        let exhausted = buf.len() < buf.capacity();
        if buf.is_empty() || full.send(buf).is_err() {
            return;
        }
        if exhausted {
            return;
        }
    }
}

/// Consumer side of one producer ring: an [`Access`] iterator that
/// recv's filled chunks and recycles drained ones. Dropping it releases
/// the ring; the producer then exits on its next send/recv.
struct PipelinedTrace {
    full: Receiver<Vec<u64>>,
    free: SyncSender<Vec<u64>>,
    current: Vec<u64>,
    pos: usize,
}

impl Iterator for PipelinedTrace {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        if self.pos == self.current.len() {
            // Recycle the drained buffer; the producer may already be
            // gone (trace exhausted), which is fine.
            let drained = std::mem::take(&mut self.current);
            if drained.capacity() > 0 {
                let _ = self.free.send(drained);
            }
            self.current = self.full.recv().ok()?;
            self.pos = 0;
        }
        let word = self.current[self.pos];
        self.pos += 1;
        Some(unpack_access(word))
    }
}

/// Spawns the producer for `trace` inside `scope` and returns the
/// consuming iterator. The ring's buffers are allocated here, once.
fn spawn_producer<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    trace: Trace,
) -> PipelinedTrace {
    let (full_tx, full_rx) = sync_channel::<Vec<u64>>(RING_BUFFERS);
    let (free_tx, free_rx) = sync_channel::<Vec<u64>>(RING_BUFFERS);
    for _ in 0..RING_BUFFERS {
        free_tx
            .send(Vec::with_capacity(CHUNK_ACCESSES))
            .expect("ring has capacity for its own buffers");
    }
    scope.spawn(move || produce(trace, full_tx, free_rx));
    PipelinedTrace {
        full: full_rx,
        free: free_tx,
        current: Vec::new(),
        pos: 0,
    }
}

/// Warmup-then-measure over any access iterator; the shared tail of
/// every execution mode. Matches `run_workload_with_warmup` exactly:
/// measurements reset after `warmup` accesses and the wall clock times
/// only the measured portion.
fn warmup_then_measure(
    config: SystemConfig,
    name: &str,
    mut accesses: impl Iterator<Item = Access>,
    warmup: u64,
) -> SimResult {
    let mut system = SingleCoreSystem::new(config);
    for _ in 0..warmup {
        let access = accesses.next().expect("trace long enough for warmup");
        system.step_fast(access);
    }
    system.reset_measurements();
    let started = Instant::now();
    system.run(accesses);
    let wall = started.elapsed().as_secs_f64();
    let mut result = system.finish(name.to_owned());
    result.wall_time_secs = wall;
    result
}

/// Runs `warmup` unmeasured then the rest measured over a materialized
/// trace, replaying `buffer` without any regeneration. The buffer must
/// hold the full `warmup + len` stream of the cell. The measured
/// portion steps whole packed chunks (`run_chunks`) rather than going
/// through a per-access iterator; the step sequence — and therefore
/// the result — is identical.
pub fn run_workload_from_buffer(
    config: SystemConfig,
    name: &str,
    buffer: &TraceBuffer,
    warmup: u64,
) -> SimResult {
    let mut system = SingleCoreSystem::new(config);
    let mut remaining = usize::try_from(warmup).expect("warmup fits usize");
    let mut chunks = buffer.chunks();
    let mut tail: &[u64] = &[];
    for chunk in chunks.by_ref() {
        if remaining >= chunk.len() {
            for &word in chunk {
                system.step_fast(unpack_access(word));
            }
            remaining -= chunk.len();
        } else {
            let (head, rest) = chunk.split_at(remaining);
            for &word in head {
                system.step_fast(unpack_access(word));
            }
            remaining = 0;
            tail = rest;
            break;
        }
    }
    assert_eq!(remaining, 0, "trace long enough for warmup");
    system.reset_measurements();
    let started = Instant::now();
    system.run_chunks(std::iter::once(tail).chain(chunks));
    let wall = started.elapsed().as_secs_f64();
    let mut result = system.finish(name.to_owned());
    result.wall_time_secs = wall;
    result
}

/// Like `run_workload_with_warmup`, but generation runs on a dedicated
/// producer thread overlapped with simulation.
pub fn run_workload_pipelined(
    config: SystemConfig,
    spec: &WorkloadSpec,
    len: u64,
    warmup: u64,
) -> SimResult {
    let trace = spec.trace(warmup + len, config.seed);
    std::thread::scope(|scope| {
        let accesses = spawn_producer(scope, trace);
        warmup_then_measure(config, spec.name(), accesses, warmup)
    })
}

/// Like `run_mix`, but each core's trace is generated by its own
/// producer thread feeding the round-robin interleaver.
pub fn run_mix_pipelined(
    config: SystemConfig,
    spec_a: &WorkloadSpec,
    spec_b: &WorkloadSpec,
    len: u64,
) -> MulticoreResult {
    let seed = config.seed;
    // Identical trace construction to `run_mix`: core 1's workload
    // lives 2^45 bytes away so the mixes never alias.
    let trace_a = spec_a.trace(len, seed);
    let trace_b = spec_b.trace_at(len, seed ^ 0xB0B, 1 << 45);
    let mut system = DualCoreSystem::new(config);
    std::thread::scope(|scope| {
        let a = spawn_producer(scope, trace_a);
        let b = spawn_producer(scope, trace_b);
        system.run(a, b);
    });
    system.finish((spec_a.name().to_owned(), spec_b.name().to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::config::PolicyKind;
    use crate::multicore::run_mix;
    use crate::system::run_workload_with_warmup;

    fn fingerprint(r: &SimResult) -> String {
        codec::encode_result(r).to_json()
    }

    #[test]
    fn trace_mode_parses_canonical_and_alias_spellings() {
        assert_eq!(TraceMode::parse("inline"), Some(TraceMode::Inline));
        assert_eq!(TraceMode::parse(" Pipelined "), Some(TraceMode::Pipelined));
        assert_eq!(TraceMode::parse("pipeline"), Some(TraceMode::Pipelined));
        assert_eq!(TraceMode::parse("shared"), Some(TraceMode::Shared));
        assert_eq!(TraceMode::parse("Fused"), Some(TraceMode::Fused));
        assert_eq!(TraceMode::parse("magic"), None);
        for mode in [
            TraceMode::Inline,
            TraceMode::Pipelined,
            TraceMode::Shared,
            TraceMode::Fused,
        ] {
            assert_eq!(TraceMode::parse(mode.label()), Some(mode));
        }
    }

    #[test]
    fn pipelined_single_core_matches_inline_bit_exactly() {
        let spec = workloads::workload("gcc").unwrap();
        for policy in [PolicyKind::Baseline, PolicyKind::SlipAbp] {
            let inline =
                run_workload_with_warmup(SystemConfig::paper_45nm(policy), &spec, 20_000, 3_000);
            let pipelined =
                run_workload_pipelined(SystemConfig::paper_45nm(policy), &spec, 20_000, 3_000);
            assert_eq!(fingerprint(&inline), fingerprint(&pipelined), "{policy:?}");
        }
    }

    #[test]
    fn shared_buffer_matches_inline_bit_exactly() {
        let spec = workloads::workload("soplex").unwrap();
        let config = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        let inline = run_workload_with_warmup(config.clone(), &spec, 15_000, 2_000);
        let buffer = TraceBuffer::materialize(spec.trace(17_000, config.seed));
        let shared = run_workload_from_buffer(config, spec.name(), &buffer, 2_000);
        assert_eq!(fingerprint(&inline), fingerprint(&shared));
    }

    #[test]
    fn pipelined_mix_matches_inline_mix() {
        let spec_a = workloads::workload("gcc").unwrap();
        let spec_b = workloads::workload("lbm").unwrap();
        let cfg = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        let inline = run_mix(cfg.clone(), &spec_a, &spec_b, 15_000);
        let pipelined = run_mix_pipelined(cfg, &spec_a, &spec_b, 15_000);
        assert_eq!(inline.cycles, pipelined.cycles);
        assert_eq!(inline.accesses, pipelined.accesses);
        assert_eq!(inline.l3_stats, pipelined.l3_stats);
        assert_eq!(inline.l2_stats, pipelined.l2_stats);
        assert_eq!(inline.l2_energy, pipelined.l2_energy);
        assert_eq!(inline.l3_energy, pipelined.l3_energy);
        assert_eq!(inline.dram_total_traffic, pipelined.dram_total_traffic);
    }

    #[test]
    fn chunk_boundary_lengths_are_handled() {
        // Exactly one chunk, exactly two chunks, and one-over: the
        // producer's exhaustion handling must not drop or repeat tail
        // accesses. Cross-check against the buffer replay.
        let spec = workloads::workload("gcc").unwrap();
        for extra in [0u64, 1] {
            let len = CHUNK_ACCESSES as u64 + extra;
            let config = SystemConfig::paper_45nm(PolicyKind::Baseline);
            let inline = run_workload_with_warmup(config.clone(), &spec, len, 0);
            let pipelined = run_workload_pipelined(config, &spec, len, 0);
            assert_eq!(fingerprint(&inline), fingerprint(&pipelined), "len {len}");
        }
    }
}
