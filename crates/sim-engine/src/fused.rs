//! Fused multi-policy replay: decode the trace once, step every cell.
//!
//! A sweep's policy cells of one benchmark replay the identical packed
//! trace. [`run_group_from_buffer`] unpacks each [`TraceBuffer`] chunk
//! once and steps *all* the group's [`SingleCoreSystem`]s through it in
//! lockstep, with per-cell state kept fully independent so every result
//! is **bit-identical** to the cell's standalone
//! [`run_workload_from_buffer`](crate::pipeline::run_workload_from_buffer)
//! replay (held by the `fused-determinism` conformance check and the
//! golden tests).
//!
//! On top of the shared decode, groups that qualify get a shared L1:
//! in the default non-inclusive hierarchy the L1 is **policy-invariant**
//! — it always runs the hardcoded baseline-LRU pair, every L1 miss
//! fills it regardless of what the lower levels decided, SLIP metadata
//! traffic never touches it, and nothing below the L1 ever reaches back
//! into it (back-invalidation is inclusive-only). Every cell of a
//! same-trace group therefore drives its L1 through the *same* access
//! and fill sequence, and since the cache substrate is a pure function
//! of set-local history (no dependence on the cycle clock), one shared
//! L1 instance reproduces each cell's L1 evolution exactly. The group
//! probes it once per access and hands each cell an [`L1Verdict`];
//! cells without per-access MMU work additionally fold runs of
//! consecutive L1 hits into one batched update
//! ([`SingleCoreSystem::absorb_l1_hits`]).
//!
//! Groups that do not qualify (inclusive LLC, heterogeneous L1
//! geometry) still fuse the decode: each system steps the shared
//! unpacked chunk through its ordinary [`SingleCoreSystem::step`].
//!
//! [`run_group_observed`] is the same lockstep loop with a per-access
//! hook between cells — the conformance fuzzer's cross-policy
//! divergence probe for prefix minimization.

use crate::config::SystemConfig;
use crate::pipeline::CHUNK_ACCESSES;
use crate::result::SimResult;
use crate::system::{L1Verdict, SingleCoreSystem};
use cache_sim::{
    Access, AccessClass, AccessResult, BaselinePolicy, CacheLevel, CacheStats, FillOutcome,
    FillRequest, LineAddr, Lru,
};
use energy_model::EnergyAccount;
use std::time::Instant;
use workloads::{unpack_access, TraceBuffer};

/// Whether a group of configurations can share one L1 instance: all
/// non-inclusive (nothing below the L1 reaches back into it) with
/// identical L1 construction parameters. The L1's tie-break RNG streams
/// are seeded from its geometry alone, so the master seed need not
/// match.
pub fn shared_l1_eligible(configs: &[SystemConfig]) -> bool {
    let Some(first) = configs.first() else {
        return false;
    };
    configs.iter().all(|c| {
        !c.inclusive_llc
            && c.l1_sets == first.l1_sets
            && c.l1_ways == first.l1_ways
            && c.l1_latency == first.l1_latency
            && c.l1_energy == first.l1_energy
            && c.reference_hot_path == first.reference_hot_path
    })
}

/// The group-shared L1: the policy-invariant baseline-LRU level every
/// cell would have built for itself.
struct SharedL1 {
    level: CacheLevel,
    policy: BaselinePolicy,
    repl: Lru,
    scratch: FillOutcome,
}

/// One access's verdict, indexing a span of `wbs` (the chunk-wide dirty
/// victim buffer).
#[derive(Clone, Copy)]
struct VerdictRec {
    hit: bool,
    latency: u32,
    wb_start: u32,
    wb_end: u32,
}

impl SharedL1 {
    fn new(config: &SystemConfig) -> SharedL1 {
        SharedL1 {
            level: config.build_l1(),
            policy: BaselinePolicy::new(),
            repl: Lru::new(),
            scratch: FillOutcome::default(),
        }
    }

    /// Probes one demand access and, on a miss, fills immediately —
    /// equivalent to the serial probe-then-fill-later sequence because
    /// nothing touches the L1 in between on a non-inclusive hierarchy.
    /// Dirty victims append to `wbs`; returns `(hit, latency)`.
    fn step(&mut self, access: Access, wbs: &mut Vec<LineAddr>) -> (bool, u32) {
        if self.level.packed_lru_enabled() {
            // SoA fast hit; a miss mutates nothing and falls into the
            // full access below, which re-probes and records it.
            if let Some(latency) = self
                .level
                .try_demand_hit(access.line(), access.kind.is_write())
            {
                return (true, latency);
            }
        }
        let r = self.level.access(
            access.line(),
            access.kind,
            AccessClass::Demand,
            0,
            &mut self.policy,
            &mut self.repl,
        );
        match r {
            AccessResult::Hit(h) => (true, h.latency),
            AccessResult::Miss { latency } => {
                let mut req = FillRequest::new(access.line());
                req.dirty = access.kind.is_write();
                self.level
                    .fill_into(req, 0, &mut self.policy, &mut self.repl, &mut self.scratch);
                for wb in &self.scratch.writebacks {
                    wbs.push(wb.addr);
                }
                (false, latency)
            }
        }
    }

    fn reset_measurements(&mut self) {
        self.level.reset_measurements();
    }

    fn finish(mut self) -> (CacheStats, EnergyAccount) {
        self.level.finalize();
        (self.level.stats.clone(), self.level.energy())
    }
}

/// Reusable per-chunk scratch: the single decode plus the shared-L1
/// verdicts over it.
struct GroupScratch {
    accesses: Vec<Access>,
    verdicts: Vec<VerdictRec>,
    wbs: Vec<LineAddr>,
}

impl GroupScratch {
    fn new() -> GroupScratch {
        GroupScratch {
            accesses: Vec::with_capacity(CHUNK_ACCESSES),
            verdicts: Vec::with_capacity(CHUNK_ACCESSES),
            wbs: Vec::new(),
        }
    }

    fn decode(&mut self, segment: &[u64]) {
        self.accesses.clear();
        self.verdicts.clear();
        self.wbs.clear();
        self.accesses
            .extend(segment.iter().map(|&w| unpack_access(w)));
    }

    fn verdict<'a>(&'a self, i: usize) -> L1Verdict<'a> {
        let v = self.verdicts[i];
        L1Verdict {
            hit: v.hit,
            latency: v.latency,
            writebacks: &self.wbs[v.wb_start as usize..v.wb_end as usize],
        }
    }
}

/// Steps every system of the group through one decoded segment.
fn run_segment(
    systems: &mut [SingleCoreSystem],
    shared: &mut Option<SharedL1>,
    segment: &[u64],
    scratch: &mut GroupScratch,
) {
    scratch.decode(segment);
    match shared {
        Some(l1) => {
            for &a in &scratch.accesses {
                let wb_start = scratch.wbs.len() as u32;
                let (hit, latency) = l1.step(a, &mut scratch.wbs);
                scratch.verdicts.push(VerdictRec {
                    hit,
                    latency,
                    wb_start,
                    wb_end: scratch.wbs.len() as u32,
                });
            }
            for sys in systems.iter_mut() {
                if sys.has_mmu() {
                    for (i, &a) in scratch.accesses.iter().enumerate() {
                        // Shared-L1 hits on TLB-resident blocks batch
                        // into the cell's pending hit run (the TLB hit
                        // commits eagerly; the rest is a pure credit).
                        let v = scratch.verdicts[i];
                        if v.hit && sys.try_absorb_shared_hit(a, v.latency) {
                            continue;
                        }
                        sys.step_below_l1(a, &scratch.verdict(i));
                    }
                } else {
                    // Hits carry no below-L1 work for these cells, so a
                    // run of them folds into two sums (bit-exact: the
                    // per-hit updates are u64 additions).
                    let mut i = 0;
                    while i < scratch.accesses.len() {
                        if scratch.verdicts[i].hit {
                            let mut count = 0u64;
                            let mut latency_sum = 0u64;
                            while i < scratch.accesses.len() && scratch.verdicts[i].hit {
                                count += 1;
                                latency_sum += u64::from(scratch.verdicts[i].latency);
                                i += 1;
                            }
                            sys.absorb_l1_hits(count, latency_sum);
                        } else {
                            sys.step_below_l1(scratch.accesses[i], &scratch.verdict(i));
                            i += 1;
                        }
                    }
                }
            }
        }
        None => {
            for sys in systems.iter_mut() {
                for &a in &scratch.accesses {
                    sys.step_fast(a);
                }
            }
        }
    }
}

/// Builds the group's systems (and shared L1 when the group qualifies).
fn build_group(configs: Vec<SystemConfig>) -> (Vec<SingleCoreSystem>, Option<SharedL1>) {
    assert!(
        !configs.is_empty(),
        "fused group must have at least one cell"
    );
    let shared = shared_l1_eligible(&configs).then(|| SharedL1::new(&configs[0]));
    let systems = configs.into_iter().map(SingleCoreSystem::new).collect();
    (systems, shared)
}

/// Finalizes the group: per-cell results, with the shared L1's stats
/// and energy (identical to what each cell's own L1 would have
/// accumulated) written into every result.
fn finish_group(
    systems: Vec<SingleCoreSystem>,
    shared: Option<SharedL1>,
    name: &str,
    wall: f64,
) -> Vec<SimResult> {
    let shared_final = shared.map(SharedL1::finish);
    let per_cell_wall = wall / systems.len() as f64;
    systems
        .into_iter()
        .map(|sys| {
            let mut r = sys.finish(name.to_owned());
            if let Some((stats, energy)) = &shared_final {
                r.l1_stats = stats.clone();
                r.l1_energy = energy.clone();
            }
            r.wall_time_secs = per_cell_wall;
            r
        })
        .collect()
}

/// Runs all `configs` over one materialized trace in lockstep,
/// returning one result per config (in order). The buffer must hold the
/// full `warmup + len` stream; measurements reset at the warmup
/// boundary exactly as in the per-cell runners, and the group's
/// measured wall time is split evenly across the cells
/// (`wall_time_secs` is outside the bit-exact payload).
pub fn run_group_from_buffer(
    configs: Vec<SystemConfig>,
    name: &str,
    buffer: &TraceBuffer,
    warmup: u64,
) -> Vec<SimResult> {
    let (mut systems, mut shared) = build_group(configs);
    let mut scratch = GroupScratch::new();
    let mut remaining = usize::try_from(warmup).expect("warmup fits usize");
    let mut chunks = buffer.chunks();
    let mut tail: &[u64] = &[];
    for chunk in chunks.by_ref() {
        if remaining >= chunk.len() {
            run_segment(&mut systems, &mut shared, chunk, &mut scratch);
            remaining -= chunk.len();
        } else {
            let (head, rest) = chunk.split_at(remaining);
            run_segment(&mut systems, &mut shared, head, &mut scratch);
            remaining = 0;
            tail = rest;
            break;
        }
    }
    assert_eq!(remaining, 0, "trace long enough for warmup");
    for sys in &mut systems {
        sys.reset_measurements();
    }
    if let Some(l1) = &mut shared {
        l1.reset_measurements();
    }
    let started = Instant::now();
    run_segment(&mut systems, &mut shared, tail, &mut scratch);
    for chunk in chunks {
        run_segment(&mut systems, &mut shared, chunk, &mut scratch);
    }
    let wall = started.elapsed().as_secs_f64();
    finish_group(systems, shared, name, wall)
}

/// The lockstep loop with a per-access observation hook: after every
/// access steps through all cells, `observe(index, &systems)` sees the
/// group's state (`index` counts from 0 over the whole stream, warmup
/// included). Returning `false` aborts the replay and yields `None` —
/// the conformance fuzzer uses this to find the shortest prefix on
/// which two policies diverge. A completed run returns results
/// bit-identical to [`run_group_from_buffer`] (untimed).
pub fn run_group_observed(
    configs: Vec<SystemConfig>,
    name: &str,
    buffer: &TraceBuffer,
    warmup: u64,
    mut observe: impl FnMut(u64, &[SingleCoreSystem]) -> bool,
) -> Option<Vec<SimResult>> {
    let (mut systems, mut shared) = build_group(configs);
    let mut wbs: Vec<LineAddr> = Vec::new();
    let mut index = 0u64;
    for chunk in buffer.chunks() {
        for &word in chunk {
            if index == warmup {
                for sys in &mut systems {
                    sys.reset_measurements();
                }
                if let Some(l1) = &mut shared {
                    l1.reset_measurements();
                }
            }
            let access = unpack_access(word);
            match &mut shared {
                Some(l1) => {
                    wbs.clear();
                    let (hit, latency) = l1.step(access, &mut wbs);
                    let verdict = L1Verdict {
                        hit,
                        latency,
                        writebacks: &wbs,
                    };
                    for sys in &mut systems {
                        sys.step_below_l1(access, &verdict);
                    }
                }
                None => {
                    for sys in &mut systems {
                        sys.step(access);
                    }
                }
            }
            if !observe(index, &systems) {
                return None;
            }
            index += 1;
        }
    }
    assert!(index >= warmup, "trace long enough for warmup");
    if index == warmup {
        for sys in &mut systems {
            sys.reset_measurements();
        }
        if let Some(l1) = &mut shared {
            l1.reset_measurements();
        }
    }
    Some(finish_group(systems, shared, name, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::config::PolicyKind;
    use crate::pipeline::run_workload_from_buffer;

    fn fingerprint(r: &SimResult) -> String {
        codec::encode_result(r).to_json()
    }

    fn group_configs() -> Vec<SystemConfig> {
        PolicyKind::ALL
            .iter()
            .map(|&p| SystemConfig::paper_45nm(p))
            .collect()
    }

    #[test]
    fn eligibility_gates_inclusive_and_heterogeneous_groups() {
        let mut configs = group_configs();
        assert!(shared_l1_eligible(&configs));
        configs[2].inclusive_llc = true;
        assert!(!shared_l1_eligible(&configs));
        let mut configs = group_configs();
        configs[1].l1_sets = 32;
        assert!(!shared_l1_eligible(&configs));
        assert!(!shared_l1_eligible(&[]));
    }

    #[test]
    fn fused_group_matches_per_cell_replay_bit_exactly() {
        let spec = workloads::workload("gcc").unwrap();
        let configs = group_configs();
        let seed = configs[0].seed;
        let buffer = TraceBuffer::materialize(spec.trace(23_000, seed));
        let fused = run_group_from_buffer(configs.clone(), spec.name(), &buffer, 3_000);
        assert_eq!(fused.len(), configs.len());
        for (config, fused) in configs.into_iter().zip(&fused) {
            let solo = run_workload_from_buffer(config, spec.name(), &buffer, 3_000);
            assert_eq!(fingerprint(&solo), fingerprint(fused), "{:?}", fused.policy);
        }
    }

    #[test]
    fn ineligible_group_falls_back_to_plain_lockstep_bit_exactly() {
        let spec = workloads::workload("soplex").unwrap();
        let mut configs: Vec<SystemConfig> = [PolicyKind::Baseline, PolicyKind::SlipAbp]
            .iter()
            .map(|&p| SystemConfig::paper_45nm(p))
            .collect();
        for c in &mut configs {
            c.inclusive_llc = true;
        }
        assert!(!shared_l1_eligible(&configs));
        let buffer = TraceBuffer::materialize(spec.trace(12_000, configs[0].seed));
        let fused = run_group_from_buffer(configs.clone(), spec.name(), &buffer, 2_000);
        for (config, fused) in configs.into_iter().zip(&fused) {
            let solo = run_workload_from_buffer(config, spec.name(), &buffer, 2_000);
            assert_eq!(fingerprint(&solo), fingerprint(fused));
        }
    }

    #[test]
    fn observed_run_matches_production_and_aborts_cleanly() {
        let spec = workloads::workload("gcc").unwrap();
        let configs = group_configs();
        let buffer = TraceBuffer::materialize(spec.trace(9_000, configs[0].seed));
        let fused = run_group_from_buffer(configs.clone(), spec.name(), &buffer, 1_000);
        let mut seen = 0u64;
        let observed =
            run_group_observed(configs.clone(), spec.name(), &buffer, 1_000, |i, sys| {
                assert_eq!(sys.len(), PolicyKind::ALL.len());
                seen = i + 1;
                true
            })
            .expect("uninterrupted run completes");
        assert_eq!(seen, 9_000);
        for (a, b) in fused.iter().zip(&observed) {
            assert_eq!(fingerprint(a), fingerprint(b), "{:?}", a.policy);
        }
        // Aborting mid-stream yields None.
        let aborted = run_group_observed(configs, spec.name(), &buffer, 1_000, |i, _| i < 100);
        assert!(aborted.is_none());
    }

    #[test]
    fn zero_measured_length_is_handled() {
        let spec = workloads::workload("gcc").unwrap();
        let configs = group_configs();
        let buffer = TraceBuffer::materialize(spec.trace(5_000, configs[0].seed));
        for r in run_group_from_buffer(configs, spec.name(), &buffer, 5_000) {
            assert_eq!(r.accesses, 0);
            assert_eq!(r.cycles, 0);
        }
    }
}
