//! Energy experiments: Figure 9 (L2/L3 savings), Figure 10 (full
//! system), Figure 11 (access/movement breakdown), the Section 2.1
//! H-tree comparison, and the Section 6 22 nm node study.

use crate::config::PolicyKind;
use crate::experiments::suite::{SuiteOptions, SuiteResults};
use crate::report::{mean, pct, pct2, Table};
use energy_model::{Energy, Topology, TECH_22NM};

/// One Figure 9 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Row {
    /// Benchmark (or "average").
    pub bench: String,
    /// L2 saving for SLIP / SLIP+ABP, L3 saving for SLIP / SLIP+ABP,
    /// then the NuRAPID / LRU-PEA deltas the caption quotes.
    pub l2_slip: f64,
    /// L2 saving under SLIP+ABP.
    pub l2_slip_abp: f64,
    /// L3 saving under SLIP.
    pub l3_slip: f64,
    /// L3 saving under SLIP+ABP.
    pub l3_slip_abp: f64,
    /// L2 saving under NuRAPID (negative = increase).
    pub l2_nurapid: f64,
    /// L3 saving under NuRAPID.
    pub l3_nurapid: f64,
    /// L2 saving under LRU-PEA.
    pub l2_lru_pea: f64,
    /// L3 saving under LRU-PEA.
    pub l3_lru_pea: f64,
}

/// Computes Figure 9 from a full suite.
pub fn fig09(suite: &SuiteResults) -> Vec<Fig09Row> {
    let mut rows: Vec<Fig09Row> = suite
        .benchmarks()
        .iter()
        .map(|&b| Fig09Row {
            bench: b.to_owned(),
            l2_slip: suite.l2_saving(b, PolicyKind::Slip),
            l2_slip_abp: suite.l2_saving(b, PolicyKind::SlipAbp),
            l3_slip: suite.l3_saving(b, PolicyKind::Slip),
            l3_slip_abp: suite.l3_saving(b, PolicyKind::SlipAbp),
            l2_nurapid: suite.l2_saving(b, PolicyKind::NuRapid),
            l3_nurapid: suite.l3_saving(b, PolicyKind::NuRapid),
            l2_lru_pea: suite.l2_saving(b, PolicyKind::LruPea),
            l3_lru_pea: suite.l3_saving(b, PolicyKind::LruPea),
        })
        .collect();
    let avg = |f: fn(&Fig09Row) -> f64, rows: &[Fig09Row]| -> f64 {
        mean(&rows.iter().map(f).collect::<Vec<_>>())
    };
    rows.push(Fig09Row {
        bench: "average".to_owned(),
        l2_slip: avg(|r| r.l2_slip, &rows),
        l2_slip_abp: avg(|r| r.l2_slip_abp, &rows),
        l3_slip: avg(|r| r.l3_slip, &rows),
        l3_slip_abp: avg(|r| r.l3_slip_abp, &rows),
        l2_nurapid: avg(|r| r.l2_nurapid, &rows),
        l3_nurapid: avg(|r| r.l3_nurapid, &rows),
        l2_lru_pea: avg(|r| r.l2_lru_pea, &rows),
        l3_lru_pea: avg(|r| r.l3_lru_pea, &rows),
    });
    rows
}

/// Renders Figure 9 as a table.
pub fn fig09_table(rows: &[Fig09Row]) -> Table {
    let mut t = Table::new(
        "Figure 9: energy savings over regular hierarchy \
         (paper avg: SLIP 21%/13%, SLIP+ABP 35%/22%; NuRAPID -84%/-94%, LRU-PEA -79%/-83%)",
        &[
            "bench",
            "L2 SLIP",
            "L2 SLIP+ABP",
            "L3 SLIP",
            "L3 SLIP+ABP",
            "L2 NuRAPID",
            "L3 NuRAPID",
            "L2 LRU-PEA",
            "L3 LRU-PEA",
        ],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            pct(r.l2_slip),
            pct(r.l2_slip_abp),
            pct(r.l3_slip),
            pct(r.l3_slip_abp),
            pct(r.l2_nurapid),
            pct(r.l3_nurapid),
            pct(r.l2_lru_pea),
            pct(r.l3_lru_pea),
        ]);
    }
    t
}

/// One Figure 10 row: full-system dynamic energy savings.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Benchmark (or "average").
    pub bench: String,
    /// Full-system saving under SLIP.
    pub slip: f64,
    /// Full-system saving under SLIP+ABP.
    pub slip_abp: f64,
}

/// Computes Figure 10 from a suite.
pub fn fig10(suite: &SuiteResults) -> Vec<Fig10Row> {
    let mut rows: Vec<Fig10Row> = suite
        .benchmarks()
        .iter()
        .map(|&b| {
            let base = suite.baseline(b).full_system_energy();
            Fig10Row {
                bench: b.to_owned(),
                slip: 1.0 - suite.get(b, PolicyKind::Slip).full_system_energy() / base,
                slip_abp: 1.0 - suite.get(b, PolicyKind::SlipAbp).full_system_energy() / base,
            }
        })
        .collect();
    rows.push(Fig10Row {
        bench: "average".to_owned(),
        slip: mean(&rows.iter().map(|r| r.slip).collect::<Vec<_>>()),
        slip_abp: mean(&rows.iter().map(|r| r.slip_abp).collect::<Vec<_>>()),
    });
    rows
}

/// Renders Figure 10 as a table.
pub fn fig10_table(rows: &[Fig10Row]) -> Table {
    let mut t = Table::new(
        "Figure 10: full-system dynamic energy savings \
         (paper avg: SLIP 0.73%, SLIP+ABP 1.68%)",
        &["bench", "SLIP", "SLIP+ABP"],
    );
    for r in rows {
        t.row(vec![r.bench.clone(), pct2(r.slip), pct2(r.slip_abp)]);
    }
    t
}

/// One Figure 11 cell: a policy's access and movement energy at one
/// level, normalized to the baseline total of that level.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Benchmark name.
    pub bench: String,
    /// Policy.
    pub policy: PolicyKind,
    /// Normalized L2 access energy.
    pub l2_access: f64,
    /// Normalized L2 movement energy (movement + insertion +
    /// writeback, per the paper's caption).
    pub l2_movement: f64,
    /// Normalized L3 access energy.
    pub l3_access: f64,
    /// Normalized L3 movement energy.
    pub l3_movement: f64,
}

/// Computes Figure 11 from a suite.
pub fn fig11(suite: &SuiteResults) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for &b in suite.benchmarks() {
        let base = suite.baseline(b);
        let l2_base = base.l2_energy.total();
        let l3_base = base.l3_energy.total();
        for policy in PolicyKind::ALL {
            let r = suite.get(b, policy);
            rows.push(Fig11Row {
                bench: b.to_owned(),
                policy,
                l2_access: r.l2_energy.access_energy() / l2_base,
                l2_movement: r.l2_energy.movement_energy() / l2_base,
                l3_access: r.l3_energy.access_energy() / l3_base,
                l3_movement: r.l3_energy.movement_energy() / l3_base,
            });
        }
    }
    rows
}

/// Renders Figure 11 as a table.
pub fn fig11_table(rows: &[Fig11Row]) -> Table {
    let mut t = Table::new(
        "Figure 11: access vs movement energy, normalized to baseline total \
         (movement = inter-sublevel movement + insertion + writeback)",
        &[
            "bench",
            "policy",
            "L2 access",
            "L2 movement",
            "L3 access",
            "L3 movement",
        ],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            r.policy.label().to_owned(),
            format!("{:.2}", r.l2_access),
            format!("{:.2}", r.l2_movement),
            format!("{:.2}", r.l3_access),
            format!("{:.2}", r.l3_movement),
        ]);
    }
    t
}

/// Section 2.1 H-tree comparison result.
#[derive(Debug, Clone, PartialEq)]
pub struct HtreeRow {
    /// Benchmark name (or "average").
    pub bench: String,
    /// L2 energy increase of the H-tree vs the way-interleaved bus.
    pub l2_increase: f64,
    /// L3 energy increase.
    pub l3_increase: f64,
}

/// Applies a Figure 4 topology to a suite option set by rewriting the
/// per-sublevel energies: set-interleaving makes them uniform at the
/// capacity-weighted mean, the H-tree at the worst case.
pub fn apply_topology(mut options: SuiteOptions, topology: Topology) -> SuiteOptions {
    for level in [&mut options.tech.l2, &mut options.tech.l3] {
        match topology {
            Topology::HierarchicalBusWayInterleaved => {}
            Topology::HierarchicalBusSetInterleaved => {
                let m = level.mean_access();
                for e in &mut level.sublevel_access {
                    *e = m;
                }
            }
            Topology::HTree => {
                let worst = *level.sublevel_access.last().expect("levels have sublevels");
                for e in &mut level.sublevel_access {
                    *e = worst;
                }
            }
        }
    }
    options
}

/// Runs the Section 2.1 claim: baseline policy on the way-interleaved
/// bus versus the H-tree (paper: +37% L2, +32% L3).
pub fn htree_comparison(accesses: u64, benchmarks: &[&'static str]) -> Vec<HtreeRow> {
    let base_opts = SuiteOptions::paper_full()
        .with_benchmarks(benchmarks)
        .with_policies(&[PolicyKind::Baseline])
        .with_accesses(accesses);
    let htree_opts = apply_topology(base_opts.clone(), Topology::HTree);
    let base = SuiteResults::run(base_opts);
    let htree = SuiteResults::run(htree_opts);
    let mut rows: Vec<HtreeRow> = benchmarks
        .iter()
        .map(|&b| {
            let l2 = htree.baseline(b).l2_energy.total() / base.baseline(b).l2_energy.total();
            let l3 = htree.baseline(b).l3_energy.total() / base.baseline(b).l3_energy.total();
            HtreeRow {
                bench: b.to_owned(),
                l2_increase: l2 - 1.0,
                l3_increase: l3 - 1.0,
            }
        })
        .collect();
    rows.push(HtreeRow {
        bench: "average".to_owned(),
        l2_increase: mean(&rows.iter().map(|r| r.l2_increase).collect::<Vec<_>>()),
        l3_increase: mean(&rows.iter().map(|r| r.l3_increase).collect::<Vec<_>>()),
    });
    rows
}

/// Renders the H-tree comparison.
pub fn htree_table(rows: &[HtreeRow]) -> Table {
    let mut t = Table::new(
        "Section 2.1: H-tree energy increase vs way-interleaved bus \
         (paper: +37% L2, +32% L3)",
        &["bench", "L2 increase", "L3 increase"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            pct(r.l2_increase),
            pct(r.l3_increase),
        ]);
    }
    t
}

/// Section 6 node study: SLIP+ABP savings at 22 nm (paper: 36% L2,
/// 25% L3). Returns (mean L2 saving, mean L3 saving).
pub fn node22(accesses: u64, benchmarks: &[&'static str]) -> (f64, f64) {
    let opts = SuiteOptions::paper_full()
        .with_benchmarks(benchmarks)
        .with_policies(&[PolicyKind::SlipAbp])
        .with_accesses(accesses)
        .with_tech(TECH_22NM.clone());
    let suite = SuiteResults::run(opts);
    (
        suite.mean_l2_saving(PolicyKind::SlipAbp),
        suite.mean_l3_saving(PolicyKind::SlipAbp),
    )
}

/// Mean DRAM demand-traffic change of a policy vs baseline over the
/// suite (negative = reduction; the paper quotes −2.2% for SLIP+ABP).
pub fn mean_dram_traffic_change(suite: &SuiteResults, policy: PolicyKind) -> f64 {
    mean(
        &suite
            .benchmarks()
            .iter()
            .map(|&b| {
                let base = suite.baseline(b).dram_demand_traffic() as f64;
                let ours = suite.get(b, policy).dram_total_traffic() as f64;
                ours / base - 1.0
            })
            .collect::<Vec<_>>(),
    )
}

/// An `Energy` pretty-printer shim for tables.
pub fn fmt_energy(e: Energy) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_suite() -> SuiteResults {
        // Long enough for stream pages to stabilize into their SLIPs
        // (~16 TLB misses per page); shorter traces are dominated by
        // the sampling warmup and show no savings.
        SuiteResults::run(
            SuiteOptions::paper_full()
                .with_benchmarks(&["gcc", "lbm"])
                .with_accesses(600_000),
        )
    }

    #[test]
    fn fig09_has_expected_shape() {
        let suite = small_suite();
        let rows = fig09(&suite);
        assert_eq!(rows.len(), 3);
        let avg = rows.last().unwrap();
        // SLIP+ABP saves energy at L2; the NUCA policies cost energy.
        assert!(avg.l2_slip_abp > 0.0, "{avg:?}");
        assert!(avg.l2_nurapid < 0.0, "{avg:?}");
        assert!(avg.l2_lru_pea < 0.0, "{avg:?}");
        // ABP never hurts relative to plain SLIP at L2.
        assert!(avg.l2_slip_abp >= avg.l2_slip - 0.02, "{avg:?}");
        assert!(!fig09_table(&rows).render().is_empty());
    }

    #[test]
    fn fig10_savings_are_small_but_positive_for_abp() {
        let suite = small_suite();
        let rows = fig10(&suite);
        let avg = rows.last().unwrap();
        // Full-system savings are on the order of a percent (the
        // paper reports +1.68%; at short test traces the DRAM-dominated
        // total can wobble a couple of percent either way).
        assert!(avg.slip_abp > -0.05 && avg.slip_abp < 0.15, "{avg:?}");
        assert!(!fig10_table(&rows).render().is_empty());
    }

    #[test]
    fn fig11_baseline_normalizes_to_one() {
        let suite = small_suite();
        let rows = fig11(&suite);
        for r in rows.iter().filter(|r| r.policy == PolicyKind::Baseline) {
            let l2 = r.l2_access + r.l2_movement;
            // Baseline access+movement is its total (no metadata/EOU).
            assert!((l2 - 1.0).abs() < 0.05, "{r:?}");
        }
        // NUCA policies show outsized movement energy.
        for r in rows.iter().filter(|r| r.policy == PolicyKind::NuRapid) {
            assert!(r.l2_movement > 0.5, "{r:?}");
        }
        assert!(!fig11_table(&rows).render().is_empty());
    }

    #[test]
    fn htree_costs_more_energy() {
        let rows = htree_comparison(80_000, &["gcc"]);
        let avg = rows.last().unwrap();
        assert!(avg.l2_increase > 0.15 && avg.l2_increase < 0.6, "{avg:?}");
        assert!(avg.l3_increase > 0.15 && avg.l3_increase < 0.6, "{avg:?}");
        assert!(!htree_table(&rows).render().is_empty());
    }

    #[test]
    fn set_interleaving_is_energy_neutral_for_placement() {
        // Under set interleaving every way costs the same, so the
        // baseline's energy equals the mean-energy model by
        // construction.
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::Baseline])
            .with_accesses(50_000);
        let uniform = apply_topology(opts, Topology::HierarchicalBusSetInterleaved);
        assert!(uniform
            .tech
            .l2
            .sublevel_access
            .windows(2)
            .all(|w| w[0] == w[1]));
    }
}
