//! Motivation experiments: Figure 1 (reuses before eviction) and
//! Figure 3 (reuse-distance classes within soplex).

use crate::config::{PolicyKind, SystemConfig};
use crate::report::Table;
use crate::system::run_workload;
use std::collections::HashMap;

/// The benchmarks Figure 1 shows.
pub const FIG01_BENCHMARKS: [&str; 7] = [
    "soplex",
    "gcc",
    "mcf",
    "xalancbmk",
    "leslie3D",
    "omnetpp",
    "sphinx3",
];

/// One Figure 1 row: fractions of 2 MB-LLC lines by reuse count.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig01Row {
    /// Benchmark name (or "average").
    pub bench: String,
    /// Fractions for NR = 0, 1, 2, >2.
    pub nr_fractions: [f64; 4],
}

/// Runs Figure 1: baseline hierarchy, measure each line's hits between
/// fill and eviction at the 2 MB LLC.
pub fn fig01(accesses: u64) -> Vec<Fig01Row> {
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 4];
    for bench in FIG01_BENCHMARKS {
        let spec = workloads::workload(bench).expect("known benchmark");
        let r = run_workload(
            SystemConfig::paper_45nm(PolicyKind::Baseline),
            &spec,
            accesses,
        );
        let f = r.l3_stats.nr_fractions();
        for (s, x) in sums.iter_mut().zip(&f) {
            *s += x;
        }
        rows.push(Fig01Row {
            bench: bench.to_owned(),
            nr_fractions: f,
        });
    }
    let n = FIG01_BENCHMARKS.len() as f64;
    rows.push(Fig01Row {
        bench: "average".to_owned(),
        nr_fractions: [sums[0] / n, sums[1] / n, sums[2] / n, sums[3] / n],
    });
    rows
}

/// Renders Figure 1 as a table.
pub fn fig01_table(rows: &[Fig01Row]) -> Table {
    let mut t = Table::new(
        "Figure 1: lines by number of reuses (NR) before eviction, 2 MB LLC",
        &["bench", "NR=0", "NR=1", "NR=2", "NR>2"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            crate::report::pct(r.nr_fractions[0]),
            crate::report::pct(r.nr_fractions[1]),
            crate::report::pct(r.nr_fractions[2]),
            crate::report::pct(r.nr_fractions[3]),
        ]);
    }
    t
}

/// One Figure 3 row: the reuse-distance distribution of one access
/// class of soplex, bucketed by the cache capacity that would capture
/// the reuse.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig03Row {
    /// Access-class label (which source pattern it mimics).
    pub class: String,
    /// Fractions with reuse distance ≤64K / 128K / 256K / >256K.
    pub buckets: [f64; 4],
}

/// A Fenwick (binary indexed) tree over trace positions, used to
/// compute exact LRU stack distances: position `j` holds 1 iff it is
/// the most recent access of its line, so a prefix-sum difference
/// counts the *distinct* lines touched between two accesses.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<i32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, mut i: usize) -> i32 {
        i += 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Per-class stack-distance tracker.
struct ClassTracker {
    fenwick: Fenwick,
    last: HashMap<u64, usize>,
    position: usize,
    counts: [u64; 4],
}

impl ClassTracker {
    fn new(capacity: usize) -> Self {
        ClassTracker {
            fenwick: Fenwick::new(capacity),
            last: HashMap::new(),
            position: 0,
            counts: [0; 4],
        }
    }

    fn observe(&mut self, line: u64) {
        let i = self.position;
        self.position += 1;
        let prev = self.last.insert(line, i);
        let bucket = match prev {
            None => 3,
            Some(p) => {
                // Distinct same-class lines touched strictly between p
                // and i.
                let between = (self.fenwick.prefix(i - 1) - self.fenwick.prefix(p)) as u64;
                if between < 1024 {
                    0
                } else if between < 2048 {
                    1
                } else if between < 4096 {
                    2
                } else {
                    3
                }
            }
        };
        self.counts[bucket] += 1;
        if let Some(p) = prev {
            self.fenwick.add(p, -1);
        }
        self.fenwick.add(i, 1);
    }

    fn fractions(&self) -> [f64; 4] {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let mut f = [0.0; 4];
        for (o, &c) in f.iter_mut().zip(&self.counts) {
            *o = c as f64 / total as f64;
        }
        f
    }
}

/// Runs Figure 3: exact LRU stack-distance distributions per access
/// class of the soplex-like workload, measured within each class (the
/// paper plots per-source-line distributions).
///
/// The `rorig`-like class combines the small streams (which fit 64 KB)
/// with the large streams (which exceed 256 KB), reproducing the
/// paper's bimodal 18% / 72% split. Buckets are at the 64 KB / 128 KB /
/// 256 KB capacities (1024 / 2048 / 4096 lines); first touches count as
/// beyond 256 KB, matching the paper's treatment of misses.
pub fn fig03(accesses: u64) -> Vec<Fig03Row> {
    let spec = workloads::workload("soplex").expect("soplex exists");
    // Pattern index is encoded in bits 26.. of the line address (one
    // private 4 GiB region per pattern, in spec order):
    // 1 = 48 KB loop, 2 = large streams, 3 = random, 4 = 192 KB loop.
    // Each region is tracked on its own (the paper's distributions are
    // per source line; temporal interleaving across patterns is an
    // artifact of our mixture generator).
    let mut trackers: Vec<ClassTracker> = (0..4)
        .map(|_| ClassTracker::new(accesses as usize))
        .collect();
    for access in spec.trace(accesses, 0x515) {
        let line = access.line().0;
        let region = line >> 26;
        if (1..=4).contains(&region) {
            trackers[(region - 1) as usize].observe(line);
        }
    }
    // The rorig class is the access-weighted union of its short streams
    // (which fit 64 KB) and its long streams (which exceed 256 KB) —
    // the paper's 18% / 72% bimodality.
    let combine = |a: &ClassTracker, b: &ClassTracker| -> [f64; 4] {
        let na: u64 = a.counts.iter().sum();
        let nb: u64 = b.counts.iter().sum();
        let total = (na + nb).max(1) as f64;
        let fa = a.fractions();
        let fb = b.fractions();
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = (fa[i] * na as f64 + fb[i] * nb as f64) / total;
        }
        out
    };
    vec![
        Fig03Row {
            class: "rorig-like streams (line 418)".to_owned(),
            buckets: combine(&trackers[0], &trackers[1]),
        },
        Fig03Row {
            class: "rperm-like random (line 421)".to_owned(),
            buckets: trackers[2].fractions(),
        },
        Fig03Row {
            class: "cperm-like (line 428)".to_owned(),
            buckets: trackers[3].fractions(),
        },
    ]
}

/// Renders Figure 3 as a table.
pub fn fig03_table(rows: &[Fig03Row]) -> Table {
    let mut t = Table::new(
        "Figure 3: soplex access classes by reuse distance",
        &["class", "<=64K", "128K", "256K", ">256K"],
    );
    for r in rows {
        t.row(vec![
            r.class.clone(),
            crate::report::pct(r.buckets[0]),
            crate::report::pct(r.buckets[1]),
            crate::report::pct(r.buckets[2]),
            crate::report::pct(r.buckets[3]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_most_lines_never_reuse() {
        let rows = fig01(150_000);
        assert_eq!(rows.len(), 8);
        let avg = rows.last().unwrap();
        assert_eq!(avg.bench, "average");
        // Paper: >70% of LLC lines see no reuse on average. Allow slack
        // for the shorter test trace.
        assert!(
            avg.nr_fractions[0] > 0.5,
            "NR=0 average {:.2}",
            avg.nr_fractions[0]
        );
        for r in &rows {
            let sum: f64 = r.nr_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", r.bench);
        }
    }

    #[test]
    fn fig03_classes_have_the_paper_shapes() {
        let rows = fig03(400_000);
        assert_eq!(rows.len(), 3);
        // rorig-like: bimodal — a chunk fits 64 KB, the rest misses
        // (paper: 18% / 72%).
        assert!(rows[0].buckets[0] > 0.2, "{:?}", rows[0]);
        assert!(rows[0].buckets[3] > 0.3, "{:?}", rows[0]);
        assert!(
            rows[0].buckets[1] + rows[0].buckets[2] < 0.2,
            "{:?}",
            rows[0]
        );
        // rperm-like random: mostly beyond the cache (paper: ~100%
        // misses).
        assert!(rows[1].buckets[3] > 0.6, "{:?}", rows[1]);
        // cperm-like: dominated by reuse that needs the full 256 KB
        // cache, with a first-touch tail (paper: 66%/10%/24% across
        // near/full/miss).
        assert!(
            rows[2].buckets[1] + rows[2].buckets[2] > 0.5,
            "{:?}",
            rows[2]
        );
    }

    #[test]
    fn tables_render() {
        let rows = fig01(40_000);
        assert!(fig01_table(&rows).render().contains("average"));
        let rows = fig03(40_000);
        assert!(fig03_table(&rows).render().contains("rperm"));
    }
}
