//! Traffic and placement experiments: Figure 12 (miss traffic incl.
//! metadata), Figure 14 (insertion classes), Figure 15 (sublevel access
//! fractions).

use crate::config::PolicyKind;
use crate::experiments::suite::SuiteResults;
use crate::report::{mean, pct, Table};

/// One Figure 12 row: a level's miss traffic relative to baseline,
/// split into demand and metadata-overhead components.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Benchmark (or "average").
    pub bench: String,
    /// Policy (SLIP or SLIP+ABP).
    pub policy: PolicyKind,
    /// L2 demand misses / baseline L2 demand misses.
    pub l2_demand: f64,
    /// L2 metadata misses / baseline L2 demand misses.
    pub l2_overhead: f64,
    /// L3 demand misses / baseline L3 demand misses.
    pub l3_demand: f64,
    /// L3 metadata misses / baseline L3 demand misses.
    pub l3_overhead: f64,
}

impl Fig12Row {
    /// Total relative L2 miss traffic.
    pub fn l2_total(&self) -> f64 {
        self.l2_demand + self.l2_overhead
    }

    /// Total relative L3 miss traffic.
    pub fn l3_total(&self) -> f64 {
        self.l3_demand + self.l3_overhead
    }
}

/// Computes Figure 12 from a suite.
pub fn fig12(suite: &SuiteResults) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    for policy in [PolicyKind::Slip, PolicyKind::SlipAbp] {
        let mut policy_rows: Vec<Fig12Row> = suite
            .benchmarks()
            .iter()
            .map(|&b| {
                let base = suite.baseline(b);
                let r = suite.get(b, policy);
                let l2_base = base.l2_stats.demand_misses.max(1) as f64;
                let l3_base = base.l3_stats.demand_misses.max(1) as f64;
                Fig12Row {
                    bench: b.to_owned(),
                    policy,
                    l2_demand: r.l2_stats.demand_misses as f64 / l2_base,
                    l2_overhead: r.l2_stats.metadata_misses as f64 / l2_base,
                    l3_demand: r.l3_stats.demand_misses as f64 / l3_base,
                    l3_overhead: r.l3_stats.metadata_misses as f64 / l3_base,
                }
            })
            .collect();
        policy_rows.push(Fig12Row {
            bench: "average".to_owned(),
            policy,
            l2_demand: mean(&policy_rows.iter().map(|r| r.l2_demand).collect::<Vec<_>>()),
            l2_overhead: mean(
                &policy_rows
                    .iter()
                    .map(|r| r.l2_overhead)
                    .collect::<Vec<_>>(),
            ),
            l3_demand: mean(&policy_rows.iter().map(|r| r.l3_demand).collect::<Vec<_>>()),
            l3_overhead: mean(
                &policy_rows
                    .iter()
                    .map(|r| r.l3_overhead)
                    .collect::<Vec<_>>(),
            ),
        });
        rows.extend(policy_rows);
    }
    rows
}

/// Renders Figure 12 as a table.
pub fn fig12_table(rows: &[Fig12Row]) -> Table {
    let mut t = Table::new(
        "Figure 12: relative miss traffic incl. metadata overhead \
         (paper avg: SLIP -1.7%/-1.0%, SLIP+ABP -2.4%/-2.2% at L2/L3)",
        &[
            "bench",
            "policy",
            "L2 demand",
            "L2 overhead",
            "L2 total",
            "L3 demand",
            "L3 overhead",
            "L3 total",
        ],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            r.policy.label().to_owned(),
            pct(r.l2_demand),
            pct(r.l2_overhead),
            pct(r.l2_total()),
            pct(r.l3_demand),
            pct(r.l3_overhead),
            pct(r.l3_total()),
        ]);
    }
    t
}

/// One Figure 14 row: the insertion-class mix at one level.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Row {
    /// Benchmark (or "average").
    pub bench: String,
    /// `true` for L2, `false` for L3.
    pub is_l2: bool,
    /// Fractions: ABP, partial bypass, default, others.
    pub classes: [f64; 4],
}

/// Computes Figure 14 (insertion classes under SLIP+ABP).
pub fn fig14(suite: &SuiteResults) -> Vec<Fig14Row> {
    let mut rows = Vec::new();
    for is_l2 in [true, false] {
        let mut level_rows: Vec<Fig14Row> = suite
            .benchmarks()
            .iter()
            .map(|&b| {
                let r = suite.get(b, PolicyKind::SlipAbp);
                let classes = if is_l2 {
                    r.l2_stats.insertion_class_fractions()
                } else {
                    r.l3_stats.insertion_class_fractions()
                };
                Fig14Row {
                    bench: b.to_owned(),
                    is_l2,
                    classes,
                }
            })
            .collect();
        let mut avg = [0.0f64; 4];
        for r in &level_rows {
            for (a, c) in avg.iter_mut().zip(&r.classes) {
                *a += c;
            }
        }
        let n = level_rows.len() as f64;
        for a in &mut avg {
            *a /= n;
        }
        level_rows.push(Fig14Row {
            bench: "average".to_owned(),
            is_l2,
            classes: avg,
        });
        rows.extend(level_rows);
    }
    rows
}

/// Renders Figure 14 as a table.
pub fn fig14_table(rows: &[Fig14Row]) -> Table {
    let mut t = Table::new(
        "Figure 14: insertions by SLIP class under SLIP+ABP \
         (paper: ~27% L2 / ~14% L3 bypassed; ABP+partial+default > 95%)",
        &["bench", "level", "ABP", "partial", "default", "others"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            if r.is_l2 { "L2" } else { "L3" }.to_owned(),
            pct(r.classes[0]),
            pct(r.classes[1]),
            pct(r.classes[2]),
            pct(r.classes[3]),
        ]);
    }
    t
}

/// One Figure 15 row: fraction of hits served per sublevel.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Policy.
    pub policy: PolicyKind,
    /// `true` for L2.
    pub is_l2: bool,
    /// Mean hit fraction per sublevel (0 = nearest).
    pub fractions: Vec<f64>,
}

/// Computes Figure 15: average sublevel hit fractions per policy.
pub fn fig15(suite: &SuiteResults) -> Vec<Fig15Row> {
    let policies = [
        PolicyKind::NuRapid,
        PolicyKind::LruPea,
        PolicyKind::Slip,
        PolicyKind::SlipAbp,
    ];
    let mut rows = Vec::new();
    for is_l2 in [true, false] {
        for policy in policies {
            let mut acc = vec![0.0f64; 3];
            for &b in suite.benchmarks() {
                let r = suite.get(b, policy);
                let f = if is_l2 {
                    r.l2_stats.sublevel_hit_fractions()
                } else {
                    r.l3_stats.sublevel_hit_fractions()
                };
                for (a, x) in acc.iter_mut().zip(&f) {
                    *a += x;
                }
            }
            let n = suite.benchmarks().len() as f64;
            for a in &mut acc {
                *a /= n;
            }
            rows.push(Fig15Row {
                policy,
                is_l2,
                fractions: acc,
            });
        }
    }
    rows
}

/// Renders Figure 15 as a table.
pub fn fig15_table(rows: &[Fig15Row]) -> Table {
    let mut t = Table::new(
        "Figure 15: fraction of accesses served per sublevel \
         (all policies shift hits toward sublevel 0; NUCA most aggressively)",
        &["level", "policy", "sublevel 0", "sublevel 1", "sublevel 2"],
    );
    for r in rows {
        t.row(vec![
            if r.is_l2 { "L2" } else { "L3" }.to_owned(),
            r.policy.label().to_owned(),
            pct(r.fractions[0]),
            pct(r.fractions[1]),
            pct(r.fractions[2]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::suite::SuiteOptions;

    fn small_suite() -> SuiteResults {
        SuiteResults::run(
            SuiteOptions::paper_full()
                .with_benchmarks(&["soplex", "lbm"])
                .with_accesses(150_000),
        )
    }

    #[test]
    fn fig12_fractions_are_sane() {
        let suite = small_suite();
        let rows = fig12(&suite);
        // 2 policies x (2 benches + average).
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.l2_demand > 0.5 && r.l2_demand < 1.5, "{r:?}");
            assert!(r.l2_overhead >= 0.0 && r.l2_overhead < 0.3, "{r:?}");
        }
        assert!(!fig12_table(&rows).render().is_empty());
    }

    #[test]
    fn fig14_classes_sum_to_one_and_abp_nonzero() {
        let suite = small_suite();
        let rows = fig14(&suite);
        for r in &rows {
            let sum: f64 = r.classes.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{r:?}");
        }
        // lbm streams: visible L2 bypassing even on this short trace
        // (pages need ~16 TLB misses to stabilize into the ABP).
        let lbm_l2 = rows.iter().find(|r| r.bench == "lbm" && r.is_l2).unwrap();
        assert!(lbm_l2.classes[0] > 0.05, "{lbm_l2:?}");
        // The paper: L2 bypassing exceeds L3 bypassing on average.
        let avg_l2 = rows
            .iter()
            .find(|r| r.bench == "average" && r.is_l2)
            .unwrap();
        let avg_l3 = rows
            .iter()
            .find(|r| r.bench == "average" && !r.is_l2)
            .unwrap();
        assert!(
            avg_l2.classes[0] >= avg_l3.classes[0] - 0.05,
            "L2 {avg_l2:?} vs L3 {avg_l3:?}"
        );
        assert!(!fig14_table(&rows).render().is_empty());
    }

    #[test]
    fn fig15_rows_cover_policies_and_levels() {
        let suite = small_suite();
        let rows = fig15(&suite);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            let sum: f64 = r.fractions.iter().sum();
            // Fractions sum to ~1 when there were hits at all.
            assert!(sum <= 1.0 + 1e-9, "{r:?}");
        }
        assert!(!fig15_table(&rows).render().is_empty());
    }
}
