//! Figure 16: two-core multiprogrammed mixes with a shared L3.
//!
//! Both drivers fan their (mix, configuration) cells out over the
//! `sweep-runner` worker pool (`SLIP_JOBS` workers); each cell seeds
//! its own [`SystemConfig`], so results are identical at any worker
//! count.

use crate::config::{PolicyKind, SystemConfig};
use crate::env;
use crate::multicore::{run_mix, MulticoreResult};
use crate::report::{mean, pct, Table};

/// One Figure 16 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig16Row {
    /// The mix label, e.g. `"soplex+mcf"`.
    pub mix: String,
    /// Shared-L3 energy saving of SLIP+ABP vs baseline.
    pub l3_saving: f64,
    /// Combined L2+L3 energy saving.
    pub l2_l3_saving: f64,
    /// DRAM traffic change (negative = reduction), incl. metadata.
    pub dram_change: f64,
    /// NuRAPID L3 saving (negative; caption quotes −97%).
    pub l3_nurapid: f64,
    /// LRU-PEA L3 saving (caption quotes −85%).
    pub l3_lru_pea: f64,
}

/// Runs Figure 16 over the paper's 8 mixes.
pub fn fig16(accesses_per_core: u64) -> Vec<Fig16Row> {
    fig16_with_mixes(accesses_per_core, &workloads::MULTICORE_MIXES)
}

/// Runs Figure 16 over a custom mix list.
pub fn fig16_with_mixes(accesses_per_core: u64, mixes: &[(&str, &str)]) -> Vec<Fig16Row> {
    const POLICIES: [PolicyKind; 4] = [
        PolicyKind::Baseline,
        PolicyKind::SlipAbp,
        PolicyKind::NuRapid,
        PolicyKind::LruPea,
    ];
    let results = sweep_runner::run_indexed(
        mixes.len() * POLICIES.len(),
        env::jobs(),
        |i| -> MulticoreResult {
            let (a, b) = mixes[i / POLICIES.len()];
            let spec_a = workloads::workload(a).expect("known benchmark");
            let spec_b = workloads::workload(b).expect("known benchmark");
            run_mix(
                SystemConfig::paper_45nm(POLICIES[i % POLICIES.len()]),
                &spec_a,
                &spec_b,
                accesses_per_core,
            )
        },
    );
    let mut rows = Vec::new();
    for (&(a, b), cell) in mixes.iter().zip(results.chunks_exact(POLICIES.len())) {
        let [base, slip, nurapid, lru_pea] = cell else {
            unreachable!("chunks_exact yields POLICIES.len() results")
        };
        rows.push(Fig16Row {
            mix: format!("{a}+{b}"),
            l3_saving: 1.0 - slip.l3_energy / base.l3_energy,
            l2_l3_saving: 1.0 - slip.l2_plus_l3_energy() / base.l2_plus_l3_energy(),
            dram_change: slip.dram_total_traffic as f64 / base.dram_demand_traffic as f64 - 1.0,
            l3_nurapid: 1.0 - nurapid.l3_energy / base.l3_energy,
            l3_lru_pea: 1.0 - lru_pea.l3_energy / base.l3_energy,
        });
    }
    rows.push(Fig16Row {
        mix: "average".to_owned(),
        l3_saving: mean(&rows.iter().map(|r| r.l3_saving).collect::<Vec<_>>()),
        l2_l3_saving: mean(&rows.iter().map(|r| r.l2_l3_saving).collect::<Vec<_>>()),
        dram_change: mean(&rows.iter().map(|r| r.dram_change).collect::<Vec<_>>()),
        l3_nurapid: mean(&rows.iter().map(|r| r.l3_nurapid).collect::<Vec<_>>()),
        l3_lru_pea: mean(&rows.iter().map(|r| r.l3_lru_pea).collect::<Vec<_>>()),
    });
    rows
}

/// Renders Figure 16 as a table.
pub fn fig16_table(rows: &[Fig16Row]) -> Table {
    let mut t = Table::new(
        "Figure 16: 2-core mixes, shared 2 MB L3, SLIP+ABP \
         (paper avg: 47% L3 saving, -5.5% DRAM traffic; NuRAPID -97%, LRU-PEA -85% L3)",
        &[
            "mix",
            "L3 saving",
            "L2+L3 saving",
            "DRAM traffic",
            "NuRAPID L3",
            "LRU-PEA L3",
        ],
    );
    for r in rows {
        t.row(vec![
            r.mix.clone(),
            pct(r.l3_saving),
            pct(r.l2_l3_saving),
            pct(r.dram_change),
            pct(r.l3_nurapid),
            pct(r.l3_lru_pea),
        ]);
    }
    t
}

/// One partitioned-L3 comparison row (paper §7 extension).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionRow {
    /// The mix label.
    pub mix: String,
    /// Shared-L3 energy saving with one global SLIP+ABP policy.
    pub shared_saving: f64,
    /// Saving when the L3 is way-partitioned per core, SLIP within
    /// each partition.
    pub partitioned_saving: f64,
    /// DRAM traffic change under the shared policy.
    pub shared_dram: f64,
    /// DRAM traffic change under partitioning.
    pub partitioned_dram: f64,
}

/// Compares shared vs way-partitioned L3 under SLIP+ABP (paper §7:
/// "given a partitioning of the cache among the various cores, one can
/// apply SLIP to minimize the access energy within each partition").
pub fn partition_comparison(accesses_per_core: u64, mixes: &[(&str, &str)]) -> Vec<PartitionRow> {
    const CONFIGS: [(PolicyKind, bool); 3] = [
        (PolicyKind::Baseline, false),
        (PolicyKind::SlipAbp, false),
        (PolicyKind::SlipAbp, true),
    ];
    let results = sweep_runner::run_indexed(
        mixes.len() * CONFIGS.len(),
        env::jobs(),
        |i| -> MulticoreResult {
            let (a, b) = mixes[i / CONFIGS.len()];
            let spec_a = workloads::workload(a).expect("known benchmark");
            let spec_b = workloads::workload(b).expect("known benchmark");
            let (policy, partitioned) = CONFIGS[i % CONFIGS.len()];
            let mut cfg = SystemConfig::paper_45nm(policy);
            cfg.partitioned_l3 = partitioned;
            run_mix(cfg, &spec_a, &spec_b, accesses_per_core)
        },
    );
    let mut rows = Vec::new();
    for (&(a, b), cell) in mixes.iter().zip(results.chunks_exact(CONFIGS.len())) {
        let [base, shared, part] = cell else {
            unreachable!("chunks_exact yields CONFIGS.len() results")
        };
        rows.push(PartitionRow {
            mix: format!("{a}+{b}"),
            shared_saving: 1.0 - shared.l3_energy / base.l3_energy,
            partitioned_saving: 1.0 - part.l3_energy / base.l3_energy,
            shared_dram: shared.dram_total_traffic as f64 / base.dram_demand_traffic as f64 - 1.0,
            partitioned_dram: part.dram_total_traffic as f64 / base.dram_demand_traffic as f64
                - 1.0,
        });
    }
    rows.push(PartitionRow {
        mix: "average".to_owned(),
        shared_saving: mean(&rows.iter().map(|r| r.shared_saving).collect::<Vec<_>>()),
        partitioned_saving: mean(
            &rows
                .iter()
                .map(|r| r.partitioned_saving)
                .collect::<Vec<_>>(),
        ),
        shared_dram: mean(&rows.iter().map(|r| r.shared_dram).collect::<Vec<_>>()),
        partitioned_dram: mean(&rows.iter().map(|r| r.partitioned_dram).collect::<Vec<_>>()),
    });
    rows
}

/// Renders the partitioned-L3 comparison.
pub fn partition_table(rows: &[PartitionRow]) -> Table {
    let mut t = Table::new(
        "Paper §7 extension: shared vs way-partitioned L3, SLIP+ABP",
        &[
            "mix",
            "shared saving",
            "partitioned saving",
            "shared DRAM",
            "partitioned DRAM",
        ],
    );
    for r in rows {
        t.row(vec![
            r.mix.clone(),
            pct(r.shared_saving),
            pct(r.partitioned_saving),
            pct(r.shared_dram),
            pct(r.partitioned_dram),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_comparison_produces_sane_rows() {
        let rows = partition_comparison(60_000, &[("gcc", "lbm")]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.shared_saving.is_finite());
            assert!(r.partitioned_saving.is_finite());
        }
        assert!(!partition_table(&rows).render().is_empty());
    }

    #[test]
    fn two_mixes_show_l3_savings_and_nuca_costs() {
        let rows = fig16_with_mixes(100_000, &[("soplex", "mcf"), ("lbm", "gcc")]);
        assert_eq!(rows.len(), 3);
        let avg = rows.last().unwrap();
        assert!(avg.l3_saving > 0.0, "{avg:?}");
        assert!(avg.l3_nurapid < 0.0, "{avg:?}");
        assert!(avg.l3_lru_pea < 0.0, "{avg:?}");
        // DRAM traffic stays within a few percent of baseline.
        assert!(avg.dram_change.abs() < 0.15, "{avg:?}");
        assert!(!fig16_table(&rows).render().is_empty());
    }
}
