//! Design-space ablations beyond the paper's figures, exercising the
//! extension knobs DESIGN.md calls out: sublevel partitioning, the EOU
//! objective, rd-block granularity (paper §7), sampling probabilities
//! (§4.2), and LLC inclusion (§4.3).

use crate::config::{PolicyKind, SystemConfig};
use crate::report::{mean, pct, Table};
use crate::system::run_workload;
use slip_core::{EouObjective, SamplingConfig};

fn mean_savings<F>(benchmarks: &[&str], accesses: u64, make: F) -> (f64, f64)
where
    F: Fn(PolicyKind) -> SystemConfig,
{
    let mut l2 = Vec::new();
    let mut l3 = Vec::new();
    for &b in benchmarks {
        let spec = workloads::workload(b).expect("known benchmark");
        let base = run_workload(make(PolicyKind::Baseline), &spec, accesses);
        let slip = run_workload(make(PolicyKind::SlipAbp), &spec, accesses);
        l2.push(1.0 - slip.l2_total_energy() / base.l2_total_energy());
        l3.push(1.0 - slip.l3_total_energy() / base.l3_total_energy());
    }
    (mean(&l2), mean(&l3))
}

/// One sublevel-partitioning row.
#[derive(Debug, Clone, PartialEq)]
pub struct SublevelRow {
    /// Human label, e.g. `"2x8 ways"`.
    pub label: String,
    /// Number of sublevels (and PTE bits per level).
    pub sublevels: usize,
    /// Mean L2 saving of SLIP+ABP vs a baseline on the same geometry.
    pub l2_saving: f64,
    /// Mean L3 saving.
    pub l3_saving: f64,
}

/// Sweeps the number/shape of sublevels. The paper fixes S = 3
/// (4/4/8 ways); this ablation quantifies what coarser and finer
/// partitions cost, with energies re-derived from the calibrated bank
/// grids.
pub fn sublevel_sweep(accesses: u64, benchmarks: &[&str]) -> Vec<SublevelRow> {
    let splits: [(&str, Vec<usize>); 4] = [
        ("2 sublevels (8/8)", vec![8, 8]),
        ("3 sublevels (4/4/8, paper)", vec![4, 4, 8]),
        ("4 sublevels (4/4/4/4)", vec![4, 4, 4, 4]),
        ("8 sublevels (2x8)", vec![2, 2, 2, 2, 2, 2, 2, 2]),
    ];
    splits
        .iter()
        .map(|(label, split)| {
            let (l2, l3) = mean_savings(benchmarks, accesses, |p| {
                SystemConfig::paper_45nm(p).with_sublevel_ways(split.clone(), split.clone())
            });
            SublevelRow {
                label: (*label).to_owned(),
                sublevels: split.len(),
                l2_saving: l2,
                l3_saving: l3,
            }
        })
        .collect()
}

/// Renders the sublevel sweep.
pub fn sublevel_table(rows: &[SublevelRow]) -> Table {
    let mut t = Table::new(
        "Ablation: sublevel partitioning (paper fixes 3 sublevels = 3 PTE bits/level)",
        &["partition", "S", "PTE bits/level", "L2 saving", "L3 saving"],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            r.sublevels.to_string(),
            r.sublevels.to_string(),
            pct(r.l2_saving),
            pct(r.l3_saving),
        ]);
    }
    t
}

/// One EOU-objective row.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveRow {
    /// The objective.
    pub objective: EouObjective,
    /// Policy (SLIP or SLIP+ABP).
    pub policy: PolicyKind,
    /// Mean L2 saving.
    pub l2_saving: f64,
    /// Mean L3 saving.
    pub l3_saving: f64,
}

/// Compares the insertion-aware EOU objective against the paper's
/// literal Eq. 1–4 (see DESIGN.md §3 for why the difference matters).
pub fn eou_objective_ablation(accesses: u64, benchmarks: &[&str]) -> Vec<ObjectiveRow> {
    let mut rows = Vec::new();
    for objective in [EouObjective::InsertionAware, EouObjective::PaperLiteral] {
        for policy in [PolicyKind::Slip, PolicyKind::SlipAbp] {
            let mut l2 = Vec::new();
            let mut l3 = Vec::new();
            for &b in benchmarks {
                let spec = workloads::workload(b).expect("known benchmark");
                let base = run_workload(
                    SystemConfig::paper_45nm(PolicyKind::Baseline),
                    &spec,
                    accesses,
                );
                let mut cfg = SystemConfig::paper_45nm(policy);
                cfg.eou_objective = objective;
                let r = run_workload(cfg, &spec, accesses);
                l2.push(1.0 - r.l2_total_energy() / base.l2_total_energy());
                l3.push(1.0 - r.l3_total_energy() / base.l3_total_energy());
            }
            rows.push(ObjectiveRow {
                objective,
                policy,
                l2_saving: mean(&l2),
                l3_saving: mean(&l3),
            });
        }
    }
    rows
}

/// Renders the objective ablation.
pub fn objective_table(rows: &[ObjectiveRow]) -> Table {
    let mut t = Table::new(
        "Ablation: EOU objective — Eq. 1-4 + insertion term vs paper-literal Eq. 1-4",
        &["objective", "policy", "L2 saving", "L3 saving"],
    );
    for r in rows {
        t.row(vec![
            format!("{:?}", r.objective),
            r.policy.label().to_owned(),
            pct(r.l2_saving),
            pct(r.l3_saving),
        ]);
    }
    t
}

/// One rd-block row.
#[derive(Debug, Clone, PartialEq)]
pub struct RdBlockRow {
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Mean L2 saving.
    pub l2_saving: f64,
    /// Mean L3 saving.
    pub l3_saving: f64,
    /// Metadata fetches per 1000 accesses (traffic cost of finer
    /// blocks).
    pub metadata_fetches_per_kilo_access: f64,
}

/// Sweeps the rd-block (profiling granularity) size — paper §7's
/// extension for large pages. Finer blocks adapt policies to
/// heterogeneous pages; coarser blocks cut metadata traffic.
pub fn rd_block_sweep(accesses: u64, benchmarks: &[&str], shifts: &[u32]) -> Vec<RdBlockRow> {
    shifts
        .iter()
        .map(|&shift| {
            let mut l2 = Vec::new();
            let mut l3 = Vec::new();
            let mut fetches = Vec::new();
            for &b in benchmarks {
                let spec = workloads::workload(b).expect("known benchmark");
                let base = run_workload(
                    SystemConfig::paper_45nm(PolicyKind::Baseline),
                    &spec,
                    accesses,
                );
                let mut cfg = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
                cfg.rd_block_shift = shift;
                let r = run_workload(cfg, &spec, accesses);
                l2.push(1.0 - r.l2_total_energy() / base.l2_total_energy());
                l3.push(1.0 - r.l3_total_energy() / base.l3_total_energy());
                let m = r.mmu_stats.expect("slip run");
                fetches.push(m.metadata_fetches as f64 * 1000.0 / accesses as f64);
            }
            RdBlockRow {
                block_bytes: 1 << shift,
                l2_saving: mean(&l2),
                l3_saving: mean(&l3),
                metadata_fetches_per_kilo_access: mean(&fetches),
            }
        })
        .collect()
}

/// Renders the rd-block sweep.
pub fn rd_block_table(rows: &[RdBlockRow]) -> Table {
    let mut t = Table::new(
        "Ablation (paper §7): rd-block granularity",
        &["block size", "L2 saving", "L3 saving", "meta fetches/kacc"],
    );
    for r in rows {
        t.row(vec![
            format!("{} B", r.block_bytes),
            pct(r.l2_saving),
            pct(r.l3_saving),
            format!("{:.2}", r.metadata_fetches_per_kilo_access),
        ]);
    }
    t
}

/// One sampling-configuration row.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingRow {
    /// The configuration.
    pub config: SamplingConfig,
    /// Mean L2 saving.
    pub l2_saving: f64,
    /// Mean L3 saving.
    pub l3_saving: f64,
    /// Measured fraction of TLB misses that fetched metadata.
    pub fetch_fraction: f64,
}

/// Sweeps the time-based-sampling probabilities around the paper's
/// N_samp = 16 / N_stab = 256.
pub fn sampling_sweep(accesses: u64, benchmarks: &[&str]) -> Vec<SamplingRow> {
    let configs = [
        SamplingConfig {
            n_samp: 4,
            n_stab: 64,
        },
        SamplingConfig {
            n_samp: 16,
            n_stab: 64,
        },
        SamplingConfig {
            n_samp: 16,
            n_stab: 256,
        },
        SamplingConfig {
            n_samp: 64,
            n_stab: 1024,
        },
        SamplingConfig {
            n_samp: 4,
            n_stab: 1024,
        },
    ];
    configs
        .iter()
        .map(|&sc| {
            let mut l2 = Vec::new();
            let mut l3 = Vec::new();
            let mut frac = Vec::new();
            for &b in benchmarks {
                let spec = workloads::workload(b).expect("known benchmark");
                let base = run_workload(
                    SystemConfig::paper_45nm(PolicyKind::Baseline),
                    &spec,
                    accesses,
                );
                let mut cfg = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
                cfg.sampling = sc;
                let r = run_workload(cfg, &spec, accesses);
                l2.push(1.0 - r.l2_total_energy() / base.l2_total_energy());
                l3.push(1.0 - r.l3_total_energy() / base.l3_total_energy());
                let m = r.mmu_stats.expect("slip run");
                frac.push(m.metadata_fetches as f64 / m.tlb_misses.max(1) as f64);
            }
            SamplingRow {
                config: sc,
                l2_saving: mean(&l2),
                l3_saving: mean(&l3),
                fetch_fraction: mean(&frac),
            }
        })
        .collect()
}

/// Renders the sampling sweep.
pub fn sampling_table(rows: &[SamplingRow]) -> Table {
    let mut t = Table::new(
        "Ablation (paper §4.2): time-based sampling probabilities \
         (paper: N_samp=16, N_stab=256 -> ~6% of TLB misses fetch metadata)",
        &[
            "N_samp",
            "N_stab",
            "fetch fraction",
            "L2 saving",
            "L3 saving",
        ],
    );
    for r in rows {
        t.row(vec![
            r.config.n_samp.to_string(),
            r.config.n_stab.to_string(),
            pct(r.fetch_fraction),
            pct(r.l2_saving),
            pct(r.l3_saving),
        ]);
    }
    t
}

/// One inclusion-model row.
#[derive(Debug, Clone, PartialEq)]
pub struct InclusionRow {
    /// Benchmark name.
    pub bench: String,
    /// `true` for the inclusive-LLC run.
    pub inclusive: bool,
    /// L2 demand hit rate.
    pub l2_hit_rate: f64,
    /// Speedup vs the non-inclusive baseline hierarchy.
    pub speedup: f64,
    /// DRAM demand traffic relative to that baseline.
    pub dram_traffic: f64,
}

/// Demonstrates paper §4.3's warning: the All-Bypass Policy is
/// undesirable with an inclusive LLC, because bypassed lines may not be
/// cached in any upper level either.
pub fn inclusion_ablation(accesses: u64, benchmarks: &[&str]) -> Vec<InclusionRow> {
    let mut rows = Vec::new();
    for &b in benchmarks {
        let spec = workloads::workload(b).expect("known benchmark");
        let base = run_workload(
            SystemConfig::paper_45nm(PolicyKind::Baseline),
            &spec,
            accesses,
        );
        for inclusive in [false, true] {
            let mut cfg = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
            cfg.inclusive_llc = inclusive;
            let r = run_workload(cfg, &spec, accesses);
            rows.push(InclusionRow {
                bench: b.to_owned(),
                inclusive,
                l2_hit_rate: r.l2_stats.demand_hit_rate(),
                speedup: r.speedup_vs(&base) - 1.0,
                dram_traffic: r.dram_total_traffic() as f64 / base.dram_demand_traffic() as f64,
            });
        }
    }
    rows
}

/// Renders the inclusion ablation.
pub fn inclusion_table(rows: &[InclusionRow]) -> Table {
    let mut t = Table::new(
        "Ablation (paper §4.3): SLIP+ABP under an inclusive LLC \
         (bypassed lines cannot be cached above -> performance degrades)",
        &["bench", "LLC", "L2 hit rate", "speedup", "DRAM traffic"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            if r.inclusive {
                "inclusive"
            } else {
                "non-inclusive"
            }
            .to_owned(),
            pct(r.l2_hit_rate),
            pct(r.speedup),
            pct(r.dram_traffic),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &[&str] = &["gcc"];
    const N: u64 = 150_000;

    #[test]
    fn sublevel_sweep_covers_partitions() {
        let rows = sublevel_sweep(N, BENCH);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1].sublevels, 3);
        for r in &rows {
            assert!(r.l2_saving.is_finite() && r.l3_saving.is_finite());
        }
        assert!(!sublevel_table(&rows).render().is_empty());
    }

    #[test]
    fn objective_ablation_runs_both_objectives() {
        let rows = eou_objective_ablation(N, BENCH);
        assert_eq!(rows.len(), 4);
        assert!(!objective_table(&rows).render().is_empty());
    }

    #[test]
    fn finer_rd_blocks_cost_more_metadata_traffic() {
        let rows = rd_block_sweep(300_000, &["xalancbmk"], &[11, 12, 13]);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].metadata_fetches_per_kilo_access > rows[2].metadata_fetches_per_kilo_access,
            "{rows:?}"
        );
        assert!(!rd_block_table(&rows).render().is_empty());
    }

    #[test]
    fn heavier_sampling_fetches_more_metadata() {
        let rows = sampling_sweep(200_000, &["xalancbmk"]);
        let heavy = rows
            .iter()
            .find(|r| r.config.n_samp == 16 && r.config.n_stab == 64)
            .unwrap();
        let light = rows
            .iter()
            .find(|r| r.config.n_samp == 4 && r.config.n_stab == 1024)
            .unwrap();
        assert!(
            heavy.fetch_fraction > light.fetch_fraction,
            "heavy {heavy:?} vs light {light:?}"
        );
        assert!(!sampling_table(&rows).render().is_empty());
    }

    #[test]
    fn inclusive_llc_hurts_with_abp() {
        let rows = inclusion_ablation(300_000, &["lbm"]);
        let non = rows.iter().find(|r| !r.inclusive).unwrap();
        let inc = rows.iter().find(|r| r.inclusive).unwrap();
        // Bypassed lines uncached above: the inclusive run cannot be
        // faster, and generally pushes more traffic to DRAM.
        assert!(
            inc.speedup <= non.speedup + 0.01,
            "inclusive {inc:?} vs non {non:?}"
        );
        assert!(!inclusion_table(&rows).render().is_empty());
    }
}
