//! Shared experiment driver: runs a set of benchmarks under a set of
//! policies once and exposes the results to the per-figure formatters.
//!
//! Cells execute on the [`sweep_runner`] engine: one job per
//! `(benchmark, policy)` cell, drained by a worker pool
//! ([`SweepConfig::jobs`]), optionally journaled for checkpoint/resume
//! ([`SweepConfig::journal`]). Each cell builds its own seeded
//! [`SystemConfig`], so results are independent of execution order and
//! a parallel sweep is bit-identical to a serial one.

use crate::codec;
use crate::config::{PolicyKind, SystemConfig};
use crate::env;
use crate::pipeline::{run_workload_from_buffer, run_workload_pipelined, TraceMode};
use crate::result::SimResult;
use crate::system::run_workload_with_warmup;
use crate::trace_cache::{TraceCacheStats, TraceKey, TraceLru};
use energy_model::{HierarchySpec, TechnologyParams};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use sweep_runner::json::Value;
use sweep_runner::SweepOptions;
use workloads::TraceBuffer;

/// Default trace length per benchmark (overridable with the
/// `SLIP_ACCESSES` environment variable).
pub const DEFAULT_ACCESSES: u64 = env::DEFAULT_ACCESSES;

/// Reads the trace length from `SLIP_ACCESSES` or returns the default.
pub fn accesses_from_env() -> u64 {
    env::accesses()
}

/// Options for a suite run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Accesses per benchmark.
    pub accesses: u64,
    /// Unmeasured warmup accesses before measurement begins
    /// (overridable with `SLIP_WARMUP`; default 0).
    pub warmup: u64,
    /// Benchmarks to run (paper order).
    pub benchmarks: Vec<&'static str>,
    /// Policies to run.
    pub policies: Vec<PolicyKind>,
    /// Technology node.
    pub tech: TechnologyParams,
    /// Reuse-distance bin counter width.
    pub rd_bin_bits: u32,
    /// Hierarchy spec overriding the compiled-in topology (`None` runs
    /// the hard-coded 45 nm configuration). Set via [`with_topology`];
    /// carries geometry *and* energy, so it also replaces
    /// [`SuiteOptions::tech`].
    ///
    /// [`with_topology`]: SuiteOptions::with_topology
    pub topology: Option<HierarchySpec>,
}

impl SuiteOptions {
    /// The paper's full single-core sweep: 14 benchmarks, all policies,
    /// 45 nm.
    pub fn paper_full() -> Self {
        SuiteOptions {
            accesses: env::accesses(),
            warmup: env::warmup(),
            benchmarks: workloads::BENCHMARK_NAMES.to_vec(),
            policies: PolicyKind::ALL.to_vec(),
            tech: energy_model::TECH_45NM.clone(),
            rd_bin_bits: 4,
            topology: None,
        }
    }

    /// A reduced sweep for the given policies.
    pub fn with_policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        if !self.policies.contains(&PolicyKind::Baseline) {
            // Savings are always relative to the baseline.
            self.policies.insert(0, PolicyKind::Baseline);
        }
        self
    }

    /// Restricts the benchmark set.
    pub fn with_benchmarks(mut self, benchmarks: &[&'static str]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Overrides the trace length.
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sets the unmeasured warmup length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Switches the technology node.
    pub fn with_tech(mut self, tech: TechnologyParams) -> Self {
        self.tech = tech;
        self
    }

    /// Overrides the distribution counter width.
    pub fn with_bin_bits(mut self, bits: u32) -> Self {
        self.rd_bin_bits = bits;
        self
    }

    /// Runs the sweep on a hierarchy spec instead of the compiled-in
    /// topology. The spec carries the full energy model, so this also
    /// replaces [`SuiteOptions::tech`] with the spec's technology.
    ///
    /// # Panics
    ///
    /// Panics on a semantically invalid spec; `HierarchySpec::load`
    /// already validated anything that came from a file or built-in
    /// name, so this only trips on hand-built specs.
    pub fn with_topology(mut self, spec: HierarchySpec) -> Self {
        spec.validate()
            .unwrap_or_else(|e| panic!("invalid topology spec: {e}"));
        self.tech = spec.technology();
        self.topology = Some(spec);
        self
    }

    /// Builds the system configuration for one cell of this sweep.
    pub fn cell_config(&self, policy: PolicyKind) -> SystemConfig {
        let mut config = match &self.topology {
            Some(spec) => SystemConfig::from_topology(spec, policy)
                .unwrap_or_else(|e| panic!("invalid topology spec: {e}")),
            None => SystemConfig::paper_45nm(policy),
        };
        config.tech = self.tech.clone();
        config.rd_bin_bits = self.rd_bin_bits;
        config
    }

    /// The journal key of one `(benchmark, policy)` cell. Encodes every
    /// input the result depends on, so stale journal entries can never
    /// be mistaken for current ones. Runs under an explicit topology
    /// append a `topo=name#fingerprint` clause — the fingerprint hashes
    /// the canonical spec text, so editing a spec file in place
    /// invalidates old journal entries — while default runs keep the
    /// historical key shape, so existing journals stay restorable.
    pub fn cell_key(&self, bench: &str, policy: PolicyKind) -> String {
        let config = self.cell_config(policy);
        let topo = match &self.topology {
            Some(spec) => format!(",topo={}#{:016x}", spec.name, spec.fingerprint()),
            None => String::new(),
        };
        format!(
            "{bench}/{}@acc={},warm={},tech={},bits={},seed={:#x}{topo}",
            policy.label(),
            self.accesses,
            self.warmup,
            self.tech.name,
            self.rd_bin_bits,
            config.seed,
        )
    }
}

/// How the suite executes (worker count, journaling) — orthogonal to
/// *what* it runs ([`SuiteOptions`]) and, by construction, to what it
/// produces.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker count; 1 is fully serial.
    pub jobs: usize,
    /// JSONL run-journal path; completed cells found there are restored
    /// instead of re-run.
    pub journal: Option<PathBuf>,
    /// Suppress stderr progress lines.
    pub quiet: bool,
    /// How cells obtain their access streams. All modes are
    /// bit-identical; they differ only in throughput. In
    /// [`TraceMode::Fused`] all policy cells of one benchmark run as a
    /// single lockstep group that occupies one worker and retires every
    /// cell at once.
    pub trace_mode: TraceMode,
    /// Set-shard workers per cell (1 = serial). Sharded execution is
    /// bit-identical to serial; configurations with global policy
    /// state (SLIP, DRRIP, SHiP) fall back to serial transparently.
    /// When above 1, the sweep divides its worker count by the shard
    /// count so `jobs × shards` never oversubscribes the pool.
    /// Ignored in [`TraceMode::Fused`] (a fused group is one worker by
    /// construction); the CLI rejects the combination outright.
    pub shards: usize,
    /// Shared-trace cache budget in MiB. A stream whose materialized
    /// trace would exceed the whole budget falls back to pipelined
    /// regeneration; 0 disables sharing entirely. Ignored when
    /// [`SweepConfig::trace_cache`] supplies an external cache.
    pub trace_cache_mb: u64,
    /// Externally owned trace cache shared across sweeps (the
    /// `slip serve` daemon passes its server-wide LRU here); `None`
    /// builds a sweep-local cache from [`SweepConfig::trace_cache_mb`].
    pub trace_cache: Option<Arc<TraceLru>>,
    /// Cooperative cancellation flag (e.g. the process SIGINT flag from
    /// `sweep_runner::interrupt::install()`); when it trips, the sweep
    /// stops dispatching cells, seals the journal, and errors with
    /// [`std::io::ErrorKind::Interrupted`].
    pub cancel: Option<&'static std::sync::atomic::AtomicBool>,
}

impl SweepConfig {
    /// Reads `SLIP_JOBS` / `SLIP_JOURNAL` / `SLIP_TRACE_MODE` /
    /// `SLIP_TRACE_CACHE_MB` / `SLIP_SHARDS`; progress lines on.
    ///
    /// # Panics
    ///
    /// Panics when `SLIP_SHARDS` is set to something that is not a
    /// positive power of two — a silently rounded shard count would
    /// mislabel what ran. The CLI surfaces the same error politely.
    pub fn from_env() -> Self {
        SweepConfig {
            jobs: env::jobs(),
            journal: env::journal(),
            quiet: false,
            trace_mode: env::trace_mode(),
            shards: env::shards().unwrap_or_else(|e| panic!("{e}")),
            trace_cache_mb: env::trace_cache_mb(),
            trace_cache: None,
            cancel: None,
        }
    }

    /// Serial, journal-less, quiet.
    pub fn serial() -> Self {
        SweepConfig {
            jobs: 1,
            journal: None,
            quiet: true,
            trace_mode: TraceMode::Shared,
            shards: 1,
            trace_cache_mb: env::DEFAULT_TRACE_CACHE_MB,
            trace_cache: None,
            cancel: None,
        }
    }

    /// `jobs` workers, journal-less, quiet.
    pub fn with_jobs(jobs: usize) -> Self {
        SweepConfig {
            jobs,
            journal: None,
            quiet: true,
            trace_mode: TraceMode::Shared,
            shards: 1,
            trace_cache_mb: env::DEFAULT_TRACE_CACHE_MB,
            trace_cache: None,
            cancel: None,
        }
    }

    /// Overrides the per-cell shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Worker count after shard arbitration: cells each occupy
    /// `shards` threads, so the dispatcher gets `jobs / shards`
    /// workers (at least one) and the pool stays at or under `jobs`
    /// threads total. Fused sweeps ignore shards — a fused group is a
    /// single worker retiring N cells, so the full `jobs` budget goes
    /// to groups.
    pub fn effective_jobs(&self) -> usize {
        if self.shards > 1 && self.trace_mode != TraceMode::Fused {
            (self.jobs / self.shards).max(1)
        } else {
            self.jobs
        }
    }

    /// Overrides the trace execution mode.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Runs the sweep against an externally owned (e.g. server-wide)
    /// trace cache instead of a sweep-local one.
    pub fn with_trace_cache(mut self, cache: Arc<TraceLru>) -> Self {
        self.trace_cache = Some(cache);
        self
    }
}

/// Runs one `(benchmark, policy)` cell exactly as
/// [`SuiteResults::run_with`] would, returning the result and the
/// `trace_source` metric label. Shared between the offline sweep and
/// the `slip serve` daemon so both execution paths are bit-identical
/// by construction: the trace mode and cache only change *how* the
/// access stream is produced, never its contents.
///
/// The returned result's [`SimResult::exec_mode`] names the path that
/// actually ran — which differs from `trace_mode` whenever a mode falls
/// back (pipelined + shards runs sharded; a cache-bypassed shared or
/// fused stream regenerates pipelined) — so downstream A/B comparisons
/// can't mislabel what executed.
pub fn run_suite_cell(
    options: &SuiteOptions,
    bench: &str,
    policy: PolicyKind,
    trace_mode: TraceMode,
    cache: Option<&TraceLru>,
    shards: usize,
) -> (SimResult, Option<&'static str>) {
    let spec = workloads::workload(bench).expect("known benchmark");
    let config = options.cell_config(policy);
    let shards = crate::shard::effective_shards(shards, &config);
    let pipelined = |config: SystemConfig| {
        run_workload_pipelined(config, &spec, options.accesses, options.warmup)
    };
    let (mut result, trace_source, exec_mode) = match trace_mode {
        TraceMode::Inline if shards > 1 => (
            crate::shard::run_workload_sharded(
                config,
                &spec,
                options.accesses,
                options.warmup,
                shards,
            ),
            Some("sharded"),
            "sharded",
        ),
        TraceMode::Inline => (
            run_workload_with_warmup(config, &spec, options.accesses, options.warmup),
            None,
            "inline",
        ),
        // Sharding replaces the single producer/consumer pair: each
        // shard regenerates the trace on its own thread, so pipelining
        // would only add a redundant producer.
        TraceMode::Pipelined if shards > 1 => (
            crate::shard::run_workload_sharded(
                config,
                &spec,
                options.accesses,
                options.warmup,
                shards,
            ),
            Some("sharded"),
            "sharded",
        ),
        TraceMode::Pipelined => (pipelined(config), Some("pipelined"), "pipelined"),
        TraceMode::Shared => {
            let total = options.warmup + options.accesses;
            let key = TraceKey::new(spec.name(), config.seed, total);
            let shared = cache.and_then(|c| {
                c.get_or_materialize(&key, || {
                    TraceBuffer::materialize(spec.trace(total, config.seed))
                })
            });
            match shared {
                Some((buf, _)) if shards > 1 => (
                    crate::shard::run_buffer_sharded(
                        config,
                        spec.name(),
                        &buf,
                        options.warmup,
                        shards,
                    ),
                    Some("sharded"),
                    "sharded",
                ),
                Some((buf, outcome)) => (
                    run_workload_from_buffer(config, spec.name(), &buf, options.warmup),
                    Some(outcome.label()),
                    "shared",
                ),
                None if shards > 1 => (
                    crate::shard::run_workload_sharded(
                        config,
                        &spec,
                        options.accesses,
                        options.warmup,
                        shards,
                    ),
                    Some("sharded"),
                    "sharded",
                ),
                // The cache refused the stream (over budget or sharing
                // disabled): the cell regenerated its trace instead of
                // sharing one. "regenerated" keeps the trace tally
                // distinct from cells *configured* to run pipelined.
                None => (pipelined(config), Some("regenerated"), "pipelined"),
            }
        }
        // A lone fused cell is a group of one; sharding is ignored in
        // fused mode (the CLI rejects the combination).
        TraceMode::Fused => {
            let (result, trace_source) = run_fused_group(options, bench, &[policy], cache)
                .pop()
                .expect("one cell in, one result out");
            return (result, trace_source);
        }
    };
    result.exec_mode = Some(exec_mode);
    (result, trace_source)
}

/// Runs every policy cell of one benchmark as a single fused group:
/// the trace buffer is materialized (or fetched from the shared cache)
/// once, decoded once, and all cells step through it in lockstep
/// ([`crate::fused::run_group_from_buffer`]). Returns one
/// `(result, trace_source)` per policy, in order, bit-identical to the
/// per-cell [`TraceMode::Shared`] replay.
///
/// A stream the cache refuses to hold (over budget, or sharing
/// disabled with a 0 MiB budget) cannot be fused — there is no buffer
/// to share — so the group degrades to per-cell pipelined regeneration
/// and labels itself accordingly via [`SimResult::exec_mode`].
///
/// Trace-source attribution: the group performs exactly *one* stream
/// fetch (or one regeneration per member on fallback), so only the
/// first member carries the cache-outcome label; the rest return
/// `None`. Attributing the single fetch to every member used to
/// multiply the sweep footer's trace tally by the group size.
pub fn run_fused_group(
    options: &SuiteOptions,
    bench: &str,
    policies: &[PolicyKind],
    cache: Option<&TraceLru>,
) -> Vec<(SimResult, Option<&'static str>)> {
    let spec = workloads::workload(bench).expect("known benchmark");
    let configs: Vec<SystemConfig> = policies.iter().map(|&p| options.cell_config(p)).collect();
    let seed = configs[0].seed;
    let total = options.warmup + options.accesses;
    let key = TraceKey::new(spec.name(), seed, total);
    let local;
    let (buffer, trace_source) = match cache.and_then(|c| {
        c.get_or_materialize(&key, || TraceBuffer::materialize(spec.trace(total, seed)))
    }) {
        Some((buf, outcome)) => (buf, outcome.label()),
        None if cache.is_some() => {
            // The cache bypassed the stream: honor its memory budget
            // and fall back to per-cell pipelined regeneration. Every
            // member regenerates its own trace, so each one carries a
            // "regenerated" label (distinct from "pipelined", which
            // marks cells *configured* to run that way).
            return configs
                .into_iter()
                .map(|config| {
                    let mut r =
                        run_workload_pipelined(config, &spec, options.accesses, options.warmup);
                    r.exec_mode = Some("pipelined");
                    (r, Some("regenerated"))
                })
                .collect();
        }
        None => {
            // No cache supplied at all: materialize group-locally.
            local = std::sync::Arc::new(TraceBuffer::materialize(spec.trace(total, seed)));
            (local, "materialized")
        }
    };
    crate::fused::run_group_from_buffer(configs, spec.name(), &buffer, options.warmup)
        .into_iter()
        .enumerate()
        .map(|(i, mut r)| {
            r.exec_mode = Some("fused");
            (r, (i == 0).then_some(trace_source))
        })
        .collect()
}

/// Results of a suite run, keyed by `(benchmark, policy)`.
#[derive(Debug)]
pub struct SuiteResults {
    /// The options the suite ran with.
    pub options: SuiteOptions,
    /// Trace-cache activity scoped to this sweep (`None` unless the
    /// sweep ran in [`TraceMode::Shared`]); counters are deltas even
    /// when the cache is a long-lived server-wide one. Serialize with
    /// [`TraceCacheStats::to_value`].
    pub trace_cache_stats: Option<TraceCacheStats>,
    results: HashMap<(String, PolicyKind), SimResult>,
}

impl SuiteResults {
    /// Runs the suite with execution parameters from the environment
    /// (`SLIP_JOBS`, `SLIP_JOURNAL`).
    ///
    /// # Panics
    ///
    /// Panics if the journal cannot be read or written.
    pub fn run(options: SuiteOptions) -> Self {
        Self::run_with(options, &SweepConfig::from_env()).expect("run journal I/O failed")
    }

    /// Runs the suite on the given execution configuration.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O errors; simulation itself is
    /// infallible.
    pub fn run_with(options: SuiteOptions, sweep: &SweepConfig) -> std::io::Result<Self> {
        let cells: Vec<(&'static str, PolicyKind)> = options
            .benchmarks
            .iter()
            .flat_map(|&b| options.policies.iter().map(move |&p| (b, p)))
            .collect();
        let keys: Vec<String> = cells.iter().map(|&(b, p)| options.cell_key(b, p)).collect();
        let sweep_options = SweepOptions {
            jobs: sweep.effective_jobs(),
            journal: sweep.journal.clone(),
            quiet: sweep.quiet,
            label: "suite".to_owned(),
            cancel: sweep.cancel,
        };
        // Cells that share a (workload, seed, warmup+len) stream — all
        // policy cells of one benchmark — share one cache entry; the
        // first to execute materializes it. Cells restored from the
        // journal never touch the cache.
        let local_cache;
        let cache: Option<&TraceLru> = match &sweep.trace_cache {
            Some(shared) => Some(shared.as_ref()),
            None => {
                local_cache = TraceLru::new(sweep.trace_cache_mb);
                Some(&local_cache)
            }
        };
        let stats_before = cache.map(TraceLru::stats);
        let encode = |(r, trace_source): &(SimResult, Option<&'static str>),
                      wall: std::time::Duration| {
            let mut metrics = codec::result_metrics(r, wall);
            if let Some(source) = *trace_source {
                metrics = metrics.with("trace_source", Value::str(source));
            }
            if let Some(mode) = r.exec_mode {
                metrics = metrics.with("exec_mode", Value::str(mode));
            }
            (metrics, codec::encode_result(r))
        };
        let decode = |p: &Value| codec::decode_result(p).map(|r| (r, None));
        let ran = if sweep.trace_mode == TraceMode::Fused {
            // All policy cells of one benchmark become one fused group:
            // one worker, one decode, N cells retired at once. Groups
            // re-form from whatever cells the journal did *not*
            // restore, so a resumed sweep fuses only the survivors.
            sweep_runner::run_sweep_grouped(
                &keys,
                &sweep_options,
                |pending| {
                    let mut groups: Vec<Vec<usize>> = Vec::new();
                    let mut by_bench: HashMap<&'static str, usize> = HashMap::new();
                    for &i in pending {
                        match by_bench.get(cells[i].0) {
                            Some(&g) => groups[g].push(i),
                            None => {
                                by_bench.insert(cells[i].0, groups.len());
                                groups.push(vec![i]);
                            }
                        }
                    }
                    groups
                },
                |members| {
                    let bench = cells[members[0]].0;
                    let policies: Vec<PolicyKind> = members.iter().map(|&i| cells[i].1).collect();
                    run_fused_group(&options, bench, &policies, cache)
                },
                encode,
                decode,
            )?
        } else {
            sweep_runner::run_sweep(
                &keys,
                &sweep_options,
                |i| {
                    let (bench, policy) = cells[i];
                    run_suite_cell(
                        &options,
                        bench,
                        policy,
                        sweep.trace_mode,
                        cache,
                        sweep.shards,
                    )
                },
                encode,
                decode,
            )?
        };
        let trace_cache_stats = matches!(sweep.trace_mode, TraceMode::Shared | TraceMode::Fused)
            .then(|| Some(cache?.stats().delta_since(stats_before.as_ref()?)))
            .flatten();
        if let (false, Some(s)) = (sweep.quiet, &trace_cache_stats) {
            eprintln!(
                "[suite] trace cache: {} hits, {} misses, {} evictions, {} bypasses \
                 ({} resident, {:.1} MiB)",
                s.hits,
                s.misses,
                s.evictions,
                s.bypasses,
                s.resident_entries,
                s.resident_bytes as f64 / (1 << 20) as f64,
            );
        }
        let results = cells
            .into_iter()
            .zip(ran)
            .map(|((b, p), (r, _))| ((b.to_owned(), p), r))
            .collect();
        Ok(SuiteResults {
            options,
            trace_cache_stats,
            results,
        })
    }

    /// The result of one (benchmark, policy) cell, if it was part of
    /// the sweep.
    pub fn try_get(&self, bench: &str, policy: PolicyKind) -> Option<&SimResult> {
        self.results.get(&(bench.to_owned(), policy))
    }

    /// The result of one (benchmark, policy) cell.
    ///
    /// # Panics
    ///
    /// Panics if that cell was not part of the sweep; use [`try_get`]
    /// to probe.
    ///
    /// [`try_get`]: SuiteResults::try_get
    pub fn get(&self, bench: &str, policy: PolicyKind) -> &SimResult {
        self.try_get(bench, policy)
            .unwrap_or_else(|| panic!("no result for ({bench}, {policy})"))
    }

    /// The baseline result for a benchmark.
    pub fn baseline(&self, bench: &str) -> &SimResult {
        self.get(bench, PolicyKind::Baseline)
    }

    /// Benchmarks in sweep order.
    pub fn benchmarks(&self) -> &[&'static str] {
        &self.options.benchmarks
    }

    /// L2 energy saving of `policy` on `bench` versus baseline.
    pub fn l2_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l2_total_energy() / self.baseline(bench).l2_total_energy()
    }

    /// L3 energy saving of `policy` on `bench` versus baseline.
    pub fn l3_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l3_total_energy() / self.baseline(bench).l3_total_energy()
    }

    /// Mean L2 saving over all benchmarks.
    pub fn mean_l2_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l2_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }

    /// Mean L3 saving over all benchmarks.
    pub fn mean_l3_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l3_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_produces_all_cells() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::SlipAbp])
            .with_accesses(30_000)
            .with_warmup(10_000);
        let suite = SuiteResults::run_with(opts, &SweepConfig::serial()).unwrap();
        assert_eq!(suite.benchmarks(), ["gcc"]);
        let base = suite.baseline("gcc");
        assert_eq!(base.accesses, 30_000);
        let slip = suite.get("gcc", PolicyKind::SlipAbp);
        assert_eq!(slip.accesses, 30_000);
        // Savings are well-defined numbers.
        assert!(suite.l2_saving("gcc", PolicyKind::SlipAbp).is_finite());
        assert!(suite.l3_saving("gcc", PolicyKind::SlipAbp).is_finite());
        // Shared mode reports cache activity: one stream materialized,
        // the other cell of the group hits.
        let stats = suite.trace_cache_stats.as_ref().unwrap();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn sharded_cells_match_serial_cells_bit_exactly() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::NuRapid, PolicyKind::SlipAbp])
            .with_accesses(20_000);
        let serial = SuiteResults::run_with(opts.clone(), &SweepConfig::serial()).unwrap();
        let sharded = SuiteResults::run_with(opts, &SweepConfig::serial().with_shards(4)).unwrap();
        for policy in [
            PolicyKind::Baseline,
            PolicyKind::NuRapid,
            PolicyKind::SlipAbp,
        ] {
            let a = codec::encode_result(serial.get("gcc", policy)).to_json();
            let b = codec::encode_result(sharded.get("gcc", policy)).to_json();
            assert_eq!(a, b, "{policy:?}");
        }
    }

    #[test]
    fn effective_jobs_divides_the_pool_between_cells_and_shards() {
        let sweep = SweepConfig::with_jobs(8);
        assert_eq!(sweep.effective_jobs(), 8);
        assert_eq!(sweep.clone().with_shards(2).effective_jobs(), 4);
        assert_eq!(sweep.clone().with_shards(4).effective_jobs(), 2);
        // More shards than workers: one cell at a time.
        assert_eq!(sweep.clone().with_shards(16).effective_jobs(), 1);
        assert_eq!(SweepConfig::serial().with_shards(4).effective_jobs(), 1);
        // with_shards(0) normalizes to serial.
        assert_eq!(sweep.with_shards(0).effective_jobs(), 8);
    }

    #[test]
    fn fused_sweep_is_bit_exact_across_trace_modes_and_jobs() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc", "soplex"])
            .with_policies(&[
                PolicyKind::Slip,
                PolicyKind::SlipAbp,
                PolicyKind::NuRapid,
                PolicyKind::LruPea,
            ])
            .with_accesses(10_000)
            .with_warmup(2_000);
        let fingerprint = |suite: &SuiteResults| -> Vec<String> {
            let mut cells = Vec::new();
            for &b in suite.benchmarks() {
                for &p in &suite.options.policies {
                    cells.push(codec::encode_result(suite.get(b, p)).to_json());
                }
            }
            cells
        };
        let reference =
            fingerprint(&SuiteResults::run_with(opts.clone(), &SweepConfig::serial()).unwrap());
        for mode in [
            TraceMode::Inline,
            TraceMode::Pipelined,
            TraceMode::Shared,
            TraceMode::Fused,
        ] {
            for jobs in [1, 4] {
                let sweep = SweepConfig::with_jobs(jobs).with_trace_mode(mode);
                let suite = SuiteResults::run_with(opts.clone(), &sweep).unwrap();
                assert_eq!(fingerprint(&suite), reference, "{mode:?} jobs={jobs}");
                if mode == TraceMode::Fused {
                    // No silent fallback: every cell reports the fused
                    // executor actually ran it.
                    for &b in suite.benchmarks() {
                        for &p in &suite.options.policies {
                            assert_eq!(suite.get(b, p).exec_mode, Some("fused"));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_resume_reforms_groups_from_unjournaled_cells() {
        let mut path = std::env::temp_dir();
        path.push(format!("slip-suite-fused-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp, PolicyKind::NuRapid])
            .with_accesses(8_000);
        let mut fused = SweepConfig::serial().with_trace_mode(TraceMode::Fused);

        // Reference: the full fused grid, uninterrupted.
        let reference = SuiteResults::run_with(opts.clone(), &fused).unwrap();

        // Journal only part of the benchmark's cells — a narrower grid
        // into the same journal stands in for a fused sweep that died
        // mid-group (cell keys are grid-independent, so its records are
        // restorable by the wider sweep).
        fused.journal = Some(path.clone());
        let narrow = opts.clone().with_policies(&[PolicyKind::Slip]);
        SuiteResults::run_with(narrow, &fused).unwrap();

        // Resume the full grid: baseline+slip restore from the journal,
        // and the two survivors re-form one smaller fused group.
        let resumed = SuiteResults::run_with(opts.clone(), &fused).unwrap();
        for &p in &opts.policies {
            assert_eq!(
                codec::encode_result(resumed.get("gcc", p)).to_json(),
                codec::encode_result(reference.get("gcc", p)).to_json(),
                "{p:?}"
            );
        }
        // One cache miss and zero hits: the survivors shared a single
        // group materialization instead of running per cell.
        let stats = resumed.trace_cache_stats.as_ref().unwrap();
        assert_eq!((stats.misses, stats.hits), (1, 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn with_policies_always_includes_baseline() {
        let opts = SuiteOptions::paper_full().with_policies(&[PolicyKind::NuRapid]);
        assert!(opts.policies.contains(&PolicyKind::Baseline));
        assert!(opts.policies.contains(&PolicyKind::NuRapid));
    }

    #[test]
    fn try_get_probes_without_panicking() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::Baseline])
            .with_accesses(5_000);
        let suite = SuiteResults::run_with(opts, &SweepConfig::serial()).unwrap();
        assert!(suite.try_get("gcc", PolicyKind::Baseline).is_some());
        assert!(suite.try_get("gcc", PolicyKind::SlipAbp).is_none());
        assert!(suite.try_get("soplex", PolicyKind::Baseline).is_none());
    }

    #[test]
    fn fused_group_attributes_one_stream_fetch_to_first_member_only() {
        // The group fetches its stream exactly once; attributing that
        // fetch to every member multiplied the sweep footer's trace
        // tally by the group size (e.g. "[traces: 10 materialized]"
        // next to a cache reporting 2 misses).
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_accesses(5_000);
        let policies = [PolicyKind::Baseline, PolicyKind::Slip, PolicyKind::SlipAbp];
        let cache = TraceLru::new(64);
        let group = run_fused_group(&opts, "gcc", &policies, Some(&cache));
        let labels: Vec<Option<&'static str>> = group.iter().map(|(_, s)| *s).collect();
        assert_eq!(labels, [Some("materialized"), None, None]);
        for (r, _) in &group {
            assert_eq!(r.exec_mode, Some("fused"));
        }
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn fused_cache_bypass_labels_each_member_regenerated() {
        // A 0 MiB cache bypasses every stream: the group cannot fuse
        // and each member regenerates its own trace. Each member
        // carries its own "regenerated" label (one regeneration per
        // member really happened), distinct from "pipelined" — the
        // label for cells *configured* to run that way — so the footer
        // tallies no longer double up under one name.
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_accesses(5_000);
        let policies = [PolicyKind::Baseline, PolicyKind::SlipAbp];
        let cache = TraceLru::new(0);
        let group = run_fused_group(&opts, "gcc", &policies, Some(&cache));
        for (r, source) in &group {
            assert_eq!(*source, Some("regenerated"));
            assert_eq!(r.exec_mode, Some("pipelined"));
        }
        assert_eq!(cache.stats().bypasses, 1);

        // The shared-mode bypass fallback reports the same way.
        let (r, source) = run_suite_cell(
            &opts,
            "gcc",
            PolicyKind::Baseline,
            TraceMode::Shared,
            Some(&cache),
            1,
        );
        assert_eq!(source, Some("regenerated"));
        assert_eq!(r.exec_mode, Some("pipelined"));
    }

    #[test]
    fn topology_45nm_suite_matches_hardcoded_across_modes_and_jobs() {
        // Golden pin: `--topology 45nm` routes through the spec parser
        // and `SystemConfig::from_topology`, yet must be bit-exact with
        // the compiled-in configuration in every trace mode, serial and
        // parallel.
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc", "soplex"])
            .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp])
            .with_accesses(8_000)
            .with_warmup(2_000);
        let topo = opts
            .clone()
            .with_topology(HierarchySpec::builtin("45nm").unwrap());
        let fingerprint = |suite: &SuiteResults| -> Vec<String> {
            let mut cells = Vec::new();
            for &b in suite.benchmarks() {
                for &p in &suite.options.policies {
                    cells.push(codec::encode_result(suite.get(b, p)).to_json());
                }
            }
            cells
        };
        let reference = fingerprint(&SuiteResults::run_with(opts, &SweepConfig::serial()).unwrap());
        for mode in [
            TraceMode::Inline,
            TraceMode::Pipelined,
            TraceMode::Shared,
            TraceMode::Fused,
        ] {
            for jobs in [1, 4] {
                let sweep = SweepConfig::with_jobs(jobs).with_trace_mode(mode);
                let suite = SuiteResults::run_with(topo.clone(), &sweep).unwrap();
                assert_eq!(fingerprint(&suite), reference, "{mode:?} jobs={jobs}");
            }
        }
    }

    #[test]
    fn topology_cell_keys_carry_name_and_fingerprint() {
        let plain = SuiteOptions::paper_full().with_accesses(1000);
        let topo = plain
            .clone()
            .with_topology(HierarchySpec::builtin("stt-llc").unwrap());
        let plain_key = plain.cell_key("gcc", PolicyKind::Slip);
        let topo_key = topo.cell_key("gcc", PolicyKind::Slip);
        // Default keys keep their historical shape (journal back-compat).
        assert!(!plain_key.contains("topo="));
        // Explicit-topology keys pin both the node name and the
        // canonical-text fingerprint.
        assert!(topo_key.contains(",topo=stt-llc#"), "{topo_key}");
        assert_ne!(plain_key, topo_key);
        // Different nodes never share a key.
        let other = plain
            .clone()
            .with_topology(HierarchySpec::builtin("22nm").unwrap());
        assert_ne!(topo_key, other.cell_key("gcc", PolicyKind::Slip));
    }

    #[test]
    fn cell_keys_fingerprint_all_inputs() {
        let a = SuiteOptions::paper_full().with_accesses(1000);
        let b = SuiteOptions::paper_full().with_accesses(2000);
        let c = SuiteOptions::paper_full()
            .with_accesses(1000)
            .with_bin_bits(6);
        let k = |o: &SuiteOptions| o.cell_key("gcc", PolicyKind::Slip);
        assert_ne!(k(&a), k(&b));
        assert_ne!(k(&a), k(&c));
        assert_ne!(
            a.cell_key("gcc", PolicyKind::Slip),
            a.cell_key("gcc", PolicyKind::SlipAbp)
        );
        assert_ne!(
            a.cell_key("gcc", PolicyKind::Slip),
            a.cell_key("mcf", PolicyKind::Slip)
        );
    }
}
