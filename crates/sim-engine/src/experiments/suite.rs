//! Shared experiment driver: runs a set of benchmarks under a set of
//! policies once and exposes the results to the per-figure formatters.

use crate::config::{PolicyKind, SystemConfig};
use crate::result::SimResult;
use crate::system::run_workload_with_warmup;
use energy_model::TechnologyParams;
use std::collections::HashMap;

/// Default trace length per benchmark (overridable with the
/// `SLIP_ACCESSES` environment variable).
pub const DEFAULT_ACCESSES: u64 = 2_000_000;

/// Reads the trace length from `SLIP_ACCESSES` or returns the default.
pub fn accesses_from_env() -> u64 {
    std::env::var("SLIP_ACCESSES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_ACCESSES)
}

/// Options for a suite run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Accesses per benchmark.
    pub accesses: u64,
    /// Unmeasured warmup accesses before measurement begins
    /// (overridable with `SLIP_WARMUP`; default 0).
    pub warmup: u64,
    /// Benchmarks to run (paper order).
    pub benchmarks: Vec<&'static str>,
    /// Policies to run.
    pub policies: Vec<PolicyKind>,
    /// Technology node.
    pub tech: TechnologyParams,
    /// Reuse-distance bin counter width.
    pub rd_bin_bits: u32,
}

impl SuiteOptions {
    /// The paper's full single-core sweep: 14 benchmarks, all policies,
    /// 45 nm.
    pub fn paper_full() -> Self {
        SuiteOptions {
            accesses: accesses_from_env(),
            warmup: std::env::var("SLIP_WARMUP")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            benchmarks: workloads::BENCHMARK_NAMES.to_vec(),
            policies: PolicyKind::ALL.to_vec(),
            tech: energy_model::TECH_45NM.clone(),
            rd_bin_bits: 4,
        }
    }

    /// A reduced sweep for the given policies.
    pub fn with_policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        if !self.policies.contains(&PolicyKind::Baseline) {
            // Savings are always relative to the baseline.
            self.policies.insert(0, PolicyKind::Baseline);
        }
        self
    }

    /// Restricts the benchmark set.
    pub fn with_benchmarks(mut self, benchmarks: &[&'static str]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Overrides the trace length.
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sets the unmeasured warmup length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Switches the technology node.
    pub fn with_tech(mut self, tech: TechnologyParams) -> Self {
        self.tech = tech;
        self
    }

    /// Overrides the distribution counter width.
    pub fn with_bin_bits(mut self, bits: u32) -> Self {
        self.rd_bin_bits = bits;
        self
    }
}

/// Results of a suite run, keyed by `(benchmark, policy)`.
#[derive(Debug)]
pub struct SuiteResults {
    /// The options the suite ran with.
    pub options: SuiteOptions,
    results: HashMap<(String, PolicyKind), SimResult>,
}

impl SuiteResults {
    /// Runs the suite.
    pub fn run(options: SuiteOptions) -> Self {
        let mut results = HashMap::new();
        for &bench in &options.benchmarks {
            let spec = workloads::workload(bench).expect("known benchmark");
            for &policy in &options.policies {
                let mut config = SystemConfig::paper_45nm(policy);
                config.tech = options.tech.clone();
                config.rd_bin_bits = options.rd_bin_bits;
                let r =
                    run_workload_with_warmup(config, &spec, options.accesses, options.warmup);
                results.insert((bench.to_owned(), policy), r);
            }
        }
        SuiteResults { options, results }
    }

    /// The result of one (benchmark, policy) cell.
    ///
    /// # Panics
    ///
    /// Panics if that cell was not part of the sweep.
    pub fn get(&self, bench: &str, policy: PolicyKind) -> &SimResult {
        self.results
            .get(&(bench.to_owned(), policy))
            .unwrap_or_else(|| panic!("no result for ({bench}, {policy})"))
    }

    /// The baseline result for a benchmark.
    pub fn baseline(&self, bench: &str) -> &SimResult {
        self.get(bench, PolicyKind::Baseline)
    }

    /// Benchmarks in sweep order.
    pub fn benchmarks(&self) -> &[&'static str] {
        &self.options.benchmarks
    }

    /// L2 energy saving of `policy` on `bench` versus baseline.
    pub fn l2_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l2_total_energy() / self.baseline(bench).l2_total_energy()
    }

    /// L3 energy saving of `policy` on `bench` versus baseline.
    pub fn l3_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l3_total_energy() / self.baseline(bench).l3_total_energy()
    }

    /// Mean L2 saving over all benchmarks.
    pub fn mean_l2_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l2_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }

    /// Mean L3 saving over all benchmarks.
    pub fn mean_l3_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l3_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_produces_all_cells() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::SlipAbp])
            .with_accesses(30_000)
            .with_warmup(10_000);
        let suite = SuiteResults::run(opts);
        assert_eq!(suite.benchmarks(), ["gcc"]);
        let base = suite.baseline("gcc");
        assert_eq!(base.accesses, 30_000);
        let slip = suite.get("gcc", PolicyKind::SlipAbp);
        assert_eq!(slip.accesses, 30_000);
        // Savings are well-defined numbers.
        assert!(suite.l2_saving("gcc", PolicyKind::SlipAbp).is_finite());
        assert!(suite.l3_saving("gcc", PolicyKind::SlipAbp).is_finite());
    }

    #[test]
    fn with_policies_always_includes_baseline() {
        let opts = SuiteOptions::paper_full().with_policies(&[PolicyKind::NuRapid]);
        assert!(opts.policies.contains(&PolicyKind::Baseline));
        assert!(opts.policies.contains(&PolicyKind::NuRapid));
    }
}
