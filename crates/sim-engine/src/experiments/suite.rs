//! Shared experiment driver: runs a set of benchmarks under a set of
//! policies once and exposes the results to the per-figure formatters.
//!
//! Cells execute on the [`sweep_runner`] engine: one job per
//! `(benchmark, policy)` cell, drained by a worker pool
//! ([`SweepConfig::jobs`]), optionally journaled for checkpoint/resume
//! ([`SweepConfig::journal`]). Each cell builds its own seeded
//! [`SystemConfig`], so results are independent of execution order and
//! a parallel sweep is bit-identical to a serial one.

use crate::codec;
use crate::config::{PolicyKind, SystemConfig};
use crate::env;
use crate::pipeline::{run_workload_from_buffer, run_workload_pipelined, TraceMode};
use crate::result::SimResult;
use crate::system::run_workload_with_warmup;
use crate::trace_cache::{TraceCacheStats, TraceKey, TraceLru};
use energy_model::TechnologyParams;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use sweep_runner::json::Value;
use sweep_runner::SweepOptions;
use workloads::TraceBuffer;

/// Default trace length per benchmark (overridable with the
/// `SLIP_ACCESSES` environment variable).
pub const DEFAULT_ACCESSES: u64 = env::DEFAULT_ACCESSES;

/// Reads the trace length from `SLIP_ACCESSES` or returns the default.
pub fn accesses_from_env() -> u64 {
    env::accesses()
}

/// Options for a suite run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Accesses per benchmark.
    pub accesses: u64,
    /// Unmeasured warmup accesses before measurement begins
    /// (overridable with `SLIP_WARMUP`; default 0).
    pub warmup: u64,
    /// Benchmarks to run (paper order).
    pub benchmarks: Vec<&'static str>,
    /// Policies to run.
    pub policies: Vec<PolicyKind>,
    /// Technology node.
    pub tech: TechnologyParams,
    /// Reuse-distance bin counter width.
    pub rd_bin_bits: u32,
}

impl SuiteOptions {
    /// The paper's full single-core sweep: 14 benchmarks, all policies,
    /// 45 nm.
    pub fn paper_full() -> Self {
        SuiteOptions {
            accesses: env::accesses(),
            warmup: env::warmup(),
            benchmarks: workloads::BENCHMARK_NAMES.to_vec(),
            policies: PolicyKind::ALL.to_vec(),
            tech: energy_model::TECH_45NM.clone(),
            rd_bin_bits: 4,
        }
    }

    /// A reduced sweep for the given policies.
    pub fn with_policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        if !self.policies.contains(&PolicyKind::Baseline) {
            // Savings are always relative to the baseline.
            self.policies.insert(0, PolicyKind::Baseline);
        }
        self
    }

    /// Restricts the benchmark set.
    pub fn with_benchmarks(mut self, benchmarks: &[&'static str]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Overrides the trace length.
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sets the unmeasured warmup length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Switches the technology node.
    pub fn with_tech(mut self, tech: TechnologyParams) -> Self {
        self.tech = tech;
        self
    }

    /// Overrides the distribution counter width.
    pub fn with_bin_bits(mut self, bits: u32) -> Self {
        self.rd_bin_bits = bits;
        self
    }

    /// Builds the system configuration for one cell of this sweep.
    pub fn cell_config(&self, policy: PolicyKind) -> SystemConfig {
        let mut config = SystemConfig::paper_45nm(policy);
        config.tech = self.tech.clone();
        config.rd_bin_bits = self.rd_bin_bits;
        config
    }

    /// The journal key of one `(benchmark, policy)` cell. Encodes every
    /// input the result depends on, so stale journal entries can never
    /// be mistaken for current ones.
    pub fn cell_key(&self, bench: &str, policy: PolicyKind) -> String {
        let config = self.cell_config(policy);
        format!(
            "{bench}/{}@acc={},warm={},tech={},bits={},seed={:#x}",
            policy.label(),
            self.accesses,
            self.warmup,
            self.tech.name,
            self.rd_bin_bits,
            config.seed,
        )
    }
}

/// How the suite executes (worker count, journaling) — orthogonal to
/// *what* it runs ([`SuiteOptions`]) and, by construction, to what it
/// produces.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker count; 1 is fully serial.
    pub jobs: usize,
    /// JSONL run-journal path; completed cells found there are restored
    /// instead of re-run.
    pub journal: Option<PathBuf>,
    /// Suppress stderr progress lines.
    pub quiet: bool,
    /// How cells obtain their access streams. All three modes are
    /// bit-identical; they differ only in throughput.
    pub trace_mode: TraceMode,
    /// Set-shard workers per cell (1 = serial). Sharded execution is
    /// bit-identical to serial; configurations with global policy
    /// state (SLIP, DRRIP, SHiP) fall back to serial transparently.
    /// When above 1, the sweep divides its worker count by the shard
    /// count so `jobs × shards` never oversubscribes the pool.
    pub shards: usize,
    /// Shared-trace cache budget in MiB. A stream whose materialized
    /// trace would exceed the whole budget falls back to pipelined
    /// regeneration; 0 disables sharing entirely. Ignored when
    /// [`SweepConfig::trace_cache`] supplies an external cache.
    pub trace_cache_mb: u64,
    /// Externally owned trace cache shared across sweeps (the
    /// `slip serve` daemon passes its server-wide LRU here); `None`
    /// builds a sweep-local cache from [`SweepConfig::trace_cache_mb`].
    pub trace_cache: Option<Arc<TraceLru>>,
    /// Cooperative cancellation flag (e.g. the process SIGINT flag from
    /// `sweep_runner::interrupt::install()`); when it trips, the sweep
    /// stops dispatching cells, seals the journal, and errors with
    /// [`std::io::ErrorKind::Interrupted`].
    pub cancel: Option<&'static std::sync::atomic::AtomicBool>,
}

impl SweepConfig {
    /// Reads `SLIP_JOBS` / `SLIP_JOURNAL` / `SLIP_TRACE_MODE` /
    /// `SLIP_TRACE_CACHE_MB`; progress lines on.
    pub fn from_env() -> Self {
        SweepConfig {
            jobs: env::jobs(),
            journal: env::journal(),
            quiet: false,
            trace_mode: env::trace_mode(),
            shards: env::shards(),
            trace_cache_mb: env::trace_cache_mb(),
            trace_cache: None,
            cancel: None,
        }
    }

    /// Serial, journal-less, quiet.
    pub fn serial() -> Self {
        SweepConfig {
            jobs: 1,
            journal: None,
            quiet: true,
            trace_mode: TraceMode::Shared,
            shards: 1,
            trace_cache_mb: env::DEFAULT_TRACE_CACHE_MB,
            trace_cache: None,
            cancel: None,
        }
    }

    /// `jobs` workers, journal-less, quiet.
    pub fn with_jobs(jobs: usize) -> Self {
        SweepConfig {
            jobs,
            journal: None,
            quiet: true,
            trace_mode: TraceMode::Shared,
            shards: 1,
            trace_cache_mb: env::DEFAULT_TRACE_CACHE_MB,
            trace_cache: None,
            cancel: None,
        }
    }

    /// Overrides the per-cell shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Worker count after shard arbitration: cells each occupy
    /// `shards` threads, so the dispatcher gets `jobs / shards`
    /// workers (at least one) and the pool stays at or under `jobs`
    /// threads total.
    pub fn effective_jobs(&self) -> usize {
        if self.shards > 1 {
            (self.jobs / self.shards).max(1)
        } else {
            self.jobs
        }
    }

    /// Overrides the trace execution mode.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Runs the sweep against an externally owned (e.g. server-wide)
    /// trace cache instead of a sweep-local one.
    pub fn with_trace_cache(mut self, cache: Arc<TraceLru>) -> Self {
        self.trace_cache = Some(cache);
        self
    }
}

/// Runs one `(benchmark, policy)` cell exactly as
/// [`SuiteResults::run_with`] would, returning the result and the
/// `trace_source` metric label. Shared between the offline sweep and
/// the `slip serve` daemon so both execution paths are bit-identical
/// by construction: the trace mode and cache only change *how* the
/// access stream is produced, never its contents.
pub fn run_suite_cell(
    options: &SuiteOptions,
    bench: &str,
    policy: PolicyKind,
    trace_mode: TraceMode,
    cache: Option<&TraceLru>,
    shards: usize,
) -> (SimResult, Option<&'static str>) {
    let spec = workloads::workload(bench).expect("known benchmark");
    let config = options.cell_config(policy);
    let shards = crate::shard::effective_shards(shards, &config);
    let pipelined = |config: SystemConfig| {
        run_workload_pipelined(config, &spec, options.accesses, options.warmup)
    };
    match trace_mode {
        TraceMode::Inline => (
            if shards > 1 {
                crate::shard::run_workload_sharded(
                    config,
                    &spec,
                    options.accesses,
                    options.warmup,
                    shards,
                )
            } else {
                run_workload_with_warmup(config, &spec, options.accesses, options.warmup)
            },
            (shards > 1).then_some("sharded"),
        ),
        // Sharding replaces the single producer/consumer pair: each
        // shard regenerates the trace on its own thread, so pipelining
        // would only add a redundant producer.
        TraceMode::Pipelined if shards > 1 => (
            crate::shard::run_workload_sharded(
                config,
                &spec,
                options.accesses,
                options.warmup,
                shards,
            ),
            Some("sharded"),
        ),
        TraceMode::Pipelined => (pipelined(config), Some("pipelined")),
        TraceMode::Shared => {
            let total = options.warmup + options.accesses;
            let key = TraceKey::new(spec.name(), config.seed, total);
            let shared = cache.and_then(|c| {
                c.get_or_materialize(&key, || {
                    TraceBuffer::materialize(spec.trace(total, config.seed))
                })
            });
            match shared {
                Some((buf, _)) if shards > 1 => (
                    crate::shard::run_buffer_sharded(
                        config,
                        spec.name(),
                        &buf,
                        options.warmup,
                        shards,
                    ),
                    Some("sharded"),
                ),
                Some((buf, outcome)) => (
                    run_workload_from_buffer(config, spec.name(), &buf, options.warmup),
                    Some(outcome.label()),
                ),
                None if shards > 1 => (
                    crate::shard::run_workload_sharded(
                        config,
                        &spec,
                        options.accesses,
                        options.warmup,
                        shards,
                    ),
                    Some("sharded"),
                ),
                None => (pipelined(config), Some("pipelined")),
            }
        }
    }
}

/// Results of a suite run, keyed by `(benchmark, policy)`.
#[derive(Debug)]
pub struct SuiteResults {
    /// The options the suite ran with.
    pub options: SuiteOptions,
    /// Trace-cache activity scoped to this sweep (`None` unless the
    /// sweep ran in [`TraceMode::Shared`]); counters are deltas even
    /// when the cache is a long-lived server-wide one. Serialize with
    /// [`TraceCacheStats::to_value`].
    pub trace_cache_stats: Option<TraceCacheStats>,
    results: HashMap<(String, PolicyKind), SimResult>,
}

impl SuiteResults {
    /// Runs the suite with execution parameters from the environment
    /// (`SLIP_JOBS`, `SLIP_JOURNAL`).
    ///
    /// # Panics
    ///
    /// Panics if the journal cannot be read or written.
    pub fn run(options: SuiteOptions) -> Self {
        Self::run_with(options, &SweepConfig::from_env()).expect("run journal I/O failed")
    }

    /// Runs the suite on the given execution configuration.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O errors; simulation itself is
    /// infallible.
    pub fn run_with(options: SuiteOptions, sweep: &SweepConfig) -> std::io::Result<Self> {
        let cells: Vec<(&'static str, PolicyKind)> = options
            .benchmarks
            .iter()
            .flat_map(|&b| options.policies.iter().map(move |&p| (b, p)))
            .collect();
        let keys: Vec<String> = cells.iter().map(|&(b, p)| options.cell_key(b, p)).collect();
        let sweep_options = SweepOptions {
            jobs: sweep.effective_jobs(),
            journal: sweep.journal.clone(),
            quiet: sweep.quiet,
            label: "suite".to_owned(),
            cancel: sweep.cancel,
        };
        // Cells that share a (workload, seed, warmup+len) stream — all
        // policy cells of one benchmark — share one cache entry; the
        // first to execute materializes it. Cells restored from the
        // journal never touch the cache.
        let local_cache;
        let cache: Option<&TraceLru> = match &sweep.trace_cache {
            Some(shared) => Some(shared.as_ref()),
            None => {
                local_cache = TraceLru::new(sweep.trace_cache_mb);
                Some(&local_cache)
            }
        };
        let stats_before = cache.map(TraceLru::stats);
        let ran = sweep_runner::run_sweep(
            &keys,
            &sweep_options,
            |i| {
                let (bench, policy) = cells[i];
                run_suite_cell(
                    &options,
                    bench,
                    policy,
                    sweep.trace_mode,
                    cache,
                    sweep.shards,
                )
            },
            |(r, trace_source), wall| {
                let mut metrics = codec::result_metrics(r, wall);
                if let Some(source) = *trace_source {
                    metrics = metrics.with("trace_source", Value::str(source));
                }
                (metrics, codec::encode_result(r))
            },
            |p| codec::decode_result(p).map(|r| (r, None)),
        )?;
        let trace_cache_stats = (sweep.trace_mode == TraceMode::Shared)
            .then(|| Some(cache?.stats().delta_since(stats_before.as_ref()?)))
            .flatten();
        if let (false, Some(s)) = (sweep.quiet, &trace_cache_stats) {
            eprintln!(
                "[suite] trace cache: {} hits, {} misses, {} evictions, {} bypasses \
                 ({} resident, {:.1} MiB)",
                s.hits,
                s.misses,
                s.evictions,
                s.bypasses,
                s.resident_entries,
                s.resident_bytes as f64 / (1 << 20) as f64,
            );
        }
        let results = cells
            .into_iter()
            .zip(ran)
            .map(|((b, p), (r, _))| ((b.to_owned(), p), r))
            .collect();
        Ok(SuiteResults {
            options,
            trace_cache_stats,
            results,
        })
    }

    /// The result of one (benchmark, policy) cell, if it was part of
    /// the sweep.
    pub fn try_get(&self, bench: &str, policy: PolicyKind) -> Option<&SimResult> {
        self.results.get(&(bench.to_owned(), policy))
    }

    /// The result of one (benchmark, policy) cell.
    ///
    /// # Panics
    ///
    /// Panics if that cell was not part of the sweep; use [`try_get`]
    /// to probe.
    ///
    /// [`try_get`]: SuiteResults::try_get
    pub fn get(&self, bench: &str, policy: PolicyKind) -> &SimResult {
        self.try_get(bench, policy)
            .unwrap_or_else(|| panic!("no result for ({bench}, {policy})"))
    }

    /// The baseline result for a benchmark.
    pub fn baseline(&self, bench: &str) -> &SimResult {
        self.get(bench, PolicyKind::Baseline)
    }

    /// Benchmarks in sweep order.
    pub fn benchmarks(&self) -> &[&'static str] {
        &self.options.benchmarks
    }

    /// L2 energy saving of `policy` on `bench` versus baseline.
    pub fn l2_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l2_total_energy() / self.baseline(bench).l2_total_energy()
    }

    /// L3 energy saving of `policy` on `bench` versus baseline.
    pub fn l3_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l3_total_energy() / self.baseline(bench).l3_total_energy()
    }

    /// Mean L2 saving over all benchmarks.
    pub fn mean_l2_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l2_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }

    /// Mean L3 saving over all benchmarks.
    pub fn mean_l3_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l3_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_produces_all_cells() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::SlipAbp])
            .with_accesses(30_000)
            .with_warmup(10_000);
        let suite = SuiteResults::run_with(opts, &SweepConfig::serial()).unwrap();
        assert_eq!(suite.benchmarks(), ["gcc"]);
        let base = suite.baseline("gcc");
        assert_eq!(base.accesses, 30_000);
        let slip = suite.get("gcc", PolicyKind::SlipAbp);
        assert_eq!(slip.accesses, 30_000);
        // Savings are well-defined numbers.
        assert!(suite.l2_saving("gcc", PolicyKind::SlipAbp).is_finite());
        assert!(suite.l3_saving("gcc", PolicyKind::SlipAbp).is_finite());
        // Shared mode reports cache activity: one stream materialized,
        // the other cell of the group hits.
        let stats = suite.trace_cache_stats.as_ref().unwrap();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn sharded_cells_match_serial_cells_bit_exactly() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::NuRapid, PolicyKind::SlipAbp])
            .with_accesses(20_000);
        let serial = SuiteResults::run_with(opts.clone(), &SweepConfig::serial()).unwrap();
        let sharded = SuiteResults::run_with(opts, &SweepConfig::serial().with_shards(4)).unwrap();
        for policy in [
            PolicyKind::Baseline,
            PolicyKind::NuRapid,
            PolicyKind::SlipAbp,
        ] {
            let a = codec::encode_result(serial.get("gcc", policy)).to_json();
            let b = codec::encode_result(sharded.get("gcc", policy)).to_json();
            assert_eq!(a, b, "{policy:?}");
        }
    }

    #[test]
    fn effective_jobs_divides_the_pool_between_cells_and_shards() {
        let sweep = SweepConfig::with_jobs(8);
        assert_eq!(sweep.effective_jobs(), 8);
        assert_eq!(sweep.clone().with_shards(2).effective_jobs(), 4);
        assert_eq!(sweep.clone().with_shards(4).effective_jobs(), 2);
        // More shards than workers: one cell at a time.
        assert_eq!(sweep.clone().with_shards(16).effective_jobs(), 1);
        assert_eq!(SweepConfig::serial().with_shards(4).effective_jobs(), 1);
        // with_shards(0) normalizes to serial.
        assert_eq!(sweep.with_shards(0).effective_jobs(), 8);
    }

    #[test]
    fn with_policies_always_includes_baseline() {
        let opts = SuiteOptions::paper_full().with_policies(&[PolicyKind::NuRapid]);
        assert!(opts.policies.contains(&PolicyKind::Baseline));
        assert!(opts.policies.contains(&PolicyKind::NuRapid));
    }

    #[test]
    fn try_get_probes_without_panicking() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::Baseline])
            .with_accesses(5_000);
        let suite = SuiteResults::run_with(opts, &SweepConfig::serial()).unwrap();
        assert!(suite.try_get("gcc", PolicyKind::Baseline).is_some());
        assert!(suite.try_get("gcc", PolicyKind::SlipAbp).is_none());
        assert!(suite.try_get("soplex", PolicyKind::Baseline).is_none());
    }

    #[test]
    fn cell_keys_fingerprint_all_inputs() {
        let a = SuiteOptions::paper_full().with_accesses(1000);
        let b = SuiteOptions::paper_full().with_accesses(2000);
        let c = SuiteOptions::paper_full()
            .with_accesses(1000)
            .with_bin_bits(6);
        let k = |o: &SuiteOptions| o.cell_key("gcc", PolicyKind::Slip);
        assert_ne!(k(&a), k(&b));
        assert_ne!(k(&a), k(&c));
        assert_ne!(
            a.cell_key("gcc", PolicyKind::Slip),
            a.cell_key("gcc", PolicyKind::SlipAbp)
        );
        assert_ne!(
            a.cell_key("gcc", PolicyKind::Slip),
            a.cell_key("mcf", PolicyKind::Slip)
        );
    }
}
