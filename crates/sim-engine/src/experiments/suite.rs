//! Shared experiment driver: runs a set of benchmarks under a set of
//! policies once and exposes the results to the per-figure formatters.
//!
//! Cells execute on the [`sweep_runner`] engine: one job per
//! `(benchmark, policy)` cell, drained by a worker pool
//! ([`SweepConfig::jobs`]), optionally journaled for checkpoint/resume
//! ([`SweepConfig::journal`]). Each cell builds its own seeded
//! [`SystemConfig`], so results are independent of execution order and
//! a parallel sweep is bit-identical to a serial one.

use crate::codec;
use crate::config::{PolicyKind, SystemConfig};
use crate::env;
use crate::pipeline::{run_workload_from_buffer, run_workload_pipelined, TraceMode};
use crate::result::SimResult;
use crate::system::run_workload_with_warmup;
use energy_model::TechnologyParams;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use sweep_runner::json::Value;
use sweep_runner::SweepOptions;
use workloads::TraceBuffer;

/// Default trace length per benchmark (overridable with the
/// `SLIP_ACCESSES` environment variable).
pub const DEFAULT_ACCESSES: u64 = env::DEFAULT_ACCESSES;

/// Reads the trace length from `SLIP_ACCESSES` or returns the default.
pub fn accesses_from_env() -> u64 {
    env::accesses()
}

/// Options for a suite run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Accesses per benchmark.
    pub accesses: u64,
    /// Unmeasured warmup accesses before measurement begins
    /// (overridable with `SLIP_WARMUP`; default 0).
    pub warmup: u64,
    /// Benchmarks to run (paper order).
    pub benchmarks: Vec<&'static str>,
    /// Policies to run.
    pub policies: Vec<PolicyKind>,
    /// Technology node.
    pub tech: TechnologyParams,
    /// Reuse-distance bin counter width.
    pub rd_bin_bits: u32,
}

impl SuiteOptions {
    /// The paper's full single-core sweep: 14 benchmarks, all policies,
    /// 45 nm.
    pub fn paper_full() -> Self {
        SuiteOptions {
            accesses: env::accesses(),
            warmup: env::warmup(),
            benchmarks: workloads::BENCHMARK_NAMES.to_vec(),
            policies: PolicyKind::ALL.to_vec(),
            tech: energy_model::TECH_45NM.clone(),
            rd_bin_bits: 4,
        }
    }

    /// A reduced sweep for the given policies.
    pub fn with_policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        if !self.policies.contains(&PolicyKind::Baseline) {
            // Savings are always relative to the baseline.
            self.policies.insert(0, PolicyKind::Baseline);
        }
        self
    }

    /// Restricts the benchmark set.
    pub fn with_benchmarks(mut self, benchmarks: &[&'static str]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Overrides the trace length.
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sets the unmeasured warmup length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Switches the technology node.
    pub fn with_tech(mut self, tech: TechnologyParams) -> Self {
        self.tech = tech;
        self
    }

    /// Overrides the distribution counter width.
    pub fn with_bin_bits(mut self, bits: u32) -> Self {
        self.rd_bin_bits = bits;
        self
    }

    /// Builds the system configuration for one cell of this sweep.
    pub fn cell_config(&self, policy: PolicyKind) -> SystemConfig {
        let mut config = SystemConfig::paper_45nm(policy);
        config.tech = self.tech.clone();
        config.rd_bin_bits = self.rd_bin_bits;
        config
    }

    /// The journal key of one `(benchmark, policy)` cell. Encodes every
    /// input the result depends on, so stale journal entries can never
    /// be mistaken for current ones.
    pub fn cell_key(&self, bench: &str, policy: PolicyKind) -> String {
        let config = self.cell_config(policy);
        format!(
            "{bench}/{}@acc={},warm={},tech={},bits={},seed={:#x}",
            policy.label(),
            self.accesses,
            self.warmup,
            self.tech.name,
            self.rd_bin_bits,
            config.seed,
        )
    }
}

/// How the suite executes (worker count, journaling) — orthogonal to
/// *what* it runs ([`SuiteOptions`]) and, by construction, to what it
/// produces.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker count; 1 is fully serial.
    pub jobs: usize,
    /// JSONL run-journal path; completed cells found there are restored
    /// instead of re-run.
    pub journal: Option<PathBuf>,
    /// Suppress stderr progress lines.
    pub quiet: bool,
    /// How cells obtain their access streams. All three modes are
    /// bit-identical; they differ only in throughput.
    pub trace_mode: TraceMode,
    /// Shared-trace cache budget in MiB. A benchmark group whose
    /// materialized trace would exceed the remaining budget falls back
    /// to pipelined regeneration; 0 disables sharing entirely.
    pub trace_cache_mb: u64,
}

impl SweepConfig {
    /// Reads `SLIP_JOBS` / `SLIP_JOURNAL` / `SLIP_TRACE_MODE` /
    /// `SLIP_TRACE_CACHE_MB`; progress lines on.
    pub fn from_env() -> Self {
        SweepConfig {
            jobs: env::jobs(),
            journal: env::journal(),
            quiet: false,
            trace_mode: env::trace_mode(),
            trace_cache_mb: env::trace_cache_mb(),
        }
    }

    /// Serial, journal-less, quiet.
    pub fn serial() -> Self {
        SweepConfig {
            jobs: 1,
            journal: None,
            quiet: true,
            trace_mode: TraceMode::Shared,
            trace_cache_mb: env::DEFAULT_TRACE_CACHE_MB,
        }
    }

    /// `jobs` workers, journal-less, quiet.
    pub fn with_jobs(jobs: usize) -> Self {
        SweepConfig {
            jobs,
            journal: None,
            quiet: true,
            trace_mode: TraceMode::Shared,
            trace_cache_mb: env::DEFAULT_TRACE_CACHE_MB,
        }
    }

    /// Overrides the trace execution mode.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }
}

/// A materialized group: the seed the trace was generated with and the
/// shared buffer itself.
type GroupSlot = (u64, Arc<TraceBuffer>);

/// Per-sweep cache of materialized traces, one slot per benchmark
/// group. Every policy cell of one benchmark consumes the identical
/// (workload, seed, warmup+len) stream, so the first cell of a group
/// to execute materializes it once and the rest replay the shared
/// buffer. Cells restored from the journal never touch the cache.
struct TraceCache {
    /// One lazily-filled slot per group: `None` once a group has been
    /// ruled out (over budget), otherwise the seed it was materialized
    /// with and the shared buffer.
    groups: Vec<OnceLock<Option<GroupSlot>>>,
    /// Remaining byte budget, debited as groups materialize.
    budget: AtomicU64,
}

impl TraceCache {
    fn new(groups: usize, budget_mb: u64) -> TraceCache {
        TraceCache {
            groups: (0..groups).map(|_| OnceLock::new()).collect(),
            budget: AtomicU64::new(budget_mb.saturating_mul(1 << 20)),
        }
    }

    /// The group's shared buffer, materializing on first use if
    /// `accesses` packed words fit the remaining budget. `None` means
    /// the caller must regenerate (group over budget, or — defensively
    /// — a seed mismatch within the group).
    fn buffer_for(
        &self,
        group: usize,
        seed: u64,
        accesses: u64,
        materialize: impl FnOnce() -> TraceBuffer,
    ) -> Option<Arc<TraceBuffer>> {
        let slot = self.groups[group].get_or_init(|| {
            self.take_budget(TraceBuffer::bytes_for(accesses))
                .then(|| (seed, Arc::new(materialize())))
        });
        match slot {
            Some((s, buf)) if *s == seed => Some(Arc::clone(buf)),
            _ => None,
        }
    }

    /// Atomically debits `bytes` from the budget; `false` (nothing
    /// debited) when it does not fit.
    fn take_budget(&self, bytes: u64) -> bool {
        self.budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                left.checked_sub(bytes)
            })
            .is_ok()
    }
}

/// Results of a suite run, keyed by `(benchmark, policy)`.
#[derive(Debug)]
pub struct SuiteResults {
    /// The options the suite ran with.
    pub options: SuiteOptions,
    results: HashMap<(String, PolicyKind), SimResult>,
}

impl SuiteResults {
    /// Runs the suite with execution parameters from the environment
    /// (`SLIP_JOBS`, `SLIP_JOURNAL`).
    ///
    /// # Panics
    ///
    /// Panics if the journal cannot be read or written.
    pub fn run(options: SuiteOptions) -> Self {
        Self::run_with(options, &SweepConfig::from_env()).expect("run journal I/O failed")
    }

    /// Runs the suite on the given execution configuration.
    ///
    /// # Errors
    ///
    /// Fails only on journal I/O errors; simulation itself is
    /// infallible.
    pub fn run_with(options: SuiteOptions, sweep: &SweepConfig) -> std::io::Result<Self> {
        let cells: Vec<(&'static str, PolicyKind)> = options
            .benchmarks
            .iter()
            .flat_map(|&b| options.policies.iter().map(move |&p| (b, p)))
            .collect();
        let keys: Vec<String> = cells.iter().map(|&(b, p)| options.cell_key(b, p)).collect();
        let sweep_options = SweepOptions {
            jobs: sweep.jobs,
            journal: sweep.journal.clone(),
            quiet: sweep.quiet,
            label: "suite".to_owned(),
        };
        // Cells are benchmark-major, so the cells of one benchmark
        // group are exactly `policies.len()` consecutive indices and
        // share the identical (workload, seed, warmup+len) stream.
        let per_group = options.policies.len().max(1);
        let cache = TraceCache::new(options.benchmarks.len(), sweep.trace_cache_mb);
        let total_accesses = options.warmup + options.accesses;
        let ran = sweep_runner::run_sweep(
            &keys,
            &sweep_options,
            |i| {
                let (bench, policy) = cells[i];
                let spec = workloads::workload(bench).expect("known benchmark");
                let config = options.cell_config(policy);
                let pipelined = |config: SystemConfig| {
                    run_workload_pipelined(config, &spec, options.accesses, options.warmup)
                };
                match sweep.trace_mode {
                    TraceMode::Inline => (
                        run_workload_with_warmup(config, &spec, options.accesses, options.warmup),
                        None,
                    ),
                    TraceMode::Pipelined => (pipelined(config), Some("pipelined")),
                    TraceMode::Shared => {
                        let seed = config.seed;
                        let buffer = cache.buffer_for(i / per_group, seed, total_accesses, || {
                            TraceBuffer::materialize(spec.trace(total_accesses, seed))
                        });
                        match buffer {
                            Some(buf) => (
                                run_workload_from_buffer(config, spec.name(), &buf, options.warmup),
                                Some("shared"),
                            ),
                            None => (pipelined(config), Some("pipelined")),
                        }
                    }
                }
            },
            |(r, trace_source), wall| {
                let mut metrics = codec::result_metrics(r, wall);
                if let Some(source) = *trace_source {
                    metrics = metrics.with("trace_source", Value::str(source));
                }
                (metrics, codec::encode_result(r))
            },
            |p| codec::decode_result(p).map(|r| (r, None)),
        )?;
        let results = cells
            .into_iter()
            .zip(ran)
            .map(|((b, p), (r, _))| ((b.to_owned(), p), r))
            .collect();
        Ok(SuiteResults { options, results })
    }

    /// The result of one (benchmark, policy) cell, if it was part of
    /// the sweep.
    pub fn try_get(&self, bench: &str, policy: PolicyKind) -> Option<&SimResult> {
        self.results.get(&(bench.to_owned(), policy))
    }

    /// The result of one (benchmark, policy) cell.
    ///
    /// # Panics
    ///
    /// Panics if that cell was not part of the sweep; use [`try_get`]
    /// to probe.
    ///
    /// [`try_get`]: SuiteResults::try_get
    pub fn get(&self, bench: &str, policy: PolicyKind) -> &SimResult {
        self.try_get(bench, policy)
            .unwrap_or_else(|| panic!("no result for ({bench}, {policy})"))
    }

    /// The baseline result for a benchmark.
    pub fn baseline(&self, bench: &str) -> &SimResult {
        self.get(bench, PolicyKind::Baseline)
    }

    /// Benchmarks in sweep order.
    pub fn benchmarks(&self) -> &[&'static str] {
        &self.options.benchmarks
    }

    /// L2 energy saving of `policy` on `bench` versus baseline.
    pub fn l2_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l2_total_energy() / self.baseline(bench).l2_total_energy()
    }

    /// L3 energy saving of `policy` on `bench` versus baseline.
    pub fn l3_saving(&self, bench: &str, policy: PolicyKind) -> f64 {
        1.0 - self.get(bench, policy).l3_total_energy() / self.baseline(bench).l3_total_energy()
    }

    /// Mean L2 saving over all benchmarks.
    pub fn mean_l2_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l2_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }

    /// Mean L3 saving over all benchmarks.
    pub fn mean_l3_saving(&self, policy: PolicyKind) -> f64 {
        crate::report::mean(
            &self
                .benchmarks()
                .iter()
                .map(|b| self.l3_saving(b, policy))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_produces_all_cells() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::SlipAbp])
            .with_accesses(30_000)
            .with_warmup(10_000);
        let suite = SuiteResults::run_with(opts, &SweepConfig::serial()).unwrap();
        assert_eq!(suite.benchmarks(), ["gcc"]);
        let base = suite.baseline("gcc");
        assert_eq!(base.accesses, 30_000);
        let slip = suite.get("gcc", PolicyKind::SlipAbp);
        assert_eq!(slip.accesses, 30_000);
        // Savings are well-defined numbers.
        assert!(suite.l2_saving("gcc", PolicyKind::SlipAbp).is_finite());
        assert!(suite.l3_saving("gcc", PolicyKind::SlipAbp).is_finite());
    }

    #[test]
    fn with_policies_always_includes_baseline() {
        let opts = SuiteOptions::paper_full().with_policies(&[PolicyKind::NuRapid]);
        assert!(opts.policies.contains(&PolicyKind::Baseline));
        assert!(opts.policies.contains(&PolicyKind::NuRapid));
    }

    #[test]
    fn try_get_probes_without_panicking() {
        let opts = SuiteOptions::paper_full()
            .with_benchmarks(&["gcc"])
            .with_policies(&[PolicyKind::Baseline])
            .with_accesses(5_000);
        let suite = SuiteResults::run_with(opts, &SweepConfig::serial()).unwrap();
        assert!(suite.try_get("gcc", PolicyKind::Baseline).is_some());
        assert!(suite.try_get("gcc", PolicyKind::SlipAbp).is_none());
        assert!(suite.try_get("soplex", PolicyKind::Baseline).is_none());
    }

    #[test]
    fn cell_keys_fingerprint_all_inputs() {
        let a = SuiteOptions::paper_full().with_accesses(1000);
        let b = SuiteOptions::paper_full().with_accesses(2000);
        let c = SuiteOptions::paper_full()
            .with_accesses(1000)
            .with_bin_bits(6);
        let k = |o: &SuiteOptions| o.cell_key("gcc", PolicyKind::Slip);
        assert_ne!(k(&a), k(&b));
        assert_ne!(k(&a), k(&c));
        assert_ne!(
            a.cell_key("gcc", PolicyKind::Slip),
            a.cell_key("gcc", PolicyKind::SlipAbp)
        );
        assert_ne!(
            a.cell_key("gcc", PolicyKind::Slip),
            a.cell_key("mcf", PolicyKind::Slip)
        );
    }
}
