//! Figure 13: speedups of the four policies versus the regular
//! hierarchy.

use crate::config::PolicyKind;
use crate::experiments::suite::SuiteResults;
use crate::report::{mean, pct2, Table};

/// One Figure 13 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Benchmark (or "average").
    pub bench: String,
    /// Speedup minus one (0.0075 = 0.75%) per policy:
    /// NuRAPID, LRU-PEA, SLIP, SLIP+ABP.
    pub speedups: [f64; 4],
}

/// The policy order of the `speedups` array.
pub const FIG13_POLICIES: [PolicyKind; 4] = [
    PolicyKind::NuRapid,
    PolicyKind::LruPea,
    PolicyKind::Slip,
    PolicyKind::SlipAbp,
];

/// Computes Figure 13 from a suite.
pub fn fig13(suite: &SuiteResults) -> Vec<Fig13Row> {
    let mut rows: Vec<Fig13Row> = suite
        .benchmarks()
        .iter()
        .map(|&b| {
            let base = suite.baseline(b);
            let mut speedups = [0.0f64; 4];
            for (s, &p) in speedups.iter_mut().zip(&FIG13_POLICIES) {
                *s = suite.get(b, p).speedup_vs(base) - 1.0;
            }
            Fig13Row {
                bench: b.to_owned(),
                speedups,
            }
        })
        .collect();
    let mut avg = [0.0f64; 4];
    for (i, a) in avg.iter_mut().enumerate() {
        *a = mean(&rows.iter().map(|r| r.speedups[i]).collect::<Vec<_>>());
    }
    rows.push(Fig13Row {
        bench: "average".to_owned(),
        speedups: avg,
    });
    rows
}

/// Renders Figure 13 as a table.
pub fn fig13_table(rows: &[Fig13Row]) -> Table {
    let mut t = Table::new(
        "Figure 13: speedup vs regular hierarchy \
         (paper avg: NuRAPID 0.06%, LRU-PEA 0.16%, SLIP 0.24%, SLIP+ABP 0.75%)",
        &["bench", "NuRAPID", "LRU-PEA", "SLIP", "SLIP+ABP"],
    );
    for r in rows {
        t.row(vec![
            r.bench.clone(),
            pct2(r.speedups[0]),
            pct2(r.speedups[1]),
            pct2(r.speedups[2]),
            pct2(r.speedups[3]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::suite::SuiteOptions;

    #[test]
    fn speedups_are_small_and_slip_abp_not_worst() {
        let suite = SuiteResults::run(
            SuiteOptions::paper_full()
                .with_benchmarks(&["gcc", "sphinx3"])
                .with_accesses(150_000),
        );
        let rows = fig13(&suite);
        let avg = rows.last().unwrap();
        for s in avg.speedups {
            // All within a plausible +-25% band (the paper's band is
            // tighter; our timing model is cruder, and the per-set port
            // backlog charges promotion occupancy to later same-set
            // accesses, which taxes the promotion-heavy NUCA policies).
            assert!(s.abs() < 0.25, "{avg:?}");
        }
        // SLIP+ABP is not slower than the NUCA policies on average.
        assert!(avg.speedups[3] >= avg.speedups[0] - 0.01, "{avg:?}");
        assert!(!fig13_table(&rows).render().is_empty());
    }
}
