//! Sensitivity studies: distribution bin width (§6) and the Section 7
//! replacement-policy adaptation (DRRIP/SHiP under SLIP).

use crate::config::{PolicyKind, ReplacementKind, SystemConfig};
use crate::experiments::suite::{SuiteOptions, SuiteResults};
use crate::report::{pct, Table};
use crate::system::run_workload;
use workloads::{PatternKind, PatternSpec, PhaseSpec, WorkloadSpec};

/// One bin-width study row.
#[derive(Debug, Clone, PartialEq)]
pub struct BinWidthRow {
    /// Counter width in bits.
    pub bits: u32,
    /// Mean L2 saving of SLIP+ABP.
    pub l2_saving: f64,
    /// Mean L3 saving of SLIP+ABP.
    pub l3_saving: f64,
    /// Mean DRAM traffic relative to baseline (the paper's 2-bit
    /// penalty shows up here: hit counts rounded to zero cause
    /// over-bypassing and extra DRAM accesses).
    pub dram_traffic: f64,
}

/// Runs the §6 bin-width sweep (paper: 4 bits within 1% of wider;
/// sharp drop at 2 bits).
pub fn bin_width_sweep(
    accesses: u64,
    benchmarks: &[&'static str],
    widths: &[u32],
) -> Vec<BinWidthRow> {
    widths
        .iter()
        .map(|&bits| {
            let suite = SuiteResults::run(
                SuiteOptions::paper_full()
                    .with_benchmarks(benchmarks)
                    .with_policies(&[PolicyKind::SlipAbp])
                    .with_accesses(accesses)
                    .with_bin_bits(bits),
            );
            let dram = crate::report::mean(
                &suite
                    .benchmarks()
                    .iter()
                    .map(|&b| {
                        suite.get(b, PolicyKind::SlipAbp).dram_total_traffic() as f64
                            / suite.baseline(b).dram_demand_traffic().max(1) as f64
                    })
                    .collect::<Vec<_>>(),
            );
            BinWidthRow {
                bits,
                l2_saving: suite.mean_l2_saving(PolicyKind::SlipAbp),
                l3_saving: suite.mean_l3_saving(PolicyKind::SlipAbp),
                dram_traffic: dram,
            }
        })
        .collect()
}

/// Renders the bin-width sweep.
pub fn bin_width_table(rows: &[BinWidthRow]) -> Table {
    let mut t = Table::new(
        "Section 6: distribution bin-width sensitivity, SLIP+ABP \
         (paper: 4 b within 1% of wider widths; 2 b over-bypasses, raising LLC/DRAM accesses)",
        &["bits", "L2 saving", "L3 saving", "DRAM traffic"],
    );
    for r in rows {
        t.row(vec![
            r.bits.to_string(),
            pct(r.l2_saving),
            pct(r.l3_saving),
            pct(r.dram_traffic),
        ]);
    }
    t
}

/// A scan-resistance stressor: a hot working set that fits the L2 near
/// chunk plus long streaming scans (DRRIP's scan-resistance showcase).
pub fn scan_stressor() -> WorkloadSpec {
    WorkloadSpec::new(
        "scan-stressor",
        vec![PhaseSpec {
            fraction: 1.0,
            patterns: vec![
                PatternSpec::new(PatternKind::Loop { region_kb: 48 }, 55, 0.2),
                PatternSpec::new(
                    PatternKind::Scan {
                        region_kb: 4 * 1024,
                    },
                    45,
                    0.2,
                ),
            ],
        }],
    )
}

/// A thrash stressor: a working set slightly larger than the L2
/// (BRRIP's thrash-resistance showcase).
pub fn thrash_stressor() -> WorkloadSpec {
    WorkloadSpec::new(
        "thrash-stressor",
        vec![PhaseSpec {
            fraction: 1.0,
            patterns: vec![PatternSpec::new(
                PatternKind::Loop { region_kb: 320 },
                1,
                0.2,
            )],
        }],
    )
}

/// One Section 7 ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplacementRow {
    /// Stressor name.
    pub workload: String,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// L2 demand hit rate under the regular cache.
    pub baseline_hit_rate: f64,
    /// L2 demand hit rate under SLIP+ABP with Section 7's randomized
    /// victim sublevel.
    pub slip_hit_rate: f64,
    /// L2 energy saving of SLIP+ABP over the regular cache, same
    /// replacement.
    pub l2_saving: f64,
}

/// Runs the Section 7 study: does SLIP's chunk-restricted,
/// sublevel-randomized victim selection preserve DRRIP/SHiP behavior?
pub fn replacement_ablation(accesses: u64) -> Vec<ReplacementRow> {
    let mut rows = Vec::new();
    for spec in [scan_stressor(), thrash_stressor()] {
        for replacement in [
            ReplacementKind::Lru,
            ReplacementKind::Drrip,
            ReplacementKind::Ship,
        ] {
            let mut base_cfg = SystemConfig::paper_45nm(PolicyKind::Baseline);
            base_cfg.replacement = replacement;
            let mut slip_cfg = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
            slip_cfg.replacement = replacement;
            let base = run_workload(base_cfg, &spec, accesses);
            let slip = run_workload(slip_cfg, &spec, accesses);
            rows.push(ReplacementRow {
                workload: spec.name().to_owned(),
                replacement,
                baseline_hit_rate: base.l2_stats.demand_hit_rate(),
                slip_hit_rate: slip.l2_stats.demand_hit_rate(),
                l2_saving: 1.0 - slip.l2_total_energy() / base.l2_total_energy(),
            });
        }
    }
    rows
}

/// Renders the Section 7 ablation.
pub fn replacement_table(rows: &[ReplacementRow]) -> Table {
    let mut t = Table::new(
        "Section 7: replacement policies under SLIP \
         (chunk victimization with randomized sublevels preserves scan/thrash resistance)",
        &[
            "workload",
            "replacement",
            "baseline hit rate",
            "SLIP+ABP hit rate",
            "L2 saving",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.replacement.label().to_owned(),
            pct(r.baseline_hit_rate),
            pct(r.slip_hit_rate),
            pct(r.l2_saving),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_bins_do_not_hurt() {
        let rows = bin_width_sweep(150_000, &["soplex"], &[2, 4, 8]);
        assert_eq!(rows.len(), 3);
        let by_bits = |b: u32| rows.iter().find(|r| r.bits == b).unwrap();
        // 4 bits lands close to 8 bits (paper: within 1%; allow some
        // slack for the short test trace).
        let gap = (by_bits(8).l2_saving - by_bits(4).l2_saving).abs();
        assert!(gap < 0.08, "gap {gap}");
    }

    #[test]
    fn drrip_scan_resistance_survives_slip() {
        let rows = replacement_ablation(200_000);
        assert_eq!(rows.len(), 6);
        let scan_drrip = rows
            .iter()
            .find(|r| r.workload == "scan-stressor" && r.replacement == ReplacementKind::Drrip)
            .unwrap();
        // SLIP must not destroy DRRIP's hit rate on the scan stressor.
        assert!(
            scan_drrip.slip_hit_rate > scan_drrip.baseline_hit_rate - 0.10,
            "{scan_drrip:?}"
        );
        assert!(!replacement_table(&rows).render().is_empty());
    }

    #[test]
    fn stressors_are_well_formed() {
        assert_eq!(scan_stressor().name(), "scan-stressor");
        assert_eq!(thrash_stressor().name(), "thrash-stressor");
        // The thrash loop exceeds the 256 KB L2.
        let t = thrash_stressor();
        let trace: Vec<_> = t.trace(1000, 1).collect();
        assert_eq!(trace.len(), 1000);
    }
}
