//! Experiment runners — one per paper table/figure (DESIGN.md §5).
//!
//! Every experiment returns structured rows (testable) plus a
//! [`crate::report::Table`] renderer that prints the same rows/series
//! the paper reports. The `slip-bench` crate exposes one bench target
//! per experiment.

pub mod ablation;
pub mod energy;
pub mod hardware;
pub mod motivation;
pub mod multicore_exp;
pub mod sensitivity;
pub mod speedup;
pub mod suite;
pub mod traffic;

pub use suite::{run_fused_group, run_suite_cell, SuiteOptions, SuiteResults};
