//! Hardware-parameter experiments: Table 2 validation against the
//! geometric wire model, and the Section 5 EOU cost summary.

use crate::report::Table;
use energy_model::{BankGrid, Topology, WireParams, TECH_45NM};
use slip_core::{EouCost, LevelModelParams, RdDistribution, Slip};

/// One Table 2 validation row.
#[derive(Debug, Clone, PartialEq)]
pub struct Tab02Row {
    /// Quantity name.
    pub name: String,
    /// Paper Table 2 value (pJ).
    pub paper_pj: f64,
    /// Value re-derived from the geometric bank-grid wire model (pJ);
    /// `None` for constants that are inputs rather than derived.
    pub model_pj: Option<f64>,
}

/// Builds the Table 2 rows, deriving the sublevel energies from the
/// calibrated bank grids.
pub fn tab02() -> Vec<Tab02Row> {
    let wire = WireParams::NM45;
    let ways = [4usize, 4, 8];
    let l2 = BankGrid::l2_45nm().sublevel_energies(
        Topology::HierarchicalBusWayInterleaved,
        &wire,
        &ways,
    );
    let l3 = BankGrid::l3_45nm().sublevel_energies(
        Topology::HierarchicalBusWayInterleaved,
        &wire,
        &ways,
    );
    let t = &*TECH_45NM;
    let mut rows = vec![
        Tab02Row {
            name: "wire energy (pJ/bit/mm)".into(),
            paper_pj: t.wire_pj_per_bit_mm,
            model_pj: None,
        },
        Tab02Row {
            name: "L2 baseline access".into(),
            paper_pj: t.l2.baseline_access.as_pj(),
            model_pj: Some(t.l2.mean_access().as_pj()),
        },
    ];
    for (i, model) in l2.iter().enumerate() {
        rows.push(Tab02Row {
            name: format!("L2 sublevel {i} access"),
            paper_pj: t.l2.sublevel_access[i].as_pj(),
            model_pj: Some(model.as_pj()),
        });
    }
    rows.push(Tab02Row {
        name: "L3 baseline access".into(),
        paper_pj: t.l3.baseline_access.as_pj(),
        model_pj: Some(t.l3.mean_access().as_pj()),
    });
    for (i, model) in l3.iter().enumerate() {
        rows.push(Tab02Row {
            name: format!("L3 sublevel {i} access"),
            paper_pj: t.l3.sublevel_access[i].as_pj(),
            model_pj: Some(model.as_pj()),
        });
    }
    rows.push(Tab02Row {
        name: "L2 metadata access".into(),
        paper_pj: t.l2.metadata_access.as_pj(),
        model_pj: None,
    });
    rows.push(Tab02Row {
        name: "L3 metadata access".into(),
        paper_pj: t.l3.metadata_access.as_pj(),
        model_pj: None,
    });
    rows.push(Tab02Row {
        name: "DRAM (pJ/bit)".into(),
        paper_pj: t.dram_pj_per_bit,
        model_pj: None,
    });
    rows
}

/// Renders the Table 2 validation.
pub fn tab02_table(rows: &[Tab02Row]) -> Table {
    let mut t = Table::new(
        "Table 2: energy parameters at 45 nm, with geometric-model cross-check",
        &["quantity", "paper", "wire model", "error"],
    );
    for r in rows {
        let (model, err) = match r.model_pj {
            Some(m) => (
                format!("{m:.1}"),
                format!("{:+.1}%", (m / r.paper_pj - 1.0) * 100.0),
            ),
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            r.name.clone(),
            format!("{:.2}", r.paper_pj),
            model,
            err,
        ]);
    }
    t
}

/// The Section 5 EOU cost summary with derived sanity ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct EouSummary {
    /// The cost constants.
    pub cost: EouCost,
    /// Number of candidate SLIPs the unit evaluates (2^S).
    pub candidates: usize,
    /// EOU energy as a fraction of one L3 (LLC) access.
    pub energy_vs_llc_access: f64,
}

/// Builds the EOU summary.
pub fn eou_summary() -> EouSummary {
    let params = LevelModelParams::from_level(&TECH_45NM.l3, TECH_45NM.dram_line_energy());
    let eou = slip_core::EnergyOptimizerUnit::new(&params);
    let cost = eou.cost();
    EouSummary {
        cost,
        candidates: eou.candidates(),
        energy_vs_llc_access: cost.energy_per_op / TECH_45NM.l3.baseline_access,
    }
}

/// Renders the EOU summary.
pub fn eou_table(s: &EouSummary) -> Table {
    let mut t = Table::new(
        "Section 5: EOU hardware cost (paper: 2 cycles, 1.27 pJ/op, 0.00366 mm^2, <0.5% of LLC access energy)",
        &["quantity", "value"],
    );
    t.row(vec!["candidate SLIPs".into(), s.candidates.to_string()]);
    t.row(vec![
        "latency (cycles)".into(),
        s.cost.latency_cycles.to_string(),
    ]);
    t.row(vec![
        "throughput (ops/cycle)".into(),
        s.cost.throughput_per_cycle.to_string(),
    ]);
    t.row(vec![
        "energy per op".into(),
        s.cost.energy_per_op.to_string(),
    ]);
    t.row(vec![
        "area (mm^2)".into(),
        format!("{:.5}", s.cost.area_mm2),
    ]);
    t.row(vec![
        "energy vs LLC access".into(),
        format!("{:.2}%", s.energy_vs_llc_access * 100.0),
    ]);
    t
}

/// A deterministic micro-workload for EOU benchmarking: a spread of
/// distributions covering the corner cases.
pub fn eou_bench_distributions() -> Vec<RdDistribution> {
    let mut out = Vec::new();
    for counts in [
        [15u16, 0, 0, 0],
        [0, 0, 0, 15],
        [8, 4, 2, 1],
        [1, 2, 4, 8],
        [4, 4, 4, 4],
        [10, 0, 0, 5],
        [0, 8, 8, 0],
    ] {
        let mut d = RdDistribution::paper_default();
        for (bin, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                d.observe(bin);
            }
        }
        out.push(d);
    }
    out
}

/// Verifies the self-delimiting SLIP code space used by the EOU table.
pub fn slip_code_space(sublevels: usize) -> usize {
    Slip::enumerate(sublevels).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab02_model_errors_are_small() {
        let rows = tab02();
        for r in &rows {
            if let Some(m) = r.model_pj {
                let err = (m / r.paper_pj - 1.0).abs();
                assert!(err < 0.06, "{}: {err}", r.name);
            }
        }
        assert!(tab02_table(&rows).render().contains("L3 sublevel 2"));
    }

    #[test]
    fn eou_summary_matches_paper_claims() {
        let s = eou_summary();
        assert_eq!(s.candidates, 8);
        assert_eq!(s.cost.latency_cycles, 2);
        // <0.5% of LLC access energy.
        assert!(s.energy_vs_llc_access < 0.005 * 2.0);
        assert!(eou_table(&s).render().contains("1.270 pJ"));
    }

    #[test]
    fn bench_distributions_cover_corners() {
        let d = eou_bench_distributions();
        assert_eq!(d.len(), 7);
        assert!(d.iter().all(|x| !x.is_empty()));
    }

    #[test]
    fn slip_code_space_is_exponential() {
        assert_eq!(slip_code_space(3), 8);
        assert_eq!(slip_code_space(4), 16);
    }
}
