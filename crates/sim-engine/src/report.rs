//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use sim_engine::report::Table;
///
/// let mut t = Table::new("demo", &["bench", "saving"]);
/// t.row(vec!["soplex".into(), "35.0%".into()]);
/// let s = t.render();
/// assert!(s.contains("soplex"));
/// assert!(s.contains("saving"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Raw access to the rows (for tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(line, "{h:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a fraction as a signed percentage, e.g. `0.352` → `"35.2%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a fraction as a signed percentage with two decimals.
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Geometric mean of a slice of positive values.
///
/// # Panics
///
/// Panics if the slice is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", &["a", "longheader"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("== t =="));
        // Columns aligned: both data rows put the second column at the
        // same offset.
        let col = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find('2').unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.352), "35.2%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(pct2(0.0075), "0.75%");
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_len_and_empty() {
        let mut t = Table::new("t", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], "x");
    }
}
