//! Static dispatch over the closed set of placement/replacement
//! policies.
//!
//! The systems pick a policy at run time from [`PolicyKind`] /
//! [`ReplacementKind`](crate::config::ReplacementKind) — a closed set —
//! so boxing trait objects would pay an indirect call for each of the
//! ~10 policy consultations per simulated access and wall off inlining
//! into the cache controller's hot loop. These enums turn every
//! consultation into a jump table over four arms whose bodies inline
//! (see DESIGN.md §9).

use cache_sim::{
    BaselinePolicy, CacheGeometry, Drrip, FillRequest, InsertionClass, LineState, Lru,
    PlacementPolicy, ReplacementPolicy, Ship, WayMask,
};
use nuca_baselines::{LruPea, NuRapid, PeaLru};
use slip_core::SlipPlacement;

/// Every placement policy a system can run, statically dispatched.
#[derive(Debug)]
pub enum AnyPlacement {
    /// Insert-anywhere baseline hierarchy.
    Baseline(BaselinePolicy),
    /// NuRAPID distance-group placement.
    NuRapid(NuRapid),
    /// LRU-PEA promotion/eviction arbitration.
    LruPea(LruPea),
    /// SLIP / SLIP+ABP sublevel placement.
    Slip(SlipPlacement),
}

/// Dispatches a method call to whichever policy the enum holds.
macro_rules! each_placement {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyPlacement::Baseline($p) => $body,
            AnyPlacement::NuRapid($p) => $body,
            AnyPlacement::LruPea($p) => $body,
            AnyPlacement::Slip($p) => $body,
        }
    };
}

impl PlacementPolicy for AnyPlacement {
    #[inline]
    fn name(&self) -> &'static str {
        each_placement!(self, p => p.name())
    }

    #[inline]
    fn insertion_mask(&mut self, geom: &CacheGeometry, req: &FillRequest) -> Option<WayMask> {
        each_placement!(self, p => p.insertion_mask(geom, req))
    }

    #[inline]
    fn demotion_mask(
        &mut self,
        geom: &CacheGeometry,
        line: &LineState,
        from_way: usize,
    ) -> Option<WayMask> {
        each_placement!(self, p => p.demotion_mask(geom, line, from_way))
    }

    #[inline]
    fn promotion_mask(
        &mut self,
        geom: &CacheGeometry,
        line: &LineState,
        hit_way: usize,
    ) -> Option<WayMask> {
        each_placement!(self, p => p.promotion_mask(geom, line, hit_way))
    }

    #[inline]
    fn classify_insertion(&self, geom: &CacheGeometry, req: &FillRequest) -> InsertionClass {
        each_placement!(self, p => p.classify_insertion(geom, req))
    }

    #[inline]
    fn on_promotion_swap(&mut self, promoted: &mut LineState, demoted: &mut LineState) {
        each_placement!(self, p => p.on_promotion_swap(promoted, demoted))
    }

    #[inline]
    fn uses_movement_queue(&self) -> bool {
        each_placement!(self, p => p.uses_movement_queue())
    }

    #[inline]
    fn uses_line_metadata(&self) -> bool {
        each_placement!(self, p => p.uses_line_metadata())
    }
}

/// Every replacement policy a system can run, statically dispatched.
#[derive(Debug)]
pub enum AnyReplacement {
    /// Plain LRU.
    Lru(Lru),
    /// DRRIP set-dueling RRIP.
    Drrip(Drrip),
    /// SHiP signature-based insertion.
    Ship(Ship),
    /// LRU-PEA's demotion-aware LRU.
    PeaLru(PeaLru),
}

macro_rules! each_replacement {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyReplacement::Lru($p) => $body,
            AnyReplacement::Drrip($p) => $body,
            AnyReplacement::Ship($p) => $body,
            AnyReplacement::PeaLru($p) => $body,
        }
    };
}

impl ReplacementPolicy for AnyReplacement {
    #[inline]
    fn name(&self) -> &'static str {
        each_replacement!(self, p => p.name())
    }

    #[inline]
    fn choose_victim(
        &mut self,
        set_index: usize,
        set: &mut [LineState],
        candidates: WayMask,
    ) -> usize {
        each_replacement!(self, p => p.choose_victim(set_index, set, candidates))
    }

    #[inline]
    fn on_hit(&mut self, set_index: usize, set: &mut [LineState], way: usize) {
        each_replacement!(self, p => p.on_hit(set_index, set, way))
    }

    #[inline]
    fn on_fill(&mut self, set_index: usize, set: &mut [LineState], way: usize) {
        each_replacement!(self, p => p.on_fill(set_index, set, way))
    }

    #[inline]
    fn on_miss(&mut self, set_index: usize) {
        each_replacement!(self, p => p.on_miss(set_index))
    }

    #[inline]
    fn on_evict(&mut self, line: &LineState) {
        each_replacement!(self, p => p.on_evict(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_the_wrapped_policy() {
        let mut any = AnyPlacement::Baseline(BaselinePolicy::new());
        let mut plain = BaselinePolicy::new();
        let geom = CacheGeometry::uniform(4, 8, energy_model::Energy::from_pj(1.0), 2);
        let req = FillRequest::new(cache_sim::LineAddr(5));
        assert_eq!(any.name(), plain.name());
        assert_eq!(
            any.insertion_mask(&geom, &req),
            plain.insertion_mask(&geom, &req)
        );
        assert_eq!(any.uses_movement_queue(), plain.uses_movement_queue());

        let mut any_r = AnyReplacement::Lru(Lru::new());
        assert_eq!(any_r.name(), Lru::new().name());
        let mut set = vec![LineState::new(cache_sim::LineAddr(0)); 4];
        for (i, l) in set.iter_mut().enumerate() {
            l.valid = true;
            l.lru_seq = 10 - i as u64;
        }
        let victim = any_r.choose_victim(0, &mut set, WayMask::from_bits(0b1111));
        assert_eq!(
            victim,
            Lru::new().choose_victim(0, &mut set, WayMask::from_bits(0b1111))
        );
    }
}
