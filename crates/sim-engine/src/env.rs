//! Typed parsing of the `SLIP_*` environment variables.
//!
//! Every knob the suite, benches, and CLI read from the environment
//! goes through here, so defaults and parse behavior (trimmed input,
//! garbage falls back to the default) are defined exactly once:
//!
//! | variable              | meaning                              | default |
//! |-----------------------|--------------------------------------|---------|
//! | `SLIP_ACCESSES`       | measured accesses per benchmark      | 2,000,000 |
//! | `SLIP_WARMUP`         | unmeasured warmup accesses           | 0 |
//! | `SLIP_JOBS`           | sweep worker count                   | available parallelism |
//! | `SLIP_JOURNAL`        | run-journal path (enables resume)    | unset (off) |
//! | `SLIP_TRACE_MODE`     | trace execution: `inline` \| `pipelined` \| `shared` \| `fused` | `shared` |
//! | `SLIP_TRACE_CACHE_MB` | shared-trace cache budget in MiB (0 disables sharing) | 1024 |
//! | `SLIP_FUZZ_ITERS`     | `slip check` differential-fuzz iteration budget | unset (mode default) |
//! | `SLIP_SHARDS`         | set-shard workers per single run (power of two; 1 = serial) | 1 |
//! | `SLIP_TOPOLOGY`       | hierarchy spec: built-in node name or file path | unset (built-in 45 nm) |
//!
//! One exception to the garbage-falls-back rule: a *set* `SLIP_SHARDS`
//! that is not a power of two (or not a number) is an error, not a
//! silent round-down — see [`shards`].

use crate::pipeline::TraceMode;
use std::path::PathBuf;
use std::str::FromStr;

/// Default trace length per benchmark.
pub const DEFAULT_ACCESSES: u64 = 2_000_000;

/// Reads and parses one environment variable; unset, empty, or
/// unparseable values yield `None`.
pub fn parse_var<T: FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|s| s.trim().parse().ok())
}

/// Measured accesses per benchmark (`SLIP_ACCESSES`).
pub fn accesses() -> u64 {
    parse_var("SLIP_ACCESSES").unwrap_or(DEFAULT_ACCESSES)
}

/// Unmeasured warmup accesses (`SLIP_WARMUP`).
pub fn warmup() -> u64 {
    parse_var("SLIP_WARMUP").unwrap_or(0)
}

/// Sweep worker count (`SLIP_JOBS`), defaulting to the host's
/// available parallelism.
pub fn jobs() -> usize {
    parse_var("SLIP_JOBS").unwrap_or_else(sweep_runner::available_jobs)
}

/// Run-journal path (`SLIP_JOURNAL`); unset means journaling off.
pub fn journal() -> Option<PathBuf> {
    std::env::var_os("SLIP_JOURNAL")
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

/// Default shared-trace cache budget in MiB (128 M accesses' worth).
pub const DEFAULT_TRACE_CACHE_MB: u64 = 1024;

/// Shared-trace cache budget in MiB (`SLIP_TRACE_CACHE_MB`). Groups
/// whose materialized trace would exceed the remaining budget fall back
/// to pipelined regeneration; 0 disables sharing entirely.
pub fn trace_cache_mb() -> u64 {
    parse_var("SLIP_TRACE_CACHE_MB").unwrap_or(DEFAULT_TRACE_CACHE_MB)
}

/// Differential-fuzz iteration budget for `slip check`
/// (`SLIP_FUZZ_ITERS`); unset means the mode's default (quick 48,
/// full 512).
pub fn fuzz_iters() -> Option<u64> {
    parse_var("SLIP_FUZZ_ITERS")
}

/// Set-shard workers per single run (`SLIP_SHARDS`); 1 means serial.
/// Unset or empty means 1. A *set* value that is not a positive power
/// of two is rejected with a clear error instead of being silently
/// rounded down — the shard owner is a fixed bit field of the line
/// address, so `SLIP_SHARDS=3` cannot mean what it says.
/// Non-shardable configurations still fall back to serial per cell
/// (see [`crate::shard::effective_shards`]), which the runners report.
pub fn shards() -> Result<usize, String> {
    let raw = match std::env::var("SLIP_SHARDS") {
        Ok(s) if !s.trim().is_empty() => s,
        _ => return Ok(1),
    };
    let parsed: usize = raw
        .trim()
        .parse()
        .map_err(|_| format!("SLIP_SHARDS={:?}: not a number", raw.trim()))?;
    crate::shard::validate_shards(parsed).map_err(|e| format!("SLIP_SHARDS: {e}"))
}

/// Hierarchy spec argument (`SLIP_TOPOLOGY`): a built-in node name
/// (`45nm`, `22nm`, `stt-llc`) or a spec file path; unset or empty
/// means the compiled-in 45 nm configuration. Resolution (and
/// rejection of malformed specs with line/column diagnostics) happens
/// in `energy_model::HierarchySpec::load`, which the CLI calls — the
/// variable is only *read* here so all `SLIP_*` knobs live in one
/// table.
pub fn topology() -> Option<String> {
    std::env::var("SLIP_TOPOLOGY")
        .ok()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
}

/// Trace execution mode (`SLIP_TRACE_MODE`); unknown or unset values
/// mean the default, [`TraceMode::Shared`].
pub fn trace_mode() -> TraceMode {
    std::env::var("SLIP_TRACE_MODE")
        .ok()
        .and_then(|s| TraceMode::parse(&s))
        .unwrap_or(TraceMode::Shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_without_env() {
        // These read live env vars, so only check invariants that hold
        // for any value.
        assert!(accesses() >= 1);
        assert!(jobs() >= 1);
    }

    #[test]
    fn shards_rejects_non_powers_of_two_when_set() {
        // The only test in this binary touching SLIP_SHARDS; restores
        // the unset state before returning.
        std::env::set_var("SLIP_SHARDS", "4");
        assert_eq!(shards(), Ok(4));
        std::env::set_var("SLIP_SHARDS", " 2 ");
        assert_eq!(shards(), Ok(2));
        std::env::set_var("SLIP_SHARDS", "3");
        assert!(shards().unwrap_err().contains("power of two"));
        std::env::set_var("SLIP_SHARDS", "0");
        assert!(shards().unwrap_err().contains("power of two"));
        std::env::set_var("SLIP_SHARDS", "lots");
        assert!(shards().unwrap_err().contains("not a number"));
        std::env::set_var("SLIP_SHARDS", "");
        assert_eq!(shards(), Ok(1));
        std::env::remove_var("SLIP_SHARDS");
        assert_eq!(shards(), Ok(1));
    }

    #[test]
    fn parse_var_trims_and_rejects_garbage() {
        std::env::set_var("SLIP_TEST_PARSE_VAR", " 42 ");
        assert_eq!(parse_var::<u64>("SLIP_TEST_PARSE_VAR"), Some(42));
        std::env::set_var("SLIP_TEST_PARSE_VAR", "not-a-number");
        assert_eq!(parse_var::<u64>("SLIP_TEST_PARSE_VAR"), None);
        std::env::remove_var("SLIP_TEST_PARSE_VAR");
        assert_eq!(parse_var::<u64>("SLIP_TEST_PARSE_VAR"), None);
    }
}
