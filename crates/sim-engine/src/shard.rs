//! Set-sharded single-run parallelism.
//!
//! One simulation is split across worker threads by cache-set
//! ownership: every level's set index is the low bits of the line
//! address (all set counts are powers of two), so the low
//! `log2(shards)` line bits pick a stable owner for an access at
//! *every* level at once. Each shard steps its own
//! [`SingleCoreSystem`] over exactly the accesses it owns — in global
//! trace order — and the per-shard measurements merge at the end
//! ([`SingleCoreSystem::absorb`]) in a pinned reduction order, so a
//! sharded run is **bit-identical** to the serial one (the
//! `shard-determinism` conformance check and the tests below hold this
//! line).
//!
//! Why this is exact and not approximate: after the per-set
//! decomposition of the cache substrate (per-set reuse stamps, per-set
//! port backlog, per-set slot/placement RNGs, counter-based energy
//! ledgers), every architectural decision is a pure function of
//! set-local history, and everything else — stats, ledgers, cycles,
//! DRAM counters — is a plain sum over accesses. Restricting a system
//! to the sets of one shard therefore reproduces the serial system's
//! behavior on those sets exactly, and the sums recombine losslessly.
//!
//! Not every configuration decomposes: the SLIP policies route every
//! access through a *global* MMU/TLB whose state couples sets, and the
//! DRRIP/SHiP replacement policies keep global set-dueling/SHCT state.
//! [`shardable`] gates those; non-shardable configurations fall back
//! to the serial path transparently (same function, same result, one
//! thread).

use crate::config::{PolicyKind, ReplacementKind, SystemConfig};
use crate::pipeline::run_workload_from_buffer;
use crate::result::SimResult;
use crate::system::{run_workload_with_warmup, SingleCoreSystem};
use std::time::Instant;
use workloads::{unpack_access, TraceBuffer, WorkloadSpec};

/// Whether a configuration's single-core simulation decomposes by
/// cache set (see the module docs for why each case does or does not).
pub fn shardable(config: &SystemConfig) -> bool {
    match config.policy {
        // The SLIP MMU (TLB, page table, samplers, EOU) is global.
        PolicyKind::Slip | PolicyKind::SlipAbp => false,
        // LRU-PEA forces the PeaLru replacement (per-set state) and its
        // placement RNG streams are per-set.
        PolicyKind::LruPea => true,
        // Baseline/NuRAPID decompose unless the replacement policy
        // carries global state (DRRIP set dueling, SHiP's SHCT).
        PolicyKind::Baseline | PolicyKind::NuRapid => config.replacement == ReplacementKind::Lru,
    }
}

/// Validates a user-requested shard count at the CLI/env boundary:
/// the owner of a line is a fixed bit field of its address, so only
/// powers of two are meaningful. Returns the count unchanged when
/// valid; callers surface the error instead of silently rounding
/// (which `--shards 3` used to do).
pub fn validate_shards(requested: usize) -> Result<usize, String> {
    if requested >= 1 && requested.is_power_of_two() {
        Ok(requested)
    } else {
        Err(format!(
            "shard count {requested} is not a power of two; the shard owner is a \
             fixed bit field of the line address (use 1, 2, 4, 8, ...)"
        ))
    }
}

/// Normalizes a requested shard count: rounded down to a power of two
/// (the owner of a line must be a fixed bit field of its address) and
/// clamped to the smallest set count in the hierarchy so every shard
/// owns at least one set per level. Returns 1 when the configuration
/// is not [`shardable`].
pub fn effective_shards(requested: usize, config: &SystemConfig) -> usize {
    if requested <= 1 || !shardable(config) {
        return 1;
    }
    let min_sets = config
        .l1_sets
        .min(config.l2_geometry().sets)
        .min(config.l3_geometry().sets);
    let mut shards = requested.min(min_sets);
    while !shards.is_power_of_two() {
        shards &= shards - 1;
    }
    shards
}

/// Steps `system` over the accesses of shard `k` (of `mask + 1`),
/// mirroring the serial warmup-then-measure structure: the reset
/// happens at the *global* warmup boundary, whether or not the
/// boundary access belongs to this shard.
fn run_shard_spec(
    config: SystemConfig,
    spec: &WorkloadSpec,
    len: u64,
    warmup: u64,
    mask: u64,
    k: u64,
) -> SingleCoreSystem {
    let seed = config.seed;
    let mut system = SingleCoreSystem::new(config);
    let mut trace = spec.trace(warmup + len, seed);
    for _ in 0..warmup {
        let access = trace.next().expect("trace long enough for warmup");
        if access.line().0 & mask == k {
            system.step_fast(access);
        }
    }
    system.reset_measurements();
    for access in trace {
        if access.line().0 & mask == k {
            system.step_fast(access);
        }
    }
    system
}

/// Shard-`k` replay of a materialized buffer; packed words carry the
/// line address in their high bits, so ownership is decided without
/// unpacking.
fn run_shard_buffer(
    config: SystemConfig,
    buffer: &TraceBuffer,
    warmup: u64,
    mask: u64,
    k: u64,
) -> SingleCoreSystem {
    let mut system = SingleCoreSystem::new(config);
    let mut index = 0u64;
    for chunk in buffer.chunks() {
        for &word in chunk {
            if index == warmup {
                system.reset_measurements();
            }
            index += 1;
            if (word >> 1) & mask == k {
                system.step_fast(unpack_access(word));
            }
        }
    }
    assert!(index >= warmup, "trace long enough for warmup");
    if index == warmup {
        // Zero measured accesses: the in-loop reset never fired.
        system.reset_measurements();
    }
    system
}

/// Joins the per-shard systems in pinned order (shard 0 absorbs 1, 2,
/// …) and finishes; the fixed reduction order keeps the floating-point
/// finalization identical from run to run.
fn reduce(mut systems: Vec<SingleCoreSystem>, name: &str, started: Instant) -> SimResult {
    let mut main = systems.remove(0);
    for shard in &mut systems {
        main.absorb(shard);
    }
    let wall = started.elapsed().as_secs_f64();
    let mut result = main.finish(name.to_owned());
    result.wall_time_secs = wall;
    result
}

/// Set-sharded [`run_workload_with_warmup`]: each shard regenerates
/// the trace and steps only the accesses it owns. Falls back to the
/// serial runner (identical result) when `shards` resolves to 1.
pub fn run_workload_sharded(
    config: SystemConfig,
    spec: &WorkloadSpec,
    len: u64,
    warmup: u64,
    shards: usize,
) -> SimResult {
    let shards = effective_shards(shards, &config);
    if shards == 1 {
        return run_workload_with_warmup(config, spec, len, warmup);
    }
    let mask = shards as u64 - 1;
    let started = Instant::now();
    let systems: Vec<SingleCoreSystem> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards as u64)
            .map(|k| {
                let config = config.clone();
                scope.spawn(move || run_shard_spec(config, spec, len, warmup, mask, k))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    reduce(systems, spec.name(), started)
}

/// Set-sharded [`run_workload_from_buffer`]: the shards replay one
/// shared materialized trace. Falls back to the serial buffer runner
/// (identical result) when `shards` resolves to 1.
pub fn run_buffer_sharded(
    config: SystemConfig,
    name: &str,
    buffer: &TraceBuffer,
    warmup: u64,
    shards: usize,
) -> SimResult {
    let shards = effective_shards(shards, &config);
    if shards == 1 {
        return run_workload_from_buffer(config, name, buffer, warmup);
    }
    let mask = shards as u64 - 1;
    let started = Instant::now();
    let systems: Vec<SingleCoreSystem> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards as u64)
            .map(|k| {
                let config = config.clone();
                scope.spawn(move || run_shard_buffer(config, buffer, warmup, mask, k))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    reduce(systems, name, started)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    fn fingerprint(r: &SimResult) -> String {
        codec::encode_result(r).to_json()
    }

    #[test]
    fn shardable_gates_global_state() {
        let mut c = SystemConfig::paper_45nm(PolicyKind::Baseline);
        assert!(shardable(&c));
        c.replacement = ReplacementKind::Drrip;
        assert!(!shardable(&c));
        c.replacement = ReplacementKind::Ship;
        assert!(!shardable(&c));
        assert!(shardable(&SystemConfig::paper_45nm(PolicyKind::LruPea)));
        assert!(shardable(&SystemConfig::paper_45nm(PolicyKind::NuRapid)));
        assert!(!shardable(&SystemConfig::paper_45nm(PolicyKind::Slip)));
        assert!(!shardable(&SystemConfig::paper_45nm(PolicyKind::SlipAbp)));
    }

    #[test]
    fn validate_shards_rejects_non_powers_of_two() {
        assert_eq!(validate_shards(1), Ok(1));
        assert_eq!(validate_shards(2), Ok(2));
        assert_eq!(validate_shards(64), Ok(64));
        for bad in [0usize, 3, 5, 6, 7, 12, 100] {
            let err = validate_shards(bad).unwrap_err();
            assert!(err.contains("power of two"), "{bad}: {err}");
        }
    }

    #[test]
    fn effective_shards_normalizes_to_power_of_two() {
        let c = SystemConfig::paper_45nm(PolicyKind::Baseline);
        assert_eq!(effective_shards(0, &c), 1);
        assert_eq!(effective_shards(1, &c), 1);
        assert_eq!(effective_shards(2, &c), 2);
        assert_eq!(effective_shards(3, &c), 2);
        assert_eq!(effective_shards(4, &c), 4);
        assert_eq!(effective_shards(7, &c), 4);
        // Clamped to the smallest set count (the 64-set L1).
        assert_eq!(effective_shards(1 << 20, &c), 64);
        // SLIP never shards.
        let slip = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        assert_eq!(effective_shards(8, &slip), 1);
    }

    #[test]
    fn sharded_matches_serial_bit_exactly() {
        let spec = workloads::workload("gcc").unwrap();
        for policy in [
            PolicyKind::Baseline,
            PolicyKind::NuRapid,
            PolicyKind::LruPea,
        ] {
            let serial =
                run_workload_with_warmup(SystemConfig::paper_45nm(policy), &spec, 20_000, 3_000);
            for shards in [2usize, 4] {
                let sharded = run_workload_sharded(
                    SystemConfig::paper_45nm(policy),
                    &spec,
                    20_000,
                    3_000,
                    shards,
                );
                assert_eq!(
                    fingerprint(&serial),
                    fingerprint(&sharded),
                    "{policy:?} x{shards}"
                );
            }
        }
    }

    #[test]
    fn sharded_buffer_matches_serial_bit_exactly() {
        let spec = workloads::workload("soplex").unwrap();
        let config = SystemConfig::paper_45nm(PolicyKind::Baseline);
        let buffer = TraceBuffer::materialize(spec.trace(17_000, config.seed));
        let serial = run_workload_from_buffer(config.clone(), spec.name(), &buffer, 2_000);
        for shards in [2usize, 4] {
            let sharded = run_buffer_sharded(config.clone(), spec.name(), &buffer, 2_000, shards);
            assert_eq!(fingerprint(&serial), fingerprint(&sharded), "x{shards}");
        }
    }

    #[test]
    fn slip_falls_back_to_serial_transparently() {
        let spec = workloads::workload("gcc").unwrap();
        let config = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
        let serial = run_workload_with_warmup(config.clone(), &spec, 10_000, 1_000);
        let sharded = run_workload_sharded(config, &spec, 10_000, 1_000, 4);
        assert_eq!(fingerprint(&serial), fingerprint(&sharded));
    }

    #[test]
    fn zero_measured_length_is_handled() {
        let spec = workloads::workload("gcc").unwrap();
        let config = SystemConfig::paper_45nm(PolicyKind::Baseline);
        let buffer = TraceBuffer::materialize(spec.trace(5_000, config.seed));
        let r = run_buffer_sharded(config, spec.name(), &buffer, 5_000, 2);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.cycles, 0);
    }
}
