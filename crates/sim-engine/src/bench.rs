//! The `slip bench` performance suite: calibrated microbenchmarks of
//! the simulator's hot paths plus whole-system throughput runs.
//!
//! This is the measurement side of the hot-path performance work (see
//! DESIGN.md §9): kernels are timed with a self-calibrating loop (grow
//! the iteration count until a batch is measurable, then take the best
//! of several samples) and full-system throughput is reported as
//! simulated accesses per second over a pre-generated trace, so trace
//! synthesis never dilutes the measurement. The CLI serializes a
//! [`BenchReport`] as JSON (`BENCH_*.json`) and can compare a fresh
//! run against a committed baseline to catch throughput regressions.
//!
//! Timing uses the calling thread's on-CPU nanoseconds
//! (`/proc/thread-self/schedstat` on Linux) rather than wall clock, so
//! a co-tenant stealing the core mid-sample inflates a measurement far
//! less — the regression gate in CI must not flap with host load. Where
//! schedstat is unavailable the harness falls back to wall clock.

use crate::config::{PolicyKind, SystemConfig};
use crate::experiments::{SuiteOptions, SuiteResults};
use crate::pipeline::TraceMode;
use crate::system::SingleCoreSystem;
use crate::SweepConfig;
use std::time::Instant;
use sweep_runner::json::Value;
use workloads::TraceBuffer;

/// Nanoseconds the calling thread has spent on-CPU, per the scheduler
/// (`None` off Linux or when procfs is unavailable). Monotone
/// per-thread, unaffected by time the thread sat preempted on the
/// runqueue.
fn thread_cpu_ns() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    text.split_whitespace().next()?.parse().ok()
}

/// A started measurement on the bench clock: thread CPU time when
/// available, wall clock otherwise.
struct BenchClock {
    wall: Instant,
    cpu_ns: Option<u64>,
}

impl BenchClock {
    fn start() -> BenchClock {
        BenchClock {
            wall: Instant::now(),
            cpu_ns: thread_cpu_ns(),
        }
    }

    /// Seconds elapsed on the bench clock since [`start`](Self::start).
    fn elapsed_secs(&self) -> f64 {
        match (self.cpu_ns, thread_cpu_ns()) {
            // The scheduler only folds runtime in at tick/switch
            // boundaries, so a short interval can read as zero CPU
            // time — use the wall clock rather than report 0.
            (Some(a), Some(b)) if b > a => (b - a) as f64 / 1e9,
            _ => self.wall.elapsed().as_secs_f64(),
        }
    }
}

/// One timed kernel (ns per iteration, best of the samples).
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name, e.g. `eou/optimize`.
    pub name: String,
    /// Best-of-samples nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// One full-system throughput run.
#[derive(Debug, Clone)]
pub struct SystemResult {
    /// Run name, e.g. `system/gcc_SLIP+ABP`.
    pub name: String,
    /// Simulated accesses per repetition.
    pub accesses: u64,
    /// Bench-clock seconds of the best repetition (thread CPU time on
    /// Linux, wall clock elsewhere).
    pub wall_secs: f64,
    /// Simulated accesses per bench-clock second (best repetition).
    pub accesses_per_sec: f64,
}

/// One execution mode of the sweep A/B: a small benchmark × policy
/// grid run end to end (trace handling included) under one
/// [`TraceMode`].
#[derive(Debug, Clone)]
pub struct SweepModeResult {
    /// Run name, e.g. `sweep/shared`.
    pub name: String,
    /// Cells in the grid.
    pub cells: u64,
    /// Total simulated accesses across the grid.
    pub accesses: u64,
    /// Wall seconds of the best repetition. Wall clock, not thread CPU
    /// time: the pipelined mode spends its CPU on a producer thread,
    /// which the calling thread's schedstat cannot see.
    pub wall_secs: f64,
    /// Simulated accesses per wall second (best repetition).
    pub accesses_per_sec: f64,
}

/// Everything one `slip bench` invocation measured.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `true` for the reduced CI smoke configuration.
    pub quick: bool,
    /// Hot-path kernel timings.
    pub kernels: Vec<KernelResult>,
    /// Full-system throughput runs.
    pub systems: Vec<SystemResult>,
    /// The trace-mode sweep A/B (inline vs pipelined vs shared vs
    /// fused), interleaved in the same measurement window.
    pub sweep_modes: Vec<SweepModeResult>,
    /// Hit-run scanner throughput runs, in their own section so the
    /// headline geomean keeps the established `systems` set and
    /// regression checks compare like with like across PRs.
    pub fastpath_runs: Vec<SystemResult>,
    /// The set-sharding A/B: one single run at 1, 2, and 4 shards,
    /// interleaved in the same measurement window. Shard counts the
    /// host cannot run in parallel are skipped (see
    /// [`host_parallelism`](Self::host_parallelism)), so a 2-core CI
    /// box reports `run/shards{1,2}` and no `run/shards4` section —
    /// checks must treat missing sections as "not measurable here",
    /// not as a regression.
    pub shard_runs: Vec<SystemResult>,
    /// `std::thread::available_parallelism()` at measurement time —
    /// the gate for which `shard_runs` sections exist.
    pub host_parallelism: usize,
    /// Geometric mean of the system throughputs — the suite's headline
    /// number and the value regression checks compare.
    pub suite_accesses_per_sec: f64,
}

impl BenchReport {
    /// Serializes the report (the `BENCH_*.json` payload).
    pub fn to_value(&self) -> Value {
        let kernels = self.kernels.iter().fold(Value::object(), |o, k| {
            o.with(&k.name, Value::f64(k.ns_per_iter))
        });
        let systems = self.systems.iter().fold(Value::object(), |o, s| {
            o.with(
                &s.name,
                Value::object()
                    .with("accesses", Value::u64(s.accesses))
                    .with("wall_secs", Value::f64(s.wall_secs))
                    .with("accesses_per_sec", Value::f64(s.accesses_per_sec)),
            )
        });
        let sweeps = self.sweep_modes.iter().fold(Value::object(), |o, s| {
            o.with(
                &s.name,
                Value::object()
                    .with("cells", Value::u64(s.cells))
                    .with("accesses", Value::u64(s.accesses))
                    .with("wall_secs", Value::f64(s.wall_secs))
                    .with("accesses_per_sec", Value::f64(s.accesses_per_sec)),
            )
        });
        let fastpath_runs = self.fastpath_runs.iter().fold(Value::object(), |o, s| {
            o.with(
                &s.name,
                Value::object()
                    .with("accesses", Value::u64(s.accesses))
                    .with("wall_secs", Value::f64(s.wall_secs))
                    .with("accesses_per_sec", Value::f64(s.accesses_per_sec)),
            )
        });
        let shard_runs = self.shard_runs.iter().fold(Value::object(), |o, s| {
            o.with(
                &s.name,
                Value::object()
                    .with("accesses", Value::u64(s.accesses))
                    .with("wall_secs", Value::f64(s.wall_secs))
                    .with("accesses_per_sec", Value::f64(s.accesses_per_sec)),
            )
        });
        Value::object()
            .with("schema", Value::str("slip-bench/1"))
            .with(
                "mode",
                Value::str(if self.quick { "quick" } else { "full" }),
            )
            .with("kernels_ns_per_iter", kernels)
            .with("systems", systems)
            .with("sweep_modes", sweeps)
            .with("fastpath_runs", fastpath_runs)
            .with("shard_runs", shard_runs)
            .with("host_parallelism", Value::u64(self.host_parallelism as u64))
            .with(
                "suite_accesses_per_sec",
                Value::f64(self.suite_accesses_per_sec),
            )
    }
}

/// Times `f` with a calibrated loop; returns best ns/iter.
///
/// Calibration mirrors the bench-crate harness: grow the iteration
/// count tenfold until one batch exceeds 10 ms, size batches for
/// `target_sample` seconds, then keep the best of `samples` batches.
pub fn calibrated_ns<T>(mut f: impl FnMut() -> T, target_sample: f64, samples: usize) -> f64 {
    let mut iters: u64 = 1;
    let per_iter = loop {
        let t = BenchClock::start();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let secs = t.elapsed_secs();
        if secs > 0.01 {
            break secs / iters as f64;
        }
        iters = iters.saturating_mul(10);
    };
    // Keep each batch at or above the 10 ms calibration floor so the
    // CPU clock's tick granularity stays small relative to a sample.
    let iters = ((target_sample.max(0.01) / per_iter) as u64).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = BenchClock::start();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed_secs() / iters as f64);
    }
    best * 1e9
}

fn kernel_benches(quick: bool) -> Vec<KernelResult> {
    use cache_sim::{
        AccessClass, AccessKind, BaselinePolicy, CacheLevel, FillRequest, LineAddr, Lru,
    };
    use slip_core::{EnergyOptimizerUnit, LevelModelParams, RdDistribution};

    let (target, samples) = if quick { (0.02, 3) } else { (0.05, 5) };
    let mut out = Vec::new();

    // EOU consult: the per-recompute policy kernel.
    {
        let params = LevelModelParams::from_level(
            &energy_model::TECH_45NM.l2,
            energy_model::TECH_45NM.l3.mean_access(),
        );
        let mut eou = EnergyOptimizerUnit::new(&params);
        let mut dist = RdDistribution::paper_default();
        for bin in [0usize, 0, 1, 3, 3, 2, 0, 3] {
            dist.observe(bin);
        }
        out.push(KernelResult {
            name: "eou/optimize".to_owned(),
            ns_per_iter: calibrated_ns(|| eou.optimize(&dist), target, samples),
        });
    }

    // Cache-level probe + fill kernels on the paper L2 geometry.
    let config = SystemConfig::paper_45nm(PolicyKind::Baseline);
    {
        let mut cache = CacheLevel::new("L2", config.l2_geometry());
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        cache.fill(FillRequest::new(LineAddr(7)), 0, &mut policy, &mut repl);
        out.push(KernelResult {
            name: "cache/hit_lookup".to_owned(),
            ns_per_iter: calibrated_ns(
                || {
                    cache.access(
                        LineAddr(7),
                        AccessKind::Read,
                        AccessClass::Demand,
                        0,
                        &mut policy,
                        &mut repl,
                    )
                },
                target,
                samples,
            ),
        });
    }
    {
        let mut cache = CacheLevel::new("L2", config.l2_geometry());
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        let mut next = 0u64;
        out.push(KernelResult {
            name: "cache/miss_plus_fill".to_owned(),
            ns_per_iter: calibrated_ns(
                || {
                    next += 1;
                    let line = LineAddr(next);
                    cache.access(
                        line,
                        AccessKind::Read,
                        AccessClass::Demand,
                        0,
                        &mut policy,
                        &mut repl,
                    );
                    cache.fill(FillRequest::new(line), 0, &mut policy, &mut repl)
                },
                target,
                samples,
            ),
        });
    }

    // Widened SWAR tag probe: a full 16-way set compared as u64×4 lane
    // groups in one pass. The set is filled completely and the probed
    // line sits at the highest way, so every probe runs the whole wide
    // pass plus one full-address verify — the hit-path worst case.
    {
        let mut cache = CacheLevel::new("L2", config.l2_geometry());
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        let sets = config.l2_geometry().sets as u64;
        let ways = config.l2_geometry().ways as u64;
        for i in 0..ways {
            cache.fill(
                FillRequest::new(LineAddr(7 + i * sets)),
                i,
                &mut policy,
                &mut repl,
            );
        }
        let line = LineAddr(7 + (ways - 1) * sets);
        out.push(KernelResult {
            name: "probe/wide".to_owned(),
            ns_per_iter: calibrated_ns(|| cache.probe_way(line), target, samples),
        });
    }

    // SoA L1 fast-hit kernels: the memoized repeat touch, and the SWAR
    // probe + packed-stack update that runs when the way memo misses —
    // the two costs the hit-run scanner pays per retired hit.
    {
        let mut cache = config.build_l1();
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        let line = LineAddr(7);
        cache.fill(FillRequest::new(line), 0, &mut policy, &mut repl);
        out.push(KernelResult {
            name: "cache/fast_hit_memo".to_owned(),
            ns_per_iter: calibrated_ns(|| cache.try_demand_hit(line, false), target, samples),
        });
        // Alternate two same-set lines so every touch misses the memo.
        let other = LineAddr(7 + cache.geometry().sets as u64);
        cache.fill(FillRequest::new(other), 0, &mut policy, &mut repl);
        let mut flip = false;
        out.push(KernelResult {
            name: "cache/fast_hit_probe".to_owned(),
            ns_per_iter: calibrated_ns(
                || {
                    flip = !flip;
                    cache.try_demand_hit(if flip { other } else { line }, false)
                },
                target,
                samples,
            ),
        });
    }

    // EOU argmin over all 2^S SLIPs: the 4-row SIMD-style dot/argmin
    // against its scalar reference, same distribution, so the report
    // shows the widening win directly.
    {
        let params = LevelModelParams::from_level(
            &energy_model::TECH_45NM.l3,
            energy_model::TECH_45NM.dram_line_energy(),
        );
        let eou = EnergyOptimizerUnit::new(&params);
        let mut dist = RdDistribution::paper_default();
        for bin in [0usize, 1, 1, 2, 3, 0, 2, 3, 3] {
            dist.observe(bin);
        }
        let probs = dist.probabilities();
        out.push(KernelResult {
            name: "eou/simd".to_owned(),
            ns_per_iter: calibrated_ns(|| eou.best_slip(&probs), target, samples),
        });
        out.push(KernelResult {
            name: "eou/scalar".to_owned(),
            ns_per_iter: calibrated_ns(|| eou.best_slip_scalar(&probs), target, samples),
        });
    }

    // Trace synthesis vs materialized replay: the per-access generation
    // cost the pipeline overlaps (pipelined) or amortizes across a
    // group (shared), and the unpack cost that replaces it. Their ratio
    // bounds the sweep-mode win.
    {
        let spec = workloads::workload("gcc").expect("known benchmark");
        let seed = config.seed;
        let len: u64 = 1 << 16;
        let mut trace = spec.trace(len, seed);
        out.push(KernelResult {
            name: "trace/generate".to_owned(),
            ns_per_iter: calibrated_ns(
                || match trace.next() {
                    Some(a) => a,
                    None => {
                        trace = spec.trace(len, seed);
                        trace.next().expect("nonempty trace")
                    }
                },
                target,
                samples,
            ),
        });
        let buffer = TraceBuffer::materialize(spec.trace(len, seed));
        let mut replay = buffer.iter();
        out.push(KernelResult {
            name: "trace/replay".to_owned(),
            ns_per_iter: calibrated_ns(
                || match replay.next() {
                    Some(a) => a,
                    None => {
                        replay = buffer.iter();
                        replay.next().expect("nonempty buffer")
                    }
                },
                target,
                samples,
            ),
        });
    }
    out
}

fn system_benches(quick: bool) -> Vec<SystemResult> {
    let accesses: u64 = if quick { 100_000 } else { 400_000 };
    let reps = if quick { 3 } else { 7 };
    let configs = [
        ("gcc", PolicyKind::Baseline),
        ("gcc", PolicyKind::SlipAbp),
        ("soplex", PolicyKind::SlipAbp),
        // TLB-pressure pointer chase: translation-path wins and
        // regressions (the hit-run scanner's TLB-residency gating,
        // TLB and page-table costs) show up here first.
        ("mcf", PolicyKind::SlipAbp),
    ];
    // Pre-generate the traces so synthesis cost stays out of the timed
    // region; the systems replay them by copy.
    let traces: Vec<Vec<cache_sim::Access>> = configs
        .iter()
        .map(|(bench, policy)| {
            let spec = workloads::workload(bench).expect("known benchmark");
            spec.trace(accesses, SystemConfig::paper_45nm(*policy).seed)
                .collect()
        })
        .collect();
    // Interleave repetitions round-robin across the configurations: a
    // multi-second co-tenant burst then taints one repetition of each
    // run instead of every repetition of one, so best-of stays clean.
    let mut best = [f64::INFINITY; 4];
    for _ in 0..reps {
        for (i, (bench, policy)) in configs.iter().enumerate() {
            let mut sys = SingleCoreSystem::new(SystemConfig::paper_45nm(*policy));
            let t = BenchClock::start();
            sys.run(traces[i].iter().copied());
            let secs = t.elapsed_secs();
            std::hint::black_box(sys.finish(*bench));
            best[i] = best[i].min(secs);
        }
    }
    configs
        .iter()
        .zip(best)
        .map(|((bench, policy), secs)| SystemResult {
            name: format!("system/{bench}_{}", policy.label()),
            accesses,
            wall_secs: secs,
            accesses_per_sec: accesses as f64 / secs,
        })
        .collect()
}

/// The trace-mode A/B: one small benchmark × policy grid, executed end
/// to end (trace handling included, `--jobs 1`) under each
/// [`TraceMode`], repetitions interleaved round-robin so every mode
/// sees the same measurement window. Timed on the wall clock — the
/// pipelined mode's generation runs on a producer thread the calling
/// thread's CPU clock cannot see.
fn sweep_mode_benches(quick: bool) -> Vec<SweepModeResult> {
    let accesses: u64 = if quick { 40_000 } else { 200_000 };
    let reps = if quick { 3 } else { 5 };
    let options = || {
        SuiteOptions::paper_full()
            .with_benchmarks(&["gcc", "soplex"])
            .with_accesses(accesses)
    };
    let cells = (options().benchmarks.len() * options().policies.len()) as u64;
    let modes = [
        TraceMode::Inline,
        TraceMode::Pipelined,
        TraceMode::Shared,
        TraceMode::Fused,
    ];
    let mut best = [f64::INFINITY; 4];
    for _ in 0..reps {
        for (i, mode) in modes.iter().enumerate() {
            let sweep = SweepConfig::serial().with_trace_mode(*mode);
            let t = Instant::now();
            let suite = SuiteResults::run_with(options(), &sweep).expect("journal-less sweep");
            let secs = t.elapsed().as_secs_f64();
            std::hint::black_box(&suite);
            best[i] = best[i].min(secs);
        }
    }
    modes
        .iter()
        .zip(best)
        .map(|(mode, secs)| SweepModeResult {
            name: format!("sweep/{}", mode.label()),
            cells,
            accesses: cells * accesses,
            wall_secs: secs,
            accesses_per_sec: (cells * accesses) as f64 / secs,
        })
        .collect()
}

/// Hit-run scanner throughput: a Baseline system over a trace that
/// stays L1-resident after its first pass — each line touched four
/// times in a row (a cache line's worth of sequential word touches)
/// cycling a half-capacity working set — so nearly every access
/// retires through the batched fast path, three quarters of them off
/// the way memo. The ceiling the scanner approaches as hit rate → 1.
fn fastpath_run_benches(quick: bool) -> Vec<SystemResult> {
    let accesses: u64 = if quick { 400_000 } else { 2_000_000 };
    let reps = if quick { 3 } else { 5 };
    let config = SystemConfig::paper_45nm(PolicyKind::Baseline);
    let lines = (config.build_l1().geometry().total_lines() / 2) as u64;
    let trace: Vec<cache_sim::Access> = (0..accesses)
        .map(|i| cache_sim::Access::read(((i >> 2) % lines) * 64))
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut sys = SingleCoreSystem::new(config.clone());
        let t = BenchClock::start();
        sys.run(trace.iter().copied());
        let secs = t.elapsed_secs();
        std::hint::black_box(sys.finish("hit_run"));
        best = best.min(secs);
    }
    vec![SystemResult {
        name: "system/hit_run".to_owned(),
        accesses,
        wall_secs: best,
        accesses_per_sec: accesses as f64 / best,
    }]
}

/// The set-sharding A/B: one single run (gcc/Baseline over one
/// pre-materialized trace) executed at 1, 2, and 4 shards, repetitions
/// interleaved round-robin so every shard count sees the same
/// measurement window. Timed on the wall clock — shard workers run on
/// their own threads, invisible to the calling thread's CPU clock. The
/// shards=1 entry takes the serial fallback path, so the ratio is the
/// true single-run parallel speedup. Shard counts exceeding
/// `host_parallelism` are skipped: oversubscribed shard workers would
/// measure the scheduler, not the sharding.
fn shard_run_benches(quick: bool, host_parallelism: usize) -> Vec<SystemResult> {
    let accesses: u64 = if quick { 150_000 } else { 600_000 };
    let reps = if quick { 3 } else { 5 };
    let config = SystemConfig::paper_45nm(PolicyKind::Baseline);
    let spec = workloads::workload("gcc").expect("known benchmark");
    let buffer = TraceBuffer::materialize(spec.trace(accesses, config.seed));
    let shard_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&s| s <= host_parallelism)
        .collect();
    let mut best = vec![f64::INFINITY; shard_counts.len()];
    for _ in 0..reps {
        for (i, &shards) in shard_counts.iter().enumerate() {
            let t = Instant::now();
            let r = crate::shard::run_buffer_sharded(config.clone(), "gcc", &buffer, 0, shards);
            let secs = t.elapsed().as_secs_f64();
            std::hint::black_box(r);
            best[i] = best[i].min(secs);
        }
    }
    shard_counts
        .iter()
        .zip(best)
        .map(|(&shards, secs)| SystemResult {
            name: format!("run/shards{shards}"),
            accesses,
            wall_secs: secs,
            accesses_per_sec: accesses as f64 / secs,
        })
        .collect()
}

/// Runs the whole suite. `quick` trades precision for CI speed.
pub fn run(quick: bool) -> BenchReport {
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let kernels = kernel_benches(quick);
    let systems = system_benches(quick);
    let sweep_modes = sweep_mode_benches(quick);
    let fastpath_runs = fastpath_run_benches(quick);
    let shard_runs = shard_run_benches(quick, host_parallelism);
    let geomean =
        systems.iter().map(|s| s.accesses_per_sec.ln()).sum::<f64>() / systems.len() as f64;
    BenchReport {
        quick,
        kernels,
        systems,
        sweep_modes,
        fastpath_runs,
        shard_runs,
        host_parallelism,
        suite_accesses_per_sec: geomean.exp(),
    }
}

/// Extracts the comparable throughput from a baseline `BENCH_*.json`
/// value: prefers the mode-matching `after_quick`/`after` section of a
/// committed before/after file, falling back to a bare report.
pub fn baseline_suite_rate(baseline: &Value, quick: bool) -> Option<f64> {
    let section = if quick {
        baseline
            .get("after_quick")
            .or_else(|| baseline.get("after"))
    } else {
        baseline.get("after")
    }
    .unwrap_or(baseline);
    section.get("suite_accesses_per_sec")?.as_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_ns_is_positive_and_finite() {
        let ns = calibrated_ns(|| std::hint::black_box(3u64).wrapping_mul(7), 0.001, 2);
        assert!(ns.is_finite() && ns > 0.0);
    }

    #[test]
    fn report_serializes_with_headline_rate() {
        let report = BenchReport {
            quick: true,
            kernels: vec![KernelResult {
                name: "k/one".into(),
                ns_per_iter: 12.5,
            }],
            systems: vec![SystemResult {
                name: "system/x".into(),
                accesses: 1000,
                wall_secs: 0.5,
                accesses_per_sec: 2000.0,
            }],
            sweep_modes: vec![SweepModeResult {
                name: "sweep/shared".into(),
                cells: 10,
                accesses: 10_000,
                wall_secs: 2.0,
                accesses_per_sec: 5000.0,
            }],
            fastpath_runs: vec![SystemResult {
                name: "system/hit_run".into(),
                accesses: 4000,
                wall_secs: 0.1,
                accesses_per_sec: 40_000.0,
            }],
            shard_runs: vec![SystemResult {
                name: "run/shards4".into(),
                accesses: 1000,
                wall_secs: 0.125,
                accesses_per_sec: 8000.0,
            }],
            host_parallelism: 8,
            suite_accesses_per_sec: 2000.0,
        };
        let v = report.to_value();
        assert_eq!(v.get("mode").unwrap().as_str(), Some("quick"));
        let sweeps = v.get("sweep_modes").unwrap();
        assert_eq!(
            sweeps
                .get("sweep/shared")
                .unwrap()
                .get("accesses_per_sec")
                .unwrap()
                .as_f64(),
            Some(5000.0)
        );
        assert_eq!(
            v.get("suite_accesses_per_sec").unwrap().as_f64(),
            Some(2000.0)
        );
        assert_eq!(
            v.get("shard_runs")
                .unwrap()
                .get("run/shards4")
                .unwrap()
                .get("accesses_per_sec")
                .unwrap()
                .as_f64(),
            Some(8000.0)
        );
        let k = v.get("kernels_ns_per_iter").unwrap();
        assert_eq!(k.get("k/one").unwrap().as_f64(), Some(12.5));
        assert_eq!(v.get("host_parallelism").unwrap().as_f64(), Some(8.0));
        // Round-trips through the JSON text form.
        let parsed = Value::parse(&v.to_json()).unwrap();
        assert_eq!(
            baseline_suite_rate(&parsed, false),
            Some(2000.0),
            "bare report works as baseline"
        );
    }

    #[test]
    fn baseline_rate_prefers_mode_matching_section() {
        let file = Value::object()
            .with(
                "after",
                Value::object().with("suite_accesses_per_sec", Value::f64(100.0)),
            )
            .with(
                "after_quick",
                Value::object().with("suite_accesses_per_sec", Value::f64(80.0)),
            );
        assert_eq!(baseline_suite_rate(&file, false), Some(100.0));
        assert_eq!(baseline_suite_rate(&file, true), Some(80.0));
    }
}
