//! JSON codec for [`SimResult`]: the journal payload format.
//!
//! [`encode_result`] / [`decode_result`] round-trip every field
//! bit-exactly (integer counters stay integers; energies are f64 pJ,
//! which Rust prints with shortest-round-trip formatting), so a result
//! restored from a journal is indistinguishable from a fresh run. The
//! determinism tier-1 test relies on this to compare runs by their
//! encoded form.

use crate::config::PolicyKind;
use crate::result::SimResult;
use cache_sim::CacheStats;
use energy_model::{Energy, EnergyAccount, EnergyCategory};
use mem_substrate::MmuStats;
use sweep_runner::json::Value;

fn u64_array(values: &[u64]) -> Value {
    Value::Array(values.iter().map(|&v| Value::u64(v)).collect())
}

fn decode_u64_array(v: &Value) -> Option<Vec<u64>> {
    v.as_array()?.iter().map(Value::as_u64).collect()
}

/// Encodes an energy account as its 8 per-category pJ values in
/// [`EnergyCategory::ALL`] order.
fn encode_account(a: &EnergyAccount) -> Value {
    Value::Array(
        EnergyCategory::ALL
            .iter()
            .map(|&c| Value::f64(a.get(c).as_pj()))
            .collect(),
    )
}

fn decode_account(v: &Value) -> Option<EnergyAccount> {
    let pj = v.as_array()?;
    if pj.len() != EnergyCategory::ALL.len() {
        return None;
    }
    let mut a = EnergyAccount::new();
    for (&c, v) in EnergyCategory::ALL.iter().zip(pj) {
        a.charge(c, Energy::from_pj(v.as_f64()?));
    }
    Some(a)
}

fn encode_stats(s: &CacheStats) -> Value {
    Value::object()
        .with("demand_accesses", Value::u64(s.demand_accesses))
        .with("demand_hits", Value::u64(s.demand_hits))
        .with("demand_misses", Value::u64(s.demand_misses))
        .with("metadata_accesses", Value::u64(s.metadata_accesses))
        .with("metadata_hits", Value::u64(s.metadata_hits))
        .with("metadata_misses", Value::u64(s.metadata_misses))
        .with("hits_per_sublevel", u64_array(&s.hits_per_sublevel))
        .with("insertions", Value::u64(s.insertions))
        .with("insertion_class", u64_array(&s.insertion_class))
        .with("bypasses", Value::u64(s.bypasses))
        .with("movements", Value::u64(s.movements))
        .with("promotions", Value::u64(s.promotions))
        .with("writebacks", Value::u64(s.writebacks))
        .with("evictions", Value::u64(s.evictions))
        .with("nr_histogram", u64_array(&s.nr_histogram))
        .with("writeback_hits", Value::u64(s.writeback_hits))
        .with("writeback_misses", Value::u64(s.writeback_misses))
}

fn decode_stats(v: &Value) -> Option<CacheStats> {
    let field = |k: &str| v.get(k).and_then(Value::as_u64);
    let fixed4 = |k: &str| -> Option<[u64; 4]> { decode_u64_array(v.get(k)?)?.try_into().ok() };
    Some(CacheStats {
        demand_accesses: field("demand_accesses")?,
        demand_hits: field("demand_hits")?,
        demand_misses: field("demand_misses")?,
        metadata_accesses: field("metadata_accesses")?,
        metadata_hits: field("metadata_hits")?,
        metadata_misses: field("metadata_misses")?,
        hits_per_sublevel: decode_u64_array(v.get("hits_per_sublevel")?)?,
        insertions: field("insertions")?,
        insertion_class: fixed4("insertion_class")?,
        bypasses: field("bypasses")?,
        movements: field("movements")?,
        promotions: field("promotions")?,
        writebacks: field("writebacks")?,
        evictions: field("evictions")?,
        nr_histogram: fixed4("nr_histogram")?,
        writeback_hits: field("writeback_hits")?,
        writeback_misses: field("writeback_misses")?,
    })
}

fn encode_mmu(s: &MmuStats) -> Value {
    Value::object()
        .with("tlb_hits", Value::u64(s.tlb_hits))
        .with("tlb_misses", Value::u64(s.tlb_misses))
        .with("metadata_fetches", Value::u64(s.metadata_fetches))
        .with("metadata_writebacks", Value::u64(s.metadata_writebacks))
        .with("slip_recomputes", Value::u64(s.slip_recomputes))
        .with("tlb_block_cycles", Value::u64(s.tlb_block_cycles))
}

fn decode_mmu(v: &Value) -> Option<MmuStats> {
    let field = |k: &str| v.get(k).and_then(Value::as_u64);
    Some(MmuStats {
        tlb_hits: field("tlb_hits")?,
        tlb_misses: field("tlb_misses")?,
        metadata_fetches: field("metadata_fetches")?,
        metadata_writebacks: field("metadata_writebacks")?,
        slip_recomputes: field("slip_recomputes")?,
        tlb_block_cycles: field("tlb_block_cycles")?,
    })
}

/// Encodes a full simulation result as a JSON object.
pub fn encode_result(r: &SimResult) -> Value {
    let mmu = match &r.mmu_stats {
        Some(s) => encode_mmu(s),
        None => Value::Null,
    };
    Value::object()
        .with("workload", Value::str(&*r.workload))
        .with("policy", Value::str(r.policy.label()))
        .with("accesses", Value::u64(r.accesses))
        .with("cycles", Value::u64(r.cycles))
        .with("l1_stats", encode_stats(&r.l1_stats))
        .with("l2_stats", encode_stats(&r.l2_stats))
        .with("l3_stats", encode_stats(&r.l3_stats))
        .with("l1_energy", encode_account(&r.l1_energy))
        .with("l2_energy", encode_account(&r.l2_energy))
        .with("l3_energy", encode_account(&r.l3_energy))
        .with("dram_reads", Value::u64(r.dram_reads))
        .with("dram_writes", Value::u64(r.dram_writes))
        .with("dram_metadata_reads", Value::u64(r.dram_metadata_reads))
        .with("dram_metadata_writes", Value::u64(r.dram_metadata_writes))
        .with("dram_energy", encode_account(&r.dram_energy))
        .with("mmu_stats", mmu)
        .with("eou_energy_pj", Value::f64(r.eou_energy.as_pj()))
        .with("core_energy_pj", Value::f64(r.core_energy.as_pj()))
}

/// Decodes a result encoded by [`encode_result`]. Returns `None` on any
/// missing or ill-typed field (schema drift → the cell re-runs).
pub fn decode_result(v: &Value) -> Option<SimResult> {
    let policy = PolicyKind::parse(v.get("policy")?.as_str()?)?;
    let mmu_stats = match v.get("mmu_stats")? {
        Value::Null => None,
        m => Some(decode_mmu(m)?),
    };
    Some(SimResult {
        workload: v.get("workload")?.as_str()?.to_owned(),
        policy,
        accesses: v.get("accesses")?.as_u64()?,
        cycles: v.get("cycles")?.as_u64()?,
        l1_stats: decode_stats(v.get("l1_stats")?)?,
        l2_stats: decode_stats(v.get("l2_stats")?)?,
        l3_stats: decode_stats(v.get("l3_stats")?)?,
        l1_energy: decode_account(v.get("l1_energy")?)?,
        l2_energy: decode_account(v.get("l2_energy")?)?,
        l3_energy: decode_account(v.get("l3_energy")?)?,
        dram_reads: v.get("dram_reads")?.as_u64()?,
        dram_writes: v.get("dram_writes")?.as_u64()?,
        dram_metadata_reads: v.get("dram_metadata_reads")?.as_u64()?,
        dram_metadata_writes: v.get("dram_metadata_writes")?.as_u64()?,
        dram_energy: decode_account(v.get("dram_energy")?)?,
        mmu_stats,
        eou_energy: Energy::from_pj(v.get("eou_energy_pj")?.as_f64()?),
        core_energy: Energy::from_pj(v.get("core_energy_pj")?.as_f64()?),
        // Wall time and the execution-path label are host-specific, so
        // they stay out of the bit-exact payload; decoded results are
        // untimed and unlabeled.
        wall_time_secs: 0.0,
        exec_mode: None,
    })
}

/// The observability metrics object journaled (and shown in progress
/// lines) for one suite cell.
pub fn result_metrics(r: &SimResult, wall: std::time::Duration) -> Value {
    let secs = wall.as_secs_f64();
    let rate = if secs > 0.0 {
        r.accesses as f64 / secs
    } else {
        0.0
    };
    Value::object()
        .with("accesses", Value::u64(r.accesses))
        .with("accesses_per_sec", Value::f64(rate))
        .with("cell_wall_secs", Value::f64(secs))
        .with("sim_wall_secs", Value::f64(r.wall_time_secs))
        .with("l2_hit_rate", Value::f64(r.l2_stats.demand_hit_rate()))
        .with("l3_hit_rate", Value::f64(r.l3_stats.demand_hit_rate()))
        .with("l2_energy_pj", Value::f64(r.l2_total_energy().as_pj()))
        .with("l3_energy_pj", Value::f64(r.l3_total_energy().as_pj()))
        .with(
            "full_system_energy_pj",
            Value::f64(r.full_system_energy().as_pj()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::system::run_workload;

    #[test]
    fn real_results_round_trip_bit_exactly() {
        for policy in [PolicyKind::Baseline, PolicyKind::SlipAbp] {
            let spec = workloads::workload("soplex").unwrap();
            let r = run_workload(SystemConfig::paper_45nm(policy), &spec, 20_000);
            let encoded = encode_result(&r);
            let decoded = decode_result(&encoded).expect("decodes");
            // Bit-exact: re-encoding the decoded result yields the
            // same JSON text, through a parse round-trip too.
            assert_eq!(encode_result(&decoded).to_json(), encoded.to_json());
            let reparsed = Value::parse(&encoded.to_json()).expect("parses");
            let decoded2 = decode_result(&reparsed).expect("decodes");
            assert_eq!(encode_result(&decoded2).to_json(), encoded.to_json());
            assert_eq!(decoded.policy, policy);
            assert_eq!(decoded.accesses, r.accesses);
            assert_eq!(decoded.cycles, r.cycles);
            assert_eq!(decoded.l2_stats, r.l2_stats);
            assert_eq!(decoded.mmu_stats.is_some(), policy.is_slip());
        }
    }

    #[test]
    fn decode_rejects_schema_drift() {
        let spec = workloads::workload("gcc").unwrap();
        let r = run_workload(SystemConfig::paper_45nm(PolicyKind::Baseline), &spec, 5_000);
        let good = encode_result(&r);
        assert!(decode_result(&good).is_some());
        // Remove a field: decode must fail, not panic.
        let json = good.to_json().replace("\"cycles\"", "\"cycels\"");
        let bad = Value::parse(&json).unwrap();
        assert!(decode_result(&bad).is_none());
        // Unknown policy label: also a clean None.
        let json = good.to_json().replace("\"baseline\"", "\"mystery\"");
        let bad = Value::parse(&json).unwrap();
        assert!(decode_result(&bad).is_none());
    }

    #[test]
    fn wall_time_stays_out_of_the_payload_and_survives_resume() {
        // `reset_measurements()` zeroes counters but the driver stamps
        // `wall_time_secs` afterwards — the payload must not absorb that
        // host-specific asymmetry, or resumed sweeps would stop being
        // bit-identical to fresh ones.
        let spec = workloads::workload("gcc").unwrap();
        let mut r = run_workload(SystemConfig::paper_45nm(PolicyKind::SlipAbp), &spec, 5_000);
        r.wall_time_secs = 1.234;
        r.exec_mode = Some("fused");
        let payload = encode_result(&r).to_json();
        // No timing- or host-execution-derived field may appear in the
        // journal payload.
        for key in [
            "wall_time",
            "wall_secs",
            "accesses_per_sec",
            "exec_mode",
            "fused",
        ] {
            assert!(!payload.contains(key), "payload leaks {key:?}: {payload}");
        }
        // Decoding (a journal resume) yields an untimed, unlabeled
        // result whose re-encoding is byte-identical to the original's.
        let decoded = decode_result(&Value::parse(&payload).unwrap()).unwrap();
        assert_eq!(decoded.wall_time_secs, 0.0);
        assert_eq!(decoded.exec_mode, None);
        assert_eq!(encode_result(&decoded).to_json(), payload);
        // The timing fields live in the metrics object instead, where
        // a zero-wall cell reports rate 0 rather than dividing by zero.
        let m = result_metrics(&r, std::time::Duration::ZERO);
        assert_eq!(m.get("accesses_per_sec").unwrap().as_f64().unwrap(), 0.0);
        assert_eq!(m.get("sim_wall_secs").unwrap().as_f64().unwrap(), 1.234);
    }

    #[test]
    fn metrics_carry_the_progress_keys() {
        let spec = workloads::workload("gcc").unwrap();
        let r = run_workload(SystemConfig::paper_45nm(PolicyKind::Baseline), &spec, 5_000);
        let m = result_metrics(&r, std::time::Duration::from_millis(50));
        assert!(m.get("accesses_per_sec").unwrap().as_f64().unwrap() > 0.0);
        let l2 = m.get("l2_hit_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&l2));
        assert!(m.get("full_system_energy_pj").unwrap().as_f64().unwrap() > 0.0);
    }
}
