//! Per-benchmark breakdown of trace-generation vs simulation cost.
//!
//! Prints, for every suite workload, the nanoseconds per access spent
//! synthesizing the trace and simulating it (baseline policy), plus
//! generation's share of an inline cell — the number that bounds what
//! the shared-trace sweep mode can save (DESIGN.md §9).

use std::time::Instant;

fn main() {
    let n: u64 = 400_000;
    println!(
        "{:<12} {:>8} {:>8} {:>6}",
        "bench", "gen ns", "sim ns", "gen%"
    );
    for &name in workloads::BENCHMARK_NAMES.iter() {
        let spec = workloads::workload(name).unwrap();
        let t = Instant::now();
        let mut sink = 0u64;
        for a in spec.trace(n, 0x511b) {
            sink = sink.wrapping_add(a.addr);
        }
        let gen_ns = t.elapsed().as_secs_f64() * 1e9 / n as f64;
        std::hint::black_box(sink);
        let config =
            sim_engine::config::SystemConfig::paper_45nm(sim_engine::config::PolicyKind::Baseline);
        let t = Instant::now();
        let r = sim_engine::run_workload(config, &spec, n);
        let total_ns = t.elapsed().as_secs_f64() * 1e9 / n as f64;
        std::hint::black_box(&r);
        let sim_ns = total_ns - gen_ns;
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>5.1}%",
            name,
            gen_ns,
            sim_ns,
            100.0 * gen_ns / total_ns
        );
    }
}
