//! Standalone replay of the L1-resident hit-run kernel — the same
//! trace `slip bench` times as `system/hit_run` — printing the
//! best-of-N accesses/sec. Being a plain example over the public
//! `SingleCoreSystem` API, the identical source compiles against
//! older trees too, which is how BENCH_9.json's before/after numbers
//! for this kernel were taken on the same window.
//!
//! Usage: `cargo run --release -p sim-engine --example hit_run [accesses]`

use cache_sim::Access;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::system::SingleCoreSystem;

fn main() {
    let accesses: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    // Half the L1's 512 lines, touched 4x each before moving on: every
    // post-warmup access is an L1 hit, most through the way memo.
    let lines: u64 = 256;
    let trace: Vec<Access> = (0..accesses)
        .map(|i| Access::read(((i >> 2) % lines) * 64))
        .collect();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let mut sys = SingleCoreSystem::new(SystemConfig::paper_45nm(PolicyKind::Baseline));
        let t = std::time::Instant::now();
        sys.run(trace.iter().copied());
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(sys.finish("hit_run"));
        best = best.min(secs);
    }
    println!("{:.0}", accesses as f64 / best);
}
