//! Tier-1 guarantees of the sweep engine: a parallel sweep is
//! bit-identical to a serial one, and a journaled sweep resumes without
//! re-running (or altering) completed cells.

use sim_engine::codec;
use sim_engine::config::PolicyKind;
use sim_engine::experiments::{SuiteOptions, SuiteResults};
use sim_engine::SweepConfig;

fn reduced_options() -> SuiteOptions {
    SuiteOptions::paper_full()
        .with_benchmarks(&["gcc", "soplex", "mcf"])
        .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp])
        .with_accesses(40_000)
        .with_warmup(5_000)
}

/// Canonical fingerprint of one cell: the exact journal payload text.
/// `SimResult` has no `PartialEq`, and going through the codec also
/// proves every compared field survives a journal round-trip.
fn fingerprint(suite: &SuiteResults, bench: &str, policy: PolicyKind) -> String {
    codec::encode_result(suite.get(bench, policy)).to_json()
}

#[test]
fn four_workers_match_serial_bit_exactly() {
    let serial = SuiteResults::run_with(reduced_options(), &SweepConfig::serial()).unwrap();
    let parallel = SuiteResults::run_with(reduced_options(), &SweepConfig::with_jobs(4)).unwrap();
    for &bench in serial.benchmarks() {
        for &policy in &serial.options.policies {
            assert_eq!(
                fingerprint(&serial, bench, policy),
                fingerprint(&parallel, bench, policy),
                "cell ({bench}, {policy}) differs between jobs=1 and jobs=4"
            );
        }
    }
    // Spot-check the fields the paper tables are built from.
    for &bench in serial.benchmarks() {
        let (s, p) = (
            serial.get(bench, PolicyKind::SlipAbp),
            parallel.get(bench, PolicyKind::SlipAbp),
        );
        assert_eq!(s.l2_total_energy().as_pj(), p.l2_total_energy().as_pj());
        assert_eq!(s.l3_total_energy().as_pj(), p.l3_total_energy().as_pj());
        assert_eq!(s.l2_stats.demand_hits, p.l2_stats.demand_hits);
        assert_eq!(s.l3_stats.demand_hits, p.l3_stats.demand_hits);
        assert_eq!(s.dram_total_traffic(), p.dram_total_traffic());
    }
}

#[test]
fn journaled_suite_resumes_from_completed_cells() {
    let dir = std::env::temp_dir().join(format!(
        "slip-suite-resume-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("suite.jsonl");

    let sweep = SweepConfig {
        journal: Some(journal.clone()),
        ..SweepConfig::with_jobs(2)
    };
    let first = SuiteResults::run_with(reduced_options(), &sweep).unwrap();
    let lines_after_first = std::fs::read_to_string(&journal).unwrap().lines().count();
    // 3 benchmarks x (baseline + slip + slip-abp) cells.
    assert_eq!(lines_after_first, 9);

    // Second run restores every cell from the journal: no new lines,
    // same results bit-for-bit.
    let second = SuiteResults::run_with(reduced_options(), &sweep).unwrap();
    let lines_after_second = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(lines_after_second, lines_after_first, "resume re-ran cells");
    for &bench in first.benchmarks() {
        for &policy in &first.options.policies {
            assert_eq!(
                fingerprint(&first, bench, policy),
                fingerprint(&second, bench, policy),
                "journal restore changed cell ({bench}, {policy})"
            );
        }
    }

    // A sweep with different inputs gets fresh keys: nothing stale is
    // reused, and the journal grows by exactly the new cells.
    let grown = reduced_options().with_accesses(50_000);
    let third = SuiteResults::run_with(grown, &sweep).unwrap();
    let lines_after_third = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(lines_after_third, lines_after_first + 9);
    assert_eq!(third.get("gcc", PolicyKind::SlipAbp).accesses, 50_000);

    std::fs::remove_dir_all(&dir).ok();
}
