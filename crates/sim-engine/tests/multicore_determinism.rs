//! Tier-1 determinism guarantees of the two-core shared-L3 driver and
//! the `TraceMode::Shared` suite path: results are bit-identical across
//! worker counts and trace execution modes.

use sim_engine::codec;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::experiments::{SuiteOptions, SuiteResults};
use sim_engine::multicore::{run_mix, MulticoreResult};
use sim_engine::{run_mix_pipelined, SweepConfig, TraceMode};

const LEN: u64 = 25_000;

/// The first three paper mixes x the two headline policies.
fn cells() -> Vec<((&'static str, &'static str), PolicyKind)> {
    workloads::MULTICORE_MIXES[..3]
        .iter()
        .flat_map(|&mix| [PolicyKind::Baseline, PolicyKind::SlipAbp].map(move |p| (mix, p)))
        .collect()
}

/// `MulticoreResult` has no `PartialEq`; its derived `Debug` prints
/// every counter and every float exactly, which is fingerprint enough
/// for bit-exactness checks (and it carries no wall-clock field).
fn fingerprint(r: &MulticoreResult) -> String {
    format!("{r:?}")
}

fn run_cell(cell: ((&str, &str), PolicyKind)) -> MulticoreResult {
    let ((a, b), policy) = cell;
    let spec_a = workloads::workload(a).expect("known benchmark");
    let spec_b = workloads::workload(b).expect("known benchmark");
    run_mix(SystemConfig::paper_45nm(policy), &spec_a, &spec_b, LEN)
}

#[test]
fn mixes_are_bit_identical_across_worker_counts() {
    let cells = cells();
    let serial = sweep_runner::run_indexed(cells.len(), 1, |i| fingerprint(&run_cell(cells[i])));
    let parallel = sweep_runner::run_indexed(cells.len(), 4, |i| fingerprint(&run_cell(cells[i])));
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s, p,
            "mix cell {:?} differs between jobs=1 and jobs=4",
            cells[i]
        );
    }
}

#[test]
fn pipelined_mixes_match_inline_bit_exactly() {
    for ((a, b), policy) in cells() {
        let spec_a = workloads::workload(a).expect("known benchmark");
        let spec_b = workloads::workload(b).expect("known benchmark");
        let inline = run_mix(SystemConfig::paper_45nm(policy), &spec_a, &spec_b, LEN);
        let piped = run_mix_pipelined(SystemConfig::paper_45nm(policy), &spec_a, &spec_b, LEN);
        assert_eq!(
            fingerprint(&inline),
            fingerprint(&piped),
            "mix ({a}, {b}) under {policy:?} diverges between inline and pipelined traces"
        );
        // Spot-check the fields Figure 16 is built from.
        assert_eq!(inline.l3_energy, piped.l3_energy);
        assert_eq!(inline.dram_total_traffic, piped.dram_total_traffic);
        assert_eq!(inline.l3_stats.demand_hits, piped.l3_stats.demand_hits);
    }
}

#[test]
fn repeated_mixes_are_bit_identical() {
    let cell = (workloads::MULTICORE_MIXES[0], PolicyKind::SlipAbp);
    assert_eq!(fingerprint(&run_cell(cell)), fingerprint(&run_cell(cell)));
}

/// The shared-trace suite path (the default `TraceMode`) must agree
/// bit-for-bit with inline generation and stay deterministic across
/// worker counts; the three modes differ only in throughput.
#[test]
fn shared_trace_mode_is_deterministic_and_matches_inline() {
    let options = || {
        SuiteOptions::paper_full()
            .with_benchmarks(&["gcc", "lbm"])
            .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp])
            .with_accesses(30_000)
            .with_warmup(4_000)
    };
    let suite_fp = |s: &SuiteResults, bench: &str, policy: PolicyKind| {
        codec::encode_result(s.get(bench, policy)).to_json()
    };
    let shared_mode = |jobs| SweepConfig::with_jobs(jobs).with_trace_mode(TraceMode::Shared);

    let shared_1 = SuiteResults::run_with(options(), &shared_mode(1)).unwrap();
    let shared_4 = SuiteResults::run_with(options(), &shared_mode(4)).unwrap();
    let inline = SuiteResults::run_with(
        options(),
        &SweepConfig::with_jobs(4).with_trace_mode(TraceMode::Inline),
    )
    .unwrap();
    for &bench in shared_1.benchmarks() {
        for &policy in &shared_1.options.policies {
            let reference = suite_fp(&shared_1, bench, policy);
            assert_eq!(
                reference,
                suite_fp(&shared_4, bench, policy),
                "shared-mode cell ({bench}, {policy}) differs between jobs=1 and jobs=4"
            );
            assert_eq!(
                reference,
                suite_fp(&inline, bench, policy),
                "cell ({bench}, {policy}) differs between shared and inline trace modes"
            );
        }
    }
}
