//! Golden equivalence: the allocation-free hot path (flat EOU kernel,
//! tag-filtered probes, reusable eviction buffers) produces results
//! bit-identical to the seed reference implementations, serially and
//! under a parallel worker pool.
//!
//! The fingerprint is the exact journal payload text, so every counter
//! and every energy f64 is compared bit-for-bit (wall time is
//! deliberately outside the payload — it is the one field allowed to
//! differ between the two paths).

use sim_engine::codec;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::system::run_workload_with_warmup;
use sweep_runner::pool::run_indexed;

const BENCHMARKS: [&str; 3] = ["gcc", "soplex", "mcf"];
const POLICIES: [PolicyKind; 3] = [PolicyKind::Baseline, PolicyKind::Slip, PolicyKind::SlipAbp];
const ACCESSES: u64 = 30_000;
const WARMUP: u64 = 5_000;

/// Runs one (benchmark, policy) cell and returns its journal payload.
fn cell(index: usize, reference: bool) -> String {
    let bench = BENCHMARKS[index / POLICIES.len()];
    let policy = POLICIES[index % POLICIES.len()];
    let mut config = SystemConfig::paper_45nm(policy);
    config.reference_hot_path = reference;
    let spec = workloads::workload(bench).expect("known benchmark");
    let result = run_workload_with_warmup(config, &spec, ACCESSES, WARMUP);
    codec::encode_result(&result).to_json()
}

#[test]
fn optimized_hot_path_matches_reference_bit_exactly() {
    let cells = BENCHMARKS.len() * POLICIES.len();
    let reference = run_indexed(cells, 1, |i| cell(i, true));
    let optimized = run_indexed(cells, 1, |i| cell(i, false));
    for i in 0..cells {
        assert_eq!(
            reference[i],
            optimized[i],
            "cell ({}, {}) differs between reference and optimized paths",
            BENCHMARKS[i / POLICIES.len()],
            POLICIES[i % POLICIES.len()]
        );
    }
}

#[test]
fn optimized_hot_path_is_stable_under_parallel_workers() {
    let cells = BENCHMARKS.len() * POLICIES.len();
    let serial = run_indexed(cells, 1, |i| cell(i, false));
    let parallel = run_indexed(cells, 4, |i| cell(i, false));
    for i in 0..cells {
        assert_eq!(
            serial[i],
            parallel[i],
            "cell ({}, {}) differs between jobs=1 and jobs=4",
            BENCHMARKS[i / POLICIES.len()],
            POLICIES[i % POLICIES.len()]
        );
    }
    // And the parallel optimized run still matches the reference path.
    let reference = run_indexed(cells, 4, |i| cell(i, true));
    assert_eq!(reference, parallel, "reference/optimized diverge at jobs=4");
}
