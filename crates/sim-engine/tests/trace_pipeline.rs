//! Golden equivalence of the trace pipeline: inline, pipelined,
//! shared-`Arc<TraceBuffer>`, and fused execution must produce
//! bit-identical `SimResult`s for the benchmark × policy grid — at one
//! and four workers, unsharded and set-sharded — and a journal resume
//! across a shared-trace group must stay deterministic. The anchor is
//! the seed golden: each cell re-run through the verbatim reference hot
//! path (`reference_hot_path = true`), compared by its exact journal
//! payload text, the same fingerprint the determinism tier-1 test uses.

use sim_engine::codec;
use sim_engine::config::PolicyKind;
use sim_engine::experiments::{SuiteOptions, SuiteResults};
use sim_engine::system::run_workload_with_warmup;
use sim_engine::{SweepConfig, TraceMode};

fn grid_options() -> SuiteOptions {
    SuiteOptions::paper_full()
        .with_benchmarks(&["gcc", "soplex", "lbm"])
        .with_policies(&[PolicyKind::NuRapid, PolicyKind::Slip, PolicyKind::SlipAbp])
        .with_accesses(30_000)
        .with_warmup(5_000)
}

fn fingerprint(suite: &SuiteResults, bench: &str, policy: PolicyKind) -> String {
    codec::encode_result(suite.get(bench, policy)).to_json()
}

/// Every cell fingerprint of a suite, in grid order.
fn fingerprints(suite: &SuiteResults) -> Vec<String> {
    suite
        .benchmarks()
        .iter()
        .flat_map(|&b| {
            suite
                .options
                .policies
                .iter()
                .map(move |&p| fingerprint(suite, b, p))
        })
        .collect()
}

fn run(mode: TraceMode, jobs: usize, shards: usize) -> Vec<String> {
    let sweep = SweepConfig::with_jobs(jobs)
        .with_trace_mode(mode)
        .with_shards(shards);
    fingerprints(&SuiteResults::run_with(grid_options(), &sweep).unwrap())
}

/// The seed golden: every cell of the grid re-run through the verbatim
/// reference hot path, in the same grid order `fingerprints` uses.
fn reference_goldens(suite: &SuiteResults) -> Vec<String> {
    suite
        .benchmarks()
        .iter()
        .flat_map(|&bench| {
            let opts = &suite.options;
            opts.policies.iter().map(move |&policy| {
                let mut config = opts.cell_config(policy);
                config.reference_hot_path = true;
                let spec = workloads::workload(bench).expect("known benchmark");
                let result = run_workload_with_warmup(config, &spec, opts.accesses, opts.warmup);
                codec::encode_result(&result).to_json()
            })
        })
        .collect()
}

#[test]
fn all_modes_agree_with_the_seed_golden_across_jobs_and_shards() {
    // Anchor: the reference path, cell by cell. Everything else — every
    // trace mode, worker count, and shard count, all of which run the
    // batched fast path by default — must reproduce it bit for bit.
    let inline = SuiteResults::run_with(
        grid_options(),
        &SweepConfig::with_jobs(1).with_trace_mode(TraceMode::Inline),
    )
    .unwrap();
    let reference = reference_goldens(&inline);
    assert_eq!(
        fingerprints(&inline),
        reference,
        "inline serial diverges from the reference-path seed golden"
    );
    for mode in [
        TraceMode::Inline,
        TraceMode::Pipelined,
        TraceMode::Shared,
        TraceMode::Fused,
    ] {
        for jobs in [1, 4] {
            // Fused groups own their worker and ignore shards; running
            // the shards=2 leg anyway asserts exactly that.
            for shards in [1, 2] {
                assert_eq!(
                    run(mode, jobs, shards),
                    reference,
                    "{} at jobs={jobs} shards={shards} diverges from the seed golden",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn zero_cache_budget_falls_back_without_changing_results() {
    let reference = run(TraceMode::Inline, 1, 1);
    let starved = SweepConfig {
        trace_cache_mb: 0,
        ..SweepConfig::with_jobs(2).with_trace_mode(TraceMode::Shared)
    };
    let suite = SuiteResults::run_with(grid_options(), &starved).unwrap();
    assert_eq!(fingerprints(&suite), reference);
}

#[test]
fn journal_resume_across_a_shared_trace_group_is_deterministic() {
    let dir = std::env::temp_dir().join(format!(
        "slip-trace-pipeline-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("suite.jsonl");

    // First pass: run only part of the gcc group (baseline + SLIP), so
    // the journal holds a prefix of the group's cells.
    let partial = SuiteOptions::paper_full()
        .with_benchmarks(&["gcc"])
        .with_policies(&[PolicyKind::Slip])
        .with_accesses(30_000)
        .with_warmup(5_000);
    let sweep = SweepConfig {
        journal: Some(journal.clone()),
        ..SweepConfig::with_jobs(2).with_trace_mode(TraceMode::Shared)
    };
    SuiteResults::run_with(partial, &sweep).unwrap();
    let lines_first = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(lines_first, 2); // baseline + slip

    // Second pass widens the group: restored cells skip the cache
    // entirely while the new cells materialize and share the trace.
    // The combined suite must equal an unjournaled inline run.
    let full = grid_options();
    // 3 benchmarks x 4 policies (baseline is always added), minus the
    // 2 gcc cells already journaled.
    let resumed = SuiteResults::run_with(full, &sweep).unwrap();
    let lines_second = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(lines_second, 12, "exactly the 10 new cells were appended");
    let fresh = SuiteResults::run_with(
        grid_options(),
        &SweepConfig::with_jobs(1).with_trace_mode(TraceMode::Inline),
    )
    .unwrap();
    assert_eq!(fingerprints(&resumed), fingerprints(&fresh));

    std::fs::remove_dir_all(&dir).ok();
}
