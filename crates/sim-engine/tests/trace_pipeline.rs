//! Golden equivalence of the trace pipeline: inline, pipelined, and
//! shared-`Arc<TraceBuffer>` execution must produce bit-identical
//! `SimResult`s for the benchmark × policy grid — serial and at four
//! workers — and a journal resume across a shared-trace group must stay
//! deterministic. Results are compared by their exact journal payload
//! text, the same fingerprint the determinism tier-1 test uses.

use sim_engine::codec;
use sim_engine::config::PolicyKind;
use sim_engine::experiments::{SuiteOptions, SuiteResults};
use sim_engine::{SweepConfig, TraceMode};

fn grid_options() -> SuiteOptions {
    SuiteOptions::paper_full()
        .with_benchmarks(&["gcc", "soplex", "lbm"])
        .with_policies(&[PolicyKind::NuRapid, PolicyKind::Slip, PolicyKind::SlipAbp])
        .with_accesses(30_000)
        .with_warmup(5_000)
}

fn fingerprint(suite: &SuiteResults, bench: &str, policy: PolicyKind) -> String {
    codec::encode_result(suite.get(bench, policy)).to_json()
}

/// Every cell fingerprint of a suite, in grid order.
fn fingerprints(suite: &SuiteResults) -> Vec<String> {
    suite
        .benchmarks()
        .iter()
        .flat_map(|&b| {
            suite
                .options
                .policies
                .iter()
                .map(move |&p| fingerprint(suite, b, p))
        })
        .collect()
}

fn run(mode: TraceMode, jobs: usize) -> Vec<String> {
    let sweep = SweepConfig::with_jobs(jobs).with_trace_mode(mode);
    fingerprints(&SuiteResults::run_with(grid_options(), &sweep).unwrap())
}

#[test]
fn all_modes_agree_bit_exactly_at_one_and_four_jobs() {
    let reference = run(TraceMode::Inline, 1);
    for mode in [TraceMode::Inline, TraceMode::Pipelined, TraceMode::Shared] {
        for jobs in [1, 4] {
            assert_eq!(
                run(mode, jobs),
                reference,
                "{} at jobs={jobs} diverges from inline serial",
                mode.label()
            );
        }
    }
}

#[test]
fn zero_cache_budget_falls_back_without_changing_results() {
    let reference = run(TraceMode::Inline, 1);
    let starved = SweepConfig {
        trace_cache_mb: 0,
        ..SweepConfig::with_jobs(2).with_trace_mode(TraceMode::Shared)
    };
    let suite = SuiteResults::run_with(grid_options(), &starved).unwrap();
    assert_eq!(fingerprints(&suite), reference);
}

#[test]
fn journal_resume_across_a_shared_trace_group_is_deterministic() {
    let dir = std::env::temp_dir().join(format!(
        "slip-trace-pipeline-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("suite.jsonl");

    // First pass: run only part of the gcc group (baseline + SLIP), so
    // the journal holds a prefix of the group's cells.
    let partial = SuiteOptions::paper_full()
        .with_benchmarks(&["gcc"])
        .with_policies(&[PolicyKind::Slip])
        .with_accesses(30_000)
        .with_warmup(5_000);
    let sweep = SweepConfig {
        journal: Some(journal.clone()),
        ..SweepConfig::with_jobs(2).with_trace_mode(TraceMode::Shared)
    };
    SuiteResults::run_with(partial, &sweep).unwrap();
    let lines_first = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(lines_first, 2); // baseline + slip

    // Second pass widens the group: restored cells skip the cache
    // entirely while the new cells materialize and share the trace.
    // The combined suite must equal an unjournaled inline run.
    let full = grid_options();
    // 3 benchmarks x 4 policies (baseline is always added), minus the
    // 2 gcc cells already journaled.
    let resumed = SuiteResults::run_with(full, &sweep).unwrap();
    let lines_second = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert_eq!(lines_second, 12, "exactly the 10 new cells were appended");
    let fresh = SuiteResults::run_with(
        grid_options(),
        &SweepConfig::with_jobs(1).with_trace_mode(TraceMode::Inline),
    )
    .unwrap();
    assert_eq!(fingerprints(&resumed), fingerprints(&fresh));

    std::fs::remove_dir_all(&dir).ok();
}
