//! `slip` — command-line driver for the SLIP cache-energy simulator.
//!
//! ```text
//! slip list                                  the built-in workloads
//! slip run <workload|file.trc> [options]     one simulation, full metrics
//! slip compare <workload> [options]          all five policies side by side
//! slip sweep [workload ...] [options]        benchmark x policy grid, parallel
//! slip mix <bench_a> <bench_b> [options]     two cores, shared L3
//! slip record <workload> <out.trc> [options] dump a synthetic trace
//! slip bench [--quick] [--out b.json] [--check BENCH.json] [--tolerance PCT]
//!                                            hot-path performance suite
//! slip check [--full] [--oracle] [--iters N] [--seed S] [--max-len N]
//!                                            conformance: differential fuzz +
//!                                            invariants (+ figure oracle)
//!
//! options:
//!   --policy <baseline|nurapid|lru-pea|slip|slip-abp>   (default slip-abp)
//!   --accesses <N>                                      (default 1000000)
//!   --seed <N>                                          (default 0x511b)
//!   --replacement <lru|drrip|ship>                      (default lru)
//!   --inclusive                                         model an inclusive LLC
//!   --csv <path>                                        also write metrics as CSV
//!   --jobs <N>          sweep/compare workers           (default SLIP_JOBS or all cores)
//!   --shards <N>        set-shard workers per run; must be a power of
//!                       two (the shard owner is a bit field of the
//!                       line address); sharded runs are bit-identical
//!                       to serial, and cells occupy jobs/shards pool
//!                       slots each                    (default SLIP_SHARDS or 1)
//!   --journal <path>    JSONL run journal; a re-run with the same
//!                       options resumes, skipping completed cells
//!                                                       (default SLIP_JOURNAL)
//!   --trace-mode <inline|pipelined|shared|fused>
//!                       how sweep cells obtain their access streams;
//!                       fused decodes each benchmark's trace once and
//!                       steps all of its policy cells in lockstep
//!                       (incompatible with --shards > 1)
//!                                                       (default SLIP_TRACE_MODE or shared)
//!   --trace-cache-mb <N>  shared-trace cache budget in MiB; over-budget
//!                       groups regenerate pipelined, 0 disables sharing
//!                                                       (default SLIP_TRACE_CACHE_MB or 1024)
//!   --topology <node|file>  hierarchy spec: a built-in technology node
//!                       (45nm, 22nm, stt-llc) or a spec file giving
//!                       per-level geometry and read/write/insertion
//!                       energies; malformed files are rejected with
//!                       line/column diagnostics
//!                                                       (default SLIP_TOPOLOGY or built-in 45 nm)
//! ```

use sim_engine::config::{PolicyKind, ReplacementKind, SystemConfig};
use sim_engine::experiments::{SuiteOptions, SuiteResults};
use sim_engine::multicore::run_mix;
use sim_engine::report::{pct, Table};
use sim_engine::system::run_workload;
use sim_engine::{SimResult, SingleCoreSystem, SweepConfig, TraceMode};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  slip list
  slip run <workload|file.trc> [--policy P] [--accesses N] [--seed S]
           [--replacement R] [--inclusive] [--csv out.csv] [--shards N]
           [--topology NODE|FILE]
  slip compare <workload> [--accesses N] [--seed S] [--jobs N]
               [--topology NODE|FILE]
  slip sweep [workload ...] [--accesses N] [--jobs N] [--shards N]
             [--journal run.jsonl] [--topology NODE|FILE]
             [--trace-mode inline|pipelined|shared|fused] [--trace-cache-mb N]
  slip mix <bench_a> <bench_b> [--accesses N] [--seed S]
  slip record <workload> <out.trc> [--accesses N] [--seed S]
  slip bench [--quick] [--out bench.json] [--check BENCH_9.json]
             [--tolerance PCT (default SLIP_BENCH_TOL or 20)]
  slip check [--quick|--full] [--oracle] [--iters N] [--seed S] [--max-len N]
             [--accesses N] [--jobs N] [--topology NODE|FILE]
  slip serve [--addr HOST:PORT] [--jobs N] [--shards N] [--journal-dir DIR]
             [--trace-mode inline|pipelined|shared|fused]
             [--trace-cache-mb N] [--port-file FILE] [--quiet]
  slip submit [workload ...] [--policy P]... [--accesses N] [--warmup N]
              [--topology NODE|FILE] [--connect HOST:PORT] [--verify-offline]
              [--quiet]
  slip submit --resume RUN_ID [--ack N] [--connect HOST:PORT]
  slip submit --stats|--shutdown [--connect HOST:PORT]";

fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("mix") => cmd_mix(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command given".to_owned()),
    }
}

/// Parsed common options.
struct Options {
    positional: Vec<String>,
    policy: PolicyKind,
    replacement: ReplacementKind,
    accesses: u64,
    seed: u64,
    inclusive: bool,
    csv: Option<String>,
    jobs: usize,
    shards: usize,
    journal: Option<PathBuf>,
    trace_mode: TraceMode,
    trace_cache_mb: u64,
    topology: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        positional: Vec::new(),
        policy: PolicyKind::SlipAbp,
        replacement: ReplacementKind::Lru,
        accesses: 1_000_000,
        seed: 0x511b,
        inclusive: false,
        csv: None,
        jobs: sim_engine::env::jobs(),
        shards: sim_engine::env::shards()?,
        journal: sim_engine::env::journal(),
        trace_mode: sim_engine::env::trace_mode(),
        trace_cache_mb: sim_engine::env::trace_cache_mb(),
        topology: sim_engine::env::topology(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--policy" => {
                let v = value("--policy")?;
                o.policy = PolicyKind::parse(&v).ok_or_else(|| format!("unknown policy {v:?}"))?;
            }
            "--replacement" => {
                o.replacement = match value("--replacement")?.as_str() {
                    "lru" => ReplacementKind::Lru,
                    "drrip" => ReplacementKind::Drrip,
                    "ship" => ReplacementKind::Ship,
                    other => return Err(format!("unknown replacement {other:?}")),
                }
            }
            "--accesses" => {
                o.accesses = value("--accesses")?
                    .parse()
                    .map_err(|e| format!("--accesses: {e}"))?
            }
            "--seed" => {
                let v = value("--seed")?;
                o.seed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).map_err(|e| format!("--seed: {e}"))?
                } else {
                    v.parse().map_err(|e| format!("--seed: {e}"))?
                }
            }
            "--inclusive" => o.inclusive = true,
            "--csv" => o.csv = Some(value("--csv")?),
            "--jobs" => {
                o.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--shards" => {
                let n = value("--shards")?
                    .parse::<usize>()
                    .map_err(|e| format!("--shards: {e}"))?;
                o.shards = sim_engine::validate_shards(n).map_err(|e| format!("--shards: {e}"))?;
            }
            "--journal" => o.journal = Some(PathBuf::from(value("--journal")?)),
            "--trace-mode" => {
                let v = value("--trace-mode")?;
                o.trace_mode =
                    TraceMode::parse(&v).ok_or_else(|| format!("unknown trace mode {v:?}"))?;
            }
            "--trace-cache-mb" => {
                o.trace_cache_mb = value("--trace-cache-mb")?
                    .parse()
                    .map_err(|e| format!("--trace-cache-mb: {e}"))?
            }
            "--topology" => o.topology = Some(value("--topology")?),
            other if other.starts_with("--") => return Err(format!("unknown option {other:?}")),
            _ => o.positional.push(a.clone()),
        }
    }
    if o.trace_mode == TraceMode::Fused && o.shards > 1 {
        return Err(
            "--trace-mode fused runs each benchmark group on one worker and ignores set \
             shards; drop --shards (or SLIP_SHARDS), or pick another trace mode"
                .to_owned(),
        );
    }
    Ok(o)
}

/// Resolves the `--topology` argument (or `SLIP_TOPOLOGY`) into a
/// parsed, validated hierarchy spec; `None` means the compiled-in
/// 45 nm configuration. Malformed files fail here with the parser's
/// line/column diagnostic.
fn load_topology(o: &Options) -> Result<Option<energy_model::HierarchySpec>, String> {
    o.topology
        .as_deref()
        .map(energy_model::HierarchySpec::load)
        .transpose()
}

fn config_from(o: &Options) -> Result<SystemConfig, String> {
    let mut c = match load_topology(o)? {
        Some(spec) => SystemConfig::from_topology(&spec, o.policy)?,
        None => SystemConfig::paper_45nm(o.policy),
    };
    c.replacement = o.replacement;
    c.inclusive_llc = o.inclusive;
    c.seed = o.seed;
    Ok(c)
}

fn cmd_list() -> Result<(), String> {
    println!("built-in workloads (synthetic SPEC-CPU2006-like profiles):");
    for name in workloads::BENCHMARK_NAMES {
        let spec = workloads::workload(name).expect("known");
        println!("  {name:<12} {} phase(s)", spec.phases().len());
    }
    println!("\ntwo-core mixes (paper Figure 16): ");
    for (a, b) in workloads::MULTICORE_MIXES {
        println!("  {a}+{b}");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let o = parse_options(args)?;
    let [target] = o.positional.as_slice() else {
        return Err("run needs exactly one workload or trace file".to_owned());
    };
    let result = if target.ends_with(".trc") {
        let reader = workloads::io::read_trace(target).map_err(|e| e.to_string())?;
        let mut system = SingleCoreSystem::new(config_from(&o)?);
        for access in reader {
            system.step_fast(access.map_err(|e| e.to_string())?);
        }
        system.finish(target.clone())
    } else {
        let spec = workloads::workload(target)
            .ok_or_else(|| format!("unknown workload {target:?} (try `slip list`)"))?;
        let config = config_from(&o)?;
        if o.trace_mode == TraceMode::Fused {
            // Single-cell fused replay: decode one materialized
            // buffer — the exact path a fused sweep group takes.
            let buffer = std::sync::Arc::new(workloads::TraceBuffer::materialize(
                spec.trace(o.accesses, o.seed),
            ));
            let mut r = sim_engine::run_group_from_buffer(vec![config], spec.name(), &buffer, 0)
                .pop()
                .expect("one config in, one result out");
            r.exec_mode = Some("fused");
            r
        } else {
            // Sharded and serial runs are bit-identical; --shards only
            // changes how many threads step the simulation. Report the
            // effective count when the request is silently reduced —
            // either the policy carries global state (serial fallback)
            // or the count exceeds the smallest cache's set count.
            let effective = sim_engine::effective_shards(o.shards, &config);
            if effective != o.shards {
                println!(
                    "note: running with {effective} shard(s) of {} requested ({})",
                    o.shards,
                    if effective == 1 {
                        "policy state is global; set-sharding falls back to serial"
                    } else {
                        "clamped to the smallest cache's set count"
                    }
                );
            }
            sim_engine::run_workload_sharded(config, &spec, o.accesses, 0, o.shards)
        }
    };
    print_result(&result);
    if let Some(path) = &o.csv {
        write_csv(path, &result).map_err(|e| e.to_string())?;
        println!("\nwrote {path}");
    }
    Ok(())
}

fn print_result(r: &SimResult) {
    println!(
        "workload {}   policy {}   accesses {}",
        r.workload, r.policy, r.accesses
    );
    println!("cycles {}   IPC {:.3}", r.cycles, r.ipc());
    if let Some(mode) = r.exec_mode {
        println!("exec mode {mode}");
    }
    println!();
    println!("                 L1           L2           L3");
    println!(
        "hit rate    {:>8.1}%    {:>8.1}%    {:>8.1}%",
        r.l1_stats.demand_hit_rate() * 100.0,
        r.l2_stats.demand_hit_rate() * 100.0,
        r.l3_stats.demand_hit_rate() * 100.0
    );
    println!(
        "energy      {:>9}    {:>9}    {:>9}",
        format!("{}", r.l1_energy.total()),
        format!("{}", r.l2_total_energy()),
        format!("{}", r.l3_total_energy())
    );
    println!(
        "movements   {:>9}    {:>9}    {:>9}",
        "-", r.l2_stats.movements, r.l3_stats.movements
    );
    println!(
        "bypasses    {:>9}    {:>9}    {:>9}",
        "-", r.l2_stats.bypasses, r.l3_stats.bypasses
    );
    println!();
    println!(
        "DRAM: {} reads, {} writes, {} metadata transfers, {}",
        r.dram_reads,
        r.dram_writes,
        r.dram_metadata_reads + r.dram_metadata_writes,
        r.dram_energy.total()
    );
    if let Some(m) = r.mmu_stats {
        println!(
            "MMU: {} TLB misses, {} metadata fetches, {} SLIP recomputes, EOU {}",
            m.tlb_misses, m.metadata_fetches, m.slip_recomputes, r.eou_energy
        );
    }
    println!("full-system energy: {}", r.full_system_energy());
}

fn write_csv(path: &str, r: &SimResult) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "metric,value")?;
    writeln!(f, "workload,{}", r.workload)?;
    writeln!(f, "policy,{}", r.policy)?;
    writeln!(f, "accesses,{}", r.accesses)?;
    writeln!(f, "cycles,{}", r.cycles)?;
    writeln!(f, "l1_hit_rate,{}", r.l1_stats.demand_hit_rate())?;
    writeln!(f, "l2_hit_rate,{}", r.l2_stats.demand_hit_rate())?;
    writeln!(f, "l3_hit_rate,{}", r.l3_stats.demand_hit_rate())?;
    writeln!(f, "l2_energy_pj,{}", r.l2_total_energy().as_pj())?;
    writeln!(f, "l3_energy_pj,{}", r.l3_total_energy().as_pj())?;
    writeln!(f, "l2_movements,{}", r.l2_stats.movements)?;
    writeln!(f, "l3_movements,{}", r.l3_stats.movements)?;
    writeln!(f, "l2_bypasses,{}", r.l2_stats.bypasses)?;
    writeln!(f, "l3_bypasses,{}", r.l3_stats.bypasses)?;
    writeln!(f, "dram_reads,{}", r.dram_reads)?;
    writeln!(f, "dram_writes,{}", r.dram_writes)?;
    writeln!(
        f,
        "dram_metadata_transfers,{}",
        r.dram_metadata_reads + r.dram_metadata_writes
    )?;
    writeln!(f, "dram_energy_pj,{}", r.dram_energy.total().as_pj())?;
    writeln!(f, "eou_energy_pj,{}", r.eou_energy.as_pj())?;
    writeln!(
        f,
        "full_system_energy_pj,{}",
        r.full_system_energy().as_pj()
    )?;
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let o = parse_options(args)?;
    let [name] = o.positional.as_slice() else {
        return Err("compare needs exactly one workload".to_owned());
    };
    let spec = workloads::workload(name)
        .ok_or_else(|| format!("unknown workload {name:?} (try `slip list`)"))?;
    println!("workload {name}, {} accesses\n", o.accesses);
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>9} {:>9} {:>11}",
        "policy", "L2 energy", "L3 energy", "L2 sav", "L3 sav", "speedup", "DRAM xfers"
    );
    // One independently-seeded run per policy, drained by the worker
    // pool; PolicyKind::ALL[0] is the baseline.
    let base_config = config_from(&o)?;
    let results = sweep_runner::run_indexed(PolicyKind::ALL.len(), o.jobs, |i| {
        let mut cfg = base_config.clone();
        cfg.policy = PolicyKind::ALL[i];
        run_workload(cfg, &spec, o.accesses)
    });
    let baseline = &results[0];
    for r in &results {
        println!(
            "{:<10} {:>12} {:>12} {:>8.1}% {:>8.1}% {:>8.2}% {:>11}",
            r.policy.label(),
            format!("{}", r.l2_total_energy()),
            format!("{}", r.l3_total_energy()),
            (1.0 - r.l2_total_energy() / baseline.l2_total_energy()) * 100.0,
            (1.0 - r.l3_total_energy() / baseline.l3_total_energy()) * 100.0,
            (r.speedup_vs(baseline) - 1.0) * 100.0,
            r.dram_total_traffic(),
        );
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let o = parse_options(args)?;
    let benchmarks: Vec<&'static str> = if o.positional.is_empty() {
        workloads::BENCHMARK_NAMES.to_vec()
    } else {
        o.positional
            .iter()
            .map(|n| {
                workloads::BENCHMARK_NAMES
                    .iter()
                    .copied()
                    .find(|b| b == n)
                    .ok_or_else(|| format!("unknown workload {n:?} (try `slip list`)"))
            })
            .collect::<Result<_, _>>()?
    };
    let mut options = SuiteOptions::paper_full()
        .with_benchmarks(&benchmarks)
        .with_accesses(o.accesses);
    if let Some(spec) = load_topology(&o)? {
        options = options.with_topology(spec);
    }
    let sweep = SweepConfig {
        jobs: o.jobs,
        shards: o.shards,
        journal: o.journal.clone(),
        quiet: false,
        trace_mode: o.trace_mode,
        trace_cache_mb: o.trace_cache_mb,
        trace_cache: None,
        // Ctrl-C stops dispatching cells and seals the journal so a
        // re-run resumes instead of starting over.
        cancel: Some(sweep_runner::interrupt::install()),
    };
    let suite = SuiteResults::run_with(options, &sweep).map_err(|e| {
        if e.kind() == std::io::ErrorKind::Interrupted {
            "sweep interrupted; re-run with the same options to resume".to_owned()
        } else {
            format!("journal: {e}")
        }
    })?;
    let mut t = Table::new(
        format!(
            "energy savings vs baseline ({} accesses/benchmark, {} jobs)",
            o.accesses, o.jobs
        ),
        &[
            "benchmark",
            "SLIP L2",
            "SLIP L3",
            "SLIP+ABP L2",
            "SLIP+ABP L3",
        ],
    );
    for &bench in suite.benchmarks() {
        t.row(vec![
            bench.to_owned(),
            pct(suite.l2_saving(bench, PolicyKind::Slip)),
            pct(suite.l3_saving(bench, PolicyKind::Slip)),
            pct(suite.l2_saving(bench, PolicyKind::SlipAbp)),
            pct(suite.l3_saving(bench, PolicyKind::SlipAbp)),
        ]);
    }
    t.row(vec![
        "mean".to_owned(),
        pct(suite.mean_l2_saving(PolicyKind::Slip)),
        pct(suite.mean_l3_saving(PolicyKind::Slip)),
        pct(suite.mean_l2_saving(PolicyKind::SlipAbp)),
        pct(suite.mean_l3_saving(PolicyKind::SlipAbp)),
    ]);
    print!("{}", t.render());
    if let Some(j) = &o.journal {
        println!("journal: {}", j.display());
    }
    Ok(())
}

fn cmd_mix(args: &[String]) -> Result<(), String> {
    let o = parse_options(args)?;
    let [a, b] = o.positional.as_slice() else {
        return Err("mix needs exactly two workloads".to_owned());
    };
    let spec_a = workloads::workload(a).ok_or_else(|| format!("unknown workload {a:?}"))?;
    let spec_b = workloads::workload(b).ok_or_else(|| format!("unknown workload {b:?}"))?;
    let mut base_cfg = config_from(&o)?;
    base_cfg.policy = PolicyKind::Baseline;
    let base = run_mix(base_cfg, &spec_a, &spec_b, o.accesses);
    let mut slip_cfg = config_from(&o)?;
    slip_cfg.policy = o.policy;
    let slip = run_mix(slip_cfg, &spec_a, &spec_b, o.accesses);
    println!("mix {a}+{b}, {} accesses/core, shared 2 MB L3", o.accesses);
    println!(
        "L3 energy: baseline {} -> {} {} ({:+.1}%)",
        base.l3_energy,
        o.policy.label(),
        slip.l3_energy,
        (slip.l3_energy / base.l3_energy - 1.0) * 100.0
    );
    println!(
        "L2+L3 energy: {} -> {} ({:+.1}%)",
        base.l2_plus_l3_energy(),
        slip.l2_plus_l3_energy(),
        (slip.l2_plus_l3_energy() / base.l2_plus_l3_energy() - 1.0) * 100.0
    );
    println!(
        "DRAM traffic: {} -> {} ({:+.1}%)",
        base.dram_demand_traffic,
        slip.dram_total_traffic,
        (slip.dram_total_traffic as f64 / base.dram_demand_traffic as f64 - 1.0) * 100.0
    );
    Ok(())
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    let o = parse_options(args)?;
    let [name, out] = o.positional.as_slice() else {
        return Err("record needs a workload and an output path".to_owned());
    };
    let spec = workloads::workload(name)
        .ok_or_else(|| format!("unknown workload {name:?} (try `slip list`)"))?;
    let n = workloads::io::write_trace(out, spec.trace(o.accesses, o.seed))
        .map_err(|e| e.to_string())?;
    println!("wrote {n} accesses to {out}");
    Ok(())
}

/// Default regression tolerance for `slip bench --check`: fail when
/// the fresh suite throughput drops more than this fraction below the
/// baseline. Override per run with `--tolerance PCT` or per
/// environment with `SLIP_BENCH_TOL` (both in percent).
const BENCH_REGRESSION_TOLERANCE: f64 = 0.20;

/// Resolves the `--check` tolerance fraction: the `--tolerance` flag
/// wins over the `SLIP_BENCH_TOL` environment value, which wins over
/// the default. Both inputs are percentages in (0, 100).
fn resolve_bench_tolerance(flag: Option<&str>, env: Option<&str>) -> Result<f64, String> {
    let (source, text) = match (flag, env) {
        (Some(t), _) => ("--tolerance", t),
        (None, Some(t)) => ("SLIP_BENCH_TOL", t),
        (None, None) => return Ok(BENCH_REGRESSION_TOLERANCE),
    };
    let pct: f64 = text
        .parse()
        .map_err(|_| format!("{source} must be a number, got {text:?}"))?;
    if !(pct > 0.0 && pct < 100.0) {
        return Err(format!(
            "{source} must be a percentage in (0, 100), got {text:?}"
        ));
    }
    Ok(pct / 100.0)
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance_flag: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(value("--out")?),
            "--check" => check = Some(value("--check")?),
            "--tolerance" => tolerance_flag = Some(value("--tolerance")?),
            other => return Err(format!("unknown bench option {other:?}")),
        }
    }
    let env_tol = std::env::var("SLIP_BENCH_TOL").ok();
    let tolerance = resolve_bench_tolerance(tolerance_flag.as_deref(), env_tol.as_deref())?;

    println!("slip bench ({} mode)", if quick { "quick" } else { "full" });
    let report = sim_engine::bench::run(quick);
    println!();
    for k in &report.kernels {
        println!("{:<40} {:>12.1} ns/iter", k.name, k.ns_per_iter);
    }
    for s in &report.systems {
        println!(
            "{:<40} {:>9.0} kacc/s ({} accesses in {:.3}s)",
            s.name,
            s.accesses_per_sec / 1e3,
            s.accesses,
            s.wall_secs
        );
    }
    let inline_sweep = report
        .sweep_modes
        .iter()
        .find(|s| s.name == "sweep/inline")
        .map(|s| s.accesses_per_sec);
    for s in &report.sweep_modes {
        let vs_inline = match inline_sweep {
            Some(base) if base > 0.0 => format!(", {:.2}x vs inline", s.accesses_per_sec / base),
            _ => String::new(),
        };
        println!(
            "{:<40} {:>9.0} kacc/s ({} cells in {:.3}s{vs_inline})",
            s.name,
            s.accesses_per_sec / 1e3,
            s.cells,
            s.wall_secs
        );
    }
    let serial_run = report
        .shard_runs
        .iter()
        .find(|s| s.name == "run/shards1")
        .map(|s| s.accesses_per_sec);
    for s in &report.shard_runs {
        let vs_serial = match serial_run {
            Some(base) if base > 0.0 => format!(", {:.2}x vs serial", s.accesses_per_sec / base),
            _ => String::new(),
        };
        println!(
            "{:<40} {:>9.0} kacc/s ({} accesses in {:.3}s{vs_serial})",
            s.name,
            s.accesses_per_sec / 1e3,
            s.accesses,
            s.wall_secs
        );
    }
    if report.shard_runs.len() < 3 {
        println!(
            "{:<40} skipped (host parallelism {})",
            "run/shards>1", report.host_parallelism
        );
    }
    println!(
        "{:<40} {:>9.0} kacc/s (geometric mean)",
        "suite",
        report.suite_accesses_per_sec / 1e3
    );

    if let Some(path) = &out {
        std::fs::write(path, report.to_value().to_json() + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nwrote {path}");
    }

    if let Some(path) = &check {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let baseline = sweep_runner::json::Value::parse(&text)
            .map_err(|e| format!("parsing {path}: {e:?}"))?;
        let current = report.suite_accesses_per_sec;
        let (base_rate, floor) = bench_check_verdict(current, &baseline, quick, tolerance)?;
        println!(
            "\ncheck vs {path}: current {:.0} kacc/s, baseline {:.0} kacc/s (floor {:.0})",
            current / 1e3,
            base_rate / 1e3,
            floor / 1e3
        );
        println!("check OK");
    }
    Ok(())
}

/// The `slip bench --check` tolerance rule, isolated for testing:
/// `current` must stay within `tolerance` (a fraction, see
/// [`resolve_bench_tolerance`]) of the baseline's suite rate. Returns
/// `(baseline_rate, floor)` on success.
fn bench_check_verdict(
    current: f64,
    baseline: &sweep_runner::json::Value,
    quick: bool,
    tolerance: f64,
) -> Result<(f64, f64), String> {
    let base_rate = sim_engine::bench::baseline_suite_rate(baseline, quick)
        .ok_or_else(|| "baseline has no suite_accesses_per_sec".to_owned())?;
    let floor = base_rate * (1.0 - tolerance);
    if current < floor {
        return Err(format!(
            "throughput regression: {:.0} kacc/s is more than {:.0}% below the \
             baseline {:.0} kacc/s",
            current / 1e3,
            tolerance * 100.0,
            base_rate / 1e3
        ));
    }
    Ok((base_rate, floor))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let mut full = false;
    let mut oracle = false;
    let mut iters: Option<u64> = None;
    let mut max_len: Option<u64> = None;
    let mut seed = 0x511bu64;
    let mut accesses = 1_000_000u64;
    let mut jobs = sim_engine::env::jobs();
    let mut topology = sim_engine::env::topology();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--quick" => full = false,
            "--full" => full = true,
            "--oracle" => oracle = true,
            "--iters" => {
                iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                )
            }
            "--max-len" => {
                max_len = Some(
                    value("--max-len")?
                        .parse()
                        .map_err(|e| format!("--max-len: {e}"))?,
                )
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).map_err(|e| format!("--seed: {e}"))?
                } else {
                    v.parse().map_err(|e| format!("--seed: {e}"))?
                }
            }
            "--accesses" => {
                accesses = value("--accesses")?
                    .parse()
                    .map_err(|e| format!("--accesses: {e}"))?
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--topology" => topology = Some(value("--topology")?),
            other => return Err(format!("unknown check option {other:?}")),
        }
    }
    // Resolve the spec up front: a malformed file must fail fast with
    // the parser's line/column diagnostic, not after minutes of fuzz.
    let topology_spec = topology
        .as_deref()
        .map(energy_model::HierarchySpec::load)
        .transpose()?;

    let mut opts = if full {
        slip_conformance::FuzzOptions::full(seed)
    } else {
        slip_conformance::FuzzOptions::quick(seed)
    };
    // Budget precedence: --iters beats SLIP_FUZZ_ITERS beats the mode
    // default, so CI can pin a deterministic budget in one place.
    if let Some(n) = iters.or_else(sim_engine::env::fuzz_iters) {
        opts.iters = n;
    }
    if let Some(n) = max_len {
        opts.max_len = n;
    }
    let phases = 2 + u32::from(oracle);
    println!(
        "slip check ({} mode, seed {seed:#x}, {} fuzz iterations, max trace {})",
        if full { "full" } else { "quick" },
        opts.iters,
        opts.max_len
    );

    println!("[1/{phases}] differential fuzz: reference vs optimized paths");
    let divergences = slip_conformance::run_fuzz(&opts);
    for d in &divergences {
        println!("{d}");
    }

    println!("[2/{phases}] executable invariants");
    let invariant_len = if full { 20_000 } else { 5_000 };
    let mut violations = slip_conformance::run_invariant_sweep(seed, invariant_len, opts.quiet);
    if let Some(spec) = &topology_spec {
        // Hold the user's spec to the same bar as the built-ins (which
        // the sweep above already covered).
        println!("  topology {}: run-mode determinism", spec.name);
        if let Err(v) = slip_conformance::check_spec_determinism(spec, invariant_len, opts.quiet) {
            violations.push(v);
        }
    }
    for v in &violations {
        println!("{v}");
    }

    let mut oracle_failures = 0;
    if oracle {
        println!("[3/{phases}] figure oracle at {accesses} accesses/benchmark");
        let report =
            slip_conformance::run_oracle(accesses, &sim_engine::SweepConfig::with_jobs(jobs))
                .map_err(|e| format!("oracle sweep: {e}"))?;
        print!("{report}");
        oracle_failures = report.failures().len();
    }

    println!(
        "slip check: {} divergence(s), {} invariant violation(s){}",
        divergences.len(),
        violations.len(),
        if oracle {
            format!(", {oracle_failures} oracle failure(s)")
        } else {
            String::new()
        }
    );
    if divergences.is_empty() && violations.is_empty() && oracle_failures == 0 {
        println!("check OK");
        Ok(())
    } else {
        Err("conformance check failed (details above)".to_owned())
    }
}

/// Default loopback endpoint shared by `slip serve` and `slip submit`.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7511";

fn cmd_serve(args: &[String]) -> Result<(), String> {
    // Surface a bad SLIP_SHARDS as a normal CLI error before
    // `ServerConfig::new` (which panics on one) reads it.
    sim_engine::env::shards()?;
    let mut config = slip_serve::ServerConfig::new("slip-serve-journals");
    config.addr = DEFAULT_SERVE_ADDR.to_owned();
    let mut port_file: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--jobs" => {
                config.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--shards" => {
                let n = value("--shards")?
                    .parse::<usize>()
                    .map_err(|e| format!("--shards: {e}"))?;
                config.shards =
                    sim_engine::validate_shards(n).map_err(|e| format!("--shards: {e}"))?;
            }
            "--trace-mode" => {
                let v = value("--trace-mode")?;
                config.trace_mode =
                    TraceMode::parse(&v).ok_or_else(|| format!("unknown trace mode {v:?}"))?;
            }
            "--journal-dir" => config.journal_dir = PathBuf::from(value("--journal-dir")?),
            "--trace-cache-mb" => {
                config.trace_cache_mb = value("--trace-cache-mb")?
                    .parse()
                    .map_err(|e| format!("--trace-cache-mb: {e}"))?
            }
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file")?)),
            "--quiet" => config.quiet = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if config.trace_mode == TraceMode::Fused && config.shards > 1 {
        return Err(
            "--trace-mode fused runs each benchmark group on one worker and ignores set \
             shards; drop --shards (or SLIP_SHARDS), or pick another trace mode"
                .to_owned(),
        );
    }
    let server = slip_serve::Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    if let Some(path) = port_file {
        // Scripts bind port 0 and read the real endpoint back from here.
        std::fs::write(&path, format!("{}\n", server.local_addr()))
            .map_err(|e| format!("--port-file: {e}"))?;
    }
    server.run().map_err(|e| format!("serve: {e}"))
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let mut connect = DEFAULT_SERVE_ADDR.to_owned();
    let mut spec = slip_serve::SweepSpec {
        benchmarks: Vec::new(),
        policies: Vec::new(),
        accesses: 1_000_000,
        warmup: 0,
        topology: None,
    };
    let mut topology_arg = sim_engine::env::topology();
    let mut resume: Option<String> = None;
    let mut ack: u64 = 0;
    let mut stats = false;
    let mut shutdown = false;
    let mut verify_offline = false;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--connect" => connect = value("--connect")?,
            "--policy" => spec.policies.push(value("--policy")?),
            "--accesses" => {
                spec.accesses = value("--accesses")?
                    .parse()
                    .map_err(|e| format!("--accesses: {e}"))?
            }
            "--warmup" => {
                spec.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?
            }
            "--topology" => topology_arg = Some(value("--topology")?),
            "--resume" => resume = Some(value("--resume")?),
            "--ack" => ack = value("--ack")?.parse().map_err(|e| format!("--ack: {e}"))?,
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--verify-offline" => verify_offline = true,
            "--quiet" => quiet = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other:?}")),
            _ => spec.benchmarks.push(a.clone()),
        }
    }
    if let Some(arg) = topology_arg {
        // The server never reads client file paths: built-in node names
        // travel as-is, anything else is loaded locally (failing fast
        // on malformed specs) and sent as canonical spec text.
        spec.topology = Some(if energy_model::BUILTIN_NAMES.contains(&arg.as_str()) {
            arg
        } else {
            energy_model::HierarchySpec::load(&arg)?.format()
        });
    }

    if stats {
        let value = slip_serve::client::stats(&connect).map_err(|e| format!("stats: {e}"))?;
        println!("{}", value.to_json());
        return Ok(());
    }
    if shutdown {
        slip_serve::client::shutdown(&connect).map_err(|e| format!("shutdown: {e}"))?;
        eprintln!("server at {connect} is draining");
        return Ok(());
    }

    let mut stream = match &resume {
        Some(run_id) => {
            slip_serve::client::resume(&connect, run_id, ack).map_err(|e| format!("resume: {e}"))?
        }
        None => {
            // Validate locally first: a typo should not cost a round trip.
            spec.suite_options()?;
            slip_serve::client::submit(&connect, &spec).map_err(|e| format!("submit: {e}"))?
        }
    };
    if !quiet {
        eprintln!(
            "run {} ({} cells, from {}{})",
            stream.run_id,
            stream.cells,
            stream.from,
            if stream.joined { ", joined" } else { "" }
        );
    }
    // One JSON line per cell on stdout; everything else goes to stderr
    // so the stream pipes cleanly into files or other tools.
    let mut cells = Vec::new();
    while let Some((index, key, payload)) = stream.next_cell().map_err(|e| {
        format!(
            "stream: {e} (resume with: slip submit --resume {} --ack {})",
            stream.run_id,
            cells.len() as u64 + stream.from
        )
    })? {
        println!(
            "{}",
            sweep_runner::json::Value::object()
                .with("index", sweep_runner::json::Value::u64(index))
                .with("key", sweep_runner::json::Value::str(&key))
                .with("payload", payload.clone())
                .to_json()
        );
        cells.push((index, key, payload));
    }
    let done = stream.done().expect("stream ended without done frame");
    if !quiet {
        eprintln!(
            "done: {} cells ({} executed, {} restored)",
            cells.len(),
            done.executed,
            done.restored
        );
    }

    if verify_offline {
        if resume.is_some() {
            return Err("--verify-offline needs the full spec; use it with submit".to_owned());
        }
        let options = spec.suite_options()?;
        let mut sweep = SweepConfig::with_jobs(sim_engine::env::jobs());
        sweep.quiet = true;
        let offline = SuiteResults::run_with(options.clone(), &sweep)
            .map_err(|e| format!("offline sweep: {e}"))?;
        let mut index = 0usize;
        for &bench in &options.benchmarks {
            for &policy in &options.policies {
                let key = options.cell_key(bench, policy);
                let expected = sim_engine::codec::encode_result(offline.get(bench, policy));
                let (_, got_key, got) = &cells[index];
                if got_key != &key || got.to_json() != expected.to_json() {
                    return Err(format!(
                        "cell {key} differs between server and offline sweep"
                    ));
                }
                index += 1;
            }
        }
        if !quiet {
            eprintln!("verified: {index} cells bit-identical to offline sweep");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_defaults() {
        let o = parse_options(&s(&["gcc"])).unwrap();
        assert_eq!(o.positional, vec!["gcc"]);
        assert_eq!(o.policy, PolicyKind::SlipAbp);
        assert_eq!(o.accesses, 1_000_000);
        assert!(!o.inclusive);
        assert!(o.csv.is_none());
        assert!(o.jobs >= 1);
    }

    #[test]
    fn parses_all_options() {
        let o = parse_options(&s(&[
            "soplex",
            "--policy",
            "nurapid",
            "--accesses",
            "5000",
            "--seed",
            "0xff",
            "--replacement",
            "drrip",
            "--inclusive",
            "--csv",
            "out.csv",
            "--jobs",
            "3",
            "--shards",
            "4",
            "--journal",
            "run.jsonl",
            "--trace-mode",
            "pipelined",
            "--trace-cache-mb",
            "64",
        ]))
        .unwrap();
        assert_eq!(o.policy, PolicyKind::NuRapid);
        assert_eq!(o.accesses, 5000);
        assert_eq!(o.seed, 0xff);
        assert_eq!(o.replacement, ReplacementKind::Drrip);
        assert!(o.inclusive);
        assert_eq!(o.csv.as_deref(), Some("out.csv"));
        assert_eq!(o.jobs, 3);
        assert_eq!(o.shards, 4);
        assert_eq!(
            o.journal.as_deref(),
            Some(std::path::Path::new("run.jsonl"))
        );
        assert_eq!(o.trace_mode, TraceMode::Pipelined);
        assert_eq!(o.trace_cache_mb, 64);
    }

    #[test]
    fn policy_accepts_report_labels_too() {
        let o = parse_options(&s(&["--policy", "SLIP+ABP"])).unwrap();
        assert_eq!(o.policy, PolicyKind::SlipAbp);
        let o = parse_options(&s(&["--policy", "LRU-PEA"])).unwrap();
        assert_eq!(o.policy, PolicyKind::LruPea);
    }

    #[test]
    fn rejects_unknown_flags_and_values() {
        assert!(parse_options(&s(&["--bogus"])).is_err());
        assert!(parse_options(&s(&["--policy", "magic"])).is_err());
        assert!(parse_options(&s(&["--accesses", "many"])).is_err());
        assert!(parse_options(&s(&["--csv"])).is_err());
        assert!(parse_options(&s(&["--jobs", "few"])).is_err());
        assert!(parse_options(&s(&["--shards", "some"])).is_err());
        assert!(parse_options(&s(&["--journal"])).is_err());
        assert!(parse_options(&s(&["--trace-mode", "magic"])).is_err());
        assert!(parse_options(&s(&["--trace-cache-mb", "lots"])).is_err());
    }

    #[test]
    fn rejects_non_power_of_two_shards_at_parse_time() {
        for bad in ["0", "3", "6", "12", "100"] {
            let err = parse_options(&s(&["--shards", bad]))
                .map(|_| ())
                .unwrap_err();
            assert!(err.contains("power of two"), "--shards {bad}: {err}");
        }
        for good in ["1", "2", "4", "64"] {
            assert!(parse_options(&s(&["--shards", good])).is_ok(), "{good}");
        }
    }

    #[test]
    fn fused_mode_parses_and_rejects_set_shards() {
        let o = parse_options(&s(&["--trace-mode", "fused"])).unwrap();
        assert_eq!(o.trace_mode, TraceMode::Fused);
        let err = parse_options(&s(&["--trace-mode", "fused", "--shards", "2"]))
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("fused"), "{err}");
        // Order must not matter.
        assert!(parse_options(&s(&["--shards", "2", "--trace-mode", "fused"])).is_err());
    }

    #[test]
    fn topology_option_resolves_builtins_and_rejects_garbage() {
        let o = parse_options(&s(&["--topology", "stt-llc"])).unwrap();
        assert_eq!(o.topology.as_deref(), Some("stt-llc"));
        let spec = load_topology(&o).unwrap().unwrap();
        assert_eq!(spec.name, "stt-llc");
        // from_topology honors the spec's asymmetric LLC energies.
        let c = config_from(&o).unwrap();
        assert_eq!(c.tech.name, "stt-llc");
        // Unknown names / missing files surface as CLI errors.
        let bad = parse_options(&s(&["--topology", "no-such-node-or-file"])).unwrap();
        assert!(load_topology(&bad).is_err());
        assert!(config_from(&bad).is_err());
        // A malformed file is rejected with a line/column diagnostic.
        let mut path = std::env::temp_dir();
        path.push(format!("slip-cli-topo-{}.topo", std::process::id()));
        std::fs::write(&path, "node broken\nwire 0.16\n").unwrap();
        let malformed = parse_options(&s(&["--topology", path.to_str().unwrap()])).unwrap();
        let err = load_topology(&malformed).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn check_accepts_topology_and_rejects_bad_values() {
        assert!(cmd_check(&s(&["--topology"])).is_err());
        assert!(cmd_check(&s(&["--topology", "no-such-node"])).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        assert!(dispatch(&s(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn sweep_rejects_unknown_benchmarks() {
        assert!(cmd_sweep(&s(&["not-a-bench", "--accesses", "1000"])).is_err());
    }

    #[test]
    fn bench_rejects_bad_options_before_running() {
        assert!(cmd_bench(&s(&["--bogus"])).is_err());
        assert!(cmd_bench(&s(&["--out"])).is_err());
        assert!(cmd_bench(&s(&["--check"])).is_err());
    }

    #[test]
    fn decimal_seed_parses() {
        let o = parse_options(&s(&["--seed", "123"])).unwrap();
        assert_eq!(o.seed, 123);
    }

    fn baseline_json(text: &str) -> sweep_runner::json::Value {
        sweep_runner::json::Value::parse(text).unwrap()
    }

    #[test]
    fn bench_check_passes_inside_the_tolerance_band() {
        let baseline = baseline_json(r#"{"suite_accesses_per_sec": 1000000.0}"#);
        // 20% tolerance: the floor is 800k.
        let (base, floor) =
            bench_check_verdict(900_000.0, &baseline, false, BENCH_REGRESSION_TOLERANCE).unwrap();
        assert_eq!(base, 1_000_000.0);
        assert_eq!(floor, 800_000.0);
        // Exactly at the floor still passes; faster than baseline too.
        assert!(
            bench_check_verdict(800_000.0, &baseline, false, BENCH_REGRESSION_TOLERANCE).is_ok()
        );
        assert!(
            bench_check_verdict(2_000_000.0, &baseline, false, BENCH_REGRESSION_TOLERANCE).is_ok()
        );
    }

    #[test]
    fn bench_check_fails_below_the_tolerance_band() {
        let baseline = baseline_json(r#"{"suite_accesses_per_sec": 1000000.0}"#);
        let err = bench_check_verdict(799_999.0, &baseline, false, BENCH_REGRESSION_TOLERANCE)
            .unwrap_err();
        assert!(err.contains("regression"), "{err}");
    }

    #[test]
    fn bench_check_honors_a_custom_tolerance() {
        let baseline = baseline_json(r#"{"suite_accesses_per_sec": 1000000.0}"#);
        // A 5% band fails what the default 20% band accepts...
        assert!(bench_check_verdict(900_000.0, &baseline, false, 0.05).is_err());
        let (_, floor) = bench_check_verdict(960_000.0, &baseline, false, 0.05).unwrap();
        assert_eq!(floor, 950_000.0);
        // ...and a 50% band accepts what the default rejects.
        assert!(bench_check_verdict(600_000.0, &baseline, false, 0.50).is_ok());
    }

    #[test]
    fn bench_tolerance_resolution_order_and_validation() {
        // Default when neither source is set.
        assert_eq!(
            resolve_bench_tolerance(None, None).unwrap(),
            BENCH_REGRESSION_TOLERANCE
        );
        // Environment value applies; the flag overrides it.
        assert_eq!(resolve_bench_tolerance(None, Some("10")).unwrap(), 0.10);
        assert_eq!(
            resolve_bench_tolerance(Some("35"), Some("10")).unwrap(),
            0.35
        );
        assert_eq!(resolve_bench_tolerance(Some("2.5"), None).unwrap(), 0.025);
        // Junk and out-of-range percentages are rejected, naming the
        // offending source.
        assert!(resolve_bench_tolerance(Some("fast"), None)
            .unwrap_err()
            .contains("--tolerance"));
        assert!(resolve_bench_tolerance(None, Some("-3"))
            .unwrap_err()
            .contains("SLIP_BENCH_TOL"));
        assert!(resolve_bench_tolerance(Some("0"), None).is_err());
        assert!(resolve_bench_tolerance(Some("100"), None).is_err());
    }

    #[test]
    fn bench_check_reads_the_mode_matching_section() {
        // Nested report shape: --quick baselines live under after_quick.
        let baseline = baseline_json(
            r#"{"after": {"suite_accesses_per_sec": 1000000.0},
                "after_quick": {"suite_accesses_per_sec": 100000.0}}"#,
        );
        // 90k passes against the quick section (floor 80k) but fails
        // against the full section (floor 800k).
        assert!(bench_check_verdict(90_000.0, &baseline, true, BENCH_REGRESSION_TOLERANCE).is_ok());
        assert!(
            bench_check_verdict(90_000.0, &baseline, false, BENCH_REGRESSION_TOLERANCE).is_err()
        );
    }

    #[test]
    fn bench_check_rejects_baselines_without_a_suite_rate() {
        let baseline = baseline_json(r#"{"kernels": []}"#);
        let err =
            bench_check_verdict(1.0, &baseline, false, BENCH_REGRESSION_TOLERANCE).unwrap_err();
        assert!(err.contains("suite_accesses_per_sec"), "{err}");
    }

    #[test]
    fn bench_rejects_bad_tolerance_before_running() {
        assert!(cmd_bench(&s(&["--tolerance"])).is_err());
        assert!(cmd_bench(&s(&["--tolerance", "lots"])).is_err());
    }

    #[test]
    fn check_rejects_bad_options_before_running() {
        assert!(cmd_check(&s(&["--bogus"])).is_err());
        assert!(cmd_check(&s(&["--iters"])).is_err());
        assert!(cmd_check(&s(&["--iters", "many"])).is_err());
        assert!(cmd_check(&s(&["--seed", "0xzz"])).is_err());
        assert!(cmd_check(&s(&["--max-len", "long"])).is_err());
    }
}
