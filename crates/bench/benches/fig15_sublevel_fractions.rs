//! Regenerates paper Figure 15: fraction of accesses served per
//! sublevel for each policy.

use sim_engine::experiments::{traffic, SuiteOptions, SuiteResults};

fn main() {
    slip_bench::print_header("Figure 15: sublevel access fractions");
    let suite =
        SuiteResults::run(SuiteOptions::paper_full().with_accesses(slip_bench::bench_accesses()));
    print!("{}", traffic::fig15_table(&traffic::fig15(&suite)).render());
}
