//! Regenerates paper Figure 11: access vs movement energy per policy.

use sim_engine::experiments::{energy, SuiteOptions, SuiteResults};

fn main() {
    slip_bench::print_header("Figure 11: access/movement energy breakdown");
    let suite =
        SuiteResults::run(SuiteOptions::paper_full().with_accesses(slip_bench::bench_accesses()));
    print!("{}", energy::fig11_table(&energy::fig11(&suite)).render());
}
