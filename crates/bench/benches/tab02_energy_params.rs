//! Regenerates paper Table 2 and cross-checks it against the geometric
//! wire model, plus the Section 5 EOU cost summary.

use sim_engine::experiments::hardware;

fn main() {
    slip_bench::print_header("Table 2: energy parameters + EOU hardware cost");
    print!("{}", hardware::tab02_table(&hardware::tab02()).render());
    println!();
    print!("{}", hardware::eou_table(&hardware::eou_summary()).render());
}
