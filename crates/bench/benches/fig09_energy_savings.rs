//! Regenerates paper Figure 9: L2/L3 energy savings of SLIP and
//! SLIP+ABP (and the NuRAPID / LRU-PEA increases quoted in the caption).

use sim_engine::experiments::{energy, SuiteOptions, SuiteResults};

fn main() {
    slip_bench::print_header("Figure 9: energy savings at L2 and L3");
    let suite =
        SuiteResults::run(SuiteOptions::paper_full().with_accesses(slip_bench::bench_accesses()));
    print!("{}", energy::fig09_table(&energy::fig09(&suite)).render());
}
