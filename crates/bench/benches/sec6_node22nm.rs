//! Regenerates the Section 6 node study: SLIP+ABP at 22 nm
//! (paper: 36% L2 / 25% L3 savings).

use sim_engine::experiments::energy;

fn main() {
    slip_bench::print_header("Section 6: 22 nm technology node, SLIP+ABP");
    let (l2, l3) = energy::node22(slip_bench::bench_accesses(), &workloads::BENCHMARK_NAMES);
    println!("mean L2 saving: {:.1}%   (paper: 36%)", l2 * 100.0);
    println!("mean L3 saving: {:.1}%   (paper: 25%)", l3 * 100.0);
}
