//! Ablation (paper §7): way-partitioned shared L3 — SLIP applied within
//! each core's partition vs one shared SLIP policy.

use sim_engine::experiments::multicore_exp;

fn main() {
    slip_bench::print_header("Ablation: shared vs way-partitioned L3 (paper Section 7)");
    let rows = multicore_exp::partition_comparison(
        slip_bench::bench_accesses(),
        &workloads::MULTICORE_MIXES[..4],
    );
    print!("{}", multicore_exp::partition_table(&rows).render());
}
