//! Regenerates paper Figure 16: two-core multiprogrammed mixes with a
//! shared L3.

use sim_engine::experiments::multicore_exp;

fn main() {
    slip_bench::print_header("Figure 16: 2-core mixes, shared 2 MB L3");
    let rows = multicore_exp::fig16(slip_bench::bench_accesses());
    print!("{}", multicore_exp::fig16_table(&rows).render());
}
