//! Ablation: sweep the sublevel partitioning (the paper fixes S = 3
//! with 4/4/8 ways per sublevel).

use sim_engine::experiments::ablation;

fn main() {
    slip_bench::print_header("Ablation: sublevel partitioning");
    let rows = ablation::sublevel_sweep(
        slip_bench::bench_accesses(),
        &["soplex", "gcc", "mcf", "sphinx3", "lbm"],
    );
    print!("{}", ablation::sublevel_table(&rows).render());
}
