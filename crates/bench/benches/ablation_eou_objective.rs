//! Ablation: the EOU's analytical objective — the paper's literal
//! Eq. 1-4 versus the insertion-aware variant this reproduction uses
//! (see DESIGN.md §3).

use sim_engine::experiments::ablation;

fn main() {
    slip_bench::print_header("Ablation: EOU objective");
    let rows = ablation::eou_objective_ablation(
        slip_bench::bench_accesses(),
        &["soplex", "gcc", "mcf", "sphinx3", "lbm"],
    );
    print!("{}", ablation::objective_table(&rows).render());
}
