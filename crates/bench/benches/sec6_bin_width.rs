//! Regenerates the Section 6 bin-width sensitivity study
//! (paper: 4 bits within 1% of wider widths; sharp drop at 2 bits).

use sim_engine::experiments::sensitivity;

fn main() {
    slip_bench::print_header("Section 6: distribution bin-width sensitivity");
    let rows = sensitivity::bin_width_sweep(
        slip_bench::bench_accesses(),
        &["soplex", "mcf", "lbm", "sphinx3", "gcc"],
        &[2, 3, 4, 6, 8],
    );
    print!("{}", sensitivity::bin_width_table(&rows).render());
}
