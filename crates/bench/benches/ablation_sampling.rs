//! Ablation (paper §4.2): time-based sampling probabilities.

use sim_engine::experiments::ablation;

fn main() {
    slip_bench::print_header("Ablation: sampling probabilities (N_samp / N_stab)");
    let rows = ablation::sampling_sweep(
        slip_bench::bench_accesses(),
        &["soplex", "xalancbmk", "mcf"],
    );
    print!("{}", ablation::sampling_table(&rows).render());
}
