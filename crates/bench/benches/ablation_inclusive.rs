//! Ablation (paper §4.3): SLIP+ABP under an inclusive LLC — bypassed
//! lines may not be cached above, degrading performance.

use sim_engine::experiments::ablation;

fn main() {
    slip_bench::print_header("Ablation: inclusive vs non-inclusive LLC under SLIP+ABP");
    let rows = ablation::inclusion_ablation(
        slip_bench::bench_accesses(),
        &["soplex", "gcc", "mcf", "sphinx3", "lbm"],
    );
    print!("{}", ablation::inclusion_table(&rows).render());
}
