//! Ablation (paper §7): rd-block granularity — profile and assign
//! SLIPs per 2 KB / 4 KB / 8 KB block instead of per page.

use sim_engine::experiments::ablation;

fn main() {
    slip_bench::print_header("Ablation: rd-block granularity (paper Section 7)");
    let rows = ablation::rd_block_sweep(
        slip_bench::bench_accesses(),
        &["soplex", "xalancbmk", "mcf", "lbm"],
        &[11, 12, 13, 14],
    );
    print!("{}", ablation::rd_block_table(&rows).render());
}
