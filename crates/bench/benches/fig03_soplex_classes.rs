//! Regenerates paper Figure 3: reuse-distance distributions of the
//! three soplex access classes.

use sim_engine::experiments::motivation;

fn main() {
    slip_bench::print_header("Figure 3: soplex access classes (paper: 18%/72% bimodal rorig, ~100% miss rperm, 66%/10%/24% cperm)");
    let rows = motivation::fig03(slip_bench::bench_accesses());
    print!("{}", motivation::fig03_table(&rows).render());
}
