//! Micro-benchmarks for the Energy Optimizer Unit (paper Section 5:
//! the synthesized RTL sustains one optimization per cycle at 2.4 GHz;
//! this measures the software model's throughput).

use energy_model::TECH_45NM;
use sim_engine::experiments::hardware::eou_bench_distributions;
use slip_core::{EnergyOptimizerUnit, LevelModelParams, Slip};
use std::hint::black_box;

fn l2_params() -> LevelModelParams {
    LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access())
}

fn main() {
    println!("EOU micro-benchmarks");

    let params = l2_params();
    slip_bench::microbench("eou/build_unit", || {
        EnergyOptimizerUnit::new(black_box(&params))
    });

    let dists = eou_bench_distributions();
    slip_bench::microbench("eou/optimize_all_distributions", || {
        let mut eou = EnergyOptimizerUnit::new(&params);
        for d in &dists {
            black_box(eou.optimize(d));
        }
    });

    slip_bench::microbench("eou/coefficients_all_slips", || {
        for slip in Slip::enumerate(3) {
            black_box(slip_core::coefficients(&params, slip));
        }
    });
}
