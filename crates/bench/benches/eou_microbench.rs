//! Criterion micro-benchmarks for the Energy Optimizer Unit (paper
//! Section 5: the synthesized RTL sustains one optimization per cycle
//! at 2.4 GHz; this measures the software model's throughput).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use energy_model::TECH_45NM;
use sim_engine::experiments::hardware::eou_bench_distributions;
use slip_core::{EnergyOptimizerUnit, LevelModelParams, Slip};
use std::hint::black_box;

fn l2_params() -> LevelModelParams {
    LevelModelParams::from_level(&TECH_45NM.l2, TECH_45NM.l3.mean_access())
}

fn bench_eou(c: &mut Criterion) {
    let mut group = c.benchmark_group("eou");

    group.bench_function("build_unit", |b| {
        let params = l2_params();
        b.iter(|| EnergyOptimizerUnit::new(black_box(&params)));
    });

    group.bench_function("optimize_one_distribution", |b| {
        let dists = eou_bench_distributions();
        b.iter_batched(
            || EnergyOptimizerUnit::new(&l2_params()),
            |mut eou| {
                for d in &dists {
                    black_box(eou.optimize(d));
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("coefficients_all_slips", |b| {
        let params = l2_params();
        b.iter(|| {
            for slip in Slip::enumerate(3) {
                black_box(slip_core::coefficients(&params, slip));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_eou);
criterion_main!(benches);
