//! Regenerates paper Figure 1: fraction of 2 MB-LLC lines by number of
//! reuses (NR) before eviction.

use sim_engine::experiments::motivation;

fn main() {
    slip_bench::print_header("Figure 1: lines by number of reuses before eviction");
    let rows = motivation::fig01(slip_bench::bench_accesses());
    print!("{}", motivation::fig01_table(&rows).render());
}
