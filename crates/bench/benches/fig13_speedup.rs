//! Regenerates paper Figure 13: speedups vs the regular hierarchy.

use sim_engine::experiments::{speedup, SuiteOptions, SuiteResults};

fn main() {
    slip_bench::print_header("Figure 13: speedups vs regular hierarchy");
    let suite =
        SuiteResults::run(SuiteOptions::paper_full().with_accesses(slip_bench::bench_accesses()));
    print!("{}", speedup::fig13_table(&speedup::fig13(&suite)).render());
}
