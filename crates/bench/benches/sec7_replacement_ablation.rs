//! Regenerates the Section 7 study: DRRIP/SHiP victim selection under
//! SLIP preserves scan and thrash resistance.

use sim_engine::experiments::sensitivity;

fn main() {
    slip_bench::print_header("Section 7: replacement policies under SLIP");
    let rows = sensitivity::replacement_ablation(slip_bench::bench_accesses());
    print!("{}", sensitivity::replacement_table(&rows).render());
}
