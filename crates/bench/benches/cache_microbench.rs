//! Micro-benchmarks for the cache-simulator hot paths: hit lookups,
//! miss+fill cycles, and the full single-core per-access step.

use cache_sim::{
    AccessClass, AccessKind, BaselinePolicy, CacheGeometry, CacheLevel, FillRequest, LineAddr, Lru,
};
use energy_model::Energy;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::SingleCoreSystem;
use std::hint::black_box;

fn paper_l2() -> CacheLevel {
    CacheLevel::new(
        "L2",
        CacheGeometry::from_sublevels(
            256,
            &[
                (4, Energy::from_pj(21.0), 4),
                (4, Energy::from_pj(33.0), 6),
                (8, Energy::from_pj(50.0), 8),
            ],
        ),
    )
}

fn main() {
    println!("cache micro-benchmarks");

    {
        let mut cache = paper_l2();
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        cache.fill(FillRequest::new(LineAddr(7)), 0, &mut policy, &mut repl);
        slip_bench::microbench("cache_level/hit_lookup", || {
            black_box(cache.access(
                LineAddr(7),
                AccessKind::Read,
                AccessClass::Demand,
                0,
                &mut policy,
                &mut repl,
            ))
        });
    }

    {
        let mut cache = paper_l2();
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        let mut next = 0u64;
        slip_bench::microbench("cache_level/miss_plus_fill", || {
            next += 1;
            let line = LineAddr(next);
            cache.access(
                line,
                AccessKind::Read,
                AccessClass::Demand,
                0,
                &mut policy,
                &mut repl,
            );
            black_box(cache.fill(FillRequest::new(line), 0, &mut policy, &mut repl));
        });
    }

    let spec = workloads::workload("gcc").expect("gcc exists");
    for policy in [PolicyKind::Baseline, PolicyKind::SlipAbp] {
        let label = format!("full_system/gcc_10k_accesses_{}", policy.label());
        slip_bench::microbench(&label, || {
            let mut sys = SingleCoreSystem::new(SystemConfig::paper_45nm(policy));
            sys.run(spec.trace(10_000, 1));
            black_box(sys.finish("gcc"))
        });
    }
}
