//! Criterion micro-benchmarks for the cache-simulator hot paths: hit
//! lookups, miss+fill cycles, and the full single-core per-access step.

use cache_sim::{
    AccessClass, AccessKind, BaselinePolicy, CacheGeometry, CacheLevel, FillRequest, LineAddr, Lru,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use energy_model::Energy;
use sim_engine::config::{PolicyKind, SystemConfig};
use sim_engine::SingleCoreSystem;
use std::hint::black_box;

fn paper_l2() -> CacheLevel {
    CacheLevel::new(
        "L2",
        CacheGeometry::from_sublevels(
            256,
            &[
                (4, Energy::from_pj(21.0), 4),
                (4, Energy::from_pj(33.0), 6),
                (8, Energy::from_pj(50.0), 8),
            ],
        ),
    )
}

fn bench_cache_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_level");
    group.throughput(Throughput::Elements(1));

    group.bench_function("hit_lookup", |b| {
        let mut cache = paper_l2();
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        cache.fill(FillRequest::new(LineAddr(7)), 0, &mut policy, &mut repl);
        b.iter(|| {
            black_box(cache.access(
                LineAddr(7),
                AccessKind::Read,
                AccessClass::Demand,
                0,
                &mut policy,
                &mut repl,
            ))
        });
    });

    group.bench_function("miss_plus_fill", |b| {
        let mut cache = paper_l2();
        let mut policy = BaselinePolicy::new();
        let mut repl = Lru::new();
        let mut next = 0u64;
        b.iter(|| {
            next += 1;
            let line = LineAddr(next);
            cache.access(
                line,
                AccessKind::Read,
                AccessClass::Demand,
                0,
                &mut policy,
                &mut repl,
            );
            black_box(cache.fill(FillRequest::new(line), 0, &mut policy, &mut repl));
        });
    });

    group.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_system");
    let spec = workloads::workload("gcc").expect("gcc exists");
    for policy in [PolicyKind::Baseline, PolicyKind::SlipAbp] {
        let label = format!("gcc_10k_accesses_{}", policy.label());
        group.bench_function(&label, |b| {
            b.iter(|| {
                let mut sys = SingleCoreSystem::new(SystemConfig::paper_45nm(policy));
                sys.run(spec.trace(10_000, 1));
                black_box(sys.finish("gcc"))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache_level, bench_full_system
}
criterion_main!(benches);
