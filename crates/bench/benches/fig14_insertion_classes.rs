//! Regenerates paper Figure 14: breakdown of insertions by SLIP class.

use sim_engine::experiments::{traffic, SuiteOptions, SuiteResults};
use sim_engine::PolicyKind;

fn main() {
    slip_bench::print_header("Figure 14: insertions by optimal SLIP class");
    let suite = SuiteResults::run(
        SuiteOptions::paper_full()
            .with_policies(&[PolicyKind::SlipAbp])
            .with_accesses(slip_bench::bench_accesses()),
    );
    print!("{}", traffic::fig14_table(&traffic::fig14(&suite)).render());
}
