//! Regenerates the Section 2.1 claim: an H-tree interconnect costs 37%
//! more L2 energy and 32% more L3 energy than the way-interleaved bus.

use sim_engine::experiments::energy;

fn main() {
    slip_bench::print_header("Section 2.1: H-tree vs hierarchical-bus energy");
    let rows = energy::htree_comparison(slip_bench::bench_accesses(), &workloads::BENCHMARK_NAMES);
    print!("{}", energy::htree_table(&rows).render());
}
