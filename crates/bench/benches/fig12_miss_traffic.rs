//! Regenerates paper Figure 12: relative L2/L3 miss traffic including
//! the SLIP metadata overhead.

use sim_engine::experiments::{traffic, SuiteOptions, SuiteResults};
use sim_engine::PolicyKind;

fn main() {
    slip_bench::print_header("Figure 12: relative miss traffic (demand + metadata)");
    let suite = SuiteResults::run(
        SuiteOptions::paper_full()
            .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp])
            .with_accesses(slip_bench::bench_accesses()),
    );
    print!("{}", traffic::fig12_table(&traffic::fig12(&suite)).render());
}
