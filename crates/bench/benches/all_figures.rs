//! Regenerates every single-core figure (9-15) from ONE shared sweep,
//! plus the motivation figures, hardware tables, topology comparison,
//! node study, bin-width study, replacement ablation, and the two-core
//! Figure 16. This is the efficient way to reproduce the whole paper.

use sim_engine::experiments::{
    energy, hardware, motivation, multicore_exp, sensitivity, speedup, traffic, SuiteOptions,
    SuiteResults,
};
use sim_engine::PolicyKind;

fn main() {
    let accesses = slip_bench::bench_accesses();
    slip_bench::print_header("SLIP reproduction: all tables and figures");

    print!("{}", hardware::tab02_table(&hardware::tab02()).render());
    println!();
    print!("{}", hardware::eou_table(&hardware::eou_summary()).render());
    println!();

    print!(
        "{}",
        motivation::fig01_table(&motivation::fig01(accesses)).render()
    );
    println!();
    print!(
        "{}",
        motivation::fig03_table(&motivation::fig03(accesses)).render()
    );
    println!();

    let suite = SuiteResults::run(SuiteOptions::paper_full().with_accesses(accesses));
    print!("{}", energy::fig09_table(&energy::fig09(&suite)).render());
    println!(
        "DRAM traffic change: SLIP {:+.1}%, SLIP+ABP {:+.1}%  (paper: -2.2% for SLIP+ABP)\n",
        energy::mean_dram_traffic_change(&suite, PolicyKind::Slip) * 100.0,
        energy::mean_dram_traffic_change(&suite, PolicyKind::SlipAbp) * 100.0,
    );
    print!("{}", energy::fig10_table(&energy::fig10(&suite)).render());
    println!();
    print!("{}", energy::fig11_table(&energy::fig11(&suite)).render());
    println!();
    print!("{}", traffic::fig12_table(&traffic::fig12(&suite)).render());
    println!();
    print!("{}", speedup::fig13_table(&speedup::fig13(&suite)).render());
    println!();
    print!("{}", traffic::fig14_table(&traffic::fig14(&suite)).render());
    println!();
    print!("{}", traffic::fig15_table(&traffic::fig15(&suite)).render());
    println!();

    let rows = energy::htree_comparison(accesses, &["soplex", "gcc", "mcf", "lbm"]);
    print!("{}", energy::htree_table(&rows).render());
    println!();

    let (l2, l3) = energy::node22(accesses, &["soplex", "gcc", "mcf", "lbm"]);
    println!("== Section 6: 22 nm node, SLIP+ABP ==");
    println!("mean L2 saving: {:.1}%   (paper: 36%)", l2 * 100.0);
    println!("mean L3 saving: {:.1}%   (paper: 25%)\n", l3 * 100.0);

    let rows = sensitivity::bin_width_sweep(accesses, &["soplex", "mcf", "lbm"], &[2, 3, 4, 6, 8]);
    print!("{}", sensitivity::bin_width_table(&rows).render());
    println!();

    let rows = sensitivity::replacement_ablation(accesses);
    print!("{}", sensitivity::replacement_table(&rows).render());
    println!();

    let rows = multicore_exp::fig16(accesses);
    print!("{}", multicore_exp::fig16_table(&rows).render());
}
