//! Regenerates paper Figure 10: full-system dynamic energy savings.

use sim_engine::experiments::{energy, SuiteOptions, SuiteResults};
use sim_engine::PolicyKind;

fn main() {
    slip_bench::print_header("Figure 10: full-system energy savings");
    let suite = SuiteResults::run(
        SuiteOptions::paper_full()
            .with_policies(&[PolicyKind::Slip, PolicyKind::SlipAbp])
            .with_accesses(slip_bench::bench_accesses()),
    );
    print!("{}", energy::fig10_table(&energy::fig10(&suite)).render());
}
