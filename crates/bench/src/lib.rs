//! Shared helpers for the paper-figure bench targets.
//!
//! Every `harness = false` bench in this crate regenerates one table or
//! figure of the SLIP paper (see DESIGN.md §5 for the index). Trace
//! length is controlled by the `SLIP_ACCESSES` environment variable
//! (default 1,000,000 accesses per benchmark for the bench targets;
//! larger values sharpen the numbers at linear cost).
//!
//! Run everything from one shared simulation sweep with:
//!
//! ```sh
//! cargo bench --bench all_figures
//! ```

use sim_engine::config::SystemConfig;
use sim_engine::PolicyKind;

/// Default accesses per benchmark for bench targets.
pub const BENCH_DEFAULT_ACCESSES: u64 = 1_000_000;

/// Reads `SLIP_ACCESSES` or returns the bench default.
pub fn bench_accesses() -> u64 {
    sim_engine::env::parse_var("SLIP_ACCESSES").unwrap_or(BENCH_DEFAULT_ACCESSES)
}

/// Prints the Table 1 system-parameter header every figure bench leads
/// with, so printed results are self-describing.
pub fn print_header(title: &str) {
    let c = SystemConfig::paper_45nm(PolicyKind::SlipAbp);
    println!("================================================================");
    println!("{title}");
    println!("----------------------------------------------------------------");
    println!(
        "system (paper Table 1): L1 32KB/8w/{}cyc; L2 256KB/16w, sublevels \
         64/64/128KB @ {:?}cyc; L3 2MB/16w, sublevels 512/512/1024KB @ {:?}cyc; \
         DRAM 100cyc",
        c.l1_latency, c.l2_sublevel_latency, c.l3_sublevel_latency
    );
    println!(
        "energy (Table 2, {}): L2 {:?} pJ, L3 {:?} pJ, DRAM {} pJ/bit",
        c.tech.name,
        c.tech
            .l2
            .sublevel_access
            .iter()
            .map(|e| e.as_pj())
            .collect::<Vec<_>>(),
        c.tech
            .l3
            .sublevel_access
            .iter()
            .map(|e| e.as_pj())
            .collect::<Vec<_>>(),
        c.tech.dram_pj_per_bit
    );
    println!(
        "trace: {} accesses/benchmark (set SLIP_ACCESSES to change)",
        bench_accesses()
    );
    println!("================================================================");
}

/// Times `f`, printing ns/iter (best and mean of several samples).
///
/// A deliberately small stand-in for a statistical bench harness: the
/// iteration count is calibrated so each sample runs ~100ms, then five
/// samples are measured. Good enough to spot relative regressions in
/// the hot paths without any external dependency.
pub fn microbench<T>(name: &str, mut f: impl FnMut() -> T) {
    use std::time::Instant;

    const TARGET_SAMPLE: f64 = 0.1; // seconds
    const SAMPLES: usize = 5;

    // Calibrate: grow the iteration count until one batch is measurable.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let secs = t.elapsed().as_secs_f64();
        if secs > 0.01 {
            break secs / iters as f64;
        }
        iters = iters.saturating_mul(10);
    };
    let iters = ((TARGET_SAMPLE / per_iter) as u64).max(1);

    let mut samples = [0f64; SAMPLES];
    for s in &mut samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        *s = t.elapsed().as_secs_f64() / iters as f64;
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / SAMPLES as f64;
    println!(
        "{name:<40} {:>12.1} ns/iter (mean {:>12.1} ns, {iters} iters x {SAMPLES})",
        best * 1e9,
        mean * 1e9,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_parses() {
        // bench_accesses falls back to the default on unset/garbage.
        assert!(bench_accesses() >= 1);
    }

    #[test]
    fn header_prints_without_panic() {
        print_header("test header");
    }
}
