//! The movement queue (paper Section 4.3).
//!
//! Lines being moved between ways are held in a small fully-associative
//! queue until written to their destination, so lookups and invalidations
//! can still find them. Our simulator performs movements atomically, so
//! the queue is a bookkeeping and cost model: it tracks occupancy within
//! one fill/movement cascade, the high-water mark, and how often a
//! cascade exceeded the paper's 16 entries (which a real implementation
//! would resolve by stalling the port).

use crate::addr::LineAddr;

/// Capacity used in the paper's evaluation.
pub const PAPER_MOVEMENT_QUEUE_ENTRIES: usize = 16;

/// A bounded queue of in-flight line movements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovementQueue {
    capacity: usize,
    in_flight: Vec<LineAddr>,
    /// Total movements pushed over the simulation.
    pub total_movements: u64,
    /// Largest simultaneous occupancy observed.
    pub max_occupancy: usize,
    /// Movements that found the queue full (would stall the port).
    pub overflows: u64,
    /// Lookups performed against the queue.
    pub lookups: u64,
}

impl MovementQueue {
    /// Creates a queue with the paper's 16 entries.
    pub fn new() -> Self {
        Self::with_capacity(PAPER_MOVEMENT_QUEUE_ENTRIES)
    }

    /// Creates a queue with a custom capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "movement queue needs at least one entry");
        MovementQueue {
            capacity,
            in_flight: Vec::with_capacity(capacity),
            total_movements: 0,
            max_occupancy: 0,
            overflows: 0,
            lookups: 0,
        }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// Registers a movement of `line`. Returns `false` if the queue was
    /// full (counted as an overflow; the movement still proceeds, as a
    /// real controller would stall until an entry frees up).
    pub fn push(&mut self, line: LineAddr) -> bool {
        self.total_movements += 1;
        if self.in_flight.len() >= self.capacity {
            self.overflows += 1;
            return false;
        }
        self.in_flight.push(line);
        self.max_occupancy = self.max_occupancy.max(self.in_flight.len());
        true
    }

    /// Probes the queue for `line` (a lookup or invalidation must check
    /// lines in flight).
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.lookups += 1;
        self.in_flight.contains(&line)
    }

    /// Completes all in-flight movements (end of a movement cascade).
    pub fn drain(&mut self) {
        self.in_flight.clear();
    }

    /// Merges another queue's cost counters into this one: counts sum,
    /// the high-water mark takes the max. In-flight entries are not
    /// merged (both queues are drained between cascades).
    pub fn absorb(&mut self, other: &MovementQueue) {
        self.total_movements += other.total_movements;
        self.max_occupancy = self.max_occupancy.max(other.max_occupancy);
        self.overflows += other.overflows;
        self.lookups += other.lookups;
    }
}

impl Default for MovementQueue {
    fn default() -> Self {
        MovementQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_occupancy_and_high_water() {
        let mut q = MovementQueue::with_capacity(2);
        assert!(q.push(LineAddr(1)));
        assert!(q.push(LineAddr(2)));
        assert_eq!(q.occupancy(), 2);
        assert_eq!(q.max_occupancy, 2);
        q.drain();
        assert_eq!(q.occupancy(), 0);
        assert_eq!(q.max_occupancy, 2);
        assert_eq!(q.total_movements, 2);
    }

    #[test]
    fn overflow_is_counted_not_fatal() {
        let mut q = MovementQueue::with_capacity(1);
        assert!(q.push(LineAddr(1)));
        assert!(!q.push(LineAddr(2)));
        assert_eq!(q.overflows, 1);
        assert_eq!(q.total_movements, 2);
    }

    #[test]
    fn lookup_finds_in_flight_lines() {
        let mut q = MovementQueue::new();
        q.push(LineAddr(7));
        assert!(q.lookup(LineAddr(7)));
        assert!(!q.lookup(LineAddr(8)));
        assert_eq!(q.lookups, 2);
        q.drain();
        assert!(!q.lookup(LineAddr(7)));
    }

    #[test]
    fn paper_capacity_is_16() {
        assert_eq!(MovementQueue::new().capacity(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        MovementQueue::with_capacity(0);
    }
}
