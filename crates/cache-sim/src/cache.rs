//! The cache level controller: lookups, fills, movement cascades,
//! writebacks, and energy/latency accounting.

use crate::addr::{AccessClass, AccessKind, LineAddr};
use crate::geometry::{CacheGeometry, WayMask};
use crate::line::{EvictedLine, LineState};
use crate::movement::MovementQueue;
use crate::policy::{FillRequest, PlacementPolicy};
use crate::replacement::ReplacementPolicy;
use crate::rng::SplitMix64;
use crate::soa::PackedLruStack;
use crate::stats::CacheStats;
use energy_model::{Energy, EnergyAccount, EnergyCategory, EnergyLedger};

/// Result of probing a level for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// The way that serviced the hit.
    pub way: usize,
    /// Sublevel of that way.
    pub sublevel: usize,
    /// Total latency in cycles, including port contention.
    pub latency: u32,
    /// Reuse distance of this access in level accesses, quantized to the
    /// timestamp granule (paper §4.1). `None` if the timestamp shows the
    /// line was not touched within the last 4C accesses window.
    pub reuse_distance: u64,
    /// Whether the line's page was sampling when the line was filled.
    pub sampling: bool,
    /// SLIP codes carried with the line.
    pub slip_codes: [u8; 2],
}

/// Result of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was found.
    Hit(HitInfo),
    /// The line was not found; `latency` is the cycles spent discovering
    /// the miss.
    Miss {
        /// Lookup cycles spent before declaring the miss.
        latency: u32,
    },
}

impl AccessResult {
    /// `true` for [`AccessResult::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit(_))
    }

    /// The cycles this access spent at the level.
    pub fn latency(&self) -> u32 {
        match self {
            AccessResult::Hit(h) => h.latency,
            AccessResult::Miss { latency } => *latency,
        }
    }
}

/// A small reusable buffer of evicted lines.
///
/// A fill cascade produces at most one departing line today, so entries
/// live in a fixed inline array and the heap is touched only if a
/// future policy ever evicts more than [`EvictionBuf::INLINE`] lines
/// from one operation. Combined with [`CacheLevel::fill_into`], this
/// keeps the steady-state access loop allocation-free: callers clear
/// and refill the same buffers instead of receiving fresh `Vec`s.
///
/// Dereferences to `&[EvictedLine]`, so indexing, `len()`, `iter()`,
/// and slice patterns all work as they did on the former `Vec` fields.
#[derive(Debug, Clone)]
pub struct EvictionBuf {
    inline: [EvictedLine; Self::INLINE],
    /// Entries in `inline` (unused once spilled).
    len: usize,
    /// Overflow storage; when non-empty it holds *all* entries.
    spill: Vec<EvictedLine>,
}

impl EvictionBuf {
    /// Inline capacity. The demotion cascade stops at the first line
    /// that leaves the level, so 2 covers every current policy with
    /// headroom.
    pub const INLINE: usize = 2;

    const EMPTY: EvictedLine = EvictedLine {
        addr: LineAddr(0),
        dirty: false,
        slip_codes: [0; 2],
        sampling: false,
        hits_since_fill: 0,
    };

    /// Creates an empty buffer.
    pub fn new() -> Self {
        EvictionBuf {
            inline: [Self::EMPTY; Self::INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends an evicted line.
    pub fn push(&mut self, line: EvictedLine) {
        if self.spill.is_empty() {
            if self.len < Self::INLINE {
                self.inline[self.len] = line;
                self.len += 1;
                return;
            }
            self.spill.extend_from_slice(&self.inline[..self.len]);
            self.len = 0;
        }
        self.spill.push(line);
    }

    /// Empties the buffer, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The entries as a contiguous slice.
    pub fn as_slice(&self) -> &[EvictedLine] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

impl Default for EvictionBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl core::ops::Deref for EvictionBuf {
    type Target = [EvictedLine];
    fn deref(&self) -> &[EvictedLine] {
        self.as_slice()
    }
}

impl PartialEq for EvictionBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for EvictionBuf {}

/// By-value iterator over an [`EvictionBuf`] (entries are `Copy`).
#[derive(Debug)]
pub struct EvictionBufIter {
    buf: EvictionBuf,
    pos: usize,
}

impl Iterator for EvictionBufIter {
    type Item = EvictedLine;
    fn next(&mut self) -> Option<EvictedLine> {
        let item = self.buf.as_slice().get(self.pos).copied();
        self.pos += item.is_some() as usize;
        item
    }
}

impl IntoIterator for EvictionBuf {
    type Item = EvictedLine;
    type IntoIter = EvictionBufIter;
    fn into_iter(self) -> EvictionBufIter {
        EvictionBufIter { buf: self, pos: 0 }
    }
}

impl<'a> IntoIterator for &'a EvictionBuf {
    type Item = &'a EvictedLine;
    type IntoIter = core::slice::Iter<'a, EvictedLine>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Result of a fill (insertion of a line arriving from the level below).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FillOutcome {
    /// The policy bypassed the level; nothing was written.
    pub bypassed: bool,
    /// Dirty lines that left the level and must be written back below.
    pub writebacks: EvictionBuf,
    /// Clean lines that left the level.
    pub clean_evictions: EvictionBuf,
}

impl FillOutcome {
    /// All lines that left the level, clean or dirty.
    pub fn evicted(&self) -> impl Iterator<Item = &EvictedLine> {
        self.writebacks.iter().chain(self.clean_evictions.iter())
    }

    /// Resets the outcome for reuse by [`CacheLevel::fill_into`].
    pub fn clear(&mut self) {
        self.bypassed = false;
        self.writebacks.clear();
        self.clean_evictions.clear();
    }
}

/// One level of the cache hierarchy.
///
/// The level owns its line array, statistics, and energy account. It is
/// *policy-free*: every operation takes the placement and replacement
/// policies as arguments, so the same physical level can be driven as a
/// regular cache, a SLIP cache, or a NUCA cache.
///
/// # Example
///
/// ```
/// use cache_sim::{AccessClass, AccessKind, BaselinePolicy, CacheGeometry,
///                 CacheLevel, FillRequest, LineAddr, Lru};
/// use energy_model::Energy;
///
/// let geom = CacheGeometry::uniform(64, 8, Energy::from_pj(10.0), 4);
/// let mut l2 = CacheLevel::new("L2", geom);
/// let mut policy = BaselinePolicy::new();
/// let mut repl = Lru::new();
///
/// let line = LineAddr(0x100);
/// let miss = l2.access(line, AccessKind::Read, AccessClass::Demand, 0,
///                      &mut policy, &mut repl);
/// assert!(!miss.is_hit());
/// l2.fill(FillRequest::new(line), 0, &mut policy, &mut repl);
/// let hit = l2.access(line, AccessKind::Read, AccessClass::Demand, 1,
///                     &mut policy, &mut repl);
/// assert!(hit.is_hit());
/// ```
#[derive(Debug)]
pub struct CacheLevel {
    name: String,
    geom: CacheGeometry,
    lines: Vec<LineState>,
    /// Compact per-slot partial tags (a pure hash of the line address),
    /// kept in lockstep with `lines` so probes can scan 16-bit tags
    /// instead of full line states. Collisions are verified against the
    /// full address; false negatives are impossible.
    tags: Vec<u16>,
    /// Per-set valid-way bitmask, kept in lockstep with `lines`.
    valid_bits: Vec<u32>,
    /// Per-set dirty-way bitmask, kept in lockstep with `lines` — the
    /// SoA mirror of `LineState::dirty` (the line state stays
    /// authoritative for outbound `EvictedLine` views).
    dirty_bits: Vec<u32>,
    /// Probe through the tag/valid-bit filter (fast path) instead of
    /// scanning the line array (reference path). Results are identical;
    /// see [`CacheLevel::with_tag_filter`].
    tag_filter: bool,
    /// Structure-of-arrays L1 mode: the packed per-set LRU stacks are
    /// this level's authoritative recency order (replacing `lru_seq`
    /// comparisons) and [`CacheLevel::try_demand_hit`] becomes legal.
    /// Only valid for levels driven by `BaselinePolicy` + `Lru`.
    packed_lru: bool,
    /// Per-set packed LRU stacks (maintained when `packed_lru`).
    lru_stacks: Vec<PackedLruStack>,
    /// Per-set last-hit-way memo (way memoization): `NO_MEMO` or the
    /// way that serviced the set's last fast-path hit. Self-verifying —
    /// the fast path re-checks the valid bit and full address before
    /// trusting it — and additionally cleared when the memoized way is
    /// evicted, invalidated, or swapped.
    hit_memo: Vec<u16>,
    /// Monotone touch sequence for LRU stamps. Only the *relative* order
    /// of two stamps within one set is ever compared, so the absolute
    /// value is free to differ between a sharded and a serial run.
    seq: u64,
    /// Per-set access counters: the level access counter T of paper §4.1,
    /// kept per set so a set-shard of the level evolves identically to
    /// the serial level's restriction to those sets.
    set_counters: Vec<u64>,
    /// Set-local accesses per 6-bit timestamp step: 4·ways / 64, so the
    /// 64-stamp wrap window still spans ≈4C level accesses.
    set_stamp_granule: u64,
    /// Multiplier converting a set-local stamp delta into an approximate
    /// level-access reuse distance: `set_stamp_granule * sets`.
    rd_scale: u64,
    /// Per-level statistics.
    pub stats: CacheStats,
    /// Integer event ledger behind [`CacheLevel::energy`].
    ledger: EnergyLedger,
    metadata_energy: Energy,
    mvq_lookup_energy: Energy,
    /// Movement queue cost/occupancy model.
    pub movement_queue: MovementQueue,
    /// Per-set port backlog: cycles of fill/promotion occupancy accrued
    /// on a set's port since its last demand access drained it.
    port_backlog: Vec<u32>,
    /// If set, hits are reported with this flat latency (regular cache
    /// clocked for the worst way) instead of per-way latencies.
    uniform_latency: Option<u32>,
    miss_latency: u32,
    finalized: bool,
    /// Per-set tie-breaking randomness for invalid-way selection. Picking
    /// the lowest invalid way would anchor warmup-resident hot lines in
    /// the nearest (lowest-numbered) ways forever, giving every policy —
    /// including the regular baseline — an artificial placement
    /// advantage that real caches do not have. One deterministic stream
    /// per set keeps the choice a pure function of set-local history.
    slot_rngs: Vec<SplitMix64>,
}

/// "No memoized way" sentinel for `hit_memo`.
const NO_MEMO: u16 = u16::MAX;

impl CacheLevel {
    /// Creates a level with the given geometry.
    pub fn new(name: impl Into<String>, geom: CacheGeometry) -> Self {
        let total_lines = geom.total_lines() as u64;
        // T wraps every 4C accesses and timestamps keep its 6 MSBs. The
        // counter is per set, so the granule is in set-local accesses and
        // distances scale back up by the set count.
        let set_stamp_granule = (4 * geom.ways as u64 / 64).max(1);
        let rd_scale = set_stamp_granule * geom.sets as u64;
        let miss_latency = geom.way_latency.iter().copied().max().unwrap_or(1);
        let sublevels = geom.sublevels();
        let ways = geom.ways;
        let lines = vec![LineState::INVALID; geom.sets * geom.ways];
        let tags = vec![0u16; geom.sets * geom.ways];
        let valid_bits = vec![0u32; geom.sets];
        let dirty_bits = vec![0u32; geom.sets];
        let lru_stacks = vec![PackedLruStack::new(); geom.sets];
        let hit_memo = vec![NO_MEMO; geom.sets];
        let slot_rngs = (0..geom.sets as u64)
            .map(|set| {
                SplitMix64::new(
                    (0xCAC4E ^ total_lines).wrapping_add(set.wrapping_mul(0x9E3779B97F4A7C15)),
                )
            })
            .collect();
        CacheLevel {
            name: name.into(),
            set_counters: vec![0; geom.sets],
            port_backlog: vec![0; geom.sets],
            geom,
            lines,
            tags,
            valid_bits,
            dirty_bits,
            tag_filter: true,
            packed_lru: false,
            lru_stacks,
            hit_memo,
            seq: 0,
            set_stamp_granule,
            rd_scale,
            stats: CacheStats::new(sublevels),
            ledger: EnergyLedger::new(ways),
            metadata_energy: Energy::ZERO,
            mvq_lookup_energy: Energy::ZERO,
            movement_queue: MovementQueue::new(),
            uniform_latency: None,
            miss_latency,
            finalized: false,
            slot_rngs,
        }
    }

    /// Selects the probe implementation: `true` (the default) scans the
    /// compact per-set tag/valid-bit filter, `false` scans the full
    /// line array (the seed reference path). Both return identical
    /// results; the reference path exists for golden-equivalence
    /// testing.
    pub fn with_tag_filter(mut self, enabled: bool) -> Self {
        self.tag_filter = enabled;
        self
    }

    /// Enables the structure-of-arrays L1 mode: victim choice reads the
    /// packed per-set LRU stack instead of comparing `lru_seq` stamps
    /// (equivalent orders — every touch point updates both), and
    /// [`CacheLevel::try_demand_hit`] becomes legal. Only valid for a
    /// level driven by `BaselinePolicy` + `Lru` (the L1): with any other
    /// replacement policy the stack's LRU order would override the
    /// policy's victim choice.
    ///
    /// # Panics
    ///
    /// Panics if enabled on a geometry with more than
    /// [`PackedLruStack::MAX_WAYS`] ways.
    pub fn with_packed_lru(mut self, enabled: bool) -> Self {
        assert!(
            !enabled || self.geom.ways <= PackedLruStack::MAX_WAYS,
            "packed LRU stacks hold at most {} ways",
            PackedLruStack::MAX_WAYS
        );
        self.packed_lru = enabled;
        self
    }

    /// Whether the structure-of-arrays L1 mode is enabled.
    pub fn packed_lru_enabled(&self) -> bool {
        self.packed_lru
    }

    /// The memoized last-hit way of `set` (introspection/tests).
    pub fn memoized_way(&self, set: usize) -> Option<usize> {
        let memo = self.hit_memo[set];
        (memo != NO_MEMO).then_some(usize::from(memo))
    }

    /// The partial tag stored for a line address: a cheap mix of the
    /// address words so lines that share a set rarely share a tag.
    /// Purely a function of the address — never stale, collisions only
    /// cost a full-address verify.
    #[inline]
    fn tag_of(line: LineAddr) -> u16 {
        let a = line.0;
        (a ^ (a >> 16) ^ (a >> 32) ^ (a >> 48)) as u16
    }

    /// Writes `state` into the slot at `set`/`way`, keeping the tag and
    /// valid-bit mirrors in lockstep. Returns the displaced state.
    #[inline]
    fn replace_slot(&mut self, set: usize, way: usize, state: LineState) -> LineState {
        let idx = set * self.geom.ways + way;
        self.tags[idx] = Self::tag_of(state.addr);
        if state.valid {
            self.valid_bits[set] |= 1 << way;
        } else {
            self.valid_bits[set] &= !(1 << way);
        }
        if state.dirty {
            self.dirty_bits[set] |= 1 << way;
        } else {
            self.dirty_bits[set] &= !(1 << way);
        }
        if self.packed_lru {
            // A fill is a touch (the reference path stamps `lru_seq`
            // at the same point), and it retires any memo of the
            // displaced occupant.
            self.lru_stacks[set].touch(way);
            if self.hit_memo[set] == way as u16 {
                self.hit_memo[set] = NO_MEMO;
            }
        }
        core::mem::replace(&mut self.lines[idx], state)
    }

    /// Sets the per-line metadata access energy (Table 2).
    pub fn with_metadata_energy(mut self, e: Energy) -> Self {
        self.metadata_energy = e;
        self
    }

    /// Sets the movement-queue lookup energy (paper Section 5: 0.3 pJ).
    pub fn with_mvq_lookup_energy(mut self, e: Energy) -> Self {
        self.mvq_lookup_energy = e;
        self
    }

    /// Makes hits report a flat latency (regular cache mode, e.g. the
    /// Table 1 baseline of 7 cycles for L2 / 20 for L3), and uses the
    /// same value as the miss-detect latency.
    pub fn with_uniform_latency(mut self, cycles: u32) -> Self {
        self.uniform_latency = Some(cycles);
        self.miss_latency = cycles;
        self
    }

    /// Sets the miss-detect latency independently of the hit latencies.
    /// Tag arrays are centralized, so NUCA/SLIP caches detect misses at
    /// the same speed as a regular cache even though their data hit
    /// latency is per-way.
    pub fn with_miss_latency(mut self, cycles: u32) -> Self {
        self.miss_latency = cycles;
        self
    }

    /// The level's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The level's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Current 6-bit timestamp of `set`, derived from its access counter.
    pub fn stamp6_of(&self, set: usize) -> u8 {
        ((self.set_counters[set] / self.set_stamp_granule) % 64) as u8
    }

    /// Set-local accesses per timestamp step.
    pub fn set_stamp_granule(&self) -> u64 {
        self.set_stamp_granule
    }

    /// Level accesses represented by one set-local timestamp step (the
    /// multiplier applied to stamp deltas to report reuse distances).
    pub fn reuse_scale(&self) -> u64 {
        self.rd_scale
    }

    /// The access counter T of `set`.
    pub fn set_counter(&self, set: usize) -> u64 {
        self.set_counters[set]
    }

    /// The level's energy account, rebuilt from the integer event ledger
    /// (one multiply per category × way, in a pinned fold order). Reads
    /// and writes are priced from separate tables so asymmetric
    /// technologies (STT-RAM) charge insertions at the write cost; for
    /// symmetric geometries this is bit-identical to a single-table
    /// finalize.
    pub fn energy(&self) -> EnergyAccount {
        self.ledger.to_account_rw(
            &self.geom.way_energy,
            &self.geom.way_write_energy,
            &self.geom.way_insert_energy,
            self.metadata_energy,
            self.mvq_lookup_energy,
        )
    }

    /// Merges another level's measurements (stats, energy ledger,
    /// movement-queue counters) into this one, finalizing both sides
    /// first so resident-line reuse histograms fold per shard. Cache
    /// *contents* are untouched — this is the reduction step of the
    /// set-sharded runner, where each level only ever populated its own
    /// sets.
    pub fn absorb_stats(&mut self, other: &mut CacheLevel) {
        self.finalize();
        other.finalize();
        self.stats.merge(&other.stats);
        self.ledger.merge(&other.ledger);
        self.movement_queue.absorb(&other.movement_queue);
    }

    /// View of a line slot, for tests and introspection.
    pub fn line_at(&self, set: usize, way: usize) -> &LineState {
        &self.lines[set * self.geom.ways + way]
    }

    /// `true` if `line` is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe_way(line).is_some()
    }

    /// The way holding `line`, if resident. Does not disturb any state.
    pub fn probe_way(&self, line: LineAddr) -> Option<usize> {
        let set = self.geom.set_of(line);
        let base = set * self.geom.ways;
        if self.tag_filter {
            // Compare every way's 16-bit tag at once (SWAR, four lanes
            // per u64 word), mask to the valid ways, then verify the
            // surviving candidates against the full address in
            // ascending-way order (matching the reference scan). The
            // lane trick can flag a non-matching lane next to a
            // matching one, never the reverse, so false positives cost
            // a verify and false negatives cannot happen.
            let tags = &self.tags[base..base + self.geom.ways];
            let mut candidates =
                Self::tag_match_mask(tags, Self::tag_of(line)) & self.valid_bits[set];
            while candidates != 0 {
                let way = candidates.trailing_zeros() as usize;
                candidates &= candidates - 1;
                let slot = &self.lines[base + way];
                debug_assert!(slot.valid);
                if slot.addr == line {
                    return Some(way);
                }
            }
            None
        } else {
            self.lines[base..base + self.geom.ways]
                .iter()
                .position(|l| l.valid && l.addr == line)
        }
    }

    /// Packs four 16-bit tags into one u64 SWAR word.
    #[inline]
    fn pack_lanes(lanes: &[u16]) -> u64 {
        u64::from(lanes[0])
            | u64::from(lanes[1]) << 16
            | u64::from(lanes[2]) << 32
            | u64::from(lanes[3]) << 48
    }

    /// Zero-lane-detection over `word ^ needle`, compressed to one mask
    /// bit per 16-bit lane (`(x - 1) & !x & 0x8000` per lane). Lanes
    /// equal to the needle's are always flagged; a borrow rippling out
    /// of a matching lane can additionally flag its neighbor, which the
    /// caller's full-address verify rejects.
    #[inline]
    fn lane_eq_nibble(word: u64, needle: u64) -> u32 {
        const LANE_LSB: u64 = 0x0001_0001_0001_0001;
        const LANE_MSB: u64 = 0x8000_8000_8000_8000;
        let x = word ^ needle;
        let hits = x.wrapping_sub(LANE_LSB) & !x & LANE_MSB;
        (((hits >> 15) & 1) | ((hits >> 30) & 2) | ((hits >> 45) & 4) | ((hits >> 60) & 8)) as u32
    }

    /// Bitmask of the ways whose stored tag equals `tag`.
    ///
    /// Wide pass first: u64×4 lane groups — four SWAR words, 16 ways —
    /// per iteration, so a full 16-way set is compared in one pass of
    /// straight-line, independent word operations. Remaining ways fall
    /// back to single-word SWAR (4 lanes) and then a scalar tail.
    /// False positives cost the caller a full-address verify; false
    /// negatives cannot happen (see [`Self::lane_eq_nibble`]).
    #[inline]
    fn tag_match_mask(tags: &[u16], tag: u16) -> u32 {
        const LANE_LSB: u64 = 0x0001_0001_0001_0001;
        let needle = LANE_LSB * u64::from(tag);
        let mut mask = 0u32;
        let mut base = 0usize;
        let mut groups = tags.chunks_exact(16);
        for group in groups.by_ref() {
            let words = [
                Self::pack_lanes(&group[0..4]),
                Self::pack_lanes(&group[4..8]),
                Self::pack_lanes(&group[8..12]),
                Self::pack_lanes(&group[12..16]),
            ];
            let nibbles = [
                Self::lane_eq_nibble(words[0], needle),
                Self::lane_eq_nibble(words[1], needle),
                Self::lane_eq_nibble(words[2], needle),
                Self::lane_eq_nibble(words[3], needle),
            ];
            let group_mask = nibbles[0] | nibbles[1] << 4 | nibbles[2] << 8 | nibbles[3] << 12;
            mask |= group_mask << base;
            base += 16;
        }
        let mut chunks = groups.remainder().chunks_exact(4);
        for lanes in chunks.by_ref() {
            mask |= Self::lane_eq_nibble(Self::pack_lanes(lanes), needle) << base;
            base += 4;
        }
        for &t in chunks.remainder() {
            mask |= u32::from(t == tag) << base;
            base += 1;
        }
        mask
    }

    fn set_slice_mut(&mut self, set: usize) -> &mut [LineState] {
        let base = set * self.geom.ways;
        &mut self.lines[base..base + self.geom.ways]
    }

    /// Performs a lookup of `line`.
    ///
    /// On a hit this charges the access energy of the servicing way,
    /// updates LRU/replacement state, collects the reuse distance from
    /// the line timestamp, and (for NUCA-style policies) performs any
    /// promotion the placement policy requests. Port contention is
    /// modeled per set: the access first drains any fill/promotion
    /// backlog accrued on its set's port (`_now`, the current core
    /// cycle, is kept in the signature for API stability but the model
    /// is a pure function of set-local history, which is what lets a
    /// set-shard of the level reproduce the serial timings exactly).
    ///
    /// Generic over the concrete policy types so monomorphic call sites
    /// (e.g. the L1, which always runs `BaselinePolicy` + `Lru`) inline
    /// the whole policy interaction; `?Sized` keeps `&mut dyn` callers
    /// working unchanged.
    pub fn access<P: PlacementPolicy + ?Sized, R: ReplacementPolicy + ?Sized>(
        &mut self,
        line: LineAddr,
        kind: AccessKind,
        class: AccessClass,
        _now: u64,
        policy: &mut P,
        repl: &mut R,
    ) -> AccessResult {
        let set = self.geom.set_of(line);
        self.set_counters[set] += 1;
        match class {
            AccessClass::Demand => self.stats.demand_accesses += 1,
            AccessClass::Metadata => self.stats.metadata_accesses += 1,
        }
        if policy.uses_movement_queue() {
            self.movement_queue.lookup(line);
            self.ledger.count_mvq();
        }
        if policy.uses_line_metadata() {
            self.ledger.count_metadata();
        }
        let wait = core::mem::take(&mut self.port_backlog[set]);

        let Some(way) = self.probe_way(line) else {
            match class {
                AccessClass::Demand => self.stats.demand_misses += 1,
                AccessClass::Metadata => self.stats.metadata_misses += 1,
            }
            repl.on_miss(set);
            return AccessResult::Miss {
                latency: wait + self.miss_latency,
            };
        };

        // --- Hit path ---
        let sublevel = self.geom.sublevel(way);
        match class {
            AccessClass::Demand => self.stats.demand_hits += 1,
            AccessClass::Metadata => self.stats.metadata_hits += 1,
        }
        self.stats.hits_per_sublevel[sublevel] += 1;
        match class {
            AccessClass::Demand => self.ledger.count_way(EnergyCategory::Access, way),
            // Metadata payloads are 32 b, not a full line.
            AccessClass::Metadata => self.ledger.count_access_metadata(),
        }

        let stamp_now = self.stamp6_of(set);
        self.seq += 1;
        let seq = self.seq;
        let (reuse_distance, sampling, slip_codes);
        {
            let scale = self.rd_scale;
            let slot = &mut self.set_slice_mut(set)[way];
            let old_tl = slot.timestamp;
            reuse_distance = u64::from((stamp_now.wrapping_sub(old_tl)) & 0x3f) * scale;
            slot.timestamp = stamp_now;
            slot.lru_seq = seq;
            slot.hits_since_fill += 1;
            if kind.is_write() {
                slot.dirty = true;
            }
            sampling = slot.sampling;
            slip_codes = slot.slip_codes;
        }
        if kind.is_write() {
            self.dirty_bits[set] |= 1 << way;
        }
        if self.packed_lru {
            self.lru_stacks[set].touch(way);
            self.hit_memo[set] = way as u16;
        }
        repl.on_hit(set, self.set_slice_mut(set), way);

        let base_latency = self
            .uniform_latency
            .unwrap_or_else(|| self.geom.latency(way));
        let mut busy_extra = 0u32;

        // Promotion (NUCA policies): swap the hit line toward a nearer way.
        let line_copy = *self.line_at(set, way);
        if let Some(mask) = policy.promotion_mask(&self.geom, &line_copy, way) {
            let target_mask = mask.difference(WayMask::single(way));
            if let Some(target) = self.pick_slot(set, target_mask, repl) {
                busy_extra += self.promote_swap(set, way, target, policy, repl);
            }
        }

        if busy_extra > 0 {
            // The movement occupies the set's port after the access
            // completes; the next access to this set pays for it.
            self.port_backlog[set] = busy_extra;
            self.movement_queue.drain();
        }

        AccessResult::Hit(HitInfo {
            way,
            sublevel,
            latency: wait + base_latency,
            reuse_distance,
            sampling,
            slip_codes,
        })
    }

    /// Attempts to service a demand access as a straight-line L1 hit,
    /// returning its latency, or `None` (mutating **nothing**) on a
    /// miss so the caller can fall into the full [`Self::access`] path.
    ///
    /// Requires the SoA mode ([`Self::with_packed_lru`]): the level
    /// must be driven by `BaselinePolicy` + `Lru`, for which this is
    /// bit-exact shorthand for the [`Self::access`] hit path — the
    /// policy hooks are no-ops, `promotion_mask` is `None`, and the
    /// skipped `lru_seq` stamp is subsumed by the packed stack (the
    /// only consumer of LRU order on a packed level). The per-hit
    /// `reuse_distance`/`sampling`/`slip_codes` of [`HitInfo`] are
    /// not computed: the engine ignores them on L1 hits.
    ///
    /// The way memo short-circuits repeat touches to one verified
    /// compare; it is self-verifying (valid bit + full address), so a
    /// stale memo costs a probe, never a wrong hit.
    #[inline]
    pub fn try_demand_hit(&mut self, line: LineAddr, is_write: bool) -> Option<u32> {
        debug_assert!(self.packed_lru, "fast hits need the SoA layout");
        let set = self.geom.set_of(line);
        let base = set * self.geom.ways;
        let memo = self.hit_memo[set];
        let way = if usize::from(memo) < self.geom.ways
            && self.valid_bits[set] & (1u32 << memo) != 0
            && self.lines[base + usize::from(memo)].addr == line
        {
            usize::from(memo)
        } else {
            let tags = &self.tags[base..base + self.geom.ways];
            let mut candidates =
                Self::tag_match_mask(tags, Self::tag_of(line)) & self.valid_bits[set];
            loop {
                if candidates == 0 {
                    return None;
                }
                let way = candidates.trailing_zeros() as usize;
                candidates &= candidates - 1;
                if self.lines[base + way].addr == line {
                    break way;
                }
            }
        };

        self.set_counters[set] += 1;
        self.stats.demand_accesses += 1;
        self.stats.demand_hits += 1;
        self.stats.hits_per_sublevel[self.geom.sublevel(way)] += 1;
        self.ledger.count_way(EnergyCategory::Access, way);
        let wait = core::mem::take(&mut self.port_backlog[set]);
        // Granule 1 (the L1's) needs no division.
        let stamp_now = if self.set_stamp_granule == 1 {
            (self.set_counters[set] % 64) as u8
        } else {
            self.stamp6_of(set)
        };
        {
            let slot = &mut self.lines[base + way];
            slot.timestamp = stamp_now;
            slot.hits_since_fill += 1;
            if is_write {
                slot.dirty = true;
            }
        }
        if is_write {
            self.dirty_bits[set] |= 1 << way;
        }
        self.lru_stacks[set].touch(way);
        self.hit_memo[set] = way as u16;
        Some(
            wait + self
                .uniform_latency
                .unwrap_or_else(|| self.geom.latency(way)),
        )
    }

    /// Retires `n` back-to-back demand accesses to the *same* line as
    /// one closed-form L1 hit, returning their summed latency, or
    /// `None` (mutating nothing) if the line is not resident.
    ///
    /// Must mirror `n` consecutive [`Self::try_demand_hit`] calls
    /// exactly; every per-hit update collapses: the counters and the
    /// reuse counter gain `n`, the port backlog is drained by the first
    /// hit only (nothing re-arms it between baseline hits), the final
    /// timestamp is the `n`-th stamp, the dirty/LRU/memo updates are
    /// idempotent after the first hit, and each hit past the first adds
    /// one uniform-latency term. The `fastpath-determinism` family and
    /// the golden suite hold this equivalence.
    #[inline]
    pub fn try_demand_hit_run(&mut self, line: LineAddr, is_write: bool, n: u64) -> Option<u64> {
        debug_assert!(self.packed_lru, "fast hits need the SoA layout");
        debug_assert!(n >= 1, "a hit run has at least one access");
        let set = self.geom.set_of(line);
        let base = set * self.geom.ways;
        let memo = self.hit_memo[set];
        let way = if usize::from(memo) < self.geom.ways
            && self.valid_bits[set] & (1u32 << memo) != 0
            && self.lines[base + usize::from(memo)].addr == line
        {
            usize::from(memo)
        } else {
            let tags = &self.tags[base..base + self.geom.ways];
            let mut candidates =
                Self::tag_match_mask(tags, Self::tag_of(line)) & self.valid_bits[set];
            loop {
                if candidates == 0 {
                    return None;
                }
                let way = candidates.trailing_zeros() as usize;
                candidates &= candidates - 1;
                if self.lines[base + way].addr == line {
                    break way;
                }
            }
        };

        self.set_counters[set] += n;
        self.stats.demand_accesses += n;
        self.stats.demand_hits += n;
        self.stats.hits_per_sublevel[self.geom.sublevel(way)] += n;
        self.ledger.count_way_n(EnergyCategory::Access, way, n);
        let wait = core::mem::take(&mut self.port_backlog[set]);
        let stamp_now = if self.set_stamp_granule == 1 {
            (self.set_counters[set] % 64) as u8
        } else {
            self.stamp6_of(set)
        };
        {
            let slot = &mut self.lines[base + way];
            slot.timestamp = stamp_now;
            slot.hits_since_fill += n as u32;
            if is_write {
                slot.dirty = true;
            }
        }
        if is_write {
            self.dirty_bits[set] |= 1 << way;
        }
        self.lru_stacks[set].touch(way);
        self.hit_memo[set] = way as u16;
        let per_hit = self
            .uniform_latency
            .unwrap_or_else(|| self.geom.latency(way));
        Some(u64::from(wait) + n * u64::from(per_hit))
    }

    /// Swaps the line at `way` with the slot at `target` (promotion).
    /// Returns the cycles the port is kept busy.
    fn promote_swap<P: PlacementPolicy + ?Sized, R: ReplacementPolicy + ?Sized>(
        &mut self,
        set: usize,
        way: usize,
        target: usize,
        policy: &mut P,
        repl: &mut R,
    ) -> u32 {
        let pair_cycles = self.geom.latency(way) + self.geom.latency(target);
        let target_valid = self.line_at(set, target).valid;
        {
            let base = set * self.geom.ways;
            self.tags.swap(base + way, base + target);
            // The hit line (valid) lands in `target`; the former target
            // occupant — valid or not — lands in `way`.
            let mut bits = self.valid_bits[set] | (1 << target);
            if target_valid {
                bits |= 1 << way;
            } else {
                bits &= !(1 << way);
            }
            self.valid_bits[set] = bits;
            let slice = self.set_slice_mut(set);
            slice.swap(way, target);
            if target_valid {
                // Both lines moved; let the policy mark them.
                let (a, b) = if way < target {
                    let (lo, hi) = slice.split_at_mut(target);
                    (&mut hi[0], &mut lo[way])
                } else {
                    let (lo, hi) = slice.split_at_mut(way);
                    (&mut lo[target], &mut hi[0])
                };
                // `a` is the promoted line (now at `target`), `b` the
                // demoted one (now at `way`).
                policy.on_promotion_swap(a, b);
            }
        }
        {
            // Recompute the dirty-bit mirror of both moved slots from
            // the post-swap (and possibly policy-updated) line states.
            let base = set * self.geom.ways;
            for w in [way, target] {
                let l = &self.lines[base + w];
                if l.valid && l.dirty {
                    self.dirty_bits[set] |= 1 << w;
                } else {
                    self.dirty_bits[set] &= !(1 << w);
                }
            }
        }
        if self.packed_lru {
            // Recency metadata travels with the exchanged line states,
            // exactly like `lru_seq` does via the slice swap above.
            self.lru_stacks[set].swap_ways(way, target);
            let memo = self.hit_memo[set];
            if memo == way as u16 || memo == target as u16 {
                self.hit_memo[set] = NO_MEMO;
            }
        }
        self.stats.promotions += 1;
        let moves = if target_valid { 2 } else { 1 };
        self.stats.movements += moves;
        self.movement_queue.push(self.line_at(set, target).addr);
        if target_valid {
            self.movement_queue.push(self.line_at(set, way).addr);
        }
        // Each move is a read+write pair touching both ways.
        self.ledger
            .count_way_n(EnergyCategory::Movement, way, moves);
        self.ledger
            .count_way_n(EnergyCategory::Movement, target, moves);
        // Replacement metadata (lru_seq, rrpv, signature) travels with the
        // swapped line states; no on_fill notification — a promotion is
        // not a new fill.
        let _ = repl;
        // Port occupancy: the promotion's reads ride on the hit's data
        // access (paper §1: movement reads are "free" in latency); only
        // the writes occupy the port afterwards.
        pair_cycles
    }

    /// Picks a slot within `mask`: a uniformly random invalid way if
    /// one exists (see `slot_rngs` for why it must not be the lowest),
    /// else the replacement policy's victim. Returns `None` if the mask
    /// is empty.
    fn pick_slot<R: ReplacementPolicy + ?Sized>(
        &mut self,
        set: usize,
        mask: WayMask,
        repl: &mut R,
    ) -> Option<usize> {
        if mask.is_empty() {
            return None;
        }
        let invalid = if self.tag_filter {
            WayMask::from_bits(!self.valid_bits[set] & mask.bits())
        } else {
            let base = set * self.geom.ways;
            WayMask::from_bits(
                mask.iter()
                    .filter(|&w| !self.lines[base + w].valid)
                    .fold(0u32, |acc, w| acc | (1 << w)),
            )
        };
        if !invalid.is_empty() {
            let k = self.slot_rngs[set].next_below(invalid.count() as u64) as usize;
            return invalid.iter().nth(k);
        }
        if self.packed_lru {
            // Every candidate is valid here (invalid ways short-circuit
            // above), hence touched at fill, hence stacked: the deepest
            // stacked candidate is exactly the `Lru` min-`lru_seq` pick.
            return Some(self.lru_stacks[set].victim_among(mask.bits(), self.geom.ways));
        }
        Some(repl.choose_victim(set, self.set_slice_mut(set), mask))
    }

    /// Inserts a line arriving from the next level down (or from above,
    /// for writeback-allocate designs).
    ///
    /// The placement policy chooses the initial chunk or bypasses the
    /// level; displaced lines demote along their own SLIPs, possibly in a
    /// cascade (paper Section 4.3), until a line leaves the level.
    pub fn fill<P: PlacementPolicy + ?Sized, R: ReplacementPolicy + ?Sized>(
        &mut self,
        req: FillRequest,
        _now: u64,
        policy: &mut P,
        repl: &mut R,
    ) -> FillOutcome {
        let mut outcome = FillOutcome::default();
        self.fill_into(req, _now, policy, repl, &mut outcome);
        outcome
    }

    /// Allocation-free form of [`fill`](Self::fill): writes the result
    /// into a caller-owned, reusable `outcome` (cleared on entry)
    /// instead of returning a fresh one.
    pub fn fill_into<P: PlacementPolicy + ?Sized, R: ReplacementPolicy + ?Sized>(
        &mut self,
        req: FillRequest,
        _now: u64,
        policy: &mut P,
        repl: &mut R,
        outcome: &mut FillOutcome,
    ) {
        outcome.clear();
        self.stats
            .record_insertion_class(policy.classify_insertion(&self.geom, &req));
        let Some(initial_mask) = policy.insertion_mask(&self.geom, &req) else {
            self.stats.bypasses += 1;
            outcome.bypassed = true;
            return;
        };
        assert!(
            !initial_mask.is_empty(),
            "insertion mask must not be empty; use None to bypass"
        );
        self.stats.insertions += 1;
        if policy.uses_line_metadata() {
            self.ledger.count_metadata();
        }

        let fill_set = self.geom.set_of(req.addr);
        let mut state = LineState::new(req.addr);
        state.dirty = req.dirty;
        state.slip_codes = req.slip_codes;
        state.sampling = req.sampling;
        state.signature = req.signature;
        state.timestamp = self.stamp6_of(fill_set);

        let mut mask = initial_mask;
        let mut category = EnergyCategory::Insertion;
        let mut busy_cycles = 0u32;
        let mut depth = 0usize;
        loop {
            depth += 1;
            assert!(
                depth <= self.geom.ways * 4,
                "demotion cascade did not terminate (policy bug)"
            );
            let set = self.geom.set_of(state.addr);
            debug_assert_eq!(set, fill_set, "demotion cascade stays within one set");
            let way = self
                .pick_slot(set, mask, repl)
                .expect("non-empty mask always yields a slot");
            // Write of the incoming/moving line.
            self.ledger.count_way(category, way);
            busy_cycles += self.geom.latency(way);
            self.seq += 1;
            state.lru_seq = self.seq;
            let displaced = self.replace_slot(set, way, state);
            repl.on_fill(set, self.set_slice_mut(set), way);

            if !displaced.valid {
                break;
            }
            let demotion = policy.demotion_mask(&self.geom, &displaced, way);
            match demotion {
                Some(next) if !next.is_empty() => {
                    // Read the displaced line out for movement.
                    self.ledger.count_way(EnergyCategory::Movement, way);
                    busy_cycles += self.geom.latency(way);
                    self.stats.movements += 1;
                    self.movement_queue.push(displaced.addr);
                    state = displaced;
                    mask = next;
                    category = EnergyCategory::Movement;
                }
                _ => {
                    repl.on_evict(&displaced);
                    self.stats.evictions += 1;
                    self.stats.record_line_reuses(displaced.hits_since_fill);
                    if displaced.dirty {
                        // Read for writeback.
                        self.ledger.count_way(EnergyCategory::Writeback, way);
                        busy_cycles += self.geom.latency(way);
                        self.stats.writebacks += 1;
                        outcome.writebacks.push(EvictedLine::from_state(&displaced));
                    } else {
                        outcome
                            .clean_evictions
                            .push(EvictedLine::from_state(&displaced));
                    }
                    break;
                }
            }
        }
        self.port_backlog[fill_set] = self.port_backlog[fill_set].saturating_add(busy_cycles);
        self.movement_queue.drain();
    }

    /// Handles an incoming writeback from the level above.
    ///
    /// Write-no-allocate: on a hit the line is updated (and marked
    /// dirty); on a miss the writeback must be forwarded toward memory.
    /// Returns `true` on a hit.
    pub fn writeback_access<P: PlacementPolicy + ?Sized>(
        &mut self,
        line: LineAddr,
        policy: &mut P,
    ) -> bool {
        if policy.uses_movement_queue() {
            self.movement_queue.lookup(line);
            self.ledger.count_mvq();
        }
        let set = self.geom.set_of(line);
        match self.probe_way(line) {
            Some(way) => {
                self.ledger.count_way(EnergyCategory::Access, way);
                self.set_slice_mut(set)[way].dirty = true;
                self.dirty_bits[set] |= 1 << way;
                self.stats.writeback_hits += 1;
                true
            }
            None => {
                self.stats.writeback_misses += 1;
                false
            }
        }
    }

    /// Invalidates `line` if resident, returning its outbound view.
    /// The movement queue is probed as well (paper Section 4.3).
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine> {
        self.movement_queue.lookup(line);
        let set = self.geom.set_of(line);
        let way = self.probe_way(line)?;
        let slot = &mut self.set_slice_mut(set)[way];
        let out = EvictedLine::from_state(slot);
        *slot = LineState::INVALID;
        self.valid_bits[set] &= !(1 << way);
        self.dirty_bits[set] &= !(1 << way);
        if self.hit_memo[set] == way as u16 {
            self.hit_memo[set] = NO_MEMO;
        }
        self.stats.evictions += 1;
        self.stats.record_line_reuses(out.hits_since_fill);
        Some(out)
    }

    /// Folds lines still resident at the end of simulation into the
    /// Figure 1 reuse histogram. Idempotent.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        // `lines` and `stats` are disjoint fields, so no intermediate
        // collect is needed.
        for l in &self.lines {
            if l.valid {
                self.stats.record_line_reuses(l.hits_since_fill);
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Clears statistics and energy accounting while keeping all cache
    /// contents and replacement state (for post-warmup measurement).
    pub fn reset_measurements(&mut self) {
        self.stats = CacheStats::new(self.geom.sublevels());
        self.ledger.reset();
        self.movement_queue = MovementQueue::with_capacity(self.movement_queue.capacity());
        self.port_backlog.fill(0);
        self.finalized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BaselinePolicy;
    use crate::replacement::Lru;

    fn small_level() -> CacheLevel {
        // 4 sets x 4 ways, 2 sublevels of 2 ways each.
        let geom = CacheGeometry::from_sublevels(
            4,
            &[(2, Energy::from_pj(10.0), 2), (2, Energy::from_pj(30.0), 4)],
        );
        CacheLevel::new("test", geom)
    }

    fn read(
        c: &mut CacheLevel,
        addr: u64,
        p: &mut dyn PlacementPolicy,
        r: &mut dyn ReplacementPolicy,
    ) -> AccessResult {
        c.access(
            LineAddr(addr),
            AccessKind::Read,
            AccessClass::Demand,
            0,
            p,
            r,
        )
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        assert!(!read(&mut c, 5, &mut p, &mut r).is_hit());
        c.fill(FillRequest::new(LineAddr(5)), 0, &mut p, &mut r);
        let res = read(&mut c, 5, &mut p, &mut r);
        assert!(res.is_hit());
        assert_eq!(c.stats.demand_accesses, 2);
        assert_eq!(c.stats.demand_hits, 1);
        assert_eq!(c.stats.demand_misses, 1);
        assert_eq!(c.stats.insertions, 1);
    }

    #[test]
    fn fill_charges_insertion_energy_of_target_way() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(LineAddr(0)), 0, &mut p, &mut r);
        // The insertion write is charged at the chosen way's energy
        // (invalid-way choice is randomized, so look the way up).
        let way = c.probe_way(LineAddr(0)).unwrap();
        let expect = c.geometry().energy(way);
        assert_eq!(c.energy().get(EnergyCategory::Insertion), expect);
        assert_eq!(c.energy().get(EnergyCategory::Access).as_pj(), 0.0);
    }

    #[test]
    fn hit_charges_access_energy_of_hit_way() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(LineAddr(0)), 0, &mut p, &mut r);
        let way = c.probe_way(LineAddr(0)).unwrap();
        let expect = c.geometry().energy(way);
        read(&mut c, 0, &mut p, &mut r);
        assert_eq!(c.energy().get(EnergyCategory::Access), expect);
    }

    #[test]
    fn invalid_way_choice_is_unbiased() {
        // Fill the first way of many sets; the chosen ways must not
        // all be way 0 (the anchoring artifact the RNG prevents).
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        let mut ways_seen = std::collections::HashSet::new();
        for i in 0..32u64 {
            c.fill(FillRequest::new(LineAddr(i)), 0, &mut p, &mut r);
            if let Some(w) = c.probe_way(LineAddr(i)) {
                ways_seen.insert(w);
            }
        }
        assert!(ways_seen.len() > 1, "all fills landed in one way");
    }

    #[test]
    fn eviction_of_dirty_line_produces_writeback() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        // Fill set 0 completely (lines map to set = addr % 4).
        for i in 0..4 {
            c.fill(FillRequest::new(LineAddr(i * 4)), 0, &mut p, &mut r);
        }
        // Dirty the line 0.
        c.access(
            LineAddr(0),
            AccessKind::Write,
            AccessClass::Demand,
            0,
            &mut p,
            &mut r,
        );
        // Touch the others so line 0 is LRU.
        for i in 1..4 {
            read(&mut c, i * 4, &mut p, &mut r);
        }
        let out = c.fill(FillRequest::new(LineAddr(16)), 0, &mut p, &mut r);
        assert_eq!(out.writebacks.len(), 1);
        assert_eq!(out.writebacks[0].addr, LineAddr(0));
        assert!(out.writebacks[0].dirty);
        assert_eq!(c.stats.writebacks, 1);
        assert_eq!(c.stats.evictions, 1);
        // NR histogram: line 0 had 2 hits (write + none)... it had 1
        // write hit. Wait: write + 0 reads = 1 hit.
        assert_eq!(c.stats.nr_histogram[1], 1);
    }

    #[test]
    fn lru_evicts_least_recent_within_full_mask() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        for i in 0..4 {
            c.fill(FillRequest::new(LineAddr(i * 4)), 0, &mut p, &mut r);
        }
        // Touch all but line 8.
        for &a in &[0u64, 4, 12] {
            read(&mut c, a, &mut p, &mut r);
        }
        let out = c.fill(FillRequest::new(LineAddr(16)), 0, &mut p, &mut r);
        assert_eq!(out.clean_evictions.len(), 1);
        assert_eq!(out.clean_evictions[0].addr, LineAddr(8));
    }

    #[test]
    fn reuse_distance_uses_timestamp_granule() {
        // 4 ways: set granule = (4*4/64).max(1) = 1 set-local access,
        // and each step scales back up by the 4 sets.
        let mut c = small_level();
        assert_eq!(c.set_stamp_granule(), 1);
        assert_eq!(c.reuse_scale(), 4);
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(LineAddr(5)), 0, &mut p, &mut r);
        // 3 accesses to other lines (one shares set 1 with line 5), then
        // a hit on 5.
        for a in [1u64, 2, 3] {
            read(&mut c, a, &mut p, &mut r);
        }
        match read(&mut c, 5, &mut p, &mut r) {
            AccessResult::Hit(h) => {
                // Timestamp set at fill (set counter 0); the hit is set 1's
                // second access -> 2 set-local steps * scale 4 = 8.
                assert_eq!(h.reuse_distance, 8);
            }
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn finalize_records_resident_lines_once() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(LineAddr(1)), 0, &mut p, &mut r);
        read(&mut c, 1, &mut p, &mut r);
        c.finalize();
        c.finalize();
        assert_eq!(c.stats.nr_histogram[1], 1);
        assert_eq!(c.stats.nr_histogram.iter().sum::<u64>(), 1);
    }

    #[test]
    fn writeback_access_hits_update_dirty_without_lru() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(LineAddr(2)), 0, &mut p, &mut r);
        assert!(c.writeback_access(LineAddr(2), &mut p));
        let way = c.probe_way(LineAddr(2)).unwrap();
        assert!(c.line_at(c.geometry().set_of(LineAddr(2)), way).dirty);
        assert!(!c.writeback_access(LineAddr(3), &mut p));
        assert_eq!(c.stats.writeback_hits, 1);
        assert_eq!(c.stats.writeback_misses, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(LineAddr(2)), 0, &mut p, &mut r);
        assert!(c.contains(LineAddr(2)));
        let out = c.invalidate(LineAddr(2)).unwrap();
        assert_eq!(out.addr, LineAddr(2));
        assert!(!c.contains(LineAddr(2)));
        assert!(c.invalidate(LineAddr(2)).is_none());
    }

    #[test]
    fn uniform_latency_mode_overrides_way_latency() {
        let mut c = small_level().with_uniform_latency(7);
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(LineAddr(0)), 0, &mut p, &mut r);
        // The first access to the set pays the fill's port backlog.
        let contended = read(&mut c, 0, &mut p, &mut r);
        assert!(contended.latency() > 7);
        // Backlog drained: the next hit reports the flat latency.
        match read(&mut c, 0, &mut p, &mut r) {
            AccessResult::Hit(h) => assert_eq!(h.latency, 7),
            _ => panic!("expected hit"),
        }
        // A miss in a set with an idle port is flat as well.
        match read(&mut c, 99, &mut p, &mut r) {
            AccessResult::Miss { latency } => assert_eq!(latency, 7),
            _ => panic!("expected miss"),
        }
        // A new fill into the set re-arms its backlog.
        c.fill(FillRequest::new(LineAddr(4)), 0, &mut p, &mut r);
        assert!(read(&mut c, 0, &mut p, &mut r).latency() > 7);
    }

    #[test]
    fn eviction_buf_spills_past_inline_capacity() {
        let mut buf = EvictionBuf::new();
        assert!(buf.is_empty());
        for i in 0..5u64 {
            let mut e = EvictionBuf::EMPTY;
            e.addr = LineAddr(i);
            buf.push(e);
        }
        assert_eq!(buf.len(), 5);
        assert_eq!(buf[4].addr, LineAddr(4));
        let addrs: Vec<u64> = buf.clone().into_iter().map(|e| e.addr.0).collect();
        assert_eq!(addrs, [0, 1, 2, 3, 4]);
        buf.clear();
        assert!(buf.as_slice().is_empty());
        // Inline-only buffers and spilled-then-cleared buffers compare
        // equal by contents.
        assert_eq!(buf, EvictionBuf::new());
    }

    #[test]
    fn fill_into_reuses_the_outcome_buffer() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        let mut out = FillOutcome::default();
        for i in 0..4 {
            c.fill_into(
                FillRequest::new(LineAddr(i * 4)),
                0,
                &mut p,
                &mut r,
                &mut out,
            );
            assert!(out.evicted().count() == 0);
        }
        c.fill_into(FillRequest::new(LineAddr(16)), 0, &mut p, &mut r, &mut out);
        assert_eq!(out.clean_evictions.len(), 1);
        // The next call clears the previous contents.
        c.fill_into(FillRequest::new(LineAddr(17)), 0, &mut p, &mut r, &mut out);
        assert!(out.clean_evictions.len() <= 1);
    }

    #[test]
    fn tag_filter_and_reference_probe_agree() {
        // Drive two identical levels through the same access stream,
        // one probing through the tag filter and one scanning lines.
        let mk = |filter: bool| {
            let geom = CacheGeometry::from_sublevels(
                4,
                &[(2, Energy::from_pj(10.0), 2), (2, Energy::from_pj(30.0), 4)],
            );
            CacheLevel::new("test", geom).with_tag_filter(filter)
        };
        let mut fast = mk(true);
        let mut slow = mk(false);
        let mut p1 = BaselinePolicy::new();
        let mut r1 = Lru::new();
        let mut p2 = BaselinePolicy::new();
        let mut r2 = Lru::new();
        let mut rng = crate::rng::SplitMix64::new(7);
        for step in 0..4000u64 {
            let addr = LineAddr(rng.next_below(64));
            let a = read(&mut fast, addr.0, &mut p1, &mut r1);
            let b = read(&mut slow, addr.0, &mut p2, &mut r2);
            assert_eq!(a, b, "step {step} access diverged");
            if !a.is_hit() {
                let oa = fast.fill(FillRequest::new(addr), 0, &mut p1, &mut r1);
                let ob = slow.fill(FillRequest::new(addr), 0, &mut p2, &mut r2);
                assert_eq!(oa, ob, "step {step} fill diverged");
            }
            if step % 97 == 0 {
                assert_eq!(fast.invalidate(addr), slow.invalidate(addr));
            }
        }
        assert_eq!(fast.stats, slow.stats);
    }

    #[test]
    fn tag_collisions_still_resolve_by_full_address() {
        // Two addresses engineered to share a set and a 16-bit tag:
        // addr and addr + (1 << 16) + (1 << 32) differ in bits the tag
        // XOR-folds together, canceling out.
        let a = LineAddr(0x40);
        let b = LineAddr(0x40 + (1 << 16) + (1 << 32));
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        c.fill(FillRequest::new(a), 0, &mut p, &mut r);
        c.fill(FillRequest::new(b), 0, &mut p, &mut r);
        assert!(c.contains(a));
        assert!(c.contains(b));
        assert_ne!(c.probe_way(a), c.probe_way(b));
        assert!(!c.contains(LineAddr(0x40 + (1 << 16))));
    }

    #[test]
    fn tag_match_mask_never_misses_a_matching_lane() {
        // Deterministic randomized sweep over lane counts (including a
        // non-multiple-of-4 tail) and adversarial values around the
        // borrow-ripple cases (0, 1, tag±1, 0x8000): every exact match
        // must be flagged; spurious flags are allowed.
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for ways in [1usize, 3, 4, 7, 8, 16, 23, 32] {
            for _ in 0..500 {
                let tag = next() as u16;
                let tags: Vec<u16> = (0..ways)
                    .map(|_| match next() % 8 {
                        0 => tag,
                        1 => 0,
                        2 => 1,
                        3 => tag.wrapping_add(1),
                        4 => tag.wrapping_sub(1),
                        5 => 0x8000,
                        _ => next() as u16,
                    })
                    .collect();
                let mask = CacheLevel::tag_match_mask(&tags, tag);
                for (w, &t) in tags.iter().enumerate() {
                    if t == tag {
                        assert!(
                            mask & (1 << w) != 0,
                            "lane {w} (tag {tag:#x}) missed in {tags:x?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wide_probe_matches_scalar_reference_on_16_way_sets() {
        // The u64×4 wide pass covers a full 16-way set in one group.
        // Against a scalar reference: exact matches are always flagged
        // (no false negatives), and after masking with a random valid
        // mask plus the full-tag verify the surviving set is *exactly*
        // the reference's — i.e. false positives never escape the
        // verify step the real probe performs.
        let mut rng = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for ways in [16usize, 17, 20, 32] {
            for _ in 0..2000 {
                let tag = next() as u16;
                let tags: Vec<u16> = (0..ways)
                    .map(|_| match next() % 6 {
                        0 => tag,
                        1 => tag.wrapping_add(1),
                        2 => tag.wrapping_sub(1),
                        3 => tag ^ 0x8000,
                        _ => next() as u16,
                    })
                    .collect();
                let valid = (next() as u32) & (u32::MAX >> (32 - ways));
                let reference: u32 = tags
                    .iter()
                    .enumerate()
                    .filter(|&(w, &t)| t == tag && valid & (1 << w) != 0)
                    .fold(0, |acc, (w, _)| acc | (1 << w));
                let raw = CacheLevel::tag_match_mask(&tags, tag) & valid;
                // No false negatives...
                assert_eq!(raw & reference, reference, "missed lane in {tags:x?}");
                // ...and verification removes every false positive.
                let verified: u32 = (0..ways)
                    .filter(|&w| raw & (1 << w) != 0 && tags[w] == tag)
                    .fold(0, |acc, w| acc | (1 << w));
                assert_eq!(verified, reference);
            }
        }
    }

    #[test]
    fn absorb_stats_merges_ledger_and_histograms() {
        // Two levels each touch a disjoint half of the sets; absorbing
        // one into the other must equal a single level that saw both
        // streams, bit-exactly (integer ledger + pinned finalize order).
        let run = |addrs: &[u64], c: &mut CacheLevel| {
            let mut p = BaselinePolicy::new();
            let mut r = Lru::new();
            for &a in addrs {
                if !read(c, a, &mut p, &mut r).is_hit() {
                    c.fill(FillRequest::new(LineAddr(a)), 0, &mut p, &mut r);
                }
            }
        };
        // Sets 0/2 in one stream, sets 1/3 in the other.
        let even: Vec<u64> = (0..40).map(|i| (i * 2) % 24).collect();
        let odd: Vec<u64> = (0..40).map(|i| (i * 2 + 1) % 24).collect();
        let mut serial = small_level();
        // Interleave as a serial run would see them.
        for i in 0..40 {
            run(&[even[i as usize]], &mut serial);
            run(&[odd[i as usize]], &mut serial);
        }
        let mut shard_a = small_level();
        let mut shard_b = small_level();
        run(&even, &mut shard_a);
        run(&odd, &mut shard_b);
        shard_a.absorb_stats(&mut shard_b);
        serial.finalize();
        assert_eq!(shard_a.stats, serial.stats);
        let (a, b) = (shard_a.energy(), serial.energy());
        for cat in EnergyCategory::ALL {
            assert_eq!(a.get(cat).as_pj().to_bits(), b.get(cat).as_pj().to_bits());
        }
    }

    #[test]
    fn dirty_fill_request_keeps_dirty_bit() {
        let mut c = small_level();
        let mut p = BaselinePolicy::new();
        let mut r = Lru::new();
        let mut req = FillRequest::new(LineAddr(9));
        req.dirty = true;
        c.fill(req, 0, &mut p, &mut r);
        let way = c.probe_way(LineAddr(9)).unwrap();
        let set = c.geometry().set_of(LineAddr(9));
        assert!(c.line_at(set, way).dirty);
    }
}
