//! Structure-of-arrays helpers for the L1 fast path.
//!
//! [`PackedLruStack`] packs a set's full LRU recency order into one
//! u64 — sixteen 4-bit way slots, most-recent first — so a hit's LRU
//! update is a handful of straight-line shifts/masks instead of a
//! per-line sequence-number store, and victim selection is a short
//! scan from the LRU end. On levels that enable it (the L1), the stack
//! replaces `lru_seq` ordering: the two are equivalent because every
//! touch point (hit, fill, promotion swap) updates both orders
//! identically, and victim candidates are always valid lines (invalid
//! ways are filled first), so stale positions of invalidated ways are
//! never consulted. The `properties` suite holds stack-vs-`Lru`
//! equivalence over random access/evict sequences for every way count.

/// A per-set LRU recency stack packed into one u64.
///
/// Slot `i` (nibble `i`, LSB first) holds the way index that is the
/// `i`-th most recently used; slot 0 is the MRU way. Way counts up to
/// 16 fit. For smaller way counts the upper slots keep their initial
/// identity values (>= the way count) and are never consulted: the
/// ways form a closed permutation of the low slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedLruStack(u64);

impl PackedLruStack {
    /// Maximum ways a packed stack can order (4-bit slots).
    pub const MAX_WAYS: usize = 16;

    /// Identity order: way `i` in slot `i` (way 0 MRU .. way 15 LRU).
    const IDENTITY: u64 = 0xFEDC_BA98_7654_3210;

    /// One per nibble.
    const NIBBLE_LSB: u64 = 0x1111_1111_1111_1111;
    /// Nibble sign bits.
    const NIBBLE_MSB: u64 = 0x8888_8888_8888_8888;

    /// Creates a stack in identity order.
    pub fn new() -> Self {
        PackedLruStack(Self::IDENTITY)
    }

    /// Slot position currently holding `way`.
    ///
    /// SWAR zero-nibble search over `stack ^ (way repeated)`: exactly
    /// one nibble is zero (the stack is a permutation), and the
    /// borrow-ripple false positives of the `(x - 1) & !x` trick can
    /// only appear *above* the first zero nibble, so the lowest
    /// flagged nibble is always the true match.
    #[inline]
    fn position_of(&self, way: u64) -> u32 {
        let x = self.0 ^ way.wrapping_mul(Self::NIBBLE_LSB);
        let zeros = x.wrapping_sub(Self::NIBBLE_LSB) & !x & Self::NIBBLE_MSB;
        zeros.trailing_zeros() / 4
    }

    /// Moves `way` to the MRU slot, shifting the slots above it down.
    #[inline]
    pub fn touch(&mut self, way: usize) {
        debug_assert!(way < Self::MAX_WAYS);
        if self.0 & 0xF == way as u64 {
            // Already MRU — the common case on memoized repeat hits.
            return;
        }
        let pos = self.position_of(way as u64);
        let shift = 4 * pos;
        // Slots above `pos` stay, slots [0, pos) move up one, `way`
        // lands in slot 0. Double shifts keep the edge case pos == 15
        // (shift + 4 == 64) well-defined.
        let above = (self.0 >> shift >> 4) << shift << 4;
        let below = self.0 & ((1u64 << shift) - 1);
        self.0 = above | (below << 4) | way as u64;
    }

    /// Swaps the stack positions of two ways (promotion swap: the
    /// recency metadata travels with the exchanged line states).
    #[inline]
    pub fn swap_ways(&mut self, a: usize, b: usize) {
        debug_assert!(a < Self::MAX_WAYS && b < Self::MAX_WAYS);
        if a == b {
            return;
        }
        let sa = 4 * self.position_of(a as u64);
        let sb = 4 * self.position_of(b as u64);
        let va = (self.0 >> sa) & 0xF;
        let vb = (self.0 >> sb) & 0xF;
        self.0 = (self.0 & !(0xF << sa) & !(0xF << sb)) | (vb << sa) | (va << sb);
    }

    /// The least-recently-used way among `mask` (a way bitmask), for a
    /// level with `ways` ways. Candidates must all be stacked ways —
    /// the caller guarantees `mask` is non-empty and names only valid
    /// (hence touched) ways.
    #[inline]
    pub fn victim_among(&self, mask: u32, ways: usize) -> usize {
        debug_assert!(ways <= Self::MAX_WAYS);
        debug_assert!(mask != 0);
        for pos in (0..ways).rev() {
            let way = ((self.0 >> (4 * pos as u32)) & 0xF) as usize;
            if mask & (1 << way) != 0 {
                return way;
            }
        }
        unreachable!("victim mask names no stacked way");
    }

    /// MRU-first way order (introspection/tests).
    pub fn order(&self, ways: usize) -> Vec<usize> {
        (0..ways)
            .map(|pos| ((self.0 >> (4 * pos as u32)) & 0xF) as usize)
            .collect()
    }
}

impl Default for PackedLruStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_identity_order() {
        let s = PackedLruStack::new();
        assert_eq!(s.order(16), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn touch_moves_way_to_front_preserving_relative_order() {
        let mut s = PackedLruStack::new();
        s.touch(3);
        assert_eq!(s.order(5), vec![3, 0, 1, 2, 4]);
        s.touch(4);
        assert_eq!(s.order(5), vec![4, 3, 0, 1, 2]);
        s.touch(4); // MRU touch is a no-op
        assert_eq!(s.order(5), vec![4, 3, 0, 1, 2]);
        s.touch(2);
        assert_eq!(s.order(5), vec![2, 4, 3, 0, 1]);
    }

    #[test]
    fn touch_is_a_permutation_for_every_way_count() {
        for ways in 1..=16usize {
            let mut s = PackedLruStack::new();
            let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ ways as u64;
            for _ in 0..2000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                s.touch((x % ways as u64) as usize);
                let mut order = s.order(ways);
                order.sort_unstable();
                assert_eq!(order, (0..ways).collect::<Vec<_>>());
                // Upper slots keep identity values.
                assert_eq!(
                    s.order(16)[ways..],
                    (ways..16).collect::<Vec<_>>()[..],
                    "ways {ways}"
                );
            }
        }
    }

    #[test]
    fn victim_is_deepest_way_in_mask() {
        let mut s = PackedLruStack::new();
        for w in [0usize, 1, 2, 3] {
            s.touch(w); // order now 3,2,1,0 (way 0 LRU)
        }
        assert_eq!(s.victim_among(0b1111, 4), 0);
        assert_eq!(s.victim_among(0b1110, 4), 1);
        assert_eq!(s.victim_among(0b1000, 4), 3);
    }

    #[test]
    fn swap_exchanges_positions() {
        let mut s = PackedLruStack::new();
        s.touch(2); // 2,0,1,3
        s.swap_ways(2, 3); // 3,0,1,2
        assert_eq!(s.order(4), vec![3, 0, 1, 2]);
        s.swap_ways(1, 1);
        assert_eq!(s.order(4), vec![3, 0, 1, 2]);
    }
}
