//! Cache geometry: sets, ways, way→sublevel mapping, and way masks.

use core::fmt;
use energy_model::Energy;

/// A set of ways within one cache set, as a bitmask.
///
/// Placement policies express "insert somewhere in these ways" /
/// "demote into these ways" with `WayMask`s; chunk and sublevel
/// membership are masks too. Supports up to 32 ways.
///
/// # Example
///
/// ```
/// use cache_sim::WayMask;
///
/// let near = WayMask::from_range(0..4);
/// let far = WayMask::from_range(4..16);
/// assert_eq!(near.union(far), WayMask::full(16));
/// assert!(near.contains(2) && !near.contains(4));
/// assert_eq!(near.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WayMask(u32);

impl WayMask {
    /// The empty mask.
    pub const EMPTY: WayMask = WayMask(0);

    /// Mask of all `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways > 32`.
    #[inline]
    pub fn full(ways: usize) -> Self {
        assert!(ways <= 32, "at most 32 ways supported");
        if ways == 32 {
            WayMask(u32::MAX)
        } else {
            WayMask((1u32 << ways) - 1)
        }
    }

    /// Mask containing exactly `way`.
    #[inline]
    pub fn single(way: usize) -> Self {
        assert!(way < 32);
        WayMask(1 << way)
    }

    /// Mask of a contiguous way range.
    #[inline]
    pub fn from_range(range: core::ops::Range<usize>) -> Self {
        let mut m = 0u32;
        for w in range {
            assert!(w < 32);
            m |= 1 << w;
        }
        WayMask(m)
    }

    /// Raw bits.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Builds a mask from raw bits.
    #[inline]
    pub fn from_bits(bits: u32) -> Self {
        WayMask(bits)
    }

    /// `true` if `way` is in the mask.
    #[inline]
    pub fn contains(self, way: usize) -> bool {
        way < 32 && self.0 & (1 << way) != 0
    }

    /// Number of ways in the mask.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if no ways are set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two masks.
    #[inline]
    pub fn union(self, other: WayMask) -> WayMask {
        WayMask(self.0 | other.0)
    }

    /// Intersection of two masks.
    #[inline]
    pub fn intersect(self, other: WayMask) -> WayMask {
        WayMask(self.0 & other.0)
    }

    /// Ways in `self` but not `other`.
    #[inline]
    pub fn difference(self, other: WayMask) -> WayMask {
        WayMask(self.0 & !other.0)
    }

    /// Iterates over the way indices in the mask, lowest first.
    pub fn iter(self) -> WayMaskIter {
        WayMaskIter(self.0)
    }

    /// The lowest way in the mask, if any.
    #[inline]
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ways[")?;
        let mut first = true;
        for w in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{w}")?;
            first = false;
        }
        write!(f, "]")
    }
}

impl IntoIterator for WayMask {
    type Item = usize;
    type IntoIter = WayMaskIter;
    fn into_iter(self) -> WayMaskIter {
        self.iter()
    }
}

/// Iterator over the ways of a [`WayMask`], produced by [`WayMask::iter`].
#[derive(Debug, Clone)]
pub struct WayMaskIter(u32);

impl Iterator for WayMaskIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let w = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(w)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for WayMaskIter {}

/// Per-sublevel energies and latency for [`CacheGeometry::from_rw_sublevels`].
///
/// SRAM sublevels have `read == write == insert`; asymmetric
/// technologies (STT-RAM) price writes — and therefore insertions —
/// several times higher than reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SublevelEnergies {
    /// Ways in this sublevel.
    pub ways: usize,
    /// Read energy per access.
    pub read: Energy,
    /// Write energy per access.
    pub write: Energy,
    /// Insertion energy (the write of an incoming line).
    pub insert: Energy,
    /// Hit latency in cycles.
    pub latency: u32,
}

/// Static geometry of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: usize,
    /// Number of ways per set.
    pub ways: usize,
    /// Sublevel index of each way (nearest sublevel = 0), length `ways`.
    pub sublevel_of_way: Vec<u8>,
    /// Per-way *read* access energy, length `ways`.
    pub way_energy: Vec<Energy>,
    /// Per-way *write* energy, length `ways`; equals `way_energy` for
    /// symmetric (SRAM) technologies.
    pub way_write_energy: Vec<Energy>,
    /// Per-way *insertion* energy, length `ways`; equals
    /// `way_write_energy` unless the technology prices insertions
    /// separately.
    pub way_insert_energy: Vec<Energy>,
    /// Per-way hit latency in cycles, length `ways`.
    pub way_latency: Vec<u32>,
}

impl CacheGeometry {
    /// Builds a geometry from per-sublevel descriptions with separate
    /// read/write/insertion energies.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or the way counts sum to zero or exceed 32.
    pub fn from_rw_sublevels(sets: usize, sublevels: &[SublevelEnergies]) -> Self {
        assert!(sets > 0, "cache must have at least one set");
        let ways: usize = sublevels.iter().map(|s| s.ways).sum();
        assert!(ways > 0 && ways <= 32, "1..=32 ways required, got {ways}");
        let mut sublevel_of_way = Vec::with_capacity(ways);
        let mut way_energy = Vec::with_capacity(ways);
        let mut way_write_energy = Vec::with_capacity(ways);
        let mut way_insert_energy = Vec::with_capacity(ways);
        let mut way_latency = Vec::with_capacity(ways);
        for (s, sub) in sublevels.iter().enumerate() {
            for _ in 0..sub.ways {
                sublevel_of_way.push(s as u8);
                way_energy.push(sub.read);
                way_write_energy.push(sub.write);
                way_insert_energy.push(sub.insert);
                way_latency.push(sub.latency);
            }
        }
        CacheGeometry {
            sets,
            ways,
            sublevel_of_way,
            way_energy,
            way_write_energy,
            way_insert_energy,
            way_latency,
        }
    }

    /// Builds a symmetric geometry from per-sublevel descriptions.
    ///
    /// `sublevels` lists `(way_count, access_energy, latency)` per
    /// sublevel, nearest first; writes and insertions cost the same as
    /// reads.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or the way counts sum to zero or exceed 32.
    pub fn from_sublevels(sets: usize, sublevels: &[(usize, Energy, u32)]) -> Self {
        let rw: Vec<SublevelEnergies> = sublevels
            .iter()
            .map(|&(ways, e, latency)| SublevelEnergies {
                ways,
                read: e,
                write: e,
                insert: e,
                latency,
            })
            .collect();
        Self::from_rw_sublevels(sets, &rw)
    }

    /// A uniform (single-sublevel) geometry, e.g. for an L1.
    pub fn uniform(sets: usize, ways: usize, energy: Energy, latency: u32) -> Self {
        Self::from_sublevels(sets, &[(ways, energy, latency)])
    }

    /// Number of sublevels.
    pub fn sublevels(&self) -> usize {
        self.sublevel_of_way.last().map_or(0, |&s| s as usize + 1)
    }

    /// Total capacity in lines.
    pub fn total_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Lines of capacity in sublevel `s`.
    pub fn sublevel_lines(&self, s: usize) -> usize {
        self.sublevel_ways(s).count() * self.sets
    }

    /// Mask of the ways belonging to sublevel `s`.
    pub fn sublevel_ways(&self, s: usize) -> WayMask {
        let mut m = WayMask::EMPTY;
        for (w, &sw) in self.sublevel_of_way.iter().enumerate() {
            if sw as usize == s {
                m = m.union(WayMask::single(w));
            }
        }
        m
    }

    /// Mask of the ways of sublevels `lo..=hi`.
    pub fn sublevel_range_ways(&self, lo: usize, hi: usize) -> WayMask {
        let mut m = WayMask::EMPTY;
        for s in lo..=hi {
            m = m.union(self.sublevel_ways(s));
        }
        m
    }

    /// The set index a line maps to. Power-of-two set counts (every
    /// paper configuration) index with a mask instead of a division;
    /// the two forms are exactly equivalent.
    #[inline]
    pub fn set_of(&self, line: crate::addr::LineAddr) -> usize {
        if self.sets.is_power_of_two() {
            (line.0 as usize) & (self.sets - 1)
        } else {
            (line.0 % self.sets as u64) as usize
        }
    }

    /// Sublevel of `way`.
    #[inline]
    pub fn sublevel(&self, way: usize) -> usize {
        self.sublevel_of_way[way] as usize
    }

    /// Read access energy of `way`.
    #[inline]
    pub fn energy(&self, way: usize) -> Energy {
        self.way_energy[way]
    }

    /// Write energy of `way`.
    #[inline]
    pub fn write_energy(&self, way: usize) -> Energy {
        self.way_write_energy[way]
    }

    /// Insertion energy of `way`.
    #[inline]
    pub fn insert_energy(&self, way: usize) -> Energy {
        self.way_insert_energy[way]
    }

    /// `true` when reads, writes, and insertions share one energy table.
    pub fn is_symmetric(&self) -> bool {
        self.way_write_energy == self.way_energy && self.way_insert_energy == self.way_energy
    }

    /// Hit latency of `way` in cycles.
    #[inline]
    pub fn latency(&self, way: usize) -> u32 {
        self.way_latency[way]
    }

    /// Cumulative line capacities of sublevels (`CC_i` of paper §3.2).
    pub fn cumulative_sublevel_lines(&self) -> Vec<usize> {
        (0..self.sublevels())
            .scan(0usize, |acc, s| {
                *acc += self.sublevel_lines(s);
                Some(*acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;

    fn paper_l2() -> CacheGeometry {
        CacheGeometry::from_sublevels(
            256,
            &[
                (4, Energy::from_pj(21.0), 4),
                (4, Energy::from_pj(33.0), 6),
                (8, Energy::from_pj(50.0), 8),
            ],
        )
    }

    #[test]
    fn waymask_basics() {
        let m = WayMask::from_range(2..5);
        assert_eq!(m.count(), 3);
        assert!(m.contains(2) && m.contains(4) && !m.contains(5));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(m.first(), Some(2));
        assert_eq!(WayMask::EMPTY.first(), None);
        assert!(WayMask::EMPTY.is_empty());
        assert_eq!(WayMask::full(16).count(), 16);
        assert_eq!(WayMask::full(32).count(), 32);
    }

    #[test]
    fn waymask_set_operations() {
        let a = WayMask::from_range(0..4);
        let b = WayMask::from_range(2..6);
        assert_eq!(a.union(b), WayMask::from_range(0..6));
        assert_eq!(a.intersect(b), WayMask::from_range(2..4));
        assert_eq!(a.difference(b), WayMask::from_range(0..2));
    }

    #[test]
    fn waymask_display() {
        assert_eq!(WayMask::from_range(0..3).to_string(), "ways[0,1,2]");
        assert_eq!(WayMask::EMPTY.to_string(), "ways[]");
    }

    #[test]
    fn waymask_iter_is_exact_size() {
        let m = WayMask::from_range(1..9);
        let it = m.iter();
        assert_eq!(it.len(), 8);
        assert_eq!(m.into_iter().count(), 8);
    }

    #[test]
    fn geometry_paper_l2_shape() {
        let g = paper_l2();
        assert_eq!(g.ways, 16);
        assert_eq!(g.sublevels(), 3);
        assert_eq!(g.total_lines(), 4096);
        assert_eq!(g.sublevel_lines(0), 1024);
        assert_eq!(g.sublevel_lines(2), 2048);
        assert_eq!(g.cumulative_sublevel_lines(), vec![1024, 2048, 4096]);
        assert_eq!(g.sublevel_ways(0), WayMask::from_range(0..4));
        assert_eq!(g.sublevel_ways(2), WayMask::from_range(8..16));
        assert_eq!(g.sublevel_range_ways(1, 2), WayMask::from_range(4..16));
        assert_eq!(g.sublevel(5), 1);
        assert_eq!(g.energy(10).as_pj(), 50.0);
        assert_eq!(g.latency(0), 4);
    }

    #[test]
    fn set_mapping_wraps() {
        let g = paper_l2();
        assert_eq!(g.set_of(LineAddr(0)), 0);
        assert_eq!(g.set_of(LineAddr(256)), 0);
        assert_eq!(g.set_of(LineAddr(257)), 1);
    }

    #[test]
    fn uniform_geometry() {
        let g = CacheGeometry::uniform(64, 8, Energy::from_pj(5.0), 4);
        assert_eq!(g.sublevels(), 1);
        assert_eq!(g.ways, 8);
        assert!(g.way_energy.iter().all(|&e| e.as_pj() == 5.0));
    }

    #[test]
    #[should_panic(expected = "1..=32 ways")]
    fn geometry_rejects_too_many_ways() {
        CacheGeometry::from_sublevels(4, &[(33, Energy::ZERO, 1)]);
    }

    #[test]
    fn symmetric_constructors_fill_all_three_tables() {
        let g = paper_l2();
        assert!(g.is_symmetric());
        assert_eq!(g.way_write_energy, g.way_energy);
        assert_eq!(g.way_insert_energy, g.way_energy);
        assert_eq!(g.write_energy(10), g.energy(10));
        assert_eq!(g.insert_energy(0), g.energy(0));
    }

    #[test]
    fn rw_geometry_carries_asymmetric_tables() {
        let g = CacheGeometry::from_rw_sublevels(
            2048,
            &[
                SublevelEnergies {
                    ways: 4,
                    read: Energy::from_pj(40.0),
                    write: Energy::from_pj(240.0),
                    insert: Energy::from_pj(240.0),
                    latency: 15,
                },
                SublevelEnergies {
                    ways: 12,
                    read: Energy::from_pj(106.0),
                    write: Energy::from_pj(636.0),
                    insert: Energy::from_pj(500.0),
                    latency: 23,
                },
            ],
        );
        assert!(!g.is_symmetric());
        assert_eq!(g.energy(0).as_pj(), 40.0);
        assert_eq!(g.write_energy(0).as_pj(), 240.0);
        assert_eq!(g.insert_energy(15).as_pj(), 500.0);
        assert_eq!(g.sublevel(15), 1);
    }
}
