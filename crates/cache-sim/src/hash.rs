//! Fast, deterministic hashing for simulator-internal maps.
//!
//! The std `HashMap` default hasher (SipHash with a per-process random
//! seed) costs tens of nanoseconds per lookup — real money on maps the
//! simulator consults every access (TLB, page table). This is the
//! word-at-a-time multiply/rotate scheme used by rustc's FxHash:
//! not DoS-resistant (irrelevant here — keys are simulated addresses,
//! not attacker input) and fully deterministic, which also removes the
//! one source of run-to-run variation std's seeded hasher would add.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// 2^64 / golden ratio, the classic Fibonacci-hashing multiplier.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Word-at-a-time multiplicative hasher (rustc's FxHash scheme).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(hash_of(b"x"), hash_of(b"y"));
    }

    #[test]
    fn tail_bytes_and_length_are_significant() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b"abcdefgh"), hash_of(b"abcdefg"));
        // Multi-chunk inputs hash all chunks.
        assert_ne!(hash_of(b"abcdefgh12345678"), hash_of(b"abcdefgh12345679"));
    }

    #[test]
    fn fx_map_works_as_a_plain_map() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i * 7, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&21), Some(&3));
        assert_eq!(m.get(&22), None);
    }
}
